#!/usr/bin/env python
"""Study the speed/accuracy trade as the GPU expert cache shrinks.

Reproduces a miniature of the paper's Fig. 10 + Table VI story: as the
Expert Cache Ratio falls, DAOP keeps a large speed lead over Fiddler while
its decode-phase approximations (predicted routing, graceful degradation,
stale pre-calculated inputs) start to cost accuracy -- most visibly on a
GSM8K-style workload whose expert demand drifts within each sequence.

Run:  python examples/ecr_tradeoff_study.py
"""

from repro import build_mixtral_8x7b_sim, default_platform
from repro.core import build_engine, calibrate_activation_probs
from repro.eval.harness import AccuracyHarness
from repro.metrics import format_table
from repro.workloads import SHAREGPT, SequenceGenerator, get_task

ECRS = (0.625, 0.469, 0.25)
LENGTH = 96
N_ACC_SAMPLES = 8


def main() -> None:
    bundle = build_mixtral_8x7b_sim(seed=0, n_blocks=16)
    platform = default_platform()
    calibration = calibrate_activation_probs(
        bundle, n_sequences=4, prompt_len=24, decode_len=24
    )
    generator = SequenceGenerator(SHAREGPT, bundle.vocab, seed=3)
    request = generator.sample_sequence(LENGTH, LENGTH, sample_idx=0)
    harness = AccuracyHarness(bundle, platform, seed=3)
    gsm8k = get_task("gsm8k")
    official_acc = harness.evaluate_official(
        gsm8k, n_samples=N_ACC_SAMPLES
    ).score

    rows = []
    for ecr in ECRS:
        speeds = {}
        for name in ("fiddler", "daop"):
            engine = build_engine(name, bundle, platform,
                                  expert_cache_ratio=ecr,
                                  calibration_probs=calibration)
            result = engine.generate(
                request.prompt_tokens, LENGTH,
                forced_tokens=request.continuation_tokens,
            )
            speeds[name] = result.stats.tokens_per_second
        daop = build_engine("daop", bundle, platform,
                            expert_cache_ratio=ecr,
                            calibration_probs=calibration)
        acc = harness.evaluate(daop, gsm8k, n_samples=N_ACC_SAMPLES).score
        rows.append([
            f"{ecr:.1%}", speeds["fiddler"], speeds["daop"],
            f"{100 * (speeds['daop'] / speeds['fiddler'] - 1):.0f}%",
            100 * acc,
        ])
        print(f"swept ECR {ecr:.1%} ...")

    print()
    print(format_table(
        ["ECR", "fiddler tok/s", "daop tok/s", "daop gain",
         "daop gsm8k acc (%)"],
        rows,
        title=f"Speed/accuracy vs cache size "
              f"(official gsm8k acc: {100 * official_acc:.1f}%)",
    ))
    print()
    print("Expected shape: the daop/fiddler gap persists at every cache")
    print("size (paper: ~35% average), while GSM8K accuracy tends to decay")
    print("as the cache shrinks (paper Table VI: 58.9 -> 33.5 at ECR 25%).")
    print(f"Note: with only {N_ACC_SAMPLES} samples the accuracy column is")
    print("noisy; benchmarks/test_table6_ecr_accuracy.py runs the full")
    print("protocol.")


if __name__ == "__main__":
    main()
