#!/usr/bin/env python
"""Evaluate DAOP on user-defined hardware (paper §VI-A applicability).

The paper argues DAOP helps whenever (1) GPU memory cannot hold all
experts, (2) the GPU is faster than the CPU, and (3) the CPU<->GPU
transfer of an expert costs more than executing it on the CPU.  This
example defines three platforms -- the paper's A6000 workstation, a
consumer RTX 4090 box with a weak desktop CPU, and a hypothetical
fast-interconnect machine that *violates* assumption (3) -- and shows
where DAOP's advantage holds and where it collapses.

Run:  python examples/custom_hardware.py
"""

import dataclasses

from repro import build_mixtral_8x7b_sim
from repro.core import build_engine, calibrate_activation_probs
from repro.hardware import (
    GB,
    DeviceKind,
    DeviceSpec,
    LinkSpec,
    Platform,
    NVIDIA_RTX4090,
    default_platform,
)
from repro.metrics import format_table
from repro.workloads import SHAREGPT, SequenceGenerator

DESKTOP_CPU = DeviceSpec(
    name="8-core desktop CPU",
    kind=DeviceKind.CPU,
    peak_flops=1.0e12,
    mem_bandwidth=45 * GB,
    mem_capacity=128 * GB,
    compute_efficiency=0.45,
    mem_efficiency=0.55,
    idle_power_w=25.0,
    active_power_w=120.0,
)

FAST_LINK = LinkSpec(
    name="hypothetical 512 GB/s coherent link",
    bandwidth=512 * GB,
    latency=2e-6,
    bulk_efficiency=0.8,
    activation_efficiency=0.8,
)

LENGTH = 96
ECR = 0.35


def main() -> None:
    bundle = build_mixtral_8x7b_sim(seed=0, n_blocks=16)
    calibration = calibrate_activation_probs(
        bundle, n_sequences=4, prompt_len=24, decode_len=24
    )
    paper_box = default_platform()
    platforms = {
        "A6000 + i9 (paper)": paper_box,
        "RTX 4090 + desktop CPU": Platform(
            gpu=NVIDIA_RTX4090, cpu=DESKTOP_CPU, link=paper_box.link,
            base_power_w=60.0,
        ),
        "A6000 + i9 + 512 GB/s link": dataclasses.replace(
            paper_box, link=FAST_LINK
        ),
    }

    generator = SequenceGenerator(SHAREGPT, bundle.vocab, seed=5)
    request = generator.sample_sequence(LENGTH, LENGTH, sample_idx=0)

    rows = []
    for label, platform in platforms.items():
        speeds = {}
        for name in ("moe-ondemand", "fiddler", "daop"):
            engine = build_engine(name, bundle, platform,
                                  expert_cache_ratio=ECR,
                                  calibration_probs=calibration)
            result = engine.generate(
                request.prompt_tokens, LENGTH,
                forced_tokens=request.continuation_tokens,
            )
            speeds[name] = result.stats.tokens_per_second
        rows.append([
            label, speeds["moe-ondemand"], speeds["fiddler"],
            speeds["daop"],
            f"{speeds['daop'] / speeds['moe-ondemand']:.1f}x",
        ])
        print(f"simulated {label} ...")

    print()
    print(format_table(
        ["platform", "ondemand tok/s", "fiddler tok/s", "daop tok/s",
         "daop vs ondemand"],
        rows, title=f"Platform applicability study (ECR {ECR:.0%})",
    ))
    print()
    print("Expected shape: on PCIe platforms (assumptions 1-3 hold) DAOP")
    print("dominates migrate-on-miss; with a 512 GB/s coherent link,")
    print("moving experts becomes cheap and the advantage of CPU-side")
    print("execution shrinks -- exactly the applicability boundary the")
    print("paper's discussion section draws.")


if __name__ == "__main__":
    main()
