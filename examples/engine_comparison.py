#!/usr/bin/env python
"""Compare every engine the paper evaluates on the same chat workload.

Reproduces a miniature of the paper's Fig. 9 / Table IV study: all six
engines serve the same ShareGPT-style requests at the paper's "full GPU
memory" cache ratio, and a summary table reports simulated throughput,
energy efficiency, residency, and transfer counts.

Run:  python examples/engine_comparison.py
"""

from repro import build_mixtral_8x7b_sim, default_platform
from repro.core import ENGINE_NAMES, build_engine, calibrate_activation_probs
from repro.metrics import format_table, summarize_results
from repro.workloads import SHAREGPT, SequenceGenerator

INPUT_LEN = 96
OUTPUT_LEN = 96
N_REQUESTS = 2
ECR = 0.469


def main() -> None:
    bundle = build_mixtral_8x7b_sim(seed=0, n_blocks=16)
    platform = default_platform()
    calibration = calibrate_activation_probs(
        bundle, n_sequences=4, prompt_len=24, decode_len=24
    )
    generator = SequenceGenerator(SHAREGPT, bundle.vocab, seed=7)
    requests = [
        generator.sample_sequence(INPUT_LEN, OUTPUT_LEN, sample_idx=i)
        for i in range(N_REQUESTS)
    ]

    rows = []
    for name in ENGINE_NAMES:
        engine = build_engine(name, bundle, platform,
                              expert_cache_ratio=ECR,
                              calibration_probs=calibration)
        results = [
            engine.generate(req.prompt_tokens, OUTPUT_LEN,
                            forced_tokens=req.continuation_tokens)
            for req in requests
        ]
        s = summarize_results(name, results)
        rows.append([
            name, s.tokens_per_second, s.tokens_per_kilojoule,
            f"{100 * s.gpu_hit_rate:.0f}%", int(s.expert_uploads),
            int(s.cpu_expert_execs),
        ])
        print(f"ran {name} ...")

    print()
    print(format_table(
        ["engine", "tok/s", "tok/kJ", "gpu hits", "uploads/seq",
         "cpu execs/seq"],
        rows,
        title=f"Engine comparison, Mixtral-like model, ECR {ECR:.1%}, "
              f"in/out {INPUT_LEN}/{OUTPUT_LEN}",
    ))
    print()
    print("Expected shape (paper Fig. 9 / Table IV): the migrate-on-miss")
    print("family (moe-ondemand, deepspeed-mii, mixtral-offloading,")
    print("pregated-moe) is transfer-bound; fiddler avoids migration by")
    print("computing on the CPU; daop adds sequence-specific allocation")
    print("and predictive pre-calculation on top and wins both columns.")


if __name__ == "__main__":
    main()
