#!/usr/bin/env python
"""Fleet serving: routing policies compared on similarity-clustered traffic.

DAOP's sequence-specific expert allocation (Algorithm 1) shapes each
replica's GPU expert cache after the traffic it serves, so *which*
replica a request lands on matters: a replica warmed on similar requests
already holds their dominant experts.  This example serves the same
clustered arrival trace (a few "session" groups issuing similar
requests) through a 2-replica fleet under three routing policies —
round-robin, join-shortest-queue, and cache-affinity — for DAOP and for
the Fiddler baseline, under both Poisson and bursty arrivals.

Expected shape: for DAOP, cache-affinity routing lifts the start-of-
service expert-cache hit rate and slashes prefill swap churn versus
round-robin; Fiddler's static placement cannot benefit, isolating the
effect to DAOP's data-aware allocation.  The combined results are also
written as JSON (``--json``) so CI can archive serving-trajectory
numbers across PRs.

Run:  python examples/cluster_serving.py [--json cluster_serving_report.json]
"""

import argparse
import json

import numpy as np

from repro import build_mixtral_8x7b_sim, default_platform
from repro.cluster import (
    AdmissionController,
    ClusterSimulator,
    SLOTarget,
    build_policy,
)
from repro.core import build_engine, calibrate_activation_probs
from repro.metrics import format_table
from repro.serving import bursty_arrivals, poisson_arrivals
from repro.workloads import SHAREGPT, SequenceGenerator

N_REPLICAS = 2
N_REQUESTS = 12
N_CLUSTERS = 3
RATE_PER_S = 0.02        # one request every ~50 s of simulated time
PROMPT_LEN = 24
OUTPUT_LEN = 12
POLICIES = ("round-robin", "join-shortest-queue", "cache-affinity")
ENGINES = ("daop", "fiddler")
SLO = SLOTarget(ttft_s=60.0, tpot_s=2.0)

# Clustered but non-cyclic: round-robin cannot accidentally align with it.
SAMPLE_PATTERN = [0, 1, 2, 2, 0, 1, 1, 2, 0, 0, 1, 2]


def run_one(bundle, platform, calibration, engine_name, policy_name,
            arrivals):
    """Simulate one (engine, policy) fleet over one arrival trace."""
    engines = [
        build_engine(engine_name, bundle, platform,
                     expert_cache_ratio=0.469,
                     calibration_probs=calibration)
        for _ in range(N_REPLICAS)
    ]
    generator = SequenceGenerator(SHAREGPT, bundle.vocab, seed=9)
    simulator = ClusterSimulator(
        engines, generator, build_policy(policy_name),
        admission=AdmissionController(max_queue_len=8),
        slo=SLO,
    )
    return simulator.run(arrivals, PROMPT_LEN, OUTPUT_LEN,
                         sample_indices=SAMPLE_PATTERN[:N_REQUESTS])


def main() -> None:
    """Compare routing policies per engine and arrival process."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default="cluster_serving_report.json",
                        help="write combined ClusterReport JSON here")
    args = parser.parse_args()

    bundle = build_mixtral_8x7b_sim(seed=0, n_blocks=8)
    platform = default_platform()
    calibration = calibrate_activation_probs(
        bundle, n_sequences=4, prompt_len=24, decode_len=24
    )
    arrival_traces = {
        "poisson": poisson_arrivals(
            RATE_PER_S, N_REQUESTS, np.random.default_rng(11)
        ),
        "bursty": bursty_arrivals(
            RATE_PER_S, N_REQUESTS, np.random.default_rng(12),
            burst_size=3, burst_spread_s=2.0,
        ),
    }

    combined = {}
    for arrival_name, arrivals in arrival_traces.items():
        rows = []
        for engine_name in ENGINES:
            for policy_name in POLICIES:
                report = run_one(bundle, platform, calibration,
                                 engine_name, policy_name, arrivals)
                combined[f"{arrival_name}/{engine_name}/{policy_name}"] = (
                    report.to_dict()
                )
                rows.append([
                    engine_name, policy_name,
                    report.goodput_tokens_per_s,
                    f"{100 * report.slo_attainment:.0f}%",
                    report.ttft_percentile(50),
                    f"{100 * report.mean_warm_hit_rate:.1f}%",
                    sum(r.prefill_swaps for r in report.requests),
                    report.load_balance_index,
                ])
        print()
        print(format_table(
            ["engine", "policy", "goodput tok/s", "SLO", "TTFT p50 (s)",
             "cache warm", "swaps", "balance"],
            rows,
            title=f"{arrival_name} arrivals: {N_REQUESTS} requests @ "
                  f"{RATE_PER_S}/s, {N_CLUSTERS} similarity clusters, "
                  f"{N_REPLICAS} replicas",
        ))

    daop_rr = combined["poisson/daop/round-robin"]["summary"]
    daop_aff = combined["poisson/daop/cache-affinity"]["summary"]
    print()
    print("DAOP expert-cache hit rate at service start (Poisson trace):")
    print(f"  round-robin    : {100 * daop_rr['mean_warm_hit_rate']:.1f}%")
    print(f"  cache-affinity : {100 * daop_aff['mean_warm_hit_rate']:.1f}%")
    print("Cache-affinity routing keeps each DAOP replica's expert cache")
    print("tuned to one traffic cluster, so requests find their dominant")
    print("experts already GPU-resident (fewer Algorithm-1 swaps, lower")
    print("TTFT); load-oblivious round-robin destroys that warmth.")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(combined, handle, indent=2, sort_keys=True)
        print(f"\ncombined cluster reports written to {args.json}")


if __name__ == "__main__":
    main()
