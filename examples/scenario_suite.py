#!/usr/bin/env python
"""Run the scenario library end-to-end and replay one scenario bit-exactly.

The scenario library (`repro.scenarios`, docs/scenarios.md) packages
named serving workloads -- arrival process, tenant mix with per-tenant
SLO classes, length distributions, session prefix reuse -- so serving
experiments are declared once and reproduced anywhere.  This example:

1. runs every registered scenario through a DAOP `ServingSimulator` and
   tabulates per-scenario SLO attainment and tail latency;
2. breaks one multi-tenant scenario out per tenant and per SLO class;
3. records a scenario's materialized workload to disk (replay format
   v2) and replays it, verifying the report content digest matches
   bit-exactly.

Run:  python examples/scenario_suite.py
"""

import os
import tempfile

from repro import build_mixtral_8x7b_sim, default_platform
from repro.core import build_engine, calibrate_activation_probs
from repro.metrics import format_table
from repro.scenarios import SCENARIO_NAMES, ScenarioRunner, get_scenario
from repro.serving import ServingSimulator
from repro.workloads.replay import (
    load_request_specs,
    record_request_specs,
    save_workload,
)

SEED = 7


def make_simulator(bundle, platform, calibration) -> ServingSimulator:
    """A fresh DAOP serving backend (placement reset between scenarios)."""
    engine = build_engine("daop", bundle, platform,
                          expert_cache_ratio=0.469,
                          calibration_probs=calibration)
    return ServingSimulator(engine)


def main() -> None:
    bundle = build_mixtral_8x7b_sim(seed=0, n_blocks=16)
    platform = default_platform()
    calibration = calibrate_activation_probs(
        bundle, n_sequences=4, prompt_len=24, decode_len=24
    )

    # 1. Every registered scenario, one row each.  `fast` caps request
    # counts and token lengths so the suite finishes in a few minutes.
    rows = []
    reports = {}
    for name in SCENARIO_NAMES:
        runner = ScenarioRunner(get_scenario(name), bundle.vocab,
                                seed=SEED, fast=True)
        report = runner.run(make_simulator(bundle, platform, calibration))
        reports[name] = report
        summary = report.to_dict()["summary"]
        rows.append([
            name,
            f"{summary['served']}/{summary['offered']}",
            f"{100 * summary['slo_attainment']:.0f}%",
            summary["throughput_tokens_per_s"],
            summary["ttft_p95_s"],
            report.content_digest()[:12],
        ])
        print(f"ran scenario {name} ...")
    print()
    print(format_table(
        ["scenario", "served", "SLO", "tok/s", "TTFT p95 (s)", "digest"],
        rows, title=f"scenario suite (DAOP, seed {SEED}, fast mode)",
    ))

    # 2. Per-tenant / per-SLO-class breakdown of the multi-tenant mix.
    report = reports["multi-tenant-slo"]
    tenant_rows = [
        [tenant, stats["served"],
         f"{100 * stats['slo_attainment']:.0f}%",
         stats["ttft_p95_s"], stats["latency_p95_s"]]
        for tenant, stats in report.per_tenant().items()
    ]
    print()
    print(format_table(
        ["tenant", "served", "SLO", "TTFT p95 (s)", "latency p95 (s)"],
        tenant_rows, title="multi-tenant-slo: per-tenant breakdown",
    ))
    slo_rows = [
        [cls, stats["served"], f"{100 * stats['slo_attainment']:.0f}%",
         stats["tpot_p50_s"]]
        for cls, stats in report.per_slo_class().items()
    ]
    print()
    print(format_table(
        ["SLO class", "served", "attained", "TPOT p50 (s)"],
        slo_rows, title="multi-tenant-slo: per-SLO-class breakdown",
    ))

    # 3. Record the workload, replay it from disk, compare digests.
    runner = ScenarioRunner(get_scenario("multi-tenant-slo"), bundle.vocab,
                            seed=SEED, fast=True)
    specs = runner.build_requests()
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "multi-tenant-slo.workload.json")
        save_workload(path, record_request_specs(specs,
                                                 label="multi-tenant-slo"))
        loaded = load_request_specs(path)
        replayed = runner.run(make_simulator(bundle, platform, calibration),
                              requests=loaded)
    print()
    fresh_digest = report.content_digest()
    replay_digest = replayed.content_digest()
    print(f"fresh run digest:  {fresh_digest}")
    print(f"replayed digest:   {replay_digest}")
    print("bit-exact replay:  "
          + ("PASS" if fresh_digest == replay_digest else "FAIL"))


if __name__ == "__main__":
    main()
