#!/usr/bin/env python
"""Serve bursty chat traffic and compare user-visible latency per engine.

The paper measures single-request throughput; this example extends the
reproduction to deployment: Poisson/bursty arrivals are served FIFO at
batch size one (the paper's regime) and we report time-to-first-token and
end-to-end latency percentiles.  Faster engines do not just raise
throughput -- they shorten queues, which compounds into tail latency.

Run:  python examples/serving_simulation.py
"""

import numpy as np

from repro import build_mixtral_8x7b_sim, default_platform
from repro.core import build_engine, calibrate_activation_probs
from repro.metrics import format_table
from repro.serving import ServingSimulator, bursty_arrivals
from repro.workloads import SHAREGPT, SequenceGenerator

N_REQUESTS = 8
RATE_PER_S = 0.04        # one request every ~25 s of simulated time
PROMPT_LEN = 64
OUTPUT_LEN = 64


def main() -> None:
    bundle = build_mixtral_8x7b_sim(seed=0, n_blocks=16)
    platform = default_platform()
    calibration = calibrate_activation_probs(
        bundle, n_sequences=4, prompt_len=24, decode_len=24
    )
    arrivals = bursty_arrivals(
        RATE_PER_S, N_REQUESTS, np.random.default_rng(11), burst_size=3,
        burst_spread_s=2.0,
    )

    rows = []
    for name in ("moe-ondemand", "fiddler", "daop"):
        engine = build_engine(name, bundle, platform,
                              expert_cache_ratio=0.469,
                              calibration_probs=calibration)
        generator = SequenceGenerator(SHAREGPT, bundle.vocab, seed=9)
        report = ServingSimulator(engine, generator).run(
            arrivals, PROMPT_LEN, OUTPUT_LEN
        )
        rows.append([
            name,
            report.throughput_tokens_per_s,
            report.ttft_percentile(50),
            report.ttft_percentile(95),
            report.latency_percentile(95),
            report.mean_queue_delay_s,
        ])
        print(f"served {N_REQUESTS} requests with {name} ...")

    print()
    print(format_table(
        ["engine", "tok/s", "TTFT p50 (s)", "TTFT p95 (s)",
         "latency p95 (s)", "mean queue (s)"],
        rows,
        title=f"Bursty serving: {N_REQUESTS} requests @ {RATE_PER_S}/s, "
              f"in/out {PROMPT_LEN}/{OUTPUT_LEN}",
    ))
    print()
    print("Expected shape: MoE-OnDemand's ~1 tok/s service time makes its")
    print("queue explode under bursts (p95 latency dominated by waiting);")
    print("DAOP's shorter service times keep both TTFT and tail latency")
    print("bounded even at the same arrival rate.")


if __name__ == "__main__":
    main()
