#!/usr/bin/env python
"""Quickstart: run DAOP on a simulated Mixtral 8x7B and inspect the result.

This walks the complete public API path:

1. build a functional model bundle mirroring Mixtral 8x7B's topology,
2. calibrate the initial expert cache on ShareGPT-like traffic (§IV-A),
3. construct the DAOP engine at the paper's evaluation cache ratio,
4. generate from a prompt, and
5. read back throughput, energy, placement, and schedule statistics.

Run:  python examples/quickstart.py
"""

from repro import build_mixtral_8x7b_sim, default_platform
from repro.core import DAOPEngine, calibrate_activation_probs
from repro.memory.cache import CacheConfig
from repro.workloads import C4, SequenceGenerator


def main() -> None:
    # A 32-block, 8-expert, top-2 functional analogue of Mixtral 8x7B.
    # (Weights are synthetic; the architecture, routing dynamics, and the
    # simulated-hardware cost model are the paper's.)
    bundle = build_mixtral_8x7b_sim(seed=0, n_blocks=16)
    platform = default_platform()  # NVIDIA A6000 + i9-10980XE, PCIe 4.0

    print("calibrating the initial expert cache on ShareGPT traffic ...")
    calibration = calibrate_activation_probs(
        bundle, n_sequences=4, prompt_len=24, decode_len=24
    )

    engine = DAOPEngine(
        bundle,
        platform,
        cache_config=CacheConfig(ecr=0.469),  # paper's "full GPU" ratio
        calibration_probs=calibration,
    )

    prompt = SequenceGenerator(C4, bundle.vocab, seed=1).sample_sequence(
        prompt_len=64, sample_idx=0
    )
    print("prompt:", bundle.tokenizer.decode(prompt.prompt_tokens[:12]),
          "...")

    result = engine.generate(prompt.prompt_tokens, max_new_tokens=48)

    print("generated:", bundle.tokenizer.decode(result.tokens[:12]), "...")
    stats = result.stats
    print(f"simulated throughput : {stats.tokens_per_second:.2f} tokens/s")
    print(f"decode-only          : {stats.decode_tokens_per_second:.2f} "
          f"tokens/s")
    print(f"energy efficiency    : {stats.tokens_per_kilojoule:.2f} "
          f"tokens/kJ")
    print(f"average power        : {stats.average_power_w:.0f} W")
    counters = stats.counters
    print(f"GPU residency hits   : {100 * counters.gpu_hit_rate:.1f} % of "
          f"activated experts")
    print(f"prefill swaps (Alg.1): {counters.prefill_swaps}")
    print(f"CPU pre-calculations : {counters.stale_input_execs}")
    print(f"graceful degradations: {counters.degraded_swaps}")
    print(f"final ECR            : "
          f"{result.placement.expert_cache_ratio:.1%}")


if __name__ == "__main__":
    main()
