#!/usr/bin/env python
"""Dissect one decode schedule: utilization, critical path, Chrome trace.

This example reproduces the paper's Fig. 8 reasoning quantitatively: run
the same request through Fiddler and DAOP, then show where the time goes
(per resource and per op kind), what sits on the latency-critical path,
and the bottleneck classification.  It also exports each schedule in the
Chrome trace-event format so it can be inspected interactively in
chrome://tracing or https://ui.perfetto.dev.

Run:  python examples/schedule_analysis.py
"""

from repro import build_mixtral_8x7b_sim, default_platform
from repro.analysis import critical_path, diagnose, summarize_schedule
from repro.core import build_engine, calibrate_activation_probs
from repro.metrics import bar_chart
from repro.trace.export import timeline_to_chrome_trace
from repro.workloads import SHAREGPT, SequenceGenerator

ECR = 0.35
LENGTH = 64


def main() -> None:
    bundle = build_mixtral_8x7b_sim(seed=0, n_blocks=16)
    platform = default_platform()
    calibration = calibrate_activation_probs(
        bundle, n_sequences=4, prompt_len=24, decode_len=24
    )
    generator = SequenceGenerator(SHAREGPT, bundle.vocab, seed=13)
    request = generator.sample_sequence(LENGTH, LENGTH, sample_idx=0)

    for name in ("fiddler", "daop"):
        engine = build_engine(name, bundle, platform,
                              expert_cache_ratio=ECR,
                              calibration_probs=calibration)
        result = engine.generate(
            request.prompt_tokens, LENGTH,
            forced_tokens=request.continuation_tokens,
        )
        print(f"\n=== {name}: "
              f"{result.stats.tokens_per_second:.2f} tok/s ===")
        print(summarize_schedule(result.timeline))

        report = diagnose(result)
        print(f"bottleneck classification: {report.classification} "
              f"({100 * report.dominant_fraction:.0f} % of the critical "
              f"path)")

        path = critical_path(result.timeline)
        breakdown = path.kind_breakdown()
        print(bar_chart(
            list(breakdown.keys()),
            [1e3 * v for v in breakdown.values()],
            width=40,
            title="critical path time by op kind (ms):",
        ))

        trace_path = f"/tmp/repro_{name}_schedule.json"
        with open(trace_path, "w") as handle:
            handle.write(timeline_to_chrome_trace(result.timeline, name))
        print(f"chrome trace: {trace_path} "
              f"(open in chrome://tracing or ui.perfetto.dev)")

    print()
    print("Expected shape: Fiddler's critical path is dominated by")
    print("expert_cpu ops that can only start after their own block's")
    print("gate; DAOP shifts that time off the path via one-layer-ahead")
    print("pre-calculation, leaving a GPU-lean schedule.")


if __name__ == "__main__":
    main()
