#!/usr/bin/env python
"""Interleave several requests on one engine with continuous batching.

The paper serves one request at a time; this example drives the engine
core's resumable step machine (``start``/``step``/``finish``) through
:class:`repro.sched.ContinuousBatchScheduler` so several sequences share
the four hardware lanes at once.  Admission is FIFO and stepping is
round-robin, so the decode of one request proceeds while the next
request's prefill is in flight.  The lane clocks are forward-only (the
substrate's FIFO list scheduling), so batching does not shrink total
lane-busy time -- what it buys is concurrency: later requests stop
waiting for earlier ones to fully finish, which collapses time to first
token and queueing delay.

Run:  python examples/continuous_batching.py
"""

from repro import build_mixtral_8x7b_sim, default_platform
from repro.core import build_engine, calibrate_activation_probs
from repro.core.engine import SequenceRequest
from repro.metrics import format_table
from repro.sched import ContinuousBatchScheduler
from repro.workloads import SHAREGPT, SequenceGenerator

N_REQUESTS = 6
PROMPT_LEN = 48
OUTPUT_LEN = 32
BATCH_SIZES = (1, 2, 4)


def main() -> None:
    bundle = build_mixtral_8x7b_sim(seed=0, n_blocks=16)
    platform = default_platform()
    calibration = calibrate_activation_probs(
        bundle, n_sequences=4, prompt_len=24, decode_len=24
    )

    generator = SequenceGenerator(SHAREGPT, bundle.vocab, seed=9)
    requests = []
    for i in range(N_REQUESTS):
        sequence = generator.sample_sequence(PROMPT_LEN, OUTPUT_LEN,
                                             sample_idx=i)
        requests.append(SequenceRequest(
            prompt_tokens=sequence.prompt_tokens,
            max_new_tokens=OUTPUT_LEN,
            forced_tokens=sequence.continuation_tokens,
            seq_id=i,
        ))

    rows = []
    for batch_size in BATCH_SIZES:
        engine = build_engine("daop", bundle, platform,
                              expert_cache_ratio=0.469,
                              calibration_probs=calibration)
        scheduler = ContinuousBatchScheduler(engine, max_batch=batch_size)
        report = scheduler.run(requests)
        rows.append([
            batch_size,
            report.makespan_s,
            report.sum_solo_makespans_s,
            f"{100 * report.overlap_ratio:.0f}%",
            report.mean_ttft_s(),
            report.mean_tpot_s(),
        ])
        print(f"served {N_REQUESTS} requests at max_batch={batch_size} ...")

    print()
    print(format_table(
        ["batch", "makespan (s)", "sum spans (s)", "overlap",
         "mean TTFT (s)", "mean TPOT (s)"],
        rows,
        title=f"DAOP continuous batching: {N_REQUESTS} requests, "
              f"in/out {PROMPT_LEN}/{OUTPUT_LEN}",
    ))
    print()
    print("Expected shape: at batch 1 the service spans tile the makespan")
    print("(overlap 0%); at batch 4 several sequences are resident at once,")
    print("so mean TTFT drops sharply while the makespan stays pinned by")
    print("the serialized lane work.  Per-sequence TPOT rises with batch")
    print("size -- the classic continuous-batching latency/concurrency")
    print("trade-off.")


if __name__ == "__main__":
    main()
