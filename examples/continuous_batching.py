#!/usr/bin/env python
"""Interleave and gather several requests on one engine.

The paper serves one request at a time; this example drives the engine
core's resumable step machine (``start``/``step``/``finish``) through
:class:`repro.sched.ContinuousBatchScheduler` so several sequences share
the four hardware lanes at once, and compares the scheduler's two
execution modes:

- ``interleaved``: round-robin of independent ``step()`` calls.  The
  lane clocks are forward-only (the substrate's FIFO list scheduling),
  so interleaving does not shrink total lane-busy time -- what it buys
  is concurrency: later requests stop waiting for earlier ones to fully
  finish, which collapses time to first token and queueing delay.
- ``gathered`` (the default): decode tokens routed to the same expert
  *across sequences* merge into one kernel launch priced by the cost
  model's batch-efficiency curves, so lane-busy time itself drops and
  decode throughput rises -- while every sequence's token stream stays
  bitwise identical to its solo run.

Run:  python examples/continuous_batching.py
"""

from repro import build_mixtral_8x7b_sim, default_platform
from repro.core import build_engine, calibrate_activation_probs
from repro.core.engine import SequenceRequest
from repro.metrics import format_table
from repro.sched import GATHERED, INTERLEAVED, ContinuousBatchScheduler
from repro.workloads import SHAREGPT, SequenceGenerator

N_REQUESTS = 6
PROMPT_LEN = 48
OUTPUT_LEN = 32
BATCH_SIZES = (1, 2, 4)


def main() -> None:
    bundle = build_mixtral_8x7b_sim(seed=0, n_blocks=16)
    platform = default_platform()
    calibration = calibrate_activation_probs(
        bundle, n_sequences=4, prompt_len=24, decode_len=24
    )

    generator = SequenceGenerator(SHAREGPT, bundle.vocab, seed=9)
    requests = []
    for i in range(N_REQUESTS):
        sequence = generator.sample_sequence(PROMPT_LEN, OUTPUT_LEN,
                                             sample_idx=i)
        requests.append(SequenceRequest(
            prompt_tokens=sequence.prompt_tokens,
            max_new_tokens=OUTPUT_LEN,
            forced_tokens=sequence.continuation_tokens,
            seq_id=i,
        ))

    rows = []
    for batch_size in BATCH_SIZES:
        for mode in (INTERLEAVED, GATHERED):
            engine = build_engine("daop", bundle, platform,
                                  expert_cache_ratio=0.469,
                                  calibration_probs=calibration)
            scheduler = ContinuousBatchScheduler(
                engine, max_batch=batch_size, mode=mode
            )
            report = scheduler.run(requests)
            rows.append([
                batch_size, mode,
                report.makespan_s,
                f"{100 * report.overlap_ratio:.0f}%",
                report.throughput_tokens_per_s,
                report.mean_ttft_s(),
                f"{report.n_expert_kernels}/{report.n_expert_ops}",
            ])
            print(f"served {N_REQUESTS} requests at "
                  f"max_batch={batch_size} ({mode}) ...")

    print()
    print(format_table(
        ["batch", "mode", "makespan (s)", "overlap", "tok/s",
         "mean TTFT (s)", "kernels/ops"],
        rows,
        title=f"DAOP continuous batching: {N_REQUESTS} requests, "
              f"in/out {PROMPT_LEN}/{OUTPUT_LEN}",
    ))
    print()
    print("Expected shape: at batch 1 the service spans tile the makespan")
    print("(overlap 0%) and both modes coincide -- one resident sequence")
    print("leaves nothing to gather.  At batch 4 interleaving collapses")
    print("mean TTFT while the makespan stays pinned by serialized lane")
    print("work; gathering additionally merges same-expert decode kernels")
    print("across sequences (kernels < ops), shrinking the makespan and")
    print("lifting decode throughput at identical token streams.")


if __name__ == "__main__":
    main()
