#!/usr/bin/env python
"""Kill/resume demo: a serving run survives process death bit-exactly.

The lifecycle stack's invariant (docs/lifecycle.md) is that pausing is
free: a simulation checkpointed between ticks, written to disk, and
restored *in a different process* finishes with exactly the report an
uninterrupted run produces.  This example demonstrates that across real
process boundaries by invoking itself three times:

1. ``reference`` — run a small serving workload to completion and
   record each served request's timing tuple;
2. ``pause`` — run the *same* workload, but stop after a few scheduler
   ticks and save a ``SimCheckpoint`` JSON to disk (then exit, as a
   killed worker would);
3. ``resume`` — a fresh process loads the checkpoint into a newly
   built simulator, drains it, and compares every served-request record
   against the reference, bitwise.

Run:  python examples/checkpoint_resume.py [--workdir DIR]
"""

import argparse
import json
import os
import subprocess
import sys

import numpy as np

from repro import build_tiny_moe, default_platform
from repro.core import build_engine, calibrate_activation_probs
from repro.serving import (
    ServingSimulator,
    load_checkpoint,
    poisson_arrivals,
    save_checkpoint,
)
from repro.workloads import SHAREGPT, SequenceGenerator
from repro.workloads.requests import RequestSpec

N_REQUESTS = 4
PROMPT_LEN = 16
OUTPUT_LEN = 8
CONCURRENCY = 2
RATE_PER_S = 0.05
PAUSE_AFTER_TICKS = 3


def build_simulator():
    """One deterministic serving simulator (same in every process)."""
    bundle = build_tiny_moe(seed=0, n_blocks=4)
    platform = default_platform()
    calibration = calibrate_activation_probs(
        bundle, n_sequences=4, prompt_len=24, decode_len=24
    )
    engine = build_engine("daop", bundle, platform,
                          expert_cache_ratio=0.469,
                          calibration_probs=calibration)
    generator = SequenceGenerator(SHAREGPT, bundle.vocab, seed=7)
    return ServingSimulator(engine, generator, concurrency=CONCURRENCY)


def build_requests(simulator):
    """The demo workload, materialized identically in every process."""
    arrivals = poisson_arrivals(RATE_PER_S, N_REQUESTS,
                                np.random.default_rng(11))
    specs = []
    for i, arrival in enumerate(np.sort(arrivals)):
        sequence = simulator.generator.sample_sequence(
            PROMPT_LEN, OUTPUT_LEN, sample_idx=i
        )
        specs.append(RequestSpec(
            request_id=i,
            arrival_s=float(arrival),
            prompt_tokens=sequence.prompt_tokens,
            output_len=OUTPUT_LEN,
            forced_tokens=sequence.continuation_tokens,
            dataset=SHAREGPT.name,
            sample_idx=i,
        ))
    return specs


def report_records(report):
    """JSON-stable per-request tuples for bitwise comparison."""
    return [
        [r.request_id, r.arrival_s, r.start_s, r.first_token_s,
         r.finish_s, r.n_prompt_tokens, r.n_generated, r.energy_j]
        for r in sorted(report.requests, key=lambda r: r.request_id)
    ]


def stage_reference(workdir):
    """Uninterrupted run; writes the reference records."""
    simulator = build_simulator()
    report = simulator.run_requests(build_requests(simulator))
    path = os.path.join(workdir, "reference.json")
    with open(path, "w") as handle:
        json.dump(report_records(report), handle)
    print(f"reference: served {report.n_requests} request(s), "
          f"records written to {path}")


def stage_pause(workdir):
    """Partial run; checkpoints mid-flight and exits like a dead worker."""
    simulator = build_simulator()
    session = simulator.begin_session(build_requests(simulator))
    for _ in range(PAUSE_AFTER_TICKS):
        simulator.tick(session)
    path = os.path.join(workdir, "serving.ckpt.json")
    save_checkpoint(path, simulator.checkpoint(session))
    print(f"pause: checkpointed after {PAUSE_AFTER_TICKS} tick(s) "
          f"to {path}; exiting mid-run")


def stage_resume(workdir):
    """Fresh process: restore, drain, and compare against the reference."""
    simulator = build_simulator()
    session = simulator.restore(
        load_checkpoint(os.path.join(workdir, "serving.ckpt.json"))
    )
    while simulator.tick(session):
        pass
    resumed = report_records(simulator.finish_session(session))
    with open(os.path.join(workdir, "reference.json")) as handle:
        reference = json.load(handle)
    if resumed != reference:
        print("FAIL: resumed run diverged from the uninterrupted run")
        return 1
    print(f"resume: {len(resumed)} served request(s) match the "
          "uninterrupted run bitwise")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", default="checkpoint_resume_demo",
                        help="where checkpoint + reference files go")
    parser.add_argument("--stage",
                        choices=("reference", "pause", "resume"),
                        default=None,
                        help="internal: run one stage in this process")
    args = parser.parse_args()
    os.makedirs(args.workdir, exist_ok=True)

    if args.stage == "reference":
        stage_reference(args.workdir)
        return 0
    if args.stage == "pause":
        stage_pause(args.workdir)
        return 0
    if args.stage == "resume":
        return stage_resume(args.workdir)

    # Orchestrate: three separate processes, so the resume really does
    # cross a process boundary (nothing shared but the files on disk).
    for stage in ("reference", "pause", "resume"):
        code = subprocess.call([
            sys.executable, os.path.abspath(__file__),
            "--workdir", args.workdir, "--stage", stage,
        ])
        if code != 0:
            return code
    print("checkpoint/kill/resume demo passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
