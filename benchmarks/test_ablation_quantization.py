"""Ablation: what quantized expert transfers cost in accuracy.

Mixtral-Offloading's speed advantage over plain on-demand migration comes
from moving ~4-bit experts instead of fp16 ones; the paper's speed/energy
tables include it but not its accuracy.  Our functional substrate lets us
measure the missing column: experts are fake-quantized
(round-to-nearest, per-channel scales) and the harness scores the result
against the full-precision oracle, alongside DAOP at the same cache
ratio.  Bootstrap intervals qualify which gaps are significant.
"""

import pytest
from conftest import run_once, scale

from repro.core import build_engine
from repro.core.baselines.official import OfficialEngine
from repro.eval.harness import AccuracyHarness
from repro.eval.significance import bootstrap_mean
from repro.metrics import format_table
from repro.model.quantization import quantize_experts
from repro.model.zoo import build_mixtral_8x7b_sim
from repro.perf import TensorCache
from repro.workloads import get_task

BITS = (8, 4, 3)
ECR = 0.25


@pytest.mark.benchmark(group="ablation")
def test_ablation_quantized_expert_accuracy(benchmark, platform,
                                            mixtral_calibration):
    n = scale(12, 4)
    task = get_task("triviaqa")

    def compute():
        # One shared cache serves every configuration; quantization
        # re-fingerprints the mutated model (via quantize_experts), so
        # full-precision and per-bit-width entries can never alias.
        cache = TensorCache(max_bytes=1024 * 1024 * 1024)
        reference_bundle = build_mixtral_8x7b_sim(seed=0, n_blocks=32)
        reference_bundle.model.attach_compute_cache(cache)
        quantized_models = []
        try:
            harness = AccuracyHarness(reference_bundle, platform, seed=3)
            out = {"official": harness.evaluate_official(task, n_samples=n)}
            daop = build_engine("daop", reference_bundle, platform, ECR,
                                mixtral_calibration)
            out["daop"] = harness.evaluate(daop, task, n_samples=n)
            for bits in BITS:
                bundle = build_mixtral_8x7b_sim(seed=0, n_blocks=32)
                quantize_experts(bundle.model, bits)
                bundle.model.attach_compute_cache(cache)
                quantized_models.append(bundle.model)
                engine = OfficialEngine(bundle, platform)
                engine.name = f"quantized-{bits}bit"
                # Scored by the same (full-precision) harness references.
                out[bits] = harness.evaluate(engine, task, n_samples=n)
            return out
        finally:
            reference_bundle.model.detach_compute_cache()
            for model in quantized_models:
                model.detach_compute_cache()

    out = run_once(benchmark, compute)
    rows = []
    for key in ("official", "daop", *BITS):
        result = out[key]
        ci = bootstrap_mean(result.per_sample, seed=1)
        label = {"official": "official fp16",
                 "daop": f"daop @ ECR {ECR:.0%}"}.get(
            key, f"{key}-bit experts")
        rows.append([label, 100 * result.score,
                     f"[{100 * ci.lower:.1f}, {100 * ci.upper:.1f}]"])
    print()
    print(format_table(
        ["configuration", "triviaqa EM (%)", "95% CI"],
        rows, title="Ablation: quantized experts vs DAOP approximations",
    ))

    # 8-bit experts are near-lossless against the fp16 oracle.
    assert out[8].score >= out["official"].score - 0.15
    # Aggressive 3-bit quantization degrades at least as much as 8-bit.
    assert out[3].score <= out[8].score + 1e-9
