"""Paper Table IV: energy efficiency (tokens/kJ), in/out 256, full GPU.

Paper values for Mixtral 8x7B: MoE-OnDemand 2.63, DeepSpeed-MII 0.59,
Mixtral-Offloading 2.13, Fiddler 10.06, DAOP 14.37; for Phi-3.5 MoE:
OnDemand 6.94, Fiddler 17.15, DAOP 27.07.  DAOP averages ~1.5x Fiddler.
"""

import pytest
from conftest import FAST, run_once, scale
from helpers import measure_engine

from repro.metrics import format_table
from repro.workloads import SHAREGPT

ENGINES = ("moe-ondemand", "deepspeed-mii", "mixtral-offloading",
           "fiddler", "daop")
PAPER_MIXTRAL = {"moe-ondemand": 2.63, "deepspeed-mii": 0.59,
                 "mixtral-offloading": 2.13, "fiddler": 10.06,
                 "daop": 14.37}
PAPER_PHI = {"moe-ondemand": 6.94, "fiddler": 17.15, "daop": 27.07}
ECR = 0.469
LENGTH = 256


def measure(bundle, platform, calibration):
    return {
        engine: measure_engine(
            engine, bundle, platform, ECR, calibration, SHAREGPT,
            scale(LENGTH, 32), scale(LENGTH, 32),
        )
        for engine in ENGINES
    }


def report(summaries, paper, model_name):
    rows = []
    for engine in ENGINES:
        s = summaries[engine]
        rows.append([
            engine, paper.get(engine, "-"), s.tokens_per_kilojoule,
            s.average_power_w,
        ])
    print()
    print(format_table(
        ["engine", "paper tok/kJ", "measured tok/kJ", "avg power (W)"],
        rows, title=f"Table IV: energy efficiency, {model_name}",
    ))


@pytest.mark.benchmark(group="table4")
def test_table4_mixtral(benchmark, mixtral, platform, mixtral_calibration):
    summaries = run_once(
        benchmark, lambda: measure(mixtral, platform, mixtral_calibration)
    )
    report(summaries, PAPER_MIXTRAL, "Mixtral 8x7B")
    eff = {e: s.tokens_per_kilojoule for e, s in summaries.items()}
    # Shape: DAOP is the most energy-efficient method evaluated.
    assert eff["daop"] == max(eff.values())
    # DAOP ~1.5x Fiddler (paper); allow a generous band.
    assert 1.15 < eff["daop"] / eff["fiddler"] < 2.2
    # The GPU-only migrating family is far below the offloaders.
    for caching in ("moe-ondemand", "deepspeed-mii", "mixtral-offloading"):
        assert eff["fiddler"] > 1.5 * eff[caching]
    # DeepSpeed-MII (no offloading mechanism at all) is the worst.
    assert eff["deepspeed-mii"] == min(eff.values())


@pytest.mark.benchmark(group="table4")
def test_table4_phi(benchmark, phi, platform, phi_calibration):
    summaries = run_once(
        benchmark, lambda: measure(phi, platform, phi_calibration)
    )
    report(summaries, PAPER_PHI, "Phi-3.5 MoE")
    eff = {e: s.tokens_per_kilojoule for e, s in summaries.items()}
    assert eff["daop"] == max(eff.values())
    # Short fast-mode sequences leave less decode to amortize prefill, so
    # the efficiency margin narrows there.
    floor = 1.05 if FAST else 1.15
    assert eff["daop"] > floor * eff["fiddler"]
