"""Paper Fig. 8: decode-stage execution timelines of the four designs.

The figure walks two consecutive transformer blocks (experts A, B
activated in the first; C, D in the second) and contrasts how
MoE-OnDemand, Pre-gated MoE, Fiddler, and DAOP schedule compute and
transfers.  This benchmark regenerates the schedules from the actual
engines on a real decode step and renders ASCII Gantt charts, then checks
the figure's qualitative orderings.
"""

import pytest
from conftest import run_once
from helpers import measure_engine

from repro.core import build_engine
from repro.metrics import format_table
from repro.workloads import SHAREGPT, SequenceGenerator

ENGINES = ("moe-ondemand", "pregated-moe", "fiddler", "daop")
ECR = 0.469


def decode_step_times(bundle, platform, calibration):
    """Per-engine mean decode-step latency plus a rendered timeline."""
    generator = SequenceGenerator(SHAREGPT, bundle.vocab, seed=8)
    sequence = generator.sample_sequence(64, 32, sample_idx=0)
    out = {}
    for name in ENGINES:
        engine = build_engine(name, bundle, platform, ECR, calibration)
        result = engine.generate(
            sequence.prompt_tokens, 32,
            forced_tokens=sequence.continuation_tokens,
        )
        step_time = result.stats.decode_time_s / result.stats.n_generated
        # Window on a slice of steady-state decode for the Gantt chart.
        t0 = result.stats.prefill_time_s + 3 * step_time
        gantt = result.timeline.render_gantt(t0, t0 + 2 * step_time,
                                             width=96)
        out[name] = (step_time, gantt)
    return out


@pytest.mark.benchmark(group="fig8")
def test_fig8_timeline(benchmark, mixtral, platform, mixtral_calibration):
    out = run_once(
        benchmark,
        lambda: decode_step_times(mixtral, platform, mixtral_calibration),
    )
    print()
    for name in ENGINES:
        step_time, gantt = out[name]
        print(f"--- {name}: ~two decode blocks "
              f"(mean step {step_time * 1e3:.1f} ms) ---")
        print(gantt)
    rows = [[name, out[name][0] * 1e3] for name in ENGINES]
    print(format_table(["engine", "decode step (ms)"], rows,
                       title="Fig. 8: decode-step latency per design"))

    t = {name: out[name][0] for name in ENGINES}
    # Fig. 8's qualitative story:
    # 1) migrating engines stall on uploads -> slowest steps;
    assert t["moe-ondemand"] > 2.0 * t["fiddler"]
    # 2) one-layer prefetch cannot hide a 40 ms transfer;
    assert t["pregated-moe"] > 1.5 * t["fiddler"]
    # 3) DAOP's pre-calculation beats Fiddler's same-block CPU start.
    assert t["daop"] < t["fiddler"]
