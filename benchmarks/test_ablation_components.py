"""Ablation: DAOP's two mechanisms, separately and together.

DESIGN.md calls out sequence-specific allocation (Alg. 1) and predictive
pre-calculation as DAOP's contributions over Fiddler.  This ablation runs
the DAOP engine with each mechanism toggled to attribute the speedup.
"""

import pytest
from conftest import FAST, run_once, scale

from repro.core import DAOPEngine
from repro.memory.cache import CacheConfig
from repro.metrics import format_table, summarize_results
from repro.workloads import SHAREGPT, SequenceGenerator

CONFIGS = (
    ("baseline (Fiddler-like)", dict(enable_seq_allocation=False,
                                     enable_precalc=False)),
    ("+ allocation only", dict(enable_seq_allocation=True,
                               enable_precalc=False)),
    ("+ pre-calculation only", dict(enable_seq_allocation=False,
                                    enable_precalc=True)),
    ("full DAOP", dict()),
)
ECR = 0.469


@pytest.mark.benchmark(group="ablation")
def test_ablation_components(benchmark, mixtral, platform,
                             mixtral_calibration):
    length = scale(128, 32)
    generator = SequenceGenerator(SHAREGPT, mixtral.vocab, seed=6)
    sequences = [generator.sample_sequence(length, length, sample_idx=i)
                 for i in range(2)]

    def compute():
        out = {}
        for name, kwargs in CONFIGS:
            engine = DAOPEngine(
                mixtral, platform, cache_config=CacheConfig(ecr=ECR),
                calibration_probs=mixtral_calibration, **kwargs,
            )
            results = [
                engine.generate(s.prompt_tokens, length,
                                forced_tokens=s.continuation_tokens)
                for s in sequences
            ]
            out[name] = summarize_results(name, results)
        return out

    out = run_once(benchmark, compute)
    rows = [[name, s.tokens_per_second, s.gpu_hit_rate,
             s.cpu_expert_execs]
            for name, s in out.items()]
    print()
    print(format_table(
        ["config", "tok/s", "gpu hit rate", "cpu execs/seq"],
        rows, title="Ablation: DAOP component attribution (Mixtral)",
    ))
    base = out["baseline (Fiddler-like)"].tokens_per_second
    alloc = out["+ allocation only"].tokens_per_second
    precalc = out["+ pre-calculation only"].tokens_per_second
    full = out["full DAOP"].tokens_per_second
    # Each mechanism helps on its own, and together they help most.
    # (Fast mode's short sequences leave prefill noise in the composition
    # comparison, so it gets a looser band.)
    composition_floor = 0.80 if FAST else 0.98
    # Regression note: with FAST's 32-token sequences, allocation-only
    # sometimes lands slightly *below* baseline (worst observed ratio
    # 0.93 across seeds 0-9) because two short sequences cannot amortize
    # the migration overhead Algorithm 1 pays up front; the residency
    # benefit it buys is asserted directly via gpu_hit_rate below.  Full
    # runs keep the strict ordering.
    allocation_floor = 0.90 if FAST else 1.0
    assert alloc > base * allocation_floor
    assert precalc > base
    assert full >= max(alloc, precalc) * composition_floor
    # Allocation works by residency, pre-calc by overlap: the hit-rate
    # gain must come from allocation.
    assert (out["+ allocation only"].gpu_hit_rate
            > out["baseline (Fiddler-like)"].gpu_hit_rate)
