"""Paper §VI-B: decode-phase expert-activation drift (15-token windows).

The paper measures activation-pattern variation during decoding with a
15-token window and finds GSM8K's consecutive-window cosine similarity
3.43 % below TriviaQA's -- the explanation for GSM8K's accuracy
sensitivity to small expert caches in Table VI.
"""

import numpy as np
from conftest import run_once, scale

from repro.core.baselines.official import OfficialEngine
from repro.metrics import format_table
from repro.trace.similarity import windowed_decode_similarity
from repro.workloads import GSM8K, TRIVIA_QA, SequenceGenerator

WINDOW = 15


def window_similarity(bundle, platform, dataset, n_sequences,
                      decode_len, seed=4):
    engine = OfficialEngine(bundle, platform)
    generator = SequenceGenerator(dataset, bundle.vocab, seed=seed)
    sims = []
    for i in range(n_sequences):
        sequence = generator.sample_sequence(48, decode_len, sample_idx=i)
        result = engine.generate(
            sequence.prompt_tokens, decode_len,
            forced_tokens=sequence.continuation_tokens,
        )
        matrices = result.trace.decode_window_matrices(WINDOW)
        sims.append(windowed_decode_similarity(matrices))
    return 100.0 * float(np.mean(sims))


def test_discussion_window_similarity(benchmark, mixtral, platform):
    n_seq = scale(6, 2)
    decode_len = scale(120, 45)

    def compute():
        return {
            "triviaqa": window_similarity(mixtral, platform, TRIVIA_QA,
                                          n_seq, decode_len),
            "gsm8k": window_similarity(mixtral, platform, GSM8K, n_seq,
                                       decode_len),
        }

    sims = run_once(benchmark, compute)
    gap = sims["triviaqa"] - sims["gsm8k"]
    rows = [
        ["TriviaQA window similarity (%)", "(higher)", sims["triviaqa"]],
        ["GSM8K window similarity (%)", "(lower)", sims["gsm8k"]],
        ["gap (percentage points)", 3.43, gap],
    ]
    print()
    print(format_table(["quantity", "paper", "measured"], rows,
                       title="§VI-B: 15-token decode-window similarity"))
    # Shape: GSM8K drifts more within a sequence than TriviaQA.
    assert sims["gsm8k"] < sims["triviaqa"]
    assert 0.5 < gap < 15.0
