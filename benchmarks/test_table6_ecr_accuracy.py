"""Paper Table VI: full-inference accuracy across expert cache ratios.

The paper evaluates TriviaQA / BBH (ExactMatch), TruthfulQA (Rouge-1/2),
and GSM8K (ExactMatch) with DAOP at ECR in {62.5, 50, 37.5, 25} % against
the official model.  Findings to reproduce in shape: accuracy stays close
to official on most tasks at every ECR, while GSM8K -- whose expert
activations drift within a sequence (§VI-B) -- degrades markedly as the
cache shrinks (58.91 -> 33.51 for Mixtral).
"""

import pytest
from conftest import FAST, run_once, scale

from repro.core import build_engine
from repro.eval.harness import AccuracyHarness
from repro.metrics import format_table
from repro.workloads import TABLE6_TASKS, get_task

ECRS = (0.625, 0.50, 0.375, 0.25)

PAPER_MIXTRAL = {
    # task -> {row: score}; rows: official, then ECRs descending
    "triviaqa": {"official": 71.59, 0.625: 70.98, 0.50: 70.60,
                 0.375: 70.13, 0.25: 69.08},
    "bbh": {"official": 49.36, 0.625: 47.63, 0.50: 47.10,
            0.375: 47.14, 0.25: 46.61},
    "truthfulqa_gen": {"official": 45.04, 0.625: 46.02, 0.50: 45.29,
                       0.375: 48.10, 0.25: 48.47},
    "gsm8k": {"official": 58.91, 0.625: 51.48, 0.50: 48.07,
              0.375: 41.77, 0.25: 33.51},
}


def evaluate(bundle, platform, calibration, n_samples):
    harness = AccuracyHarness(bundle, platform, seed=3)
    out = {}
    for task in TABLE6_TASKS:
        out[(task.name, "official")] = harness.evaluate_official(
            task, n_samples=n_samples
        )
        for ecr in ECRS:
            daop = build_engine("daop", bundle, platform, ecr, calibration)
            out[(task.name, ecr)] = harness.evaluate(
                daop, task, n_samples=n_samples
            )
    return out


def report(out, model_name):
    from repro.eval.significance import bootstrap_mean

    rows = []
    for task in TABLE6_TASKS:
        paper = PAPER_MIXTRAL.get(task.name, {})
        for key in ("official",) + ECRS:
            r = out[(task.name, key)]
            label = "official" if key == "official" else f"ECR {key:.1%}"
            ci = bootstrap_mean(r.per_sample, seed=1)
            rows.append([
                task.name, label, paper.get(key, "-"),
                100 * r.score,
                f"[{100 * ci.lower:.0f}, {100 * ci.upper:.0f}]",
                "-" if r.rouge2 is None else f"{100 * r.rouge2:.1f}",
            ])
    print()
    print(format_table(
        ["task", "config", "paper", "measured", "95% CI", "rouge-2"],
        rows, title=f"Table VI: accuracy vs ECR, {model_name}",
    ))


@pytest.mark.benchmark(group="table6")
def test_table6_mixtral(benchmark, mixtral, platform, mixtral_calibration):
    n = scale(16, 4)
    out = run_once(
        benchmark,
        lambda: evaluate(mixtral, platform, mixtral_calibration, n),
    )
    report(out, "Mixtral 8x7B")

    # Shape 1: on TriviaQA/BBH/TruthfulQA, DAOP stays close to official at
    # every ECR (paper: within a few points).
    for task_name in ("triviaqa", "bbh", "truthfulqa_gen"):
        official = out[(task_name, "official")].score
        for ecr in ECRS:
            ours = out[(task_name, ecr)].score
            assert ours >= official - 0.25, (task_name, ecr)

    # Shape 2: GSM8K is the most degradation-sensitive task at the
    # smallest cache (paper: -25.4 points at ECR 25 % vs. <= -3 on others).
    gsm_drop = (out[("gsm8k", "official")].score
                - out[("gsm8k", 0.25)].score)
    other_drops = [
        out[(t, "official")].score - out[(t, 0.25)].score
        for t in ("triviaqa", "bbh")
    ]
    assert gsm_drop >= max(other_drops) - 1e-9

    # Shape 3: official scores land in a plausible band (not saturated).
    # With fast mode's 4 samples a hard task can legitimately score 0.
    floor = -0.01 if FAST else 0.05
    for task in TABLE6_TASKS:
        assert floor < out[(task.name, "official")].score <= 1.0


@pytest.mark.benchmark(group="table6")
def test_table6_phi(benchmark, phi, platform, phi_calibration):
    """Phi rows: official 86.88 -> 74.07 on GSM8K across the same sweep."""
    n = scale(10, 4)
    task = get_task("gsm8k")
    harness = AccuracyHarness(phi, platform, seed=3)

    def compute():
        out = {"official": harness.evaluate_official(task, n_samples=n)}
        for ecr in (0.625, 0.25):
            daop = build_engine("daop", phi, platform, ecr,
                                phi_calibration)
            out[ecr] = harness.evaluate(daop, task, n_samples=n)
        return out

    out = run_once(benchmark, compute)
    rows = [["gsm8k", "official", 86.88, 100 * out["official"].score],
            ["gsm8k", "ECR 62.5%", 82.79, 100 * out[0.625].score],
            ["gsm8k", "ECR 25.0%", 74.07, 100 * out[0.25].score]]
    print()
    print(format_table(["task", "config", "paper", "measured"], rows,
                       title="Table VI (Phi-3.5 MoE, GSM8K)"))
    assert out[0.25].score <= out["official"].score + 0.25
