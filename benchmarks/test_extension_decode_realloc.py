"""Extension study: decode-phase re-allocation (paper §VI-B future work).

The paper's limitation section attributes GSM8K's accuracy sensitivity to
within-sequence activation drift that a prefill-frozen cache cannot
track, measuring the drift with a 15-token window.  The obvious fix --
re-running Algorithm 1 during decode over such a sliding window -- is
implemented as a DAOPEngine extension; this study quantifies the trade it
exposes at paper-scale expert sizes.

Finding (and the reason the paper restricts migration to prefill): the
window tracker does recover some GPU residency on drifting input, but
every decode-time upload occupies the H2D channel for ~40 ms -- the same
channel the pre-calculation activation round-trips need -- so net
throughput *drops*.  The extension only pays off where uploads are cheap
(small experts or fast links); on the paper's platform, freezing the
cache after prefill is the right call.
"""

import numpy as np
import pytest
from conftest import run_once, scale

from repro.core import DAOPEngine
from repro.memory.cache import CacheConfig
from repro.metrics import format_table, summarize_results
from repro.workloads import GSM8K, SequenceGenerator

ECR = 0.25
INTERVALS = (None, 32, 16)


@pytest.mark.benchmark(group="extension")
def test_extension_decode_realloc(benchmark, mixtral, platform,
                                  mixtral_calibration):
    length = scale(128, 48)
    drifty = GSM8K.with_overrides(drift_rate=0.08)
    generator = SequenceGenerator(drifty, mixtral.vocab, seed=46)
    sequences = [generator.sample_sequence(48, length, sample_idx=i)
                 for i in range(3)]

    def compute():
        out = {}
        for interval in INTERVALS:
            engine = DAOPEngine(
                mixtral, platform, cache_config=CacheConfig(ecr=ECR),
                calibration_probs=mixtral_calibration,
                decode_realloc_interval=interval,
            )
            results = [
                engine.generate(s.prompt_tokens, length,
                                forced_tokens=s.continuation_tokens)
                for s in sequences
            ]
            swaps = float(np.mean(
                [r.stats.counters.decode_swaps for r in results]
            ))
            out[interval] = (summarize_results(str(interval), results),
                             swaps)
        return out

    out = run_once(benchmark, compute)
    rows = []
    for interval in INTERVALS:
        summary, swaps = out[interval]
        label = "off (paper DAOP)" if interval is None else (
            f"every {interval} tokens"
        )
        rows.append([label, summary.tokens_per_second,
                     summary.gpu_hit_rate, swaps])
    print()
    print(format_table(
        ["decode re-allocation", "tok/s", "gpu hit rate",
         "decode swaps/seq"],
        rows,
        title=f"Extension: decode-phase re-allocation on drifting GSM8K "
              f"(ECR {ECR:.0%})",
    ))
    print("conclusion: residency recovers slightly but H2D contention "
          "erodes throughput -> the paper's prefill-only migration rule "
          "is justified at this expert size.")

    base_summary, base_swaps = out[None]
    ext_summary, ext_swaps = out[16]
    assert base_swaps == 0.0
    assert ext_swaps > 0.0
    # The window tracker recovers (at least does not lose) residency ...
    assert ext_summary.gpu_hit_rate >= base_summary.gpu_hit_rate - 0.01
    # ... but decode-time uploads cost throughput at 352 MB/expert: the
    # paper's prefill-only rule wins end to end.
    assert (base_summary.tokens_per_second
            >= ext_summary.tokens_per_second)
    # The cost stays bounded (uploads overlap with compute).
    assert (ext_summary.tokens_per_second
            > 0.7 * base_summary.tokens_per_second)
