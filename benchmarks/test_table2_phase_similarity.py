"""Paper Table II: prefill/decode expert-activation similarity.

The paper reports average row-wise cosine similarity (Eq. 1) between the
prefill and decode activation matrices of ~90 % (C4 90.05, MATH 90.37,
GSM8K 91.74, average 90.72) over 512 samples of the Mixtral model.  This
is observation (2): the prefill pattern predicts decode-phase expert
demand, justifying prefill-time allocation.
"""

import numpy as np
from conftest import run_once, scale

from repro.metrics import format_table
from repro.trace import ActivationTrace, matrix_similarity
from repro.workloads import C4, GSM8K, MATH, SequenceGenerator

PAPER = {"c4": 90.05, "math": 90.37, "gsm8k": 91.74}


def phase_similarity(bundle, dataset, n_sequences, prompt_len=64,
                     decode_len=64, seed=1):
    """Mean Eq.-1 similarity over sequences (exact model, no engine)."""
    model = bundle.model
    generator = SequenceGenerator(dataset, bundle.vocab, seed=seed)
    sims = []
    for i in range(n_sequences):
        sequence = generator.sample_sequence(prompt_len, decode_len,
                                             sample_idx=i)
        trace = ActivationTrace(model.n_blocks, model.n_experts)
        caches = model.new_caches()
        _, decisions = model.forward_exact(sequence.prompt_tokens, caches)
        for b, decision in enumerate(decisions):
            for t in range(decision.n_tokens):
                trace.record("prefill", b, t, decision.experts[t])
        position = sequence.prompt_tokens.size
        for token in sequence.continuation_tokens:
            _, decisions = model.forward_exact(
                np.asarray([token]), caches, start_pos=position
            )
            for b, decision in enumerate(decisions):
                trace.record("decode", b, position, decision.experts[0])
            position += 1
        sims.append(matrix_similarity(
            trace.activation_matrix("prefill"),
            trace.activation_matrix("decode"),
        ))
    return 100.0 * float(np.mean(sims))


def test_table2_phase_similarity(benchmark, mixtral):
    n_seq = scale(8, 2)

    def compute():
        return {
            spec.name: phase_similarity(mixtral, spec, n_seq)
            for spec in (C4, MATH, GSM8K)
        }

    measured = run_once(benchmark, compute)
    rows = [[name, PAPER[name], measured[name]]
            for name in ("c4", "math", "gsm8k")]
    rows.append(["average", 90.72,
                 float(np.mean(list(measured.values())))])
    print()
    print(format_table(["dataset", "paper (%)", "measured (%)"], rows,
                       title="Table II: prefill/decode similarity (Eq. 1)"))
    # Shape: high similarity (>= 85 %) on every dataset, as in the paper.
    for name, value in measured.items():
        assert value > 85.0, name
    assert float(np.mean(list(measured.values()))) > 88.0
