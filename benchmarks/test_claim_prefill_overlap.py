"""Claim check (paper §IV-B): prefill conceals migration overhead.

"We dynamically offload non-dominant experts to CPU memory for each
sequence and effectively conceal expert migration overhead during the
prefill phase."  DAOP's Algorithm 1 issues swap uploads on the H2D
channel while prefill compute continues on the GPU/CPU; the check
compares DAOP's prefill latency against the same engine with allocation
disabled -- the concealment is real if the delta is a small fraction of
the uploads' raw serial cost.
"""

import pytest
from conftest import FAST, run_once, scale

from repro.core import DAOPEngine
from repro.memory.cache import CacheConfig
from repro.metrics import format_table
from repro.workloads import SHAREGPT, SequenceGenerator

ECR = 0.469


@pytest.mark.benchmark(group="claims")
def test_claim_prefill_overlap(benchmark, mixtral, platform,
                               mixtral_calibration):
    prompt_len = scale(256, 64)
    generator = SequenceGenerator(SHAREGPT, mixtral.vocab, seed=56)
    sequences = [generator.sample_sequence(prompt_len, 8, sample_idx=i)
                 for i in range(2)]

    def compute():
        out = {}
        for alloc in (False, True):
            engine = DAOPEngine(
                mixtral, platform, cache_config=CacheConfig(ecr=ECR),
                calibration_probs=mixtral_calibration,
                enable_seq_allocation=alloc,
            )
            prefill, swaps = [], []
            for sequence in sequences:
                result = engine.generate(sequence.prompt_tokens, 8)
                prefill.append(result.stats.prefill_time_s)
                swaps.append(result.stats.counters.prefill_swaps)
            out[alloc] = (sum(prefill) / len(prefill),
                          sum(swaps) / len(swaps))
        return out

    out = run_once(benchmark, compute)
    (base_prefill, _), (alloc_prefill, n_swaps) = out[False], out[True]
    upload_cost = 0.0393  # one expert upload, seconds (paper Table I)
    serial_cost = n_swaps * upload_cost
    added = alloc_prefill - base_prefill
    concealed = 1.0 - added / serial_cost if serial_cost > 0 else 1.0
    rows = [
        ["prefill, no swaps (s)", base_prefill],
        ["prefill, Algorithm 1 (s)", alloc_prefill],
        ["swaps performed", n_swaps],
        ["raw serial upload cost (s)", serial_cost],
        ["added prefill latency (s)", added],
        ["overhead concealed", f"{100 * concealed:.0f}%"],
    ]
    print()
    print(format_table(["quantity", "value"], rows,
                       title="Claim: prefill conceals migration overhead"))

    assert n_swaps > 0
    # The concealment claim: most of the raw upload time is hidden behind
    # prefill compute.  A short fast-mode prompt offers less compute to
    # hide behind, so its band is looser.
    concealment_cap = 0.75 if FAST else 0.5
    envelope = 2.5 if FAST else 1.6
    assert added < concealment_cap * serial_cost
    # And prefill stays within a sane envelope of the no-swap baseline.
    assert alloc_prefill < envelope * base_prefill
