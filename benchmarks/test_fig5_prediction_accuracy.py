"""Paper Fig. 5: layer-wise expert-prediction accuracy one layer ahead.

Applying block ``i+1``'s gate to block ``i``'s post-attention activations
predicts the next block's top-2 experts with 84.11 % mean accuracy
(Alpaca, MATH, C4 average on Mixtral), low in the first few layers and
stable afterwards -- the justification for enabling prediction only at
``i >= 4`` (observation 3).
"""

import numpy as np
from conftest import run_once, scale

from repro.core.predictor import NextLayerPredictor
from repro.metrics import format_series, format_table
from repro.trace import PredictionStats
from repro.workloads import ALPACA, C4, MATH, SequenceGenerator


def prediction_stats(bundle, dataset, n_sequences, prompt_len=32,
                     decode_len=48, seed=2):
    """Layer-ahead accuracy during teacher-forced decode (exact model)."""
    model = bundle.model
    predictor = NextLayerPredictor(model, start_block=0)
    generator = SequenceGenerator(dataset, bundle.vocab, seed=seed)
    stats = PredictionStats(model.n_blocks)
    for i in range(n_sequences):
        sequence = generator.sample_sequence(prompt_len, decode_len,
                                             sample_idx=i)
        caches = model.new_caches()
        model.forward_exact(sequence.prompt_tokens, caches)
        position = sequence.prompt_tokens.size
        for token in sequence.continuation_tokens:
            h = model.embed(np.asarray([token]))
            positions = np.asarray([position])
            prev_h_att = None
            for b, block in enumerate(model.blocks):
                h_att = block.attention_part(h, caches[b], positions)
                decision = block.route(h_att)
                if b >= 1:
                    pred = predictor.predict(b - 1, prev_h_att)
                    stats.record(b, pred.experts, decision.experts[0])
                outs = np.stack([[
                    block.expert_forward(int(e), h_att)[0]
                    for e in decision.experts[0]
                ]])
                h = block.combine(h_att, outs, decision.weights)
                prev_h_att = h_att
            position += 1
    return stats


def test_fig5_prediction_accuracy(benchmark, mixtral):
    n_seq = scale(4, 1)

    def compute():
        stats = PredictionStats(mixtral.model.n_blocks)
        for spec in (ALPACA, MATH, C4):
            stats.merge(prediction_stats(mixtral, spec, n_seq))
        return stats

    stats = run_once(benchmark, compute)
    acc = 100.0 * stats.per_block_accuracy()
    print()
    print(format_series("per-block accuracy (%)",
                        list(range(1, mixtral.model.n_blocks)),
                        acc[1:].tolist(), x_label="block",
                        y_fmt="{:.1f}"))
    rows = [
        ["mean accuracy, blocks >= 4 (%)", 84.11,
         100.0 * stats.mean_accuracy(4)],
        ["mean accuracy, blocks 1-3 (%)", "(lower)",
         float(np.nanmean(acc[1:4]))],
    ]
    print(format_table(["quantity", "paper", "measured"], rows,
                       title="Fig. 5: layer-ahead prediction accuracy"))
    stable_pct = 100.0 * stats.mean_accuracy(4)
    early_pct = float(np.nanmean(acc[1:4]))
    # Shape: stabilized accuracy is high (paper 84.11 %)...
    assert 75.0 < stable_pct <= 100.0
    # ...and the first blocks are worse, motivating the i >= 4 rule.
    assert early_pct < stable_pct
