"""Paper Fig. 10: DAOP vs Fiddler across expert cache ratios.

Input/output length 256; ECR swept over {25, 37.5, 50, 62.5} %.  The
paper reports a consistent average improvement of 35.4 % for DAOP, with
3.23 tokens/s (Mixtral) and 5.03 tokens/s (Phi) even at ECR 25 %.
"""

import numpy as np
import pytest
from conftest import run_once, scale
from helpers import measure_engine

from repro.metrics import format_table, line_plot
from repro.perf import TensorCache
from repro.workloads import SHAREGPT

ECRS = (0.25, 0.375, 0.50, 0.625)
LENGTH = 256


def sweep(bundle, platform, calibration):
    # ECR changes placement, never values: one shared compute cache lets
    # every sweep point after the first reuse the first point's forwards.
    cache = TensorCache(max_bytes=1024 * 1024 * 1024)
    bundle.model.attach_compute_cache(cache)
    try:
        out = {}
        for ecr in ECRS:
            for engine in ("fiddler", "daop"):
                summary = measure_engine(
                    engine, bundle, platform, ecr, calibration, SHAREGPT,
                    scale(LENGTH, 32), scale(LENGTH, 32),
                )
                out[(engine, ecr)] = summary.tokens_per_second
        return out
    finally:
        bundle.model.detach_compute_cache()


def report(out, model_name, paper_at_25):
    rows = []
    improvements = []
    for ecr in ECRS:
        f = out[("fiddler", ecr)]
        d = out[("daop", ecr)]
        improvements.append(d / f - 1.0)
        rows.append([f"{ecr:.1%}", f, d, f"{100 * (d / f - 1):.1f}%"])
    print()
    print(format_table(
        ["ECR", "fiddler tok/s", "daop tok/s", "improvement"],
        rows, title=f"Fig. 10: DAOP vs Fiddler, {model_name}, "
                    f"in/out {LENGTH}",
    ))
    print(line_plot(
        list(ECRS),
        {"daop": [out[("daop", e)] for e in ECRS],
         "fiddler": [out[("fiddler", e)] for e in ECRS]},
        height=9, width=48,
        title="tokens/s vs ECR:",
    ))
    mean_impr = float(np.mean(improvements))
    print(f"average improvement: {100 * mean_impr:.1f}% "
          f"(paper: 35.4% avg across models)")
    print(f"DAOP @ ECR 25%: {out[('daop', 0.25)]:.2f} tok/s "
          f"(paper: {paper_at_25})")
    return mean_impr


@pytest.mark.benchmark(group="fig10")
def test_fig10_mixtral(benchmark, mixtral, platform, mixtral_calibration):
    out = run_once(
        benchmark, lambda: sweep(mixtral, platform, mixtral_calibration)
    )
    mean_impr = report(out, "Mixtral 8x7B", "3.23 tok/s")
    # Shape: DAOP wins at every ECR by a roughly-paper-scale margin.
    for ecr in ECRS:
        assert out[("daop", ecr)] > out[("fiddler", ecr)]
    assert 0.15 < mean_impr < 0.90
    # Both engines improve monotonically with cache size.
    for engine in ("fiddler", "daop"):
        series = [out[(engine, ecr)] for ecr in ECRS]
        assert all(b > a for a, b in zip(series, series[1:]))
    # Absolute regime at ECR 25 % (paper: 3.23 tok/s).
    assert 1.5 < out[("daop", 0.25)] < 6.5


@pytest.mark.benchmark(group="fig10")
def test_fig10_phi(benchmark, phi, platform, phi_calibration):
    out = run_once(
        benchmark, lambda: sweep(phi, platform, phi_calibration)
    )
    mean_impr = report(out, "Phi-3.5 MoE", "5.03 tok/s")
    for ecr in ECRS:
        assert out[("daop", ecr)] > out[("fiddler", ecr)]
    assert mean_impr > 0.10
    assert 3.0 < out[("daop", 0.25)] < 13.0
