"""Paper Fig. 4: layer-wise expert activation pattern on C4.

The figure shows near-uniform activation probabilities across experts when
aggregated over the dataset (experts are load-balanced in training), even
though individual sequences are strongly skewed -- the tension that makes
static caching ineffective and motivates per-sequence allocation
(observation 1).
"""

import numpy as np
from conftest import run_once, scale

from repro.metrics import format_table
from repro.workloads import C4, SequenceGenerator


def test_fig4_activation_pattern(benchmark, mixtral):
    model = mixtral.model
    n_seq = scale(16, 4)

    def compute():
        generator = SequenceGenerator(C4, mixtral.vocab, seed=2)
        dataset_counts = np.zeros((model.n_blocks, model.n_experts))
        sequence_peaks = []
        for i in range(n_seq):
            sequence = generator.sample_sequence(96, 0, sample_idx=i)
            _, decisions = model.forward_exact(sequence.prompt_tokens)
            seq_counts = np.zeros_like(dataset_counts)
            for b, decision in enumerate(decisions):
                for t in range(decision.n_tokens):
                    for e in decision.experts[t]:
                        seq_counts[b, int(e)] += 1
            dataset_counts += seq_counts
            seq_probs = seq_counts / seq_counts.sum(axis=1, keepdims=True)
            sequence_peaks.append(seq_probs.max(axis=1).mean())
        dataset_probs = dataset_counts / dataset_counts.sum(
            axis=1, keepdims=True
        )
        return dataset_probs, float(np.mean(sequence_peaks))

    dataset_probs, seq_peak = run_once(benchmark, compute)
    uniform = 1.0 / model.n_experts
    peak = dataset_probs.max(axis=1).mean()

    rows = [
        ["uniform probability", f"{uniform:.3f}", ""],
        ["dataset-level mean max expert share", f"{peak:.3f}",
         "near uniform"],
        ["per-sequence mean max expert share", f"{seq_peak:.3f}",
         "strongly skewed"],
    ]
    print()
    print(format_table(["quantity", "measured", "paper claim"], rows,
                       title="Fig. 4: C4 layer-wise activation pattern"))
    print("layer x expert activation probabilities (first 8 layers):")
    for b in range(min(8, model.n_blocks)):
        print("  L%02d " % b + " ".join(
            f"{p:.2f}" for p in dataset_probs[b]
        ))
    # Dataset-level: near-uniform (max share below 2.2x uniform).
    assert peak < 2.2 * uniform
    # Sequence-level: dominant experts (max share well above uniform).
    assert seq_peak > 1.5 * uniform
    # And sequences are more skewed than the dataset aggregate.
    assert seq_peak > peak
