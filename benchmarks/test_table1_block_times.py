"""Paper Table I: transformer-block and migration times (A100 + Xeon).

Measured with input/output length 256 during decode: CPU block 8.02 ms,
GPU block 1.24 ms, expert upload 39.87 ms, activation transition 0.02 ms.
The cost model is calibrated to land on these numbers; this benchmark
regenerates the row and checks the headline ratio (migration ~32x the GPU
block) that motivates offloading execution instead of weights.
"""

from conftest import run_once
from helpers import approx

from repro.hardware.cost_model import CostModel
from repro.hardware.presets import paper_table1_platform
from repro.metrics import format_table
from repro.model.zoo import MIXTRAL_8X7B_ARCH


def test_table1_block_times(benchmark):
    cm = CostModel(MIXTRAL_8X7B_ARCH, paper_table1_platform())

    def compute():
        return dict(
            cpu_block=cm.block_time(cm.platform.cpu, 1, 256) * 1e3,
            gpu_block=cm.block_time(cm.platform.gpu, 1, 256) * 1e3,
            upload=cm.expert_transfer_time() * 1e3,
            activation=cm.activation_transfer_time(1) * 1e3,
        )

    r = run_once(benchmark, compute)
    rows = [
        ["CPU block (ms)", 8.02, r["cpu_block"]],
        ["GPU block (ms)", 1.24, r["gpu_block"]],
        ["Expert CPU->GPU (ms)", 39.87, r["upload"]],
        ["Activation transition (ms)", 0.02, r["activation"]],
        ["upload / GPU block ratio", 32.2, r["upload"] / r["gpu_block"]],
    ]
    print()
    print(format_table(["operation", "paper", "measured"], rows,
                       title="Table I: block op / migration times",
                       float_fmt="{:.3f}"))
    assert r["cpu_block"] == approx(8.02, rel=0.15)
    assert r["gpu_block"] == approx(1.24, rel=0.15)
    assert r["upload"] == approx(39.87, rel=0.15)
    assert r["activation"] == approx(0.02, rel=0.5)
    assert 25 < r["upload"] / r["gpu_block"] < 40
