"""Ablation: DAOP's applicability boundary (paper §VI-A).

DAOP assumes (3) "CPU-GPU transfer latency exceeds the time required for
expert execution on the CPU".  This study sweeps the interconnect's
effective bandwidth: once moving an expert becomes cheaper than computing
it on the CPU, migrate-on-miss catches up with CPU-side execution and the
offloading advantage collapses -- the boundary the paper's discussion
draws for future coherent-link platforms.
"""

import dataclasses

import pytest
from conftest import run_once, scale
from helpers import measure_engine

from repro.metrics import format_table
from repro.workloads import SHAREGPT

# Effective expert-upload bandwidth multipliers over the paper's PCIe 4.0.
LINK_SCALES = (1.0, 4.0, 16.0, 64.0)
ECR = 0.375


@pytest.mark.benchmark(group="ablation")
def test_ablation_applicability_boundary(benchmark, mixtral,
                                         mixtral_calibration):
    from repro.hardware.presets import default_platform

    length = scale(96, 32)

    def compute():
        out = {}
        for scale_factor in LINK_SCALES:
            base = default_platform()
            link = dataclasses.replace(
                base.link,
                bandwidth=base.link.bandwidth * scale_factor,
                name=f"{scale_factor:.0f}x PCIe 4.0",
            )
            platform = dataclasses.replace(base, link=link)
            for engine in ("moe-ondemand", "fiddler", "daop"):
                summary = measure_engine(
                    engine, mixtral, platform, ECR, mixtral_calibration,
                    SHAREGPT, length, length,
                )
                out[(scale_factor, engine)] = summary.tokens_per_second
        return out

    out = run_once(benchmark, compute)
    rows = []
    for scale_factor in LINK_SCALES:
        ondemand = out[(scale_factor, "moe-ondemand")]
        fiddler = out[(scale_factor, "fiddler")]
        daop = out[(scale_factor, "daop")]
        rows.append([
            f"{scale_factor:.0f}x", ondemand, fiddler, daop,
            f"{daop / ondemand:.2f}x",
        ])
    print()
    print(format_table(
        ["link bandwidth", "ondemand tok/s", "fiddler tok/s",
         "daop tok/s", "daop/ondemand"],
        rows, title="Ablation: applicability vs interconnect bandwidth "
                    "(Mixtral, ECR 37.5%)",
    ))

    # On the paper's PCIe platform assumption (3) holds: a large gap.
    assert out[(1.0, "daop")] > 2.5 * out[(1.0, "moe-ondemand")]
    # With a much faster link, migrate-on-miss closes most of the gap.
    ratio_slow = out[(1.0, "daop")] / out[(1.0, "moe-ondemand")]
    ratio_fast = out[(64.0, "daop")] / out[(64.0, "moe-ondemand")]
    assert ratio_fast < 0.6 * ratio_slow
    # On-demand improves monotonically with link bandwidth.
    series = [out[(s, "moe-ondemand")] for s in LINK_SCALES]
    assert all(b > a for a, b in zip(series, series[1:]))
