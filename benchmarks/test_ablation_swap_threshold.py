"""Ablation: the SwapInOut comparison threshold (Alg. 1, line 11).

The paper fixes SwapInOut = 1.05 "to avoid unnecessary swaps when the
token counts are similar".  This ablation sweeps the threshold: at 1.0
every tie swaps (more prefill migration traffic for no residency gain);
at large values Algorithm 1 stops adapting and hit rates fall back toward
the static calibrated cache.
"""

import pytest
from conftest import run_once, scale

from repro.core import DAOPEngine
from repro.memory.cache import CacheConfig
from repro.metrics import format_table, summarize_results
from repro.perf import TensorCache
from repro.workloads import SHAREGPT, SequenceGenerator

THRESHOLDS = (1.0, 1.05, 1.5, 3.0, 100.0)
ECR = 0.375


@pytest.mark.benchmark(group="ablation")
def test_ablation_swap_threshold(benchmark, mixtral, platform,
                                 mixtral_calibration):
    length = scale(96, 32)
    generator = SequenceGenerator(SHAREGPT, mixtral.vocab, seed=16)
    sequences = [generator.sample_sequence(length, length, sample_idx=i)
                 for i in range(2)]

    def compute():
        # The threshold moves swaps, not values: prefill forwards (and any
        # decode prefix before the placements diverge) are shared across
        # the sweep through one content-addressed cache.
        mixtral.model.attach_compute_cache(
            TensorCache(max_bytes=1024 * 1024 * 1024)
        )
        try:
            out = {}
            for threshold in THRESHOLDS:
                engine = DAOPEngine(
                    mixtral, platform, cache_config=CacheConfig(ecr=ECR),
                    calibration_probs=mixtral_calibration,
                    swap_threshold=threshold,
                )
                results = [
                    engine.generate(s.prompt_tokens, length,
                                    forced_tokens=s.continuation_tokens)
                    for s in sequences
                ]
                summary = summarize_results(f"thr={threshold}", results)
                swaps = sum(r.stats.counters.prefill_swaps
                            for r in results) / len(results)
                out[threshold] = (summary, swaps)
            return out
        finally:
            mixtral.model.detach_compute_cache()

    out = run_once(benchmark, compute)
    rows = [[t, s.tokens_per_second, s.gpu_hit_rate, swaps]
            for t, (s, swaps) in out.items()]
    print()
    print(format_table(
        ["SwapInOut", "tok/s", "gpu hit rate", "prefill swaps/seq"],
        rows, title="Ablation: Algorithm 1 swap threshold (Mixtral)",
    ))
    # Swap volume decreases monotonically with the threshold.
    swap_series = [out[t][1] for t in THRESHOLDS]
    assert all(a >= b for a, b in zip(swap_series, swap_series[1:]))
    # An effectively-infinite threshold disables adaptation and loses
    # residency relative to the paper's 1.05.
    assert out[1.05][0].gpu_hit_rate > out[100.0][0].gpu_hit_rate
    # The paper's setting performs within noise of the best swept value.
    best = max(s.tokens_per_second for s, _ in out.values())
    assert out[1.05][0].tokens_per_second > 0.9 * best
