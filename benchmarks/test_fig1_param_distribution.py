"""Paper Fig. 1: parameter distribution of Mixtral 8x7B.

The figure shows that of Mixtral's 46.6 B parameters only 27.4 % are
activated per input (self-attention + 2-of-8 experts + embeddings); the
rest are inactive expert weights.  We regenerate the exact numbers from
the architecture spec.
"""

from conftest import run_once
from helpers import approx

from repro.metrics import format_table
from repro.model.zoo import MIXTRAL_8X7B_ARCH


def test_fig1_param_distribution(benchmark):
    arch = MIXTRAL_8X7B_ARCH

    def compute():
        total = arch.total_params
        active = arch.activated_params_per_token
        attention = arch.n_blocks * arch.block_non_expert_params
        active_experts = arch.n_blocks * arch.top_k * arch.expert_params
        inactive_experts = arch.n_blocks * (
            arch.n_experts - arch.top_k
        ) * arch.expert_params
        other = total - attention - active_experts - inactive_experts
        return dict(total=total, active=active, attention=attention,
                    active_experts=active_experts,
                    inactive_experts=inactive_experts, other=other)

    r = run_once(benchmark, compute)
    rows = [
        ["total parameters (B)", "46.6", r["total"] / 1e9],
        ["activated per token (%)", "27.4",
         100.0 * r["active"] / r["total"]],
        ["attention + gates (B)", "~1.3", r["attention"] / 1e9],
        ["active experts (B)", "~11.3", r["active_experts"] / 1e9],
        ["inactive experts (B)", "~33.8", r["inactive_experts"] / 1e9],
        ["embeddings + other (B)", "~0.1", r["other"] / 1e9],
    ]
    print()
    print(format_table(["quantity", "paper", "measured"], rows,
                       title="Fig. 1: Mixtral 8x7B parameter distribution"))
    assert r["total"] / 1e9 == approx(46.6)
    assert 100.0 * r["active"] / r["total"] == approx(27.4)
