"""Ablation: eviction policy of the migrate-on-miss baseline.

MoE-OnDemand evicts LRU in the paper's framing.  This ablation swaps in
LFU and calibrated-priority eviction to ask whether smarter caching alone
could close the gap to DAOP -- it cannot: at Mixtral-scale expert sizes
the 40 ms upload dominates regardless of which expert leaves, which is
the paper's core argument for not migrating at all.
"""

import pytest
from conftest import run_once, scale
from helpers import measure_engine

from repro.memory.policies import LFU, LRU, PRIORITY
from repro.metrics import format_table
from repro.workloads import SHAREGPT

ECR = 0.469


@pytest.mark.benchmark(group="ablation")
def test_ablation_eviction_policy(benchmark, mixtral, platform,
                                  mixtral_calibration):
    length = scale(96, 32)

    def compute():
        out = {}
        for policy in (LRU, LFU, PRIORITY):
            out[policy] = measure_engine(
                "moe-ondemand", mixtral, platform, ECR,
                mixtral_calibration, SHAREGPT, length, length,
                eviction_policy=policy,
            )
        out["daop"] = measure_engine(
            "daop", mixtral, platform, ECR, mixtral_calibration,
            SHAREGPT, length, length,
        )
        return out

    out = run_once(benchmark, compute)
    rows = [
        [f"moe-ondemand ({policy})", out[policy].tokens_per_second,
         out[policy].gpu_hit_rate, int(out[policy].expert_uploads)]
        for policy in (LRU, LFU, PRIORITY)
    ]
    rows.append(["daop (no migration in decode)",
                 out["daop"].tokens_per_second,
                 out["daop"].gpu_hit_rate,
                 int(out["daop"].expert_uploads)])
    print()
    print(format_table(
        ["configuration", "tok/s", "gpu hit rate", "uploads/seq"],
        rows, title="Ablation: eviction policy vs avoiding migration",
    ))

    # No eviction policy rescues migrate-on-miss: DAOP beats the best
    # policy by a wide margin (paper: >= 8x over the caching family).
    best_caching = max(out[p].tokens_per_second
                       for p in (LRU, LFU, PRIORITY))
    assert out["daop"].tokens_per_second > 3.0 * best_caching
    # Policies shuffle hit rates only modestly at this ECR.
    hit_rates = [out[p].gpu_hit_rate for p in (LRU, LFU, PRIORITY)]
    assert max(hit_rates) - min(hit_rates) < 0.25
