"""Paper Table V: accuracy on prefill-dependent tasks (first output token).

The paper scores six tasks by the first generated token and finds DAOP at
ECR 25 % indistinguishable from the official model (e.g. Mixtral MMLU
70.60 -> 70.47).  The mechanism: DAOP's prefill is mathematically exact
(Algorithm 1 moves weights, not values) and the first token involves no
decode-phase approximation, so per-sample scores match the oracle's
exactly.
"""

import pytest
from conftest import run_once, scale

from repro.core import build_engine
from repro.eval.harness import AccuracyHarness
from repro.metrics import format_table
from repro.workloads import TABLE5_TASKS

PAPER_MIXTRAL = {
    "arc_challenge": (66.96, 66.80), "hellaswag": (83.10, 84.39),
    "truthfulqa": (63.74, 63.82), "piqa": (83.60, 82.59),
    "winogrande": (81.69, 81.77), "mmlu": (70.60, 70.47),
}
PAPER_PHI = {
    "arc_challenge": (69.21, 69.25), "hellaswag": (76.77, 76.43),
    "truthfulqa": (66.64, 66.38), "piqa": (78.84, 79.00),
    "winogrande": (78.37, 78.37), "mmlu": (78.78, 78.69),
}
ECR = 0.25


def evaluate(bundle, platform, calibration, n_samples):
    harness = AccuracyHarness(bundle, platform, seed=3)
    daop = build_engine("daop", bundle, platform, ECR, calibration)
    rows = {}
    for task in TABLE5_TASKS:
        official = harness.evaluate_official(task, n_samples=n_samples)
        ours = harness.evaluate(daop, task, n_samples=n_samples)
        rows[task.name] = (official.score * 100, ours.score * 100)
    return rows


def report(rows, paper, model_name):
    table = []
    for name, (official, ours) in rows.items():
        p_off, p_ours = paper[name]
        table.append([name, p_off, p_ours, official, ours])
    print()
    print(format_table(
        ["task", "paper official", "paper DAOP@25%", "official", "DAOP@25%"],
        table, title=f"Table V: prefill-dependent accuracy, {model_name}",
    ))


@pytest.mark.benchmark(group="table5")
def test_table5_mixtral(benchmark, mixtral, platform, mixtral_calibration):
    n = scale(16, 4)
    rows = run_once(
        benchmark,
        lambda: evaluate(mixtral, platform, mixtral_calibration, n),
    )
    report(rows, PAPER_MIXTRAL, "Mixtral 8x7B")
    for name, (official, ours) in rows.items():
        # Paper's finding: no degradation on prefill-dependent tasks.
        assert ours == pytest.approx(official, abs=1e-9), name
        assert 30.0 <= official <= 100.0, name


@pytest.mark.benchmark(group="table5")
def test_table5_phi(benchmark, phi, platform, phi_calibration):
    n = scale(12, 4)
    rows = run_once(
        benchmark, lambda: evaluate(phi, platform, phi_calibration, n)
    )
    report(rows, PAPER_PHI, "Phi-3.5 MoE")
    for name, (official, ours) in rows.items():
        assert ours == pytest.approx(official, abs=1e-9), name
