"""Shared helpers for the benchmark suite."""

from __future__ import annotations

import pytest

from repro.core import build_engine
from repro.metrics import summarize_results
from repro.workloads import SequenceGenerator


def approx(value, rel=0.02):
    """Shorthand for a relative-tolerance approx assertion."""
    return pytest.approx(value, rel=rel)


def measure_engine(
    name,
    bundle,
    platform,
    ecr,
    calibration,
    dataset,
    input_len,
    output_len,
    n_sequences=1,
    seed=5,
    **engine_kwargs,
):
    """Run one engine over generated sequences; return a summary row.

    Decode inputs are teacher-forced from the dataset's continuation so
    every engine sees identical routing pressure (the paper compares
    engines on the same requests).
    """
    engine = build_engine(name, bundle, platform, expert_cache_ratio=ecr,
                          calibration_probs=calibration, **engine_kwargs)
    generator = SequenceGenerator(dataset, bundle.vocab, seed=seed)
    results = []
    for i in range(n_sequences):
        sequence = generator.sample_sequence(
            input_len, output_len, sample_idx=i
        )
        results.append(
            engine.generate(
                sequence.prompt_tokens, output_len,
                forced_tokens=sequence.continuation_tokens,
            )
        )
    return summarize_results(name, results)
