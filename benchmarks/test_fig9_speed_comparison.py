"""Paper Fig. 9: inference speed vs input/output lengths, all engines.

At full GPU memory utilization (ECR 46.9 % for the cached engines) the
paper reports, for Mixtral 8x7B, well under 1 token/s for MoE-OnDemand,
DeepSpeed-MII, and Mixtral-Offloading; Fiddler around 3.2 tokens/s; and
DAOP 4.52 tokens/s at [256, 512] (8.21 for Phi-3.5 MoE), a 40.4 % gain
over Fiddler and >= 8.2x over the caching/prefetching family.  Throughput
improves with output length as prefill amortizes.
"""

import pytest
from conftest import run_once, scale
from helpers import measure_engine

from repro.metrics import format_table
from repro.workloads import SHAREGPT

ENGINES = ("moe-ondemand", "deepspeed-mii", "mixtral-offloading",
           "fiddler", "daop")
LENGTHS = ((128, 128), (128, 256), (256, 256), (256, 512))
ECR = 0.469

PAPER_MIXTRAL_256_512 = {"daop": 4.52, "fiddler": 3.22}
PAPER_PHI_256_512 = {"daop": 8.21}


def run_grid(bundle, platform, calibration):
    grid = {}
    for engine in ENGINES:
        for input_len, output_len in LENGTHS:
            summary = measure_engine(
                engine, bundle, platform, ECR, calibration, SHAREGPT,
                scale(input_len, 32), scale(output_len, 32),
            )
            grid[(engine, input_len, output_len)] = (
                summary.tokens_per_second
            )
    return grid


def report(grid, model_name):
    rows = []
    for engine in ENGINES:
        row = [engine]
        for input_len, output_len in LENGTHS:
            row.append(grid[(engine, input_len, output_len)])
        rows.append(row)
    headers = ["engine"] + [f"[{i},{o}]" for i, o in LENGTHS]
    print()
    print(format_table(headers, rows,
                       title=f"Fig. 9: tokens/s, {model_name}, "
                             f"ECR {ECR:.1%}"))


@pytest.mark.benchmark(group="fig9")
def test_fig9_mixtral(benchmark, mixtral, platform, mixtral_calibration):
    grid = run_once(
        benchmark,
        lambda: run_grid(mixtral, platform, mixtral_calibration),
    )
    report(grid, "Mixtral 8x7B")
    daop = grid[("daop", 256, 512)]
    fiddler = grid[("fiddler", 256, 512)]
    print(f"paper: DAOP 4.52 tok/s, Fiddler ~3.22 -> measured "
          f"DAOP {daop:.2f}, Fiddler {fiddler:.2f}")

    # Shape assertions mirroring the paper's claims.
    for caching in ("moe-ondemand", "deepspeed-mii", "mixtral-offloading"):
        assert grid[(caching, 256, 512)] < 1.5, caching  # ~<1 tok/s family
        assert daop > 3.0 * grid[(caching, 256, 512)]
    assert daop > fiddler * 1.15              # DAOP wins by a clear margin
    assert 2.5 < daop < 8.0                   # right absolute regime
    # Longer outputs amortize prefill; the growing KV-cache cost partially
    # offsets this in the simulator, so assert it with tolerance rather
    # than strict monotonicity.
    for engine in ("fiddler", "daop"):
        assert grid[(engine, 128, 256)] > 0.95 * grid[(engine, 128, 128)]
        assert (grid[(engine, 256, 512)]
                > 0.95 * grid[(engine, 256, 256)])


@pytest.mark.benchmark(group="fig9")
def test_fig9_phi(benchmark, phi, platform, phi_calibration):
    grid = run_once(
        benchmark, lambda: run_grid(phi, platform, phi_calibration)
    )
    report(grid, "Phi-3.5 MoE")
    daop = grid[("daop", 256, 512)]
    fiddler = grid[("fiddler", 256, 512)]
    print(f"paper: DAOP 8.21 tok/s -> measured DAOP {daop:.2f}, "
          f"Fiddler {fiddler:.2f}")
    assert daop > fiddler
    assert 5.0 < daop < 16.0
    # Phi's smaller experts make every engine faster than on Mixtral.
    assert grid[("daop", 256, 256)] > 0
