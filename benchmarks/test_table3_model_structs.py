"""Paper Table III (+ Fig. 2): model structures and platform specs."""

from conftest import run_once
from helpers import approx

from repro.hardware.presets import NVIDIA_A6000
from repro.metrics import format_table
from repro.model.zoo import MIXTRAL_8X7B_ARCH, PHI_3_5_MOE_ARCH


def test_table3_model_structures(benchmark):
    def compute():
        rows = []
        for arch, experts_b, total_b in (
            (MIXTRAL_8X7B_ARCH, 45.1, 46.6),
            (PHI_3_5_MOE_ARCH, 40.3, 41.7),
        ):
            rows.append([
                arch.name, arch.n_blocks, arch.n_experts, arch.top_k,
                f"{arch.total_expert_params / 1e9:.1f}B (paper {experts_b}B)",
                f"{arch.total_params / 1e9:.1f}B (paper {total_b}B)",
            ])
        return rows

    rows = run_once(benchmark, compute)
    print()
    print(format_table(
        ["Model", "Blocks", "Experts", "Top-k", "Expert params", "Params"],
        rows, title="Table III: structural details",
    ))
    assert MIXTRAL_8X7B_ARCH.total_expert_params / 1e9 == approx(45.1)
    assert PHI_3_5_MOE_ARCH.total_expert_params / 1e9 == approx(40.3)


def test_fig2_a6000_specs(benchmark):
    def compute():
        return NVIDIA_A6000

    gpu = run_once(benchmark, compute)
    rows = [
        ["HBM capacity (GB)", "48", gpu.mem_capacity / 1e9],
        ["memory bandwidth (GB/s)", "768", gpu.mem_bandwidth / 1e9],
    ]
    print()
    print(format_table(["spec", "paper", "modeled"], rows,
                       title="Fig. 2: NVIDIA A6000 specifications"))
    assert gpu.mem_capacity / 1e9 == approx(48.0)
    assert gpu.mem_bandwidth / 1e9 == approx(768.0)
