"""Ablations: prediction start block and calibration-based initialization.

DESIGN.md calls out two more design choices:

- prediction enabled only for blocks ``i >= 4`` (Fig. 5 shows early-layer
  predictions are unreliable; starting later trades overlap for accuracy);
- the initial cache is calibrated on ShareGPT decode statistics rather
  than chosen uniformly (§IV-A).
"""

import pytest
from conftest import run_once, scale

from repro.core import DAOPEngine, build_engine
from repro.eval.harness import AccuracyHarness
from repro.memory.cache import CacheConfig
from repro.metrics import format_table, summarize_results
from repro.workloads import SHAREGPT, SequenceGenerator, get_task

ECR = 0.375


@pytest.mark.benchmark(group="ablation")
def test_ablation_prediction_start(benchmark, mixtral, platform,
                                   mixtral_calibration):
    length = scale(96, 32)
    generator = SequenceGenerator(SHAREGPT, mixtral.vocab, seed=26)
    sequence = generator.sample_sequence(length, length, sample_idx=0)
    task = get_task("triviaqa")
    harness = AccuracyHarness(mixtral, platform, seed=3)
    n_acc = scale(8, 4)
    starts = (0, 4, 12, 31)

    def compute():
        out = {}
        for start in starts:
            engine = DAOPEngine(
                mixtral, platform, cache_config=CacheConfig(ecr=ECR),
                calibration_probs=mixtral_calibration,
                prediction_start_block=start,
            )
            result = engine.generate(
                sequence.prompt_tokens, length,
                forced_tokens=sequence.continuation_tokens,
            )
            accuracy = harness.evaluate(engine, task, n_samples=n_acc)
            out[start] = (summarize_results(f"start={start}", [result]),
                          accuracy.score)
        return out

    out = run_once(benchmark, compute)
    rows = [[start, s.tokens_per_second, 100 * acc]
            for start, (s, acc) in out.items()]
    print()
    print(format_table(
        ["prediction start block", "tok/s", "triviaqa accuracy (%)"],
        rows, title="Ablation: prediction start block (Mixtral)",
    ))
    # Starting at the last block disables pre-calculation: slowest.
    speeds = {start: s.tokens_per_second for start, (s, _) in out.items()}
    assert speeds[31] <= min(speeds[0], speeds[4]) + 1e-9
    # The paper's start=4 keeps nearly all of start=0's speed.
    assert speeds[4] > 0.9 * speeds[0]


@pytest.mark.benchmark(group="ablation")
def test_ablation_calibrated_vs_uniform_init(benchmark, mixtral, platform,
                                             mixtral_calibration):
    length = scale(96, 32)
    generator = SequenceGenerator(SHAREGPT, mixtral.vocab, seed=36)
    sequences = [generator.sample_sequence(length, length, sample_idx=i)
                 for i in range(2)]

    def run(engine):
        results = [
            engine.generate(s.prompt_tokens, length,
                            forced_tokens=s.continuation_tokens)
            for s in sequences
        ]
        return summarize_results(engine.name, results)

    def compute():
        calibrated = build_engine("fiddler", mixtral, platform, ECR,
                                  mixtral_calibration)
        from repro.core.baselines.fiddler import FiddlerEngine

        uniform = FiddlerEngine(
            mixtral, platform,
            cache_config=CacheConfig(ecr=ECR),
            calibration_probs=None,
        )
        return run(calibrated), run(uniform)

    calibrated, uniform = run_once(benchmark, compute)
    rows = [
        ["ShareGPT-calibrated", calibrated.tokens_per_second,
         calibrated.gpu_hit_rate],
        ["flat prior", uniform.tokens_per_second, uniform.gpu_hit_rate],
    ]
    print()
    print(format_table(
        ["initial cache", "tok/s", "gpu hit rate"],
        rows, title="Ablation: cache initialization (static Fiddler)",
    ))
    # With near-balanced experts the gain is modest, but calibration must
    # not hurt -- and typically helps residency.
    assert calibrated.tokens_per_second >= 0.9 * uniform.tokens_per_second
