"""Observation deep-dive: the routing structure DAOP exploits, per dataset.

Extends the paper's Fig. 4 / Table II analysis with three structural
metrics (from :mod:`repro.trace.statistics`) measured on real decode
traces:

- per-sequence expert-load Gini (dominant experts, observation 1),
- dataset-aggregate Gini (near-balanced overall),
- decode temporal locality (what caching exploits) -- highest on
  low-drift datasets (TriviaQA), lowest on GSM8K.
"""

import numpy as np
import pytest
from conftest import run_once, scale

from repro.core.baselines.official import OfficialEngine
from repro.metrics import format_table
from repro.trace.statistics import expert_load_stats, temporal_locality
from repro.workloads import C4, GSM8K, TRIVIA_QA, SequenceGenerator

DATASETS = (TRIVIA_QA, C4, GSM8K)


@pytest.mark.benchmark(group="observations")
def test_observation_routing_structure(benchmark, mixtral, platform):
    n_seq = scale(4, 2)
    decode_len = scale(96, 32)

    def compute():
        engine = OfficialEngine(mixtral, platform)
        out = {}
        for spec in DATASETS:
            generator = SequenceGenerator(spec, mixtral.vocab, seed=66)
            seq_ginis, localities = [], []
            agg_counts = np.zeros(
                (mixtral.model.n_blocks, mixtral.model.n_experts)
            )
            for i in range(n_seq):
                sequence = generator.sample_sequence(
                    48, decode_len, sample_idx=i
                )
                result = engine.generate(
                    sequence.prompt_tokens, decode_len,
                    forced_tokens=sequence.continuation_tokens,
                )
                stats = expert_load_stats(result.trace)
                seq_ginis.append(stats["mean_gini"])
                localities.append(np.mean([
                    temporal_locality(result.trace, b)
                    for b in range(mixtral.model.n_blocks)
                ]))
                agg_counts += result.trace.activation_counts()
            from repro.trace.statistics import gini_coefficient

            agg_gini = float(np.mean(
                [gini_coefficient(row) for row in agg_counts]
            ))
            out[spec.name] = (
                float(np.mean(seq_ginis)), agg_gini,
                float(np.mean(localities)),
            )
        return out

    out = run_once(benchmark, compute)
    rows = [[name, seq_gini, agg_gini, locality]
            for name, (seq_gini, agg_gini, locality) in out.items()]
    print()
    print(format_table(
        ["dataset", "per-seq load Gini", "aggregate Gini",
         "decode locality"],
        rows, title="Routing structure per dataset (official engine)",
        float_fmt="{:.3f}",
    ))

    for name, (seq_gini, agg_gini, _) in out.items():
        # Observation 1: sequences are more skewed than the aggregate.
        assert seq_gini > agg_gini, name
    # GSM8K's drift lowers temporal locality vs TriviaQA (paper §VI-B).
    assert out["gsm8k"][2] < out["triviaqa"][2]
