"""Claim check (paper §VI-A): DAOP's advantage generalizes across GPUs.

"Most commercial GPU devices satisfy these assumptions, enabling DAOP to
provide faster and more energy-efficient inference optimization."  The
check repeats the core comparison on an RTX 4090 box (24 GB: a much
smaller cache fits) and on the A100 microbenchmark platform, asserting
the DAOP > Fiddler > migrate-on-miss ordering on each.
"""

import dataclasses

import pytest
from conftest import run_once, scale
from helpers import measure_engine

from repro.hardware.cost_model import CostModel
from repro.hardware.presets import (
    NVIDIA_RTX4090,
    default_platform,
    paper_table1_platform,
)
from repro.metrics import format_table
from repro.workloads import SHAREGPT


def rtx4090_platform():
    """A consumer box: RTX 4090 + the same i9 host."""
    base = default_platform()
    return dataclasses.replace(base, gpu=NVIDIA_RTX4090)


@pytest.mark.benchmark(group="claims")
def test_platform_generality(benchmark, mixtral, mixtral_calibration):
    length = scale(96, 32)
    platforms = {
        "A6000 + i9 (paper eval)": (default_platform(), None),
        "RTX 4090 + i9 (24 GB)": (rtx4090_platform(), None),
        "A100 + Xeon (Table I)": (paper_table1_platform(), None),
    }

    def compute():
        out = {}
        for label, (platform, _) in platforms.items():
            # Use each platform's real capacity-derived ECR (capped for
            # comparability at the paper's 46.9 %).
            slots = CostModel(mixtral.arch, platform).gpu_expert_slots()
            ecr = min(slots / (32 * 8), 0.469)
            for engine in ("moe-ondemand", "fiddler", "daop"):
                summary = measure_engine(
                    engine, mixtral, platform, ecr, mixtral_calibration,
                    SHAREGPT, length, length,
                )
                out[(label, engine)] = summary.tokens_per_second
            out[(label, "ecr")] = ecr
        return out

    out = run_once(benchmark, compute)
    rows = []
    for label in platforms:
        rows.append([
            label, f"{out[(label, 'ecr')]:.1%}",
            out[(label, "moe-ondemand")],
            out[(label, "fiddler")],
            out[(label, "daop")],
        ])
    print()
    print(format_table(
        ["platform", "ECR", "ondemand tok/s", "fiddler tok/s",
         "daop tok/s"],
        rows, title="Claim: DAOP ordering holds across platforms",
    ))

    for label in platforms:
        assert (out[(label, "daop")] > out[(label, "fiddler")]
                > out[(label, "moe-ondemand")]), label
    # The 4090's small memory (tiny ECR) widens DAOP's relative edge over
    # migrate-on-miss rather than shrinking it.
    assert out[("RTX 4090 + i9 (24 GB)", "ecr")] < 0.25
