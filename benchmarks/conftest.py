"""Shared benchmark fixtures.

Benchmarks run the full 32-block functional models.  Set
``REPRO_BENCH_FAST=1`` to shrink sequence counts/lengths for smoke runs.
"""

from __future__ import annotations

import os

import pytest

from repro.core.calibration import calibrate_activation_probs
from repro.hardware.presets import default_platform
from repro.model.zoo import build_mixtral_8x7b_sim, build_phi_3_5_moe_sim

FAST = bool(int(os.environ.get("REPRO_BENCH_FAST", "0")))


def scale(n: int, minimum: int = 1) -> int:
    """Shrink a workload knob in fast mode."""
    return max(minimum, n // 4) if FAST else n


@pytest.fixture(scope="session")
def platform():
    return default_platform()


@pytest.fixture(scope="session")
def mixtral():
    return build_mixtral_8x7b_sim(seed=0, n_blocks=32)


@pytest.fixture(scope="session")
def phi():
    return build_phi_3_5_moe_sim(seed=0, n_blocks=32)


@pytest.fixture(scope="session")
def mixtral_calibration(mixtral):
    return calibrate_activation_probs(
        mixtral, n_sequences=scale(6, 2), prompt_len=24, decode_len=24,
        seed=0,
    )


@pytest.fixture(scope="session")
def phi_calibration(phi):
    return calibrate_activation_probs(
        phi, n_sequences=scale(6, 2), prompt_len=24, decode_len=24, seed=0,
    )


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark.

    The interesting output of these benchmarks is the *simulated* metric
    (tokens/s, tokens/kJ, accuracy); wall-clock timing of the simulator
    itself is secondary, so a single round keeps the suite fast.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
