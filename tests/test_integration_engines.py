"""Cross-engine integration tests: the paper's qualitative orderings.

These run every engine on the same sequences (tiny model, real schedules)
and assert the relationships the paper's evaluation establishes:
offloading-style engines beat caching/prefetching, DAOP beats Fiddler, and
the official all-GPU engine bounds everyone.
"""

import numpy as np
import pytest

from repro.core import build_engine
from repro.metrics import summarize_results
from repro.workloads import C4, SequenceGenerator

ECR = 0.5
N_SEQ = 3
PROMPT = 24
DECODE = 16


@pytest.fixture(scope="module")
def summaries(tiny_bundle, platform, tiny_calibration, audit_result):
    gen = SequenceGenerator(C4, tiny_bundle.vocab, seed=31)
    sequences = [gen.sample_sequence(PROMPT, DECODE, sample_idx=i)
                 for i in range(N_SEQ)]
    out = {}
    for name in ("official", "moe-ondemand", "deepspeed-mii",
                 "mixtral-offloading", "fiddler", "pregated-moe", "daop"):
        engine = build_engine(name, tiny_bundle, platform, ECR,
                              tiny_calibration)
        results = []
        for s in sequences:
            result = engine.generate(s.prompt_tokens, DECODE,
                                     forced_tokens=s.continuation_tokens)
            # Audit while the engine still holds this generation's
            # placement state (the next generate() resets it).
            audit_result(engine, result, platform=platform)
            results.append(result)
        out[name] = summarize_results(name, results)
    return out


def test_official_is_fastest(summaries):
    best = summaries["official"].tokens_per_second
    for name, summary in summaries.items():
        if name != "official":
            assert summary.tokens_per_second <= best * 1.001


def test_daop_beats_fiddler(summaries):
    """The paper's headline: DAOP outperforms Fiddler (Fig. 9/10)."""
    assert (summaries["daop"].tokens_per_second
            > summaries["fiddler"].tokens_per_second)


def test_offloading_beats_caching(summaries):
    """Fiddler and DAOP beat migrate-on-miss engines (Fig. 9)."""
    for cpu_side in ("fiddler", "daop"):
        for migrating in ("moe-ondemand", "deepspeed-mii"):
            assert (summaries[cpu_side].tokens_per_second
                    > summaries[migrating].tokens_per_second)


def test_mii_is_slowest(summaries):
    """No cache at all loses to everything (Fig. 9, Table IV)."""
    mii = summaries["deepspeed-mii"].tokens_per_second
    for name, summary in summaries.items():
        if name != "deepspeed-mii":
            assert summary.tokens_per_second > mii


def test_daop_most_energy_efficient_among_offloaders(summaries):
    """Paper Table IV: DAOP tops the tokens/kJ column."""
    daop = summaries["daop"].tokens_per_kilojoule
    for name in ("moe-ondemand", "deepspeed-mii", "mixtral-offloading",
                 "fiddler", "pregated-moe"):
        assert daop > summaries[name].tokens_per_kilojoule


def test_daop_hit_rate_highest_among_cached(summaries):
    """Sequence-specific allocation lifts residency above static caches."""
    assert summaries["daop"].gpu_hit_rate > summaries["fiddler"].gpu_hit_rate


def test_fiddler_daop_do_not_upload_in_decode(summaries):
    assert summaries["fiddler"].expert_uploads == 0
    # DAOP uploads only during prefill (Algorithm 1 swaps).
    assert summaries["daop"].expert_uploads >= 0


def test_energy_breakdown_consistency(tiny_bundle, platform,
                                      tiny_calibration):
    engine = build_engine("daop", tiny_bundle, platform, ECR,
                          tiny_calibration)
    gen = SequenceGenerator(C4, tiny_bundle.vocab, seed=33)
    seq = gen.sample_sequence(16, 8, sample_idx=0)
    result = engine.generate(seq.prompt_tokens, 8)
    e = result.stats.energy
    assert e.total_j == pytest.approx(
        e.gpu_j + e.cpu_j + e.link_j + e.base_j
    )
    # Sanity: average power within physical bounds of the platform.
    peak = (platform.gpu.active_power_w + platform.cpu.active_power_w
            + platform.base_power_w + platform.link.power_w * 2)
    assert 0 < result.stats.average_power_w < peak
