"""Smoke checks that every example script is importable and well-formed.

The examples run full 16-block models (tens of seconds each), so CI-speed
tests only verify that each script compiles, exposes a ``main`` entry
point, and documents itself; the benchmark/bench_output artifacts cover
actual execution.
"""

import ast
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLE_FILES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable minimum


@pytest.mark.parametrize("path", EXAMPLE_FILES,
                         ids=[p.name for p in EXAMPLE_FILES])
def test_example_compiles(path):
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    # Module docstring present.
    assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
    # A main() function and the __main__ guard.
    functions = {node.name for node in ast.walk(tree)
                 if isinstance(node, ast.FunctionDef)}
    assert "main" in functions, f"{path.name} lacks main()"
    assert '__name__ == "__main__"' in source


@pytest.mark.parametrize("path", EXAMPLE_FILES,
                         ids=[p.name for p in EXAMPLE_FILES])
def test_example_imports_resolve(path):
    """Every repro import named by an example must actually exist."""
    import importlib

    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if not node.module.startswith("repro"):
                continue
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} missing"
                )
