"""CLI integration tests (all on the tiny model for speed)."""

import json

import pytest

from repro.cli import build_parser, main

TINY = ["--model", "tiny", "--blocks", "4", "--ecr", "0.5"]


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_info(capsys):
    assert main(["info", *TINY]) == 0
    out = capsys.readouterr().out
    assert "Tiny-MoE" in out
    assert "expert upload" in out


def test_speed(capsys):
    rc = main(["speed", *TINY, "--engines", "fiddler", "daop",
               "--input-len", "12", "--output-len", "6"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fiddler" in out and "daop" in out
    assert "tok/s" in out and "tok/kJ" in out


def test_speed_rejects_unknown_engine():
    with pytest.raises(SystemExit):
        main(["speed", *TINY, "--engines", "vllm"])


def test_accuracy(capsys):
    rc = main(["accuracy", *TINY, "--task", "piqa", "--samples", "2",
               "--engines", "daop"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "official" in out
    assert "piqa" in out


def test_observe(capsys):
    rc = main(["observe", *TINY, "--dataset", "c4", "--sequences", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "similarity" in out


def test_serve(capsys):
    rc = main(["serve", *TINY, "--engines", "daop", "--requests", "2",
               "--rate", "1.0", "--input-len", "10", "--output-len", "4"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "TTFT p50" in out


def test_bench_batch(tmp_path, capsys):
    report_path = tmp_path / "bench.json"
    rc = main(["bench-batch", *TINY, "--engines", "daop", "--requests",
               "3", "--batch-sizes", "1", "3", "--input-len", "10",
               "--output-len", "4", "--json", str(report_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "bench-batch" in out and "overlap" in out
    payload = json.loads(report_path.read_text())
    # Two batch sizes x two modes (interleaved + gathered by default).
    assert len(payload["runs"]) == 4
    by_key = {(r["max_batch"], r["mode"]): r for r in payload["runs"]}
    batched = by_key[(3, "gathered")]
    # Acceptance: batched makespan undercuts the summed service spans.
    assert batched["makespan_s"] < batched["sum_solo_makespans_s"]
    assert batched["overlap_ratio"] > 0
    # Gathered execution amortizes expert kernels across sequences.
    interleaved = by_key[(3, "interleaved")]
    assert batched["n_expert_kernels"] < batched["n_expert_ops"]
    assert interleaved["n_expert_kernels"] == interleaved["n_expert_ops"]
    comparison = {(c["engine"], c["max_batch"]): c
                  for c in payload["comparison"]}
    assert comparison[("daop", 3)]["gathered_speedup"] > 1.0


def test_trace_with_chrome_export(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    rc = main(["trace", *TINY, "--engine", "daop", "--input-len", "10",
               "--output-len", "4", "--output", str(trace_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "makespan" in out
    payload = json.loads(trace_path.read_text())
    assert payload["traceEvents"]


def test_trace_without_export(capsys):
    rc = main(["trace", *TINY, "--engine", "fiddler", "--input-len", "10",
               "--output-len", "4"])
    assert rc == 0
    assert "critical path" in capsys.readouterr().out


def test_serve_cluster(tmp_path, capsys):
    report_path = tmp_path / "cluster.json"
    rc = main(["serve-cluster", *TINY, "--replicas", "2", "--requests", "4",
               "--rate", "1.0", "--input-len", "10", "--output-len", "4",
               "--json", str(report_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "round-robin" in out and "cache-affinity" in out
    assert "goodput" in out
    payload = json.loads(report_path.read_text())
    assert payload["summary"]["served"] >= 1
    assert payload["n_replicas"] == 2


def test_serve_cluster_rejects_unknown_policy():
    with pytest.raises(SystemExit):
        main(["serve-cluster", *TINY, "--policies", "random"])


def test_audit(capsys):
    rc = main(["audit", *TINY, "--engines", "fiddler", "daop",
               "--seeds", "2", "--input-len", "10", "--output-len", "6"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "audit vs official" in out
    assert "fiddler" in out and "daop" in out
    assert "audit ok" in out


def test_audit_rejects_unknown_engine():
    with pytest.raises(SystemExit):
        main(["audit", *TINY, "--engines", "vllm"])


def test_bench_compute(tmp_path, capsys):
    report_path = tmp_path / "bench_compute.json"
    rc = main(["bench-compute", "--model", "tiny", "--blocks", "4",
               "--seeds", "1", "--input-len", "10", "--output-len", "4",
               "--sweep-len", "10", "--json", str(report_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "bench-compute" in out and "speedup" in out
    payload = json.loads(report_path.read_text())
    for section in ("differential_audit", "ecr_sweep"):
        run = payload[section]
        assert run["cold_s"] > 0 and run["warm_s"] > 0
        assert run["speedup"] == pytest.approx(
            run["cold_s"] / run["warm_s"]
        )
        assert run["cache"]["hits"] > 0
        assert run["stages_warm"]  # per-stage hit rates recorded
    assert set(payload["criteria"]) == {
        "audit_warm_speedup_ge_2x", "sweep_warm_speedup_ge_2x",
    }


def test_audit_cache_disabled(capsys):
    rc = main(["audit", *TINY, "--engines", "fiddler", "--seeds", "1",
               "--input-len", "10", "--output-len", "4", "--cache-mb", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "audit ok" in out
    assert "compute cache" not in out


def test_watch(tmp_path, capsys):
    log_path = tmp_path / "events.jsonl"
    rc = main(["watch", *TINY, "--engine", "daop", "--requests", "2",
               "--rate", "1.0", "--input-len", "10", "--output-len", "4",
               "--jsonl", str(log_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "sequence_start" in out and "sequence_finish" in out
    assert "watched 2 request(s)" in out
    lines = log_path.read_text().splitlines()
    assert lines
    kinds = {json.loads(line)["kind"] for line in lines}
    assert "engine_step" in kinds


def test_watch_kind_filter(capsys):
    rc = main(["watch", *TINY, "--engine", "fiddler", "--requests", "1",
               "--rate", "1.0", "--input-len", "10", "--output-len", "4",
               "--kinds", "sequence_finish"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "sequence_finish" in out
    assert "engine_step" not in out


def test_perf_delta_gate(tmp_path, capsys):
    baseline = {
        "runs": [{"engine": "daop", "max_batch": 4, "mode": "gathered",
                  "throughput_tokens_per_s": 100.0}],
        "comparison": [],
    }
    base_path = tmp_path / "base.json"
    base_path.write_text(json.dumps(baseline))

    assert main(["perf-delta", str(base_path), str(base_path)]) == 0
    assert "-> ok" in capsys.readouterr().out

    degraded = json.loads(base_path.read_text())
    degraded["runs"][0]["throughput_tokens_per_s"] = 80.0
    bad_path = tmp_path / "bad.json"
    bad_path.write_text(json.dumps(degraded))
    assert main(["perf-delta", str(base_path), str(bad_path)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "FAIL" in out

    # A looser threshold lets the same candidate through.
    assert main(["perf-delta", str(base_path), str(bad_path),
                 "--threshold", "0.5"]) == 0


def test_perf_delta_unreadable_input(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    good = tmp_path / "good.json"
    good.write_text(json.dumps({"runs": [], "comparison": []}))
    assert main(["perf-delta", str(good), str(missing)]) == 2
    assert "perf-delta error:" in capsys.readouterr().out


def test_scenarios_pause_resume_round_trip(tmp_path, capsys):
    scenario_args = ["scenarios", "run", "mixed-interactive-batch",
                     "--model", "tiny", "--blocks", "4", "--fast"]
    ref_dir = tmp_path / "ref"
    res_dir = tmp_path / "res"
    ckpt = tmp_path / "scenario.ckpt.json"

    assert main([*scenario_args, "--out-dir", str(ref_dir)]) == 0
    rc = main([*scenario_args, "--pause-after", "2",
               "--checkpoint-to", str(ckpt)])
    assert rc == 0
    assert "paused after 2 tick(s)" in capsys.readouterr().out
    assert ckpt.exists()
    assert main([*scenario_args, "--resume-from", str(ckpt),
                 "--out-dir", str(res_dir)]) == 0

    reference = json.loads(
        (ref_dir / "mixed-interactive-batch.json").read_text())
    resumed = json.loads(
        (res_dir / "mixed-interactive-batch.json").read_text())
    assert resumed["digest"] == reference["digest"]


def test_scenarios_lifecycle_flag_validation(capsys):
    rc = main(["scenarios", "run", "mixed-interactive-batch",
               "--model", "tiny", "--blocks", "4", "--fast",
               "--pause-after", "2"])
    assert rc == 2
    assert "--checkpoint-to" in capsys.readouterr().out
    rc = main(["scenarios", "run", "--all", "--model", "tiny",
               "--blocks", "4", "--fast", "--pause-after", "2",
               "--checkpoint-to", "/tmp/x.json"])
    assert rc == 2
