"""Unit tests for the typed simulation event bus (`repro.events`)."""

import json

import numpy as np
import pytest

from repro.core import build_engine
from repro.events import (
    EVENT_KINDS,
    ENGINE_STEP,
    SCHED_ADMIT,
    SEQUENCE_FINISH,
    SEQUENCE_START,
    EventBus,
    JsonlEventWriter,
    SimEvent,
    format_event,
)
from repro.serving import ServingSimulator, poisson_arrivals
from repro.workloads import SHAREGPT, SequenceGenerator


class TestEventBus:
    def test_emit_without_subscribers_is_free(self):
        bus = EventBus()
        assert not bus.active
        # No subscribers: the event is never built, so an unknown kind
        # is not even validated (the hot-path fast exit).
        bus.emit("definitely-not-a-kind", 0.0)
        bus.emit(ENGINE_STEP, 1.0, seq_id=3)
        # The sequence counter did not advance while unobserved.
        seen = []
        bus.subscribe(seen.append)
        bus.emit(ENGINE_STEP, 2.0)
        assert seen[0].seq == 0

    def test_emission_order_and_payload(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit(SEQUENCE_START, 0.5, seq_id=7, phase="prefill")
        bus.emit(ENGINE_STEP, 1.5, seq_id=7)
        assert [e.kind for e in seen] == [SEQUENCE_START, ENGINE_STEP]
        assert [e.seq for e in seen] == [0, 1]
        assert seen[0].time_s == 0.5
        assert seen[0].payload == {"seq_id": 7, "phase": "prefill"}

    def test_kinds_filter(self):
        bus = EventBus()
        steps, everything = [], []
        bus.subscribe(steps.append, kinds=[ENGINE_STEP])
        bus.subscribe(everything.append)
        bus.emit(SEQUENCE_START, 0.0, seq_id=1)
        bus.emit(ENGINE_STEP, 1.0, seq_id=1)
        bus.emit(SEQUENCE_FINISH, 2.0, seq_id=1)
        assert [e.kind for e in steps] == [ENGINE_STEP]
        assert len(everything) == 3

    def test_unknown_kind_rejected(self):
        bus = EventBus()
        with pytest.raises(ValueError, match="unknown event kind"):
            bus.subscribe(lambda e: None, kinds=["no-such-kind"])
        bus.subscribe(lambda e: None)
        with pytest.raises(ValueError, match="unknown event kind"):
            bus.emit("no-such-kind", 0.0)

    def test_unsubscribe_removes_every_registration(self):
        bus = EventBus()
        seen = []
        callback = seen.append
        bus.subscribe(callback)
        bus.subscribe(callback, kinds=[ENGINE_STEP])
        assert bus.active
        bus.unsubscribe(callback)
        assert not bus.active
        bus.unsubscribe(callback)  # no-op on an absent callback
        bus.emit(ENGINE_STEP, 0.0)
        assert seen == []

    def test_event_to_dict_is_flat(self):
        event = SimEvent(kind=SCHED_ADMIT, time_s=2.0, seq=4,
                         payload={"seq_id": 9, "n_active": 2})
        assert event.to_dict() == {
            "kind": SCHED_ADMIT, "time_s": 2.0, "seq": 4,
            "seq_id": 9, "n_active": 2,
        }

    def test_every_registered_kind_emits(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        for kind in EVENT_KINDS:
            bus.emit(kind, 0.0)
        assert [e.kind for e in seen] == list(EVENT_KINDS)


class TestJsonlEventWriter:
    def test_writes_one_sorted_json_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus()
        with JsonlEventWriter(str(path)) as writer:
            bus.subscribe(writer)
            bus.emit(SEQUENCE_START, 0.25, seq_id=1)
            bus.emit(ENGINE_STEP, 0.5, seq_id=1)
            assert writer.n_written == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == SEQUENCE_START
        assert first["seq_id"] == 1
        # Keys are sorted, so the log is byte-stable.
        assert lines[0] == json.dumps(first, sort_keys=True)

    def test_close_is_idempotent(self, tmp_path):
        writer = JsonlEventWriter(str(tmp_path / "e.jsonl"))
        writer.close()
        writer.close()


def test_format_event_renders_kind_and_sorted_payload():
    line = format_event(SimEvent(kind=ENGINE_STEP, time_s=1.5, seq=0,
                                 payload={"seq_id": 2, "block": 1}))
    assert ENGINE_STEP in line
    assert "1.5000s" in line
    assert line.index("block=1") < line.index("seq_id=2")


class TestServingObservation:
    """The bus on a live simulator: deterministic and effect-free."""

    def _simulator(self, tiny_bundle, platform, tiny_calibration):
        engine = build_engine("fiddler", tiny_bundle, platform, 0.5,
                              tiny_calibration)
        generator = SequenceGenerator(SHAREGPT, tiny_bundle.vocab, seed=7)
        return ServingSimulator(engine, generator, concurrency=2)

    def _run(self, simulator, subscribe):
        seen = []
        if subscribe:
            simulator.events.subscribe(seen.append)
        arrivals = poisson_arrivals(0.05, 3, np.random.default_rng(5))
        report = simulator.run(arrivals, 10, 4)
        records = [
            (r.request_id, r.arrival_s, r.start_s, r.first_token_s,
             r.finish_s, r.n_generated, r.energy_j)
            for r in report.requests
        ]
        return records, [(e.kind, e.time_s, e.seq, tuple(sorted(
            e.payload.items()))) for e in seen]

    def test_observation_is_free_and_deterministic(
            self, tiny_bundle, platform, tiny_calibration):
        blind, no_events = self._run(
            self._simulator(tiny_bundle, platform, tiny_calibration),
            subscribe=False)
        assert no_events == []
        watched_a, events_a = self._run(
            self._simulator(tiny_bundle, platform, tiny_calibration),
            subscribe=True)
        watched_b, events_b = self._run(
            self._simulator(tiny_bundle, platform, tiny_calibration),
            subscribe=True)
        # Subscribing changes nothing about the simulation...
        assert watched_a == blind
        # ...and the stream itself is deterministic.
        assert events_a == events_b
        kinds = {kind for kind, *_ in events_a}
        assert {SEQUENCE_START, ENGINE_STEP, SEQUENCE_FINISH,
                SCHED_ADMIT} <= kinds
        assert len(events_a) > len(blind)
