"""Unit tests for cluster routing policies (no engines involved)."""

from collections import deque

import numpy as np
import pytest

from repro.cluster import (
    POLICIES,
    POLICY_NAMES,
    CacheAffinityPolicy,
    JoinShortestQueuePolicy,
    ReplicaState,
    RequestInfo,
    RoundRobinPolicy,
    build_policy,
    least_loaded,
)


def request(request_id=0, fingerprint=None):
    """A RequestInfo with an optional (2, 2) fingerprint."""
    if fingerprint is not None:
        fingerprint = np.asarray(fingerprint, dtype=np.float64)
    return RequestInfo(request_id=request_id, arrival_s=0.0,
                       sample_idx=request_id, fingerprint=fingerprint)


def fleet(*backlogs):
    """Replica states with the given queue lengths (all idle)."""
    replicas = []
    for backlog in backlogs:
        replica = ReplicaState()
        replica.queue = deque(range(backlog))
        replicas.append(replica)
    return replicas


class TestRegistry:
    def test_names_cover_all_policies(self):
        assert set(POLICY_NAMES) == set(POLICIES)
        assert POLICY_NAMES == tuple(sorted(POLICY_NAMES))

    def test_build_policy(self):
        assert isinstance(build_policy("round-robin"), RoundRobinPolicy)
        affinity = build_policy("cache-affinity", load_slack=5)
        assert affinity.load_slack == 5
        with pytest.raises(ValueError):
            build_policy("random")

    def test_reset_validation(self):
        with pytest.raises(ValueError):
            RoundRobinPolicy().reset(0)


class TestRoundRobin:
    def test_cycles_regardless_of_load(self):
        policy = RoundRobinPolicy()
        policy.reset(3)
        replicas = fleet(9, 0, 0)
        picks = [policy.select(request(i), replicas) for i in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]


class TestJoinShortestQueue:
    def test_least_loaded_counts_in_service(self):
        replicas = fleet(1, 1)
        replicas[1].in_service = 42
        assert least_loaded(replicas) == 0

    def test_picks_min_backlog_ties_to_lowest(self):
        policy = JoinShortestQueuePolicy()
        policy.reset(3)
        assert policy.select(request(), fleet(2, 0, 1)) == 1
        assert policy.select(request(), fleet(1, 1, 1)) == 0


class TestCacheAffinity:
    A = [[4.0, 0.0], [4.0, 0.0]]   # cluster A: experts 0 everywhere
    B = [[0.0, 4.0], [0.0, 4.0]]   # cluster B: experts 1 everywhere

    def warmed(self):
        """A 2-replica policy seeded with one A and one B request."""
        policy = CacheAffinityPolicy()
        policy.reset(2)
        policy.observe(0, request(0, self.A))
        policy.observe(1, request(1, self.B))
        return policy

    def test_cold_start_fills_every_replica_first(self):
        policy = CacheAffinityPolicy()
        policy.reset(2)
        replicas = fleet(0, 0)
        first = policy.select(request(0, self.A), replicas)
        assert first == 0  # least-loaded, lowest index
        policy.observe(first, request(0, self.A))
        # Replica 1 is still cold, so even an A-like request goes there.
        assert policy.select(request(1, self.A), replicas) == 1

    def test_routes_by_similarity_when_warm(self):
        policy = self.warmed()
        replicas = fleet(0, 0)
        assert policy.select(request(2, self.A), replicas) == 0
        assert policy.select(request(3, self.B), replicas) == 1

    def test_similarity_values(self):
        policy = self.warmed()
        assert policy.similarity(0, request(9, self.A)) == pytest.approx(1.0)
        assert policy.similarity(1, request(9, self.A)) == pytest.approx(0.0)

    def test_centroid_is_running_mean(self):
        policy = self.warmed()
        policy.observe(0, request(2, self.B))
        np.testing.assert_allclose(policy.centroid(0),
                                   [2.0, 2.0, 2.0, 2.0])

    def test_load_fallback_when_favorite_overloaded(self):
        policy = self.warmed()
        assert policy.load_slack == 2
        # Backlog lead of exactly load_slack: affinity still wins.
        assert policy.select(request(4, self.A), fleet(2, 0)) == 0
        # One more and the request falls back to least-loaded.
        assert policy.select(request(5, self.A), fleet(3, 0)) == 1

    def test_load_slack_validation(self):
        with pytest.raises(ValueError):
            CacheAffinityPolicy(load_slack=-1)
