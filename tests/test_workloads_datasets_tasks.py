"""Unit tests for dataset and task presets."""

import pytest

from repro.workloads.datasets import ALL_DATASETS, C4, DatasetSpec, get_dataset
from repro.workloads.tasks import (
    TABLE5_TASKS,
    TABLE6_TASKS,
    TaskSpec,
    get_task,
)


def test_all_paper_datasets_present():
    for name in ("c4", "math", "gsm8k", "triviaqa", "alpaca", "sharegpt",
                 "hellaswag", "arc_easy", "arc_challenge", "piqa",
                 "winogrande", "truthfulqa", "mmlu", "bbh"):
        assert name in ALL_DATASETS


def test_get_dataset():
    assert get_dataset("c4") is C4
    with pytest.raises(KeyError):
        get_dataset("imagenet")


def test_spec_validation():
    with pytest.raises(ValueError):
        DatasetSpec("bad", n_active_topics=0)
    with pytest.raises(ValueError):
        DatasetSpec("bad", drift_rate=1.5)
    with pytest.raises(ValueError):
        DatasetSpec("bad", concentration=0.0)


def test_with_overrides():
    spec = C4.with_overrides(drift_rate=0.5)
    assert spec.drift_rate == 0.5
    assert spec.name == C4.name
    assert C4.drift_rate != 0.5  # original untouched


def test_table5_tasks_are_first_token():
    assert len(TABLE5_TASKS) == 6
    assert all(t.metric == "first_token" for t in TABLE5_TASKS)
    assert all(t.answer_len == 1 for t in TABLE5_TASKS)


def test_table6_tasks_cover_paper_columns():
    names = {t.name for t in TABLE6_TASKS}
    assert {"triviaqa", "bbh", "truthfulqa_gen", "gsm8k"} <= names
    gsm = get_task("gsm8k")
    assert gsm.metric == "exact_match"
    assert get_task("truthfulqa_gen").metric == "rouge"


def test_task_validation():
    with pytest.raises(ValueError):
        TaskSpec("bad", C4, prompt_len=8, answer_len=1, metric="bleu")
    with pytest.raises(ValueError):
        TaskSpec("bad", C4, prompt_len=0, answer_len=1, metric="rouge")
    with pytest.raises(ValueError):
        TaskSpec("bad", C4, prompt_len=8, answer_len=1, metric="rouge",
                 n_samples=0)


def test_get_task_unknown():
    with pytest.raises(KeyError):
        get_task("nonexistent")
