"""Unit tests for the event-driven timeline."""

import pytest

from repro.hardware.timeline import CPU, D2H, GPU, H2D, Op, Timeline


def test_fifo_on_one_resource():
    tl = Timeline()
    a = tl.add(GPU, 1.0)
    b = tl.add(GPU, 2.0)
    assert a.start == 0.0 and a.end == 1.0
    assert b.start == 1.0 and b.end == 3.0


def test_parallel_resources():
    tl = Timeline()
    a = tl.add(GPU, 1.0)
    b = tl.add(CPU, 1.0)
    assert a.start == b.start == 0.0
    assert tl.makespan == 1.0


def test_dependency_across_resources():
    tl = Timeline()
    a = tl.add(GPU, 2.0)
    b = tl.add(CPU, 1.0, deps=[a])
    assert b.start == 2.0
    assert tl.makespan == 3.0


def test_dependency_and_fifo_interact():
    tl = Timeline()
    gpu1 = tl.add(GPU, 5.0)
    cpu1 = tl.add(CPU, 1.0)
    # Depends on cpu1 (ends 1.0) but GPU is busy until 5.0.
    gpu2 = tl.add(GPU, 1.0, deps=[cpu1])
    assert gpu2.start == 5.0


def test_transfer_channels_independent():
    tl = Timeline()
    up = tl.add(H2D, 3.0)
    down = tl.add(D2H, 3.0)
    assert up.start == down.start == 0.0


def test_barrier():
    tl = Timeline()
    a = tl.add(GPU, 1.0)
    b = tl.add(CPU, 4.0)
    assert tl.barrier([a, b]) == 4.0
    assert tl.barrier([]) == 0.0


def test_busy_time_and_utilization():
    tl = Timeline()
    tl.add(GPU, 1.0)
    tl.add(GPU, 1.0)
    tl.add(CPU, 4.0)
    assert tl.busy_time(GPU) == pytest.approx(2.0)
    assert tl.utilization(GPU) == pytest.approx(0.5)
    assert tl.utilization(CPU) == pytest.approx(1.0)


def test_empty_timeline():
    tl = Timeline()
    assert tl.makespan == 0.0
    assert tl.utilization(GPU) == 0.0


def test_unknown_resource_rejected():
    tl = Timeline()
    with pytest.raises(ValueError):
        tl.add("tpu", 1.0)


def test_negative_duration_rejected():
    tl = Timeline()
    with pytest.raises(ValueError):
        tl.add(GPU, -1.0)


def test_window_query():
    tl = Timeline()
    a = tl.add(GPU, 1.0)
    b = tl.add(GPU, 1.0)
    c = tl.add(GPU, 1.0)
    inside = tl.window(0.5, 1.5)
    assert a in inside and b in inside and c not in inside


def test_zero_duration_op_allowed():
    tl = Timeline()
    a = tl.add(GPU, 1.0)
    sync = tl.add(GPU, 0.0, deps=[a])
    assert sync.start == sync.end == 1.0


def test_render_gantt_contains_rows():
    tl = Timeline()
    tl.add(GPU, 1.0, label="attn")
    tl.add(CPU, 2.0, label="expert")
    art = tl.render_gantt(width=40)
    assert " gpu |" in art
    assert " cpu |" in art
    assert "A" in art  # attn glyph
    assert "E" in art  # expert glyph


def test_clock_hold_is_forward_only():
    tl = Timeline()
    clock = tl.clock
    clock.hold(GPU, 2.5)
    assert clock.free[GPU] == 2.5
    # Holding to an earlier time never rewinds the lane.
    clock.hold(GPU, 1.0)
    assert clock.free[GPU] == 2.5
    op = tl.add(GPU, 1.0)
    assert op.start == 2.5 and op.end == 3.5


def test_clock_hold_rejects_unknown_resource():
    tl = Timeline()
    with pytest.raises(ValueError):
        tl.clock.hold("tpu", 1.0)
