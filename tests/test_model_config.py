"""Unit tests for configuration dataclasses."""

import pytest

from repro.model.config import ArchSpec, ModelProfile, SimSpec
from repro.model.zoo import MIXTRAL_8X7B_ARCH


def make_arch(**kw):
    base = dict(name="m", d_model=64, n_heads=4, n_kv_heads=2, d_ff=128,
                n_blocks=4, n_experts=8, top_k=2, vocab_size=100)
    base.update(kw)
    return ArchSpec(**base)


class TestArchSpec:
    def test_head_dim(self):
        assert make_arch().head_dim == 16

    def test_kv_head_divisibility(self):
        with pytest.raises(ValueError):
            make_arch(n_heads=4, n_kv_heads=3)

    def test_top_k_bounds(self):
        with pytest.raises(ValueError):
            make_arch(top_k=0)
        with pytest.raises(ValueError):
            make_arch(top_k=9)

    def test_param_identities(self):
        arch = make_arch()
        assert arch.expert_params == 3 * 64 * 128
        assert arch.block_params == (
            arch.block_non_expert_params + 8 * arch.expert_params
        )
        assert arch.total_expert_params == 4 * 8 * arch.expert_params
        # Activated < total whenever top_k < n_experts.
        assert arch.activated_params_per_token < arch.total_params
        assert 0 < arch.activated_fraction < 1

    def test_byte_sizes(self):
        arch = make_arch(dtype_bytes=2)
        assert arch.expert_bytes == arch.expert_params * 2
        assert arch.hidden_state_bytes == 64 * 2
        assert arch.kv_bytes_per_token_per_block == 2 * 2 * 16 * 2

    def test_mixtral_consistency(self):
        arch = MIXTRAL_8X7B_ARCH
        # Total = embeddings + blocks + final norm exactly.
        total = (arch.embedding_params + arch.n_blocks * arch.block_params
                 + arch.d_model)
        assert arch.total_params == total


class TestSimSpec:
    def test_defaults_valid(self):
        sim = SimSpec()
        assert sim.head_dim * sim.n_heads == sim.d_model

    def test_validation(self):
        with pytest.raises(ValueError):
            SimSpec(n_heads=4, n_kv_heads=3)
        with pytest.raises(ValueError):
            SimSpec(d_model=65, n_heads=4, n_kv_heads=2)


class TestModelProfile:
    def test_from_arch_defaults(self):
        arch = make_arch()
        profile = ModelProfile.from_arch(arch)
        assert profile.n_blocks == arch.n_blocks
        assert profile.n_experts == arch.n_experts
        assert profile.top_k == arch.top_k

    def test_shrunken_blocks(self):
        profile = ModelProfile.from_arch(make_arch(), n_blocks=2)
        assert profile.n_blocks == 2
        assert profile.arch.n_blocks == 4  # arch untouched

    def test_validation(self):
        arch = make_arch()
        with pytest.raises(ValueError):
            ModelProfile.from_arch(arch, n_blocks=0)
        with pytest.raises(ValueError):
            ModelProfile(arch=arch, sim=SimSpec(), n_blocks=2,
                         n_experts=4, top_k=5)
