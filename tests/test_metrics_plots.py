"""Unit tests for ASCII plots."""

import pytest

from repro.metrics.plots import bar_chart, line_plot, sparkline


class TestBarChart:
    def test_basic(self):
        art = bar_chart(["daop", "fiddler"], [4.5, 3.0], width=20,
                        title="speed")
        lines = art.splitlines()
        assert lines[0] == "speed"
        assert "daop" in lines[1] and "4.50" in lines[1]
        # Longest bar belongs to the largest value.
        assert lines[1].count("#") > lines[2].count("#")

    def test_proportionality(self):
        art = bar_chart(["a", "b"], [10.0, 5.0], width=40)
        rows = art.splitlines()
        assert rows[0].count("#") == 40
        assert rows[1].count("#") == 20

    def test_zero_and_negative_safe(self):
        art = bar_chart(["x", "y"], [0.0, 1.0])
        assert art.splitlines()[0].count("#") == 0

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], [], title="t") == "t"


class TestLinePlot:
    def test_glyphs_present(self):
        art = line_plot([0, 1, 2], {"daop": [1, 2, 3],
                                    "fiddler": [3, 2, 1]})
        assert "D" in art and "F" in art
        assert "x: 0 .. 2" in art

    def test_constant_series_safe(self):
        art = line_plot([0, 1], {"flat": [2.0, 2.0]})
        assert "F" in art

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            line_plot([0, 1], {"s": [1.0]})

    def test_empty(self):
        assert line_plot([], {}, title="t") == "t"


class TestSparkline:
    def test_monotone(self):
        art = sparkline([1, 2, 3, 4])
        assert len(art) == 4
        assert art[0] == "▁" and art[-1] == "█"

    def test_constant(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""
