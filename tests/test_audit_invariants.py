"""Unit tests for the post-hoc invariant auditor (repro.audit.invariants)."""

import numpy as np
import pytest

from repro.audit import (
    AuditReport,
    audit_generation,
    check_divergence_provenance,
    check_pending_uploads_resident,
    check_prefill_only_migration,
    check_timeline_causality,
    expects_prefill_only_uploads,
)
from repro.core import ENGINE_NAMES, build_engine
from repro.workloads import C4, SequenceGenerator

PROMPT = 12
DECODE = 6


@pytest.fixture(scope="module")
def prompt(tiny_bundle):
    gen = SequenceGenerator(C4, tiny_bundle.vocab, seed=5)
    return gen.sample_sequence(PROMPT, DECODE, sample_idx=0).prompt_tokens


def generate(name, tiny_bundle, platform, tiny_calibration, prompt):
    engine = build_engine(name, tiny_bundle, platform, 0.5,
                          tiny_calibration)
    return engine, engine.generate(prompt, DECODE)


@pytest.mark.parametrize("name", ENGINE_NAMES)
def test_every_engine_audits_clean(name, tiny_bundle, platform,
                                   tiny_calibration, prompt):
    engine, result = generate(name, tiny_bundle, platform,
                              tiny_calibration, prompt)
    report = audit_generation(engine, result, platform=platform)
    assert report.ok, report.format()
    assert {"timeline-causality", "counter-conservation",
            "energy-consistency", "divergence-provenance",
            "upload-placement"} <= set(report.checks_run)


def test_counter_corruption_detected(tiny_bundle, platform,
                                     tiny_calibration, prompt):
    engine, result = generate("official", tiny_bundle, platform,
                              tiny_calibration, prompt)
    result.stats.counters.gpu_expert_execs += 1
    report = audit_generation(engine, result)
    assert not report.ok
    assert any(v.check == "counter-conservation"
               for v in report.violations)


def test_causality_corruption_detected(tiny_bundle, platform,
                                       tiny_calibration, prompt):
    engine, result = generate("official", tiny_bundle, platform,
                              tiny_calibration, prompt)
    # Pull a mid-timeline op back before its dependencies finished.
    victim = next(op for op in result.timeline.ops if op.dep_indices)
    victim.start = -1.0
    victim.end = victim.start + victim.duration
    report = AuditReport(engine="doctored")
    check_timeline_causality(result, report)
    assert not report.ok


def test_lane_overlap_detected(tiny_bundle, platform, tiny_calibration,
                               prompt):
    engine, result = generate("official", tiny_bundle, platform,
                              tiny_calibration, prompt)
    gpu_ops = result.timeline.ops_on("gpu")
    # Stretch one op over its lane successor without moving anyone else.
    gpu_ops[0].duration = gpu_ops[-1].end + 1.0
    gpu_ops[0].end = gpu_ops[0].start + gpu_ops[0].duration
    report = AuditReport(engine="doctored")
    check_timeline_causality(result, report)
    assert any("overlap" in v.message for v in report.violations)


def test_unattributed_divergence_detected(tiny_bundle, platform,
                                          tiny_calibration, prompt):
    engine, result = generate("official", tiny_bundle, platform,
                              tiny_calibration, prompt)
    result.trace.record("decode", 0, 99, [0, 1],
                        executed_experts=[2, 3], predicted=False)
    report = AuditReport(engine="doctored")
    check_divergence_provenance(result, report)
    assert any(v.check == "divergence-provenance"
               for v in report.violations)


def test_prefill_phase_prediction_detected(tiny_bundle, platform,
                                           tiny_calibration, prompt):
    engine, result = generate("official", tiny_bundle, platform,
                              tiny_calibration, prompt)
    result.trace.record("prefill", 0, 0, [0, 1], predicted=True)
    report = AuditReport(engine="doctored")
    check_divergence_provenance(result, report)
    assert any("prefill" in v.message for v in report.violations)


def test_decode_upload_flagged_when_prefill_only_promised(
        tiny_bundle, platform, tiny_calibration, prompt):
    """moe-ondemand uploads in decode: fine for it, a violation under
    the prefill-only contract DAOP/official/fiddler promise."""
    engine, result = generate("moe-ondemand", tiny_bundle, platform,
                              tiny_calibration, prompt)
    assert audit_generation(engine, result).ok
    decode_uploads = [
        op for op in result.timeline.ops
        if op.kind == "expert_upload"
        and op.start > result.stats.prefill_time_s
    ]
    assert decode_uploads, "fixture lost its decode-upload behavior"
    report = AuditReport(engine="moe-ondemand")
    check_prefill_only_migration(result, report)
    assert not report.ok


def test_expects_prefill_only_uploads_mapping(tiny_bundle, platform,
                                              tiny_calibration):
    expectations = {
        "official": True, "fiddler": True, "daop": True,
        "moe-ondemand": False, "deepspeed-mii": False,
        "mixtral-offloading": False, "moe-infinity": False,
        "pregated-moe": False,
    }
    for name, expected in expectations.items():
        engine = build_engine(name, tiny_bundle, platform, 0.5,
                              tiny_calibration)
        assert expects_prefill_only_uploads(engine) is expected, name
    from repro.core.daop import DAOPEngine
    from repro.memory.cache import CacheConfig

    realloc = DAOPEngine(tiny_bundle, platform,
                         cache_config=CacheConfig(ecr=0.5),
                         calibration_probs=tiny_calibration,
                         decode_realloc_interval=4)
    assert expects_prefill_only_uploads(realloc) is False


def test_stale_pending_upload_detected():
    class FakePlacement:
        def is_on_gpu(self, block, expert):
            return False

    class FakeEngine:
        pending_upload_keys = ((0, 3),)
        placement = FakePlacement()

    report = AuditReport(engine="fake")
    check_pending_uploads_resident(FakeEngine(), report)
    assert not report.ok
    assert "E3@B0" in report.violations[0].format()


def test_engines_without_pending_uploads_skip_the_check():
    report = AuditReport(engine="plain")
    check_pending_uploads_resident(object(), report)
    assert report.ok
    assert "pending-uploads-resident" in report.checks_run


def test_report_format_mentions_engine_and_violations():
    report = AuditReport(engine="x")
    report.checks_run.append("some-check")
    report.add("some-check", "broken thing")
    text = report.format()
    assert "audit[x]" in text
    assert "broken thing" in text


def test_energy_corruption_detected(tiny_bundle, platform,
                                    tiny_calibration, prompt):
    engine, result = generate("official", tiny_bundle, platform,
                              tiny_calibration, prompt)
    result.stats.total_time_s = result.stats.total_time_s * 2.0
    report = audit_generation(engine, result)
    assert any(v.check == "energy-consistency"
               for v in report.violations)


def test_daop_predictions_survive_audit(tiny_bundle, platform,
                                        tiny_calibration, prompt):
    """DAOP's predicted events (executed != selected) are not violations."""
    engine, result = generate("daop", tiny_bundle, platform,
                              tiny_calibration, prompt)
    predicted = [e for e in result.trace.events if e.predicted]
    assert predicted, "DAOP run recorded no predicted events"
    report = audit_generation(engine, result, platform=platform)
    assert report.ok, report.format()


def test_audit_is_pure(tiny_bundle, platform, tiny_calibration, prompt):
    """Auditing twice gives the same verdict and mutates nothing."""
    engine, result = generate("daop", tiny_bundle, platform,
                              tiny_calibration, prompt)
    tokens_before = np.array(result.tokens, copy=True)
    first = audit_generation(engine, result, platform=platform)
    second = audit_generation(engine, result, platform=platform)
    assert first.ok and second.ok
    assert first.checks_run == second.checks_run
    np.testing.assert_array_equal(result.tokens, tokens_before)
