"""Unit tests for timeline analysis and bottleneck diagnosis."""

import pytest

from repro.analysis import (
    CPU_BOUND,
    GPU_BOUND,
    TRANSFER_BOUND,
    attribution_report,
    critical_path,
    diagnose,
    summarize_schedule,
    utilization_report,
)
from repro.core import build_engine
from repro.hardware.timeline import CPU, GPU, H2D, Timeline
from repro.workloads import C4, SequenceGenerator


class TestUtilization:
    def test_basic(self):
        tl = Timeline()
        tl.add(GPU, 2.0)
        tl.add(CPU, 1.0)
        report = utilization_report(tl)
        assert report.makespan == 2.0
        assert report.busy[GPU] == 2.0
        assert report.utilization[CPU] == pytest.approx(0.5)
        assert report.dominant_resource() == GPU

    def test_empty(self):
        report = utilization_report(Timeline())
        assert report.makespan == 0.0
        assert all(u == 0.0 for u in report.utilization.values())


class TestAttribution:
    def test_grouping(self):
        tl = Timeline()
        tl.add(GPU, 1.0, kind="non_moe")
        tl.add(GPU, 3.0, kind="expert_gpu")
        tl.add(H2D, 2.0, kind="expert_upload")
        report = attribution_report(tl)
        assert report.by_kind["expert_gpu"] == 3.0
        assert report.total == 6.0
        assert report.fraction("expert_upload") == pytest.approx(1 / 3)
        assert report.top(1)[0][0] == "expert_gpu"

    def test_resource_filter(self):
        tl = Timeline()
        tl.add(GPU, 1.0, kind="a")
        tl.add(CPU, 5.0, kind="b")
        report = attribution_report(tl, resource=GPU)
        assert "b" not in report.by_kind

    def test_empty_fraction(self):
        assert attribution_report(Timeline()).fraction("x") == 0.0


class TestCriticalPath:
    def test_simple_chain(self):
        tl = Timeline()
        a = tl.add(GPU, 1.0, kind="a")
        b = tl.add(CPU, 2.0, deps=[a], kind="b")
        c = tl.add(GPU, 1.0, deps=[b], kind="c")
        path = critical_path(tl)
        assert [op.index for op in path.ops] == [a.index, b.index, c.index]
        assert path.length == pytest.approx(4.0)

    def test_skips_non_binding_branch(self):
        tl = Timeline()
        long_op = tl.add(CPU, 10.0, kind="long")
        tl.add(GPU, 1.0, kind="short")  # parallel, not binding
        final = tl.add(GPU, 1.0, deps=[long_op], kind="final")
        path = critical_path(tl)
        kinds = {op.kind for op in path.ops}
        assert "long" in kinds and "final" in kinds
        assert "short" not in kinds

    def test_breakdowns(self):
        tl = Timeline()
        a = tl.add(GPU, 1.0, kind="x")
        tl.add(CPU, 3.0, deps=[a], kind="y")
        path = critical_path(tl)
        assert path.kind_breakdown() == {"x": 1.0, "y": 3.0}
        assert path.resource_breakdown() == {GPU: 1.0, CPU: 3.0}

    def test_empty(self):
        path = critical_path(Timeline())
        assert path.ops == []
        assert path.length == 0.0

    def test_path_length_equals_makespan(self, tiny_bundle, platform,
                                         tiny_calibration):
        engine = build_engine("daop", tiny_bundle, platform, 0.5,
                              tiny_calibration)
        gen = SequenceGenerator(C4, tiny_bundle.vocab, seed=51)
        seq = gen.sample_sequence(12, 6, sample_idx=0)
        result = engine.generate(seq.prompt_tokens, 6)
        path = critical_path(result.timeline)
        assert path.length == pytest.approx(result.timeline.makespan)


class TestDiagnose:
    """Classification needs paper-scale expert sizes, where the Fig. 8
    bottleneck structure (40 ms uploads vs 1.2 ms blocks) exists; a
    4-block Mixtral-architecture bundle provides it cheaply."""

    @pytest.fixture(scope="class")
    def mixtral_small(self):
        from repro.model.zoo import build_mixtral_8x7b_sim

        return build_mixtral_8x7b_sim(seed=0, n_blocks=4)

    def _run(self, name, bundle, platform, ecr):
        engine = build_engine(name, bundle, platform, ecr)
        gen = SequenceGenerator(C4, bundle.vocab, seed=52)
        seq = gen.sample_sequence(12, 8, sample_idx=0)
        return engine.generate(seq.prompt_tokens, 8)

    def test_official_is_gpu_bound(self, mixtral_small, platform):
        result = self._run("official", mixtral_small, platform, 1.0)
        report = diagnose(result)
        assert report.classification == GPU_BOUND

    def test_ondemand_is_transfer_bound(self, mixtral_small, platform):
        result = self._run("moe-ondemand", mixtral_small, platform, 0.25)
        report = diagnose(result)
        assert report.classification == TRANSFER_BOUND

    def test_fiddler_cpu_heavy(self, mixtral_small, platform):
        result = self._run("fiddler", mixtral_small, platform, 0.25)
        report = diagnose(result)
        assert report.critical_fractions[CPU_BOUND] > 0.3

    def test_fractions_sum_to_one(self, mixtral_small, platform):
        result = self._run("daop", mixtral_small, platform, 0.5)
        report = diagnose(result)
        assert sum(report.critical_fractions.values()) == pytest.approx(1.0)


def test_summarize_schedule_renders(tiny_bundle, platform,
                                    tiny_calibration):
    engine = build_engine("daop", tiny_bundle, platform, 0.5,
                          tiny_calibration)
    gen = SequenceGenerator(C4, tiny_bundle.vocab, seed=53)
    seq = gen.sample_sequence(12, 4, sample_idx=0)
    result = engine.generate(seq.prompt_tokens, 4)
    text = summarize_schedule(result.timeline)
    assert "makespan" in text
    assert "gpu" in text
    assert "critical path" in text
