"""Unit tests for the topical vocabulary and toy tokenizer."""

import numpy as np
import pytest

from repro.model.tokenizer import ToyTokenizer
from repro.model.vocab import TopicVocabulary


@pytest.fixture()
def vocab():
    return TopicVocabulary(vocab_size=68, n_topics=8, d_model=16, seed=3)


def test_special_tokens_have_no_topic(vocab):
    for token in (vocab.pad_id, vocab.bos_id, vocab.eos_id, vocab.unk_id):
        assert vocab.topic_of(token) == -1


def test_topics_partition_regular_tokens(vocab):
    seen = set()
    for topic in range(vocab.n_topics):
        tokens = vocab.tokens_of_topic(topic)
        assert tokens.size > 0
        assert not seen & set(tokens.tolist())
        seen |= set(tokens.tolist())
    assert len(seen) == vocab.vocab_size - vocab.n_special


def test_topics_balanced(vocab):
    sizes = [vocab.tokens_of_topic(t).size for t in range(vocab.n_topics)]
    assert max(sizes) - min(sizes) <= 1


def test_embedding_clusters_by_topic(vocab):
    emb = vocab.build_embedding()
    # Same-topic tokens are more similar than cross-topic tokens on average.
    def cos(a, b):
        return a @ b / (np.linalg.norm(a) * np.linalg.norm(b))

    t0 = vocab.tokens_of_topic(0)
    t1 = vocab.tokens_of_topic(1)
    same = np.mean([cos(emb[t0[0]], emb[t]) for t in t0[1:]])
    cross = np.mean([cos(emb[t0[0]], emb[t]) for t in t1])
    assert same > cross


def test_embedding_deterministic(vocab):
    np.testing.assert_array_equal(vocab.build_embedding(),
                                  vocab.build_embedding())


def test_too_small_vocab_rejected():
    with pytest.raises(ValueError):
        TopicVocabulary(vocab_size=8, n_topics=8, d_model=4)


def test_topic_out_of_range(vocab):
    with pytest.raises(ValueError):
        vocab.tokens_of_topic(99)


class TestTokenizer:
    def test_round_trip(self, vocab):
        tok = ToyTokenizer(vocab)
        ids = np.array([5, 10, 20, 3])
        text = tok.decode(ids)
        np.testing.assert_array_equal(tok.encode(text), ids)

    def test_special_names(self, vocab):
        tok = ToyTokenizer(vocab)
        assert tok.decode([0, 1, 2, 3]) == "<pad> <bos> <eos> <unk>"

    def test_unknown_word_maps_to_unk(self, vocab):
        tok = ToyTokenizer(vocab)
        assert tok.encode("not_a_word")[0] == vocab.unk_id

    def test_word_encodes_topic(self, vocab):
        tok = ToyTokenizer(vocab)
        token = int(vocab.tokens_of_topic(5)[0])
        assert tok.decode([token]).startswith("t05_")
