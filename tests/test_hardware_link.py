"""Unit tests for the PCIe link model."""

import pytest

from repro.hardware.link import LinkSpec


@pytest.fixture()
def link():
    return LinkSpec(name="pcie", bandwidth=64e9, latency=10e-6,
                    bulk_efficiency=0.5, activation_efficiency=0.8)


def test_weight_transfer_time(link):
    # 32 GB at 32 GB/s effective = 1 s plus latency.
    assert link.weight_transfer_time(32e9) == pytest.approx(1.0 + 10e-6)


def test_activation_transfer_latency_dominated(link):
    t = link.activation_transfer_time(8192)
    assert t == pytest.approx(10e-6, rel=0.05)


def test_bulk_slower_than_activation(link):
    n = 1e9
    assert link.weight_transfer_time(n) > link.activation_transfer_time(n)


def test_validation():
    with pytest.raises(ValueError):
        LinkSpec(name="bad", bandwidth=0.0)
    with pytest.raises(ValueError):
        LinkSpec(name="bad", bandwidth=1e9, bulk_efficiency=0.0)
    with pytest.raises(ValueError):
        LinkSpec(name="bad", bandwidth=1e9, activation_efficiency=2.0)
