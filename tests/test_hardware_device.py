"""Unit tests for device specs and the roofline."""

import pytest

from repro.hardware.device import GB, DeviceKind, DeviceSpec


def make(**kw):
    base = dict(
        name="dev", kind=DeviceKind.GPU, peak_flops=100e12,
        mem_bandwidth=1000 * GB, mem_capacity=48 * GB,
        compute_efficiency=0.5, mem_efficiency=0.5, op_overhead=1e-6,
        idle_power_w=10.0, active_power_w=100.0,
    )
    base.update(kw)
    return DeviceSpec(**base)


def test_effective_rates():
    dev = make()
    assert dev.effective_flops == pytest.approx(50e12)
    assert dev.effective_bandwidth == pytest.approx(500 * GB)


def test_memory_bound_op():
    dev = make()
    # tiny flops, large bytes -> memory time dominates
    t = dev.op_time(flops=1.0, bytes_touched=500 * GB)
    assert t == pytest.approx(1.0 + 1e-6, rel=1e-3)


def test_compute_bound_op():
    dev = make()
    t = dev.op_time(flops=50e12, bytes_touched=1.0)
    assert t == pytest.approx(1.0 + 1e-6, rel=1e-3)


def test_overhead_included():
    dev = make(op_overhead=0.5)
    assert dev.op_time(0.0, 0.0) == pytest.approx(0.5)


@pytest.mark.parametrize("field,value", [
    ("peak_flops", 0.0),
    ("mem_bandwidth", -1.0),
    ("compute_efficiency", 0.0),
    ("compute_efficiency", 1.5),
    ("mem_efficiency", 0.0),
])
def test_validation(field, value):
    with pytest.raises(ValueError):
        make(**{field: value})


def test_active_below_idle_rejected():
    with pytest.raises(ValueError):
        make(idle_power_w=100.0, active_power_w=50.0)
