"""Unit tests for the LRU expert cache policy."""

import pytest

from repro.memory.lru import LRUExpertCache


def test_admit_until_capacity():
    cache = LRUExpertCache(2)
    assert cache.admit(1) is None
    assert cache.admit(2) is None
    assert len(cache) == 2


def test_eviction_order_is_lru():
    cache = LRUExpertCache(2)
    cache.admit(1)
    cache.admit(2)
    assert cache.admit(3) == 1  # 1 is least recently used
    assert 2 in cache and 3 in cache


def test_touch_refreshes_recency():
    cache = LRUExpertCache(2)
    cache.admit(1)
    cache.admit(2)
    cache.touch(1)
    assert cache.admit(3) == 2


def test_admit_existing_refreshes():
    cache = LRUExpertCache(2)
    cache.admit(1)
    cache.admit(2)
    assert cache.admit(1) is None  # refresh, no eviction
    assert cache.admit(3) == 2


def test_touch_missing_raises():
    cache = LRUExpertCache(2)
    with pytest.raises(KeyError):
        cache.touch(9)


def test_zero_capacity_never_stores():
    cache = LRUExpertCache(0)
    assert cache.admit(1) is None
    assert 1 not in cache


def test_seed_order():
    cache = LRUExpertCache(3)
    cache.seed([4, 5, 6])
    assert cache.experts == [4, 5, 6]
    assert cache.admit(7) == 4  # first seeded = coldest


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        LRUExpertCache(-1)
