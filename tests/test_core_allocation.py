"""Unit tests for Algorithm 1 (sequence-specific expert allocation)."""

import numpy as np
import pytest

from repro.core.allocation import (
    activity_from_routing,
    plan_block_swaps,
)
from repro.hardware.device import DeviceKind
from repro.memory.placement import ExpertPlacement


def make_placement(gpu_experts, n_experts=8):
    p = ExpertPlacement(1, n_experts)
    for e in gpu_experts:
        p.set_device(0, e, DeviceKind.GPU)
    return p


def test_activity_from_routing():
    experts = np.array([[0, 1], [0, 2], [1, 0]])
    counts = activity_from_routing(experts, 4)
    np.testing.assert_array_equal(counts, [3, 2, 1, 0])


def test_hot_cpu_swaps_with_cold_gpu():
    placement = make_placement([0, 1, 2, 3])
    activity = np.array([10.0, 9.0, 8.0, 0.0, 20.0, 0.0, 0.0, 0.0])
    plans = plan_block_swaps(0, activity, placement)
    # CPU expert 4 (20 tokens) should displace GPU expert 3 (0 tokens).
    assert len(plans) == 1
    assert plans[0].hot_expert == 4
    assert plans[0].cold_expert == 3


def test_threshold_blocks_marginal_swaps():
    placement = make_placement([0])
    # CPU expert 1 has activity 10, GPU expert 0 has 9.8: inside the 1.05
    # band, so no swap (Alg. 1's SwapInOut guard).
    activity = np.zeros(8)
    activity[0] = 9.8
    activity[1] = 10.0
    assert plan_block_swaps(0, activity, placement) == []
    # But 10.3 >= 1.05 * 9.8 triggers it.
    activity[1] = 10.3
    plans = plan_block_swaps(0, activity, placement)
    assert len(plans) == 1


def test_swap_num_caps_pairings():
    """At most n_experts // 2 tuples are considered."""
    placement = make_placement([0, 1, 2, 3])
    activity = np.array([0.0, 0.0, 0.0, 0.0, 10.0, 10.0, 10.0, 10.0])
    plans = plan_block_swaps(0, activity, placement)
    assert len(plans) == 4  # SwapNum = 4 for 8 experts


def test_pairing_order_hottest_vs_coldest():
    placement = make_placement([0, 1])
    activity = np.array([5.0, 1.0, 0.0, 0.0, 20.0, 10.0, 0.0, 0.0])
    plans = plan_block_swaps(0, activity, placement)
    # Hottest CPU (4: 20) pairs with coldest GPU (1: 1).
    assert plans[0].hot_expert == 4
    assert plans[0].cold_expert == 1
    # Second pairing (5: 10) vs (0: 5) also swaps.
    assert plans[1].hot_expert == 5
    assert plans[1].cold_expert == 0


def test_no_swaps_without_cpu_or_gpu_experts():
    all_gpu = make_placement(range(8))
    activity = np.arange(8.0)
    assert plan_block_swaps(0, activity, all_gpu) == []
    all_cpu = make_placement([])
    assert plan_block_swaps(0, activity, all_cpu) == []


def test_zero_activity_never_swaps():
    placement = make_placement([0, 1])
    activity = np.zeros(8)
    assert plan_block_swaps(0, activity, placement) == []


def test_validation():
    placement = make_placement([0])
    with pytest.raises(ValueError):
        plan_block_swaps(0, np.zeros(4), placement)  # wrong length
    with pytest.raises(ValueError):
        plan_block_swaps(0, np.zeros(8), placement, swap_threshold=0.0)
