"""Behavioural tests every engine must satisfy."""

import numpy as np
import pytest

from repro.core import ENGINE_NAMES, build_engine
from repro.workloads import C4, SequenceGenerator

PROMPT_LEN = 12
DECODE_LEN = 6


@pytest.fixture(scope="module")
def sequence(tiny_bundle):
    gen = SequenceGenerator(C4, tiny_bundle.vocab, seed=9)
    return gen.sample_sequence(PROMPT_LEN, DECODE_LEN, sample_idx=0)


def run(name, tiny_bundle, platform, tiny_calibration, sequence, **kw):
    engine = build_engine(name, tiny_bundle, platform,
                          expert_cache_ratio=0.5,
                          calibration_probs=tiny_calibration, **kw)
    return engine.generate(sequence.prompt_tokens, DECODE_LEN)


@pytest.mark.parametrize("name", ENGINE_NAMES)
def test_generates_tokens(name, tiny_bundle, platform, tiny_calibration,
                          sequence):
    result = run(name, tiny_bundle, platform, tiny_calibration, sequence)
    assert result.tokens.shape == (DECODE_LEN,)
    assert np.all(result.tokens >= 0)
    assert np.all(result.tokens < tiny_bundle.vocab.vocab_size)


@pytest.mark.parametrize("name", ENGINE_NAMES)
def test_deterministic(name, tiny_bundle, platform, tiny_calibration,
                       sequence):
    a = run(name, tiny_bundle, platform, tiny_calibration, sequence)
    b = run(name, tiny_bundle, platform, tiny_calibration, sequence)
    np.testing.assert_array_equal(a.tokens, b.tokens)
    assert a.stats.total_time_s == pytest.approx(b.stats.total_time_s)


@pytest.mark.parametrize("name", ENGINE_NAMES)
def test_stats_sane(name, tiny_bundle, platform, tiny_calibration, sequence):
    result = run(name, tiny_bundle, platform, tiny_calibration, sequence)
    stats = result.stats
    assert stats.n_generated == DECODE_LEN
    assert stats.n_prompt_tokens == PROMPT_LEN
    assert 0 < stats.prefill_time_s <= stats.total_time_s
    assert stats.tokens_per_second > 0
    assert stats.tokens_per_kilojoule > 0
    assert stats.energy.total_j > 0
    assert stats.average_power_w > 50.0  # above the idle floor


@pytest.mark.parametrize("name", ENGINE_NAMES)
def test_trace_covers_all_tokens(name, tiny_bundle, platform,
                                 tiny_calibration, sequence):
    result = run(name, tiny_bundle, platform, tiny_calibration, sequence)
    trace = result.trace
    assert trace.token_count("prefill") == PROMPT_LEN
    # The final sampled token is never forwarded, so decode records
    # DECODE_LEN - 1 positions.
    assert trace.token_count("decode") == DECODE_LEN - 1


def test_official_matches_reference_greedy(tiny_bundle, platform, sequence):
    """The official engine must reproduce the raw model's generation."""
    engine = build_engine("official", tiny_bundle, platform)
    result = engine.generate(sequence.prompt_tokens, DECODE_LEN)
    reference = tiny_bundle.model.greedy_generate(
        sequence.prompt_tokens, DECODE_LEN
    )
    np.testing.assert_array_equal(result.tokens, reference)


def test_official_hit_rate_is_one(tiny_bundle, platform, sequence):
    result = build_engine("official", tiny_bundle, platform).generate(
        sequence.prompt_tokens, DECODE_LEN
    )
    assert result.stats.counters.gpu_hit_rate == pytest.approx(1.0)
    assert result.stats.counters.cpu_expert_execs == 0
    assert result.stats.counters.expert_uploads == 0


def test_forced_tokens_steer_decode(tiny_bundle, platform, tiny_calibration,
                                    sequence):
    engine = build_engine("fiddler", tiny_bundle, platform,
                          expert_cache_ratio=0.5,
                          calibration_probs=tiny_calibration)
    free = engine.generate(sequence.prompt_tokens, DECODE_LEN)
    forced = engine.generate(sequence.prompt_tokens, DECODE_LEN,
                             forced_tokens=sequence.continuation_tokens)
    # Same first token (it comes from prefill either way).
    assert free.tokens[0] == forced.tokens[0]
    # Forced inputs generally change subsequent routing/trace.
    assert forced.trace.token_count("decode") == DECODE_LEN - 1


def test_input_validation(tiny_bundle, platform):
    engine = build_engine("official", tiny_bundle, platform)
    with pytest.raises(ValueError):
        engine.generate(np.array([]), 4)
    with pytest.raises(ValueError):
        engine.generate(np.array([1, 2]), 0)
    with pytest.raises(ValueError):
        engine.generate(np.array([1, 2]), 8, forced_tokens=np.array([1]))


def test_unknown_engine_name(tiny_bundle, platform):
    with pytest.raises(KeyError):
        build_engine("vllm", tiny_bundle, platform)


def test_custom_sampler_used(tiny_bundle, platform, sequence):
    engine = build_engine("official", tiny_bundle, platform)
    result = engine.generate(sequence.prompt_tokens, 3,
                             sampler=lambda logits: 42)
    np.testing.assert_array_equal(result.tokens, [42, 42, 42])


def test_duplicate_expert_ids_fill_every_slot(tiny_bundle, platform):
    """A hand-built selection repeating an expert id must honor both
    weight slots (real routers never emit duplicates -- see
    test_model_gating -- but degraded selections may).
    """
    from repro.core.engine import (
        EngineCounters,
        SequenceRequest,
        SequenceState,
    )
    from repro.hardware.timeline import Timeline
    from repro.model.sampling import greedy
    from repro.trace.recorder import ActivationTrace

    def fresh_ctx(engine):
        return SequenceState(
            request=SequenceRequest(
                prompt_tokens=np.array([0]), max_new_tokens=1
            ),
            sampler=greedy,
            placement=engine.initial_placement.copy(),
            caches=engine.model.new_caches(),
            timeline=Timeline(),
            trace=ActivationTrace(engine.model.n_blocks,
                                  engine.model.n_experts),
            counters=EngineCounters(),
        )

    engine = build_engine("official", tiny_bundle, platform,
                          expert_cache_ratio=1.0)
    rng = np.random.default_rng(7)
    h_att = rng.standard_normal(
        (2, tiny_bundle.model.profile.sim.d_model)
    ).astype(np.float32)
    dup_experts = np.array([[1, 1], [1, 1]])

    ctx = fresh_ctx(engine)
    h_dup, ops = engine._execute_experts_at_location(
        ctx, 0, h_att, dup_experts, np.array([[0.6, 0.4], [0.3, 0.7]]), []
    )
    # One op per *unique* expert, matching counter-conservation.
    assert len(ops) == 1

    # Both slots hold the same expert output, so the duplicate pair must
    # combine exactly like the full weight on a single slot.
    ctx = fresh_ctx(engine)
    h_full, _ = engine._execute_experts_at_location(
        ctx, 0, h_att, dup_experts, np.array([[1.0, 0.0], [1.0, 0.0]]), []
    )
    np.testing.assert_allclose(h_dup, h_full, rtol=1e-5)
