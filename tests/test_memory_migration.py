"""Unit tests for the migration engine."""

import pytest

from repro.hardware.cost_model import CostModel
from repro.hardware.device import DeviceKind
from repro.hardware.timeline import D2H, H2D, Timeline
from repro.memory.migration import MigrationEngine
from repro.memory.placement import ExpertPlacement
from repro.model.zoo import MIXTRAL_8X7B_ARCH


@pytest.fixture()
def engine(platform):
    placement = ExpertPlacement(4, 8)
    placement.set_device(0, 0, DeviceKind.GPU)
    return MigrationEngine(
        placement=placement,
        cost_model=CostModel(MIXTRAL_8X7B_ARCH, platform),
        timeline=Timeline(),
    )


def test_upload_updates_placement_and_timeline(engine):
    op = engine.upload(1, 3)
    assert engine.placement.is_on_gpu(1, 3)
    assert op.resource == H2D
    assert op.duration > 0
    assert engine.upload_count == 1


def test_evict_updates_placement(engine):
    op = engine.evict(0, 0)
    assert not engine.placement.is_on_gpu(0, 0)
    assert op.resource == D2H
    assert engine.evict_count == 1


def test_drop_is_free(engine):
    before = len(engine.timeline.ops)
    engine.drop(0, 0)
    assert not engine.placement.is_on_gpu(0, 0)
    assert len(engine.timeline.ops) == before


def test_swap(engine):
    up, _ = engine.swap(0, expert_in=5, expert_out=0)
    assert engine.placement.is_on_gpu(0, 5)
    assert not engine.placement.is_on_gpu(0, 0)
    assert up.resource == H2D


def test_swap_validation(engine):
    with pytest.raises(ValueError):
        engine.swap(0, expert_in=5, expert_out=6)  # 6 not on GPU
    engine.upload(0, 5)
    with pytest.raises(ValueError):
        engine.swap(0, expert_in=5, expert_out=0)  # 5 already on GPU


def test_quantized_migration_faster(platform):
    placement = ExpertPlacement(2, 4)
    cm = CostModel(MIXTRAL_8X7B_ARCH, platform)
    full = MigrationEngine(placement.copy(), cm, Timeline(),
                           quant_ratio=1.0).upload(0, 0)
    quant = MigrationEngine(placement.copy(), cm, Timeline(),
                            quant_ratio=0.25).upload(0, 0)
    assert quant.duration < full.duration


def test_upload_respects_deps(engine):
    first = engine.timeline.add("gpu", 5.0)
    op = engine.upload(1, 1, deps=[first])
    assert op.start == 5.0
