"""Unit tests for prediction-accuracy statistics (paper Fig. 5)."""

import numpy as np
import pytest

from repro.trace.prediction import PredictionStats


def test_exact_hit():
    stats = PredictionStats(4)
    stats.record(1, predicted=[0, 1], actual=[0, 1])
    assert stats.per_block_accuracy()[1] == pytest.approx(1.0)


def test_half_hit():
    stats = PredictionStats(4)
    stats.record(1, predicted=[0, 2], actual=[0, 1])
    assert stats.per_block_accuracy()[1] == pytest.approx(0.5)


def test_miss():
    stats = PredictionStats(4)
    stats.record(2, predicted=[2, 3], actual=[0, 1])
    assert stats.per_block_accuracy()[2] == pytest.approx(0.0)


def test_unobserved_blocks_nan():
    stats = PredictionStats(4)
    stats.record(0, [0], [0])
    acc = stats.per_block_accuracy()
    assert np.isnan(acc[3])
    assert acc[0] == 1.0


def test_mean_accuracy_start_block():
    stats = PredictionStats(4)
    stats.record(0, [0], [1])   # 0.0
    stats.record(2, [0], [0])   # 1.0
    stats.record(3, [0], [0])   # 1.0
    assert stats.mean_accuracy(0) == pytest.approx(2.0 / 3.0)
    assert stats.mean_accuracy(2) == pytest.approx(1.0)


def test_mean_accuracy_empty():
    stats = PredictionStats(4)
    assert np.isnan(stats.mean_accuracy())


def test_merge():
    a = PredictionStats(2)
    b = PredictionStats(2)
    a.record(0, [0], [0])
    b.record(0, [1], [0])
    a.merge(b)
    assert a.per_block_accuracy()[0] == pytest.approx(0.5)


def test_merge_shape_mismatch():
    with pytest.raises(ValueError):
        PredictionStats(2).merge(PredictionStats(3))
