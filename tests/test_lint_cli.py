"""CLI integration tests for ``repro lint`` and ``python -m repro.lint``."""

import os
import subprocess
import sys
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
BAD_FIXTURE = Path(__file__).parent / "fixtures" / "lint_bad" / \
    "bad_module.py"


def test_lint_clean_repo_exits_zero(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_lint_bad_fixture_exits_nonzero_with_locations(capsys):
    assert main(["lint", str(BAD_FIXTURE)]) == 1
    out = capsys.readouterr().out
    assert "bad_module.py:" in out
    # file:line:col locations plus codes from more than one rule.
    assert "DET001" in out and "DET002" in out and "DET003" in out
    first = next(line for line in out.splitlines() if "DET001" in line)
    location = first.split(" ")[0]
    assert location.count(":") == 3  # path:line:col:


def test_lint_select_restricts_rules(capsys):
    assert main(["lint", str(BAD_FIXTURE), "--select",
                 "stdlib-random"]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "DET002" not in out


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("DET001", "DET002", "DET003", "LAY001", "ENG001",
                 "ENG002", "ENG003", "API001", "API002", "API003",
                 "API004"):
        assert code in out


def test_lint_unknown_rule_is_a_clean_error(capsys):
    assert main(["lint", "--select", "no-such-rule"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule" in err and "no-such-rule" in err


def test_lint_missing_path_is_a_clean_error(capsys):
    assert main(["lint", "does/not/exist.py"]) == 2
    err = capsys.readouterr().err
    assert "no such file" in err


def test_python_dash_m_entry_point():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(BAD_FIXTURE)],
        capture_output=True, text=True, cwd=str(REPO_ROOT), env=env,
    )
    assert result.returncode == 1
    assert "bad_module.py:" in result.stdout
