"""Unit tests for the expert placement map."""

import numpy as np
import pytest

from repro.hardware.device import DeviceKind
from repro.memory.placement import ExpertPlacement


def test_all_on_gpu():
    p = ExpertPlacement.all_on_gpu(4, 8)
    assert p.expert_cache_ratio == 1.0
    assert p.gpu_count() == 32
    assert p.is_on_gpu(3, 7)


def test_all_on_cpu():
    p = ExpertPlacement.all_on_cpu(4, 8)
    assert p.expert_cache_ratio == 0.0
    assert p.cpu_experts(0).size == 8


def test_set_and_query():
    p = ExpertPlacement(2, 4)
    p.set_device(1, 2, DeviceKind.GPU)
    assert p.is_on_gpu(1, 2)
    assert p.device_of(1, 2) is DeviceKind.GPU
    assert p.device_of(0, 0) is DeviceKind.CPU
    np.testing.assert_array_equal(p.gpu_experts(1), [2])
    np.testing.assert_array_equal(p.cpu_experts(1), [0, 1, 3])


def test_gpu_count_per_block():
    p = ExpertPlacement(2, 4)
    p.set_device(0, 0, DeviceKind.GPU)
    p.set_device(0, 1, DeviceKind.GPU)
    assert p.gpu_count(0) == 2
    assert p.gpu_count(1) == 0
    assert p.gpu_count() == 2


def test_bounds_checked():
    p = ExpertPlacement(2, 4)
    with pytest.raises(IndexError):
        p.is_on_gpu(2, 0)
    with pytest.raises(IndexError):
        p.is_on_gpu(0, 4)


def test_copy_is_independent():
    p = ExpertPlacement(2, 4)
    q = p.copy()
    q.set_device(0, 0, DeviceKind.GPU)
    assert not p.is_on_gpu(0, 0)
    assert q.is_on_gpu(0, 0)


def test_matrix_roundtrip():
    p = ExpertPlacement(2, 3)
    p.set_device(1, 1, DeviceKind.GPU)
    m = p.as_matrix()
    assert m.dtype == bool
    assert m[1, 1] and not m[0, 0]
    m[0, 0] = True  # must not alias internal state
    assert not p.is_on_gpu(0, 0)


def test_invalid_shape():
    with pytest.raises(ValueError):
        ExpertPlacement(0, 4)
