"""Unit tests for activation-probability calibration (paper §IV-A)."""

import numpy as np
import pytest

from repro.core.calibration import calibrate_activation_probs
from repro.workloads.datasets import C4


def test_shape_and_normalization(tiny_bundle, tiny_calibration):
    model = tiny_bundle.model
    probs = tiny_calibration
    assert probs.shape == (model.n_blocks, model.n_experts)
    # Each token activates exactly top_k experts per block.
    np.testing.assert_allclose(
        probs.sum(axis=1), np.full(model.n_blocks, model.top_k), rtol=1e-9
    )
    assert np.all(probs >= 0)


def test_deterministic(tiny_bundle):
    a = calibrate_activation_probs(tiny_bundle, n_sequences=2,
                                   prompt_len=8, decode_len=8, seed=1)
    b = calibrate_activation_probs(tiny_bundle, n_sequences=2,
                                   prompt_len=8, decode_len=8, seed=1)
    np.testing.assert_array_equal(a, b)


def test_dataset_changes_distribution(tiny_bundle):
    sharegpt = calibrate_activation_probs(tiny_bundle, n_sequences=2,
                                          prompt_len=8, decode_len=12, seed=0)
    c4 = calibrate_activation_probs(tiny_bundle, dataset=C4, n_sequences=2,
                                    prompt_len=8, decode_len=12, seed=0)
    assert not np.allclose(sharegpt, c4)


def test_rejects_empty_decode(tiny_bundle):
    with pytest.raises(ValueError):
        calibrate_activation_probs(tiny_bundle, n_sequences=0,
                                   prompt_len=8, decode_len=8)
