"""Unit tests for workload recording and replay."""

import json

import numpy as np
import pytest

from repro.core import build_engine
from repro.workloads import (
    C4,
    SequenceGenerator,
    load_workload,
    record_workload,
    replay_workload,
    save_workload,
)


@pytest.fixture()
def generator(tiny_bundle):
    return SequenceGenerator(C4, tiny_bundle.vocab, seed=81)


def test_record_structure(generator):
    payload = record_workload(generator, 3, prompt_len=10,
                              continuation_len=5)
    assert payload["dataset"] == "c4"
    assert len(payload["sequences"]) == 3
    assert len(payload["sequences"][0]["prompt"]) == 10
    json.dumps(payload)


def test_round_trip(tmp_path, generator):
    payload = record_workload(generator, 2, 8, 4)
    path = tmp_path / "workload.json"
    save_workload(str(path), payload)
    sequences = load_workload(str(path))
    assert len(sequences) == 2
    original = generator.sample_sequence(8, 4, sample_idx=0)
    np.testing.assert_array_equal(sequences[0].prompt_tokens,
                                  original.prompt_tokens)
    np.testing.assert_array_equal(sequences[0].continuation_tokens,
                                  original.continuation_tokens)


def test_version_check(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"version": 99, "sequences": []}))
    with pytest.raises(ValueError):
        load_workload(str(path))


def test_replay_produces_results(tmp_path, generator, tiny_bundle,
                                 platform, tiny_calibration):
    payload = record_workload(generator, 2, 10, 6)
    path = tmp_path / "workload.json"
    save_workload(str(path), payload)
    sequences = load_workload(str(path))
    engine = build_engine("fiddler", tiny_bundle, platform, 0.5,
                          tiny_calibration)
    results = replay_workload(engine, sequences)
    assert len(results) == 2
    assert all(r.stats.n_generated == 6 for r in results)


def test_replay_is_reproducible(tmp_path, generator, tiny_bundle,
                                platform, tiny_calibration):
    payload = record_workload(generator, 1, 10, 6)
    path = tmp_path / "workload.json"
    save_workload(str(path), payload)
    engine = build_engine("daop", tiny_bundle, platform, 0.5,
                          tiny_calibration)
    a = replay_workload(engine, load_workload(str(path)))[0]
    b = replay_workload(engine, load_workload(str(path)))[0]
    np.testing.assert_array_equal(a.tokens, b.tokens)
    assert a.stats.total_time_s == pytest.approx(b.stats.total_time_s)


def test_replay_max_tokens_override(generator, tiny_bundle, platform,
                                    tiny_calibration):
    from repro.workloads.generator import SyntheticSequence

    payload = record_workload(generator, 1, 10, 8)
    seq = SyntheticSequence(
        dataset="c4",
        prompt_tokens=np.asarray(payload["sequences"][0]["prompt"]),
        continuation_tokens=np.asarray(
            payload["sequences"][0]["continuation"]
        ),
        topic_history=None,
        seed=0,
    )
    engine = build_engine("fiddler", tiny_bundle, platform, 0.5,
                          tiny_calibration)
    results = replay_workload(engine, [seq], max_new_tokens=3)
    assert results[0].stats.n_generated == 3
