"""Unit tests for workload recording and replay."""

import json
import os

import numpy as np
import pytest

from repro.core import build_engine
from repro.workloads import (
    C4,
    DEFAULT_TENANT,
    INTERACTIVE,
    SequenceGenerator,
    load_request_specs,
    load_workload,
    record_request_specs,
    record_workload,
    replay_workload,
    save_workload,
)

V1_FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                          "workload_v1.json")


@pytest.fixture()
def generator(tiny_bundle):
    return SequenceGenerator(C4, tiny_bundle.vocab, seed=81)


def test_record_structure(generator):
    payload = record_workload(generator, 3, prompt_len=10,
                              continuation_len=5)
    assert payload["dataset"] == "c4"
    assert len(payload["sequences"]) == 3
    assert len(payload["sequences"][0]["prompt"]) == 10
    json.dumps(payload)


def test_round_trip(tmp_path, generator):
    payload = record_workload(generator, 2, 8, 4)
    path = tmp_path / "workload.json"
    save_workload(str(path), payload)
    sequences = load_workload(str(path))
    assert len(sequences) == 2
    original = generator.sample_sequence(8, 4, sample_idx=0)
    np.testing.assert_array_equal(sequences[0].prompt_tokens,
                                  original.prompt_tokens)
    np.testing.assert_array_equal(sequences[0].continuation_tokens,
                                  original.continuation_tokens)


def test_version_check(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"version": 99, "sequences": []}))
    with pytest.raises(ValueError):
        load_workload(str(path))


def test_replay_produces_results(tmp_path, generator, tiny_bundle,
                                 platform, tiny_calibration):
    payload = record_workload(generator, 2, 10, 6)
    path = tmp_path / "workload.json"
    save_workload(str(path), payload)
    sequences = load_workload(str(path))
    engine = build_engine("fiddler", tiny_bundle, platform, 0.5,
                          tiny_calibration)
    results = replay_workload(engine, sequences)
    assert len(results) == 2
    assert all(r.stats.n_generated == 6 for r in results)


def test_replay_is_reproducible(tmp_path, generator, tiny_bundle,
                                platform, tiny_calibration):
    payload = record_workload(generator, 1, 10, 6)
    path = tmp_path / "workload.json"
    save_workload(str(path), payload)
    engine = build_engine("daop", tiny_bundle, platform, 0.5,
                          tiny_calibration)
    a = replay_workload(engine, load_workload(str(path)))[0]
    b = replay_workload(engine, load_workload(str(path)))[0]
    np.testing.assert_array_equal(a.tokens, b.tokens)
    assert a.stats.total_time_s == pytest.approx(b.stats.total_time_s)


class TestFormatV1Compat:
    """A pinned on-disk v1 file must keep loading under format v2."""

    def test_load_workload_reads_v1_fixture(self):
        sequences = load_workload(V1_FIXTURE)
        assert len(sequences) == 2
        assert sequences[0].dataset == "c4"
        np.testing.assert_array_equal(sequences[0].prompt_tokens,
                                      [1, 17, 42, 9, 88, 23])
        np.testing.assert_array_equal(sequences[1].continuation_tokens,
                                      [11, 76, 40])
        assert sequences[1].seed == 5

    def test_load_request_specs_defaults_v1_metadata(self):
        specs = load_request_specs(V1_FIXTURE)
        assert [s.request_id for s in specs] == [0, 1]
        assert [s.sample_idx for s in specs] == [0, 5]
        for spec in specs:
            assert spec.arrival_s == 0.0
            assert spec.tenant == DEFAULT_TENANT
            assert spec.slo_class == INTERACTIVE
            assert spec.output_len == 3
            assert spec.forced_tokens is not None


class TestFormatV2:
    def test_record_workload_emits_v2(self, generator):
        payload = record_workload(generator, 2, 8, 4)
        assert payload["version"] == 2
        entry = payload["sequences"][0]
        assert entry["arrival_s"] == 0.0
        assert entry["tenant"] == DEFAULT_TENANT
        assert entry["slo_class"] == INTERACTIVE

    def test_request_spec_round_trip(self, tmp_path, generator):
        """record -> save -> load restores every RequestSpec field."""
        from repro.workloads import RequestSpec

        originals = []
        for i, (prompt_len, output_len) in enumerate([(8, 3), (12, 5)]):
            sequence = generator.sample_sequence(prompt_len, output_len,
                                                 sample_idx=i)
            originals.append(RequestSpec(
                request_id=i,
                arrival_s=1.5 * i,
                prompt_tokens=sequence.prompt_tokens,
                output_len=output_len,
                forced_tokens=sequence.continuation_tokens,
                dataset="c4",
                tenant="chat" if i else "batchers",
                slo_class="interactive" if i else "batch",
                session=None if i else 4,
                sample_idx=i,
            ))
        path = tmp_path / "scenario.workload.json"
        save_workload(str(path), record_request_specs(originals,
                                                      label="test"))
        loaded = load_request_specs(str(path))
        assert len(loaded) == len(originals)
        for original, restored in zip(originals, loaded):
            assert restored.request_id == original.request_id
            assert restored.arrival_s == original.arrival_s
            assert restored.output_len == original.output_len
            assert restored.dataset == original.dataset
            assert restored.tenant == original.tenant
            assert restored.slo_class == original.slo_class
            assert restored.session == original.session
            assert restored.sample_idx == original.sample_idx
            np.testing.assert_array_equal(restored.prompt_tokens,
                                          original.prompt_tokens)
            np.testing.assert_array_equal(restored.forced_tokens,
                                          original.forced_tokens)

    def test_saved_file_is_deterministic(self, tmp_path, generator):
        payload = record_workload(generator, 2, 8, 4)
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        save_workload(str(path_a), payload)
        save_workload(str(path_b), payload)
        assert path_a.read_text() == path_b.read_text()

    def test_v2_loads_via_legacy_loader(self, tmp_path, generator):
        """load_workload drops v2 metadata but keeps the tokens."""
        sequence = generator.sample_sequence(8, 3, sample_idx=0)
        from repro.workloads import RequestSpec

        spec = RequestSpec(request_id=0, arrival_s=2.0,
                           prompt_tokens=sequence.prompt_tokens,
                           output_len=3,
                           forced_tokens=sequence.continuation_tokens,
                           dataset="c4", tenant="t", slo_class="batch")
        path = tmp_path / "v2.json"
        save_workload(str(path), record_request_specs([spec]))
        sequences = load_workload(str(path))
        assert len(sequences) == 1
        np.testing.assert_array_equal(sequences[0].prompt_tokens,
                                      sequence.prompt_tokens)


def test_replay_max_tokens_override(generator, tiny_bundle, platform,
                                    tiny_calibration):
    from repro.workloads.generator import SyntheticSequence

    payload = record_workload(generator, 1, 10, 8)
    seq = SyntheticSequence(
        dataset="c4",
        prompt_tokens=np.asarray(payload["sequences"][0]["prompt"]),
        continuation_tokens=np.asarray(
            payload["sequences"][0]["continuation"]
        ),
        topic_history=None,
        seed=0,
    )
    engine = build_engine("fiddler", tiny_bundle, platform, 0.5,
                          tiny_calibration)
    results = replay_workload(engine, [seq], max_new_tokens=3)
    assert results[0].stats.n_generated == 3
