"""Tests for the decode-phase re-allocation extension (paper §VI-B).

The paper restricts migration to prefill and identifies within-sequence
drift (GSM8K) as the resulting weakness; this extension re-runs
Algorithm 1 during decode over a sliding activation window.
"""

import numpy as np
import pytest

from repro.core.daop import DAOPEngine
from repro.memory.cache import CacheConfig
from repro.workloads import GSM8K, SequenceGenerator

DRIFTY = GSM8K.with_overrides(drift_rate=0.15)


def make(tiny_bundle, platform, tiny_calibration, **kw):
    return DAOPEngine(
        tiny_bundle, platform,
        cache_config=CacheConfig(ecr=0.25),
        calibration_probs=tiny_calibration,
        prediction_start_block=2,
        **kw,
    )


@pytest.fixture(scope="module")
def drifty_sequences(tiny_bundle):
    gen = SequenceGenerator(DRIFTY, tiny_bundle.vocab, seed=71)
    return [gen.sample_sequence(16, 48, sample_idx=i) for i in range(3)]


def test_validation(tiny_bundle, platform, tiny_calibration):
    with pytest.raises(ValueError):
        make(tiny_bundle, platform, tiny_calibration,
             decode_realloc_interval=0)
    with pytest.raises(ValueError):
        make(tiny_bundle, platform, tiny_calibration,
             decode_realloc_interval=5, decode_realloc_window=0)


def test_disabled_by_default(tiny_bundle, platform, tiny_calibration,
                             drifty_sequences):
    engine = make(tiny_bundle, platform, tiny_calibration)
    seq = drifty_sequences[0]
    result = engine.generate(seq.prompt_tokens, 16,
                             forced_tokens=seq.continuation_tokens)
    assert result.stats.counters.decode_swaps == 0
    # Paper behaviour: no uploads after prefill.
    uploads = [op for op in result.timeline.ops
               if op.kind == "expert_upload"]
    assert all(op.start <= result.stats.prefill_time_s for op in uploads)


def test_realloc_swaps_during_decode(tiny_bundle, platform,
                                     tiny_calibration, drifty_sequences):
    engine = make(tiny_bundle, platform, tiny_calibration,
                  decode_realloc_interval=8)
    total = 0
    for seq in drifty_sequences:
        result = engine.generate(seq.prompt_tokens, 32,
                                 forced_tokens=seq.continuation_tokens)
        total += result.stats.counters.decode_swaps
    assert total > 0


def test_realloc_preserves_cache_size(tiny_bundle, platform,
                                      tiny_calibration, drifty_sequences):
    engine = make(tiny_bundle, platform, tiny_calibration,
                  decode_realloc_interval=8)
    seq = drifty_sequences[0]
    result = engine.generate(seq.prompt_tokens, 32,
                             forced_tokens=seq.continuation_tokens)
    assert result.placement.expert_cache_ratio == pytest.approx(
        engine.initial_placement.expert_cache_ratio
    )


def test_realloc_improves_hit_rate_under_drift(tiny_bundle, platform,
                                               tiny_calibration,
                                               drifty_sequences):
    """On drifting input, refreshing the cache mid-decode lifts residency."""
    hits = {}
    for interval in (None, 8):
        engine = make(tiny_bundle, platform, tiny_calibration,
                      decode_realloc_interval=interval)
        rates = []
        for seq in drifty_sequences:
            result = engine.generate(
                seq.prompt_tokens, 48,
                forced_tokens=seq.continuation_tokens,
            )
            rates.append(result.stats.counters.gpu_hit_rate)
        hits[interval] = float(np.mean(rates))
    assert hits[8] > hits[None]


def test_decode_window_matches_trace(tiny_bundle, platform,
                                     tiny_calibration, drifty_sequences):
    """The O(n_blocks) tail scan must count exactly the trace's events.

    Re-derives the sliding activation window from the recorded trace and
    checks the engine's incrementally maintained window agrees.
    """
    engine = make(tiny_bundle, platform, tiny_calibration,
                  decode_realloc_interval=8, decode_realloc_window=6)
    seq = drifty_sequences[0]
    result = engine.generate(seq.prompt_tokens, 16,
                             forced_tokens=seq.continuation_tokens)
    per_token = {}
    for event in result.trace.events:
        if event.phase != "decode":
            continue
        counts = per_token.setdefault(
            event.token_pos,
            np.zeros((engine.model.n_blocks, engine.model.n_experts)),
        )
        for expert in event.experts:
            counts[event.block, expert] += 1.0
    expected = [per_token[pos] for pos in sorted(per_token)][-6:]
    window = list(engine._active_state.policy.window)
    assert len(window) == len(expected)
    for got, want in zip(window, expected):
        np.testing.assert_array_equal(got, want)


def test_pending_uploads_stay_gpu_resident(tiny_bundle, platform,
                                           tiny_calibration,
                                           drifty_sequences):
    """A swap-out must purge any in-flight upload of the evicted expert."""
    engine = make(tiny_bundle, platform, tiny_calibration,
                  decode_realloc_interval=4)
    for seq in drifty_sequences:
        engine.generate(seq.prompt_tokens, 24,
                        forced_tokens=seq.continuation_tokens)
        for block, expert in engine.pending_upload_keys:
            assert engine.placement.is_on_gpu(block, expert), (
                f"pending upload for E{expert}@B{block} references a "
                "non-resident expert"
            )


def test_realloc_passes_invariant_audit(tiny_bundle, platform,
                                        tiny_calibration, drifty_sequences,
                                        audit_result):
    """Decode-phase migration must still satisfy every audited invariant."""
    engine = make(tiny_bundle, platform, tiny_calibration,
                  decode_realloc_interval=4)
    seq = drifty_sequences[1]
    result = engine.generate(seq.prompt_tokens, 24,
                             forced_tokens=seq.continuation_tokens)
    assert result.stats.counters.decode_swaps > 0
    audit_result(engine, result, platform=platform)


def test_realloc_uploads_depend_on_decode_progress(tiny_bundle, platform,
                                                   tiny_calibration,
                                                   drifty_sequences):
    """Decode-phase uploads must start after the triggering token."""
    engine = make(tiny_bundle, platform, tiny_calibration,
                  decode_realloc_interval=4)
    seq = drifty_sequences[1]
    result = engine.generate(seq.prompt_tokens, 24,
                             forced_tokens=seq.continuation_tokens)
    decode_uploads = [
        op for op in result.timeline.ops
        if op.kind == "expert_upload"
        and op.start > result.stats.prefill_time_s
    ]
    if result.stats.counters.decode_swaps:
        assert decode_uploads
