"""Analyses over DAOP's oracle-instrumented traces.

DAOP records both what the true gate *would* have selected
(``RoutingEvent.experts``) and what it actually executed
(``executed_experts``) for every predicted block, so in-engine prediction
quality and degradation effects can be measured from generation traces.
"""

import numpy as np
import pytest

from repro.core.daop import DAOPEngine
from repro.memory.cache import CacheConfig
from repro.trace.prediction import PredictionStats
from repro.workloads import C4, SequenceGenerator


@pytest.fixture(scope="module")
def daop_result(tiny_bundle, platform, tiny_calibration):
    engine = DAOPEngine(
        tiny_bundle, platform, cache_config=CacheConfig(ecr=0.5),
        calibration_probs=tiny_calibration, prediction_start_block=1,
    )
    gen = SequenceGenerator(C4, tiny_bundle.vocab, seed=141)
    seq = gen.sample_sequence(16, 32, sample_idx=0)
    return engine.generate(seq.prompt_tokens, 32,
                           forced_tokens=seq.continuation_tokens)


def test_in_engine_prediction_beats_chance(daop_result, tiny_bundle):
    """Executed (predicted) sets overlap true selections well above the
    ~58 % chance level of top-2-of-4 routing."""
    stats = PredictionStats(tiny_bundle.model.n_blocks)
    for event in daop_result.trace.events:
        if event.predicted:
            stats.record(event.block, event.executed_experts,
                         event.experts)
    accuracy = stats.mean_accuracy()
    assert accuracy > 0.70


def test_degradation_only_moves_to_gpu(daop_result, tiny_bundle):
    """Any executed expert outside the true top-2 must be GPU-resident
    (a graceful-degradation substitute) or a prediction, never a random
    CPU expert."""
    placement = daop_result.placement
    for event in daop_result.trace.events:
        if not event.predicted or event.executed_experts is None:
            continue
        substitutes = set(event.executed_experts) - set(event.experts)
        # Substitutions beyond prediction error must sit on the GPU when
        # the block has any GPU expert at all.
        if placement.gpu_experts(event.block).size == 0:
            continue
        cpu_extra = [
            e for e in substitutes
            if not placement.is_on_gpu(event.block, e)
        ]
        # CPU-resident extras can only come from prediction error, which
        # graceful degradation caps at one per block.
        assert len(cpu_extra) <= 1


def test_predicted_events_have_executed_sets(daop_result):
    predicted = [e for e in daop_result.trace.events if e.predicted]
    assert predicted
    for event in predicted:
        assert event.executed_experts is not None
        assert len(event.executed_experts) == len(event.experts)


def test_executed_counts_match_gpu_cpu_split(daop_result):
    """Counter cross-check: executed expert events equal the sum of GPU
    and CPU expert executions during decode plus prefill batches."""
    counters = daop_result.stats.counters
    total_execs = counters.gpu_expert_execs + counters.cpu_expert_execs
    assert total_execs > 0
    # Stale pre-calculations are a subset of CPU executions.
    assert counters.stale_input_execs <= counters.cpu_expert_execs
