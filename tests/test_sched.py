"""Continuous-batch scheduler: admission, interleaving, reports, audits."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import build_engine
from repro.core.engine import SequenceRequest
from repro.sched import BatchReport, ContinuousBatchScheduler

PROMPT_LEN = 10
MAX_NEW = 5
N_REQUESTS = 4


def _requests(bundle, n=N_REQUESTS, seed=7):
    rng = np.random.default_rng(seed)
    return [
        SequenceRequest(
            prompt_tokens=rng.integers(0, bundle.vocab.vocab_size,
                                       size=PROMPT_LEN, dtype=np.int64),
            max_new_tokens=MAX_NEW,
            seq_id=i,
        )
        for i in range(n)
    ]


@pytest.fixture()
def daop(tiny_bundle, platform, tiny_calibration):
    return build_engine("daop", tiny_bundle, platform,
                        expert_cache_ratio=0.5,
                        calibration_probs=tiny_calibration)


@pytest.fixture()
def fiddler(tiny_bundle, platform, tiny_calibration):
    return build_engine("fiddler", tiny_bundle, platform,
                        expert_cache_ratio=0.5,
                        calibration_probs=tiny_calibration)


def test_max_batch_must_be_positive(daop):
    with pytest.raises(ValueError):
        ContinuousBatchScheduler(daop, max_batch=0)


def test_arrival_times_length_checked(daop, tiny_bundle):
    scheduler = ContinuousBatchScheduler(daop, max_batch=2)
    with pytest.raises(ValueError):
        scheduler.run(_requests(tiny_bundle, n=2), np.zeros(3))


def test_batch1_tiles_makespan_exactly(daop, tiny_bundle):
    """Sequential service: spans are disjoint and sum to the makespan."""
    report = ContinuousBatchScheduler(daop, max_batch=1).run(
        _requests(tiny_bundle)
    )
    assert report.n_sequences == N_REQUESTS
    assert report.overlap_ratio == 0.0
    assert report.makespan_s == pytest.approx(
        report.sum_solo_makespans_s, rel=1e-12
    )
    ordered = sorted(report.records, key=lambda r: r.service_start_s)
    for earlier, later in zip(ordered, ordered[1:]):
        assert later.service_start_s >= earlier.finish_s - 1e-12


def test_batch4_overlaps_sequences(fiddler, tiny_bundle):
    """Acceptance: batch makespan < sum of per-sequence service spans."""
    report = ContinuousBatchScheduler(fiddler, max_batch=4).run(
        _requests(tiny_bundle)
    )
    assert report.makespan_s < report.sum_solo_makespans_s
    assert report.overlap_ratio > 0.25
    # Concurrent residency: some sequence starts before another ends.
    ordered = sorted(report.records, key=lambda r: r.service_start_s)
    assert any(later.service_start_s < earlier.finish_s
               for earlier, later in zip(ordered, ordered[1:]))


def test_batching_improves_mean_ttft(daop, tiny_bundle):
    solo = ContinuousBatchScheduler(daop, max_batch=1).run(
        _requests(tiny_bundle)
    )
    batched = ContinuousBatchScheduler(daop, max_batch=4).run(
        _requests(tiny_bundle)
    )
    assert batched.mean_ttft_s() < solo.mean_ttft_s()
    # Same tokens generated either way (per-sequence state isolation).
    for a, b in zip(solo.records, batched.records):
        assert np.array_equal(a.result.tokens, b.result.tokens)


def test_scheduler_is_deterministic(daop, tiny_bundle):
    first = ContinuousBatchScheduler(daop, max_batch=3).run(
        _requests(tiny_bundle)
    )
    second = ContinuousBatchScheduler(daop, max_batch=3).run(
        _requests(tiny_bundle)
    )
    assert first.to_json() == second.to_json()


def test_arrivals_gate_admission(daop, tiny_bundle):
    """A request arriving after the batch drains waits for its arrival."""
    requests = _requests(tiny_bundle, n=2)
    late = 1e6
    report = ContinuousBatchScheduler(daop, max_batch=2).run(
        requests, np.array([0.0, late])
    )
    by_id = {r.seq_id: r for r in report.records}
    assert by_id[0].service_start_s == 0.0
    assert by_id[1].service_start_s >= late
    assert by_id[1].queue_delay_s == pytest.approx(0.0, abs=1e-9)


def test_scheduler_results_pass_invariant_audit(
        daop, tiny_bundle, audit_result):
    """Acceptance: repro audit passes on scheduler-produced results."""
    report = ContinuousBatchScheduler(daop, max_batch=4).run(
        _requests(tiny_bundle)
    )
    for record in report.records:
        audit_result(daop, record.result)


def test_batch_report_json_shape(fiddler, tiny_bundle):
    report = ContinuousBatchScheduler(fiddler, max_batch=2).run(
        _requests(tiny_bundle)
    )
    payload = json.loads(report.to_json())
    assert payload["engine"] == "fiddler"
    assert payload["max_batch"] == 2
    assert payload["n_sequences"] == N_REQUESTS
    assert set(payload["occupancy"]) == {"gpu", "cpu", "h2d", "d2h"}
    assert len(payload["sequences"]) == N_REQUESTS
    assert [s["seq_id"] for s in payload["sequences"]] == [0, 1, 2, 3]


def test_empty_run_is_a_clean_report(daop):
    report = ContinuousBatchScheduler(daop, max_batch=2).run([])
    assert isinstance(report, BatchReport)
    assert report.n_sequences == 0
    assert report.makespan_s == 0.0
    assert report.overlap_ratio == 0.0
    assert report.occupancy("gpu") == 0.0
