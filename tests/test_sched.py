"""Continuous-batch scheduler: admission, interleaving, reports, audits."""

from __future__ import annotations

import json
from collections import Counter
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import build_engine
from repro.core.engine import SequenceRequest
from repro.sched import (
    GATHERED,
    INTERLEAVED,
    BatchReport,
    ContinuousBatchScheduler,
)

PROMPT_LEN = 10
MAX_NEW = 5
N_REQUESTS = 4


def _requests(bundle, n=N_REQUESTS, seed=7):
    rng = np.random.default_rng(seed)
    return [
        SequenceRequest(
            prompt_tokens=rng.integers(0, bundle.vocab.vocab_size,
                                       size=PROMPT_LEN, dtype=np.int64),
            max_new_tokens=MAX_NEW,
            seq_id=i,
        )
        for i in range(n)
    ]


@pytest.fixture()
def daop(tiny_bundle, platform, tiny_calibration):
    return build_engine("daop", tiny_bundle, platform,
                        expert_cache_ratio=0.5,
                        calibration_probs=tiny_calibration)


@pytest.fixture()
def fiddler(tiny_bundle, platform, tiny_calibration):
    return build_engine("fiddler", tiny_bundle, platform,
                        expert_cache_ratio=0.5,
                        calibration_probs=tiny_calibration)


def test_max_batch_must_be_positive(daop):
    with pytest.raises(ValueError):
        ContinuousBatchScheduler(daop, max_batch=0)


def test_arrival_times_length_checked(daop, tiny_bundle):
    scheduler = ContinuousBatchScheduler(daop, max_batch=2)
    with pytest.raises(ValueError):
        scheduler.run(_requests(tiny_bundle, n=2), np.zeros(3))


def test_batch1_tiles_makespan_exactly(daop, tiny_bundle):
    """Sequential service: spans are disjoint and sum to the makespan."""
    report = ContinuousBatchScheduler(daop, max_batch=1).run(
        _requests(tiny_bundle)
    )
    assert report.n_sequences == N_REQUESTS
    assert report.overlap_ratio == 0.0
    assert report.makespan_s == pytest.approx(
        report.sum_solo_makespans_s, rel=1e-12
    )
    ordered = sorted(report.records, key=lambda r: r.service_start_s)
    for earlier, later in zip(ordered, ordered[1:]):
        assert later.service_start_s >= earlier.finish_s - 1e-12


def test_batch4_overlaps_sequences(fiddler, tiny_bundle):
    """Acceptance: batch makespan < sum of per-sequence service spans."""
    report = ContinuousBatchScheduler(fiddler, max_batch=4).run(
        _requests(tiny_bundle)
    )
    assert report.makespan_s < report.sum_solo_makespans_s
    assert report.overlap_ratio > 0.25
    # Concurrent residency: some sequence starts before another ends.
    ordered = sorted(report.records, key=lambda r: r.service_start_s)
    assert any(later.service_start_s < earlier.finish_s
               for earlier, later in zip(ordered, ordered[1:]))


def test_batching_improves_mean_ttft(daop, tiny_bundle):
    solo = ContinuousBatchScheduler(daop, max_batch=1).run(
        _requests(tiny_bundle)
    )
    batched = ContinuousBatchScheduler(daop, max_batch=4).run(
        _requests(tiny_bundle)
    )
    assert batched.mean_ttft_s() < solo.mean_ttft_s()
    # Same tokens generated either way (per-sequence state isolation).
    for a, b in zip(solo.records, batched.records):
        assert np.array_equal(a.result.tokens, b.result.tokens)


def test_scheduler_is_deterministic(daop, tiny_bundle):
    first = ContinuousBatchScheduler(daop, max_batch=3).run(
        _requests(tiny_bundle)
    )
    second = ContinuousBatchScheduler(daop, max_batch=3).run(
        _requests(tiny_bundle)
    )
    assert first.to_json() == second.to_json()


def test_arrivals_gate_admission(daop, tiny_bundle):
    """A request arriving after the batch drains waits for its arrival."""
    requests = _requests(tiny_bundle, n=2)
    late = 1e6
    report = ContinuousBatchScheduler(daop, max_batch=2).run(
        requests, np.array([0.0, late])
    )
    by_id = {r.seq_id: r for r in report.records}
    assert by_id[0].service_start_s == 0.0
    assert by_id[1].service_start_s >= late
    assert by_id[1].queue_delay_s == pytest.approx(0.0, abs=1e-9)


def test_scheduler_results_pass_invariant_audit(
        daop, tiny_bundle, audit_result):
    """Acceptance: repro audit passes on scheduler-produced results."""
    report = ContinuousBatchScheduler(daop, max_batch=4).run(
        _requests(tiny_bundle)
    )
    for record in report.records:
        audit_result(daop, record.result)


def test_batch_report_json_shape(fiddler, tiny_bundle):
    report = ContinuousBatchScheduler(fiddler, max_batch=2).run(
        _requests(tiny_bundle)
    )
    payload = json.loads(report.to_json())
    assert payload["engine"] == "fiddler"
    assert payload["max_batch"] == 2
    assert payload["n_sequences"] == N_REQUESTS
    assert set(payload["occupancy"]) == {"gpu", "cpu", "h2d", "d2h"}
    assert len(payload["sequences"]) == N_REQUESTS
    assert [s["seq_id"] for s in payload["sequences"]] == [0, 1, 2, 3]


def test_empty_run_is_a_clean_report(daop):
    report = ContinuousBatchScheduler(daop, max_batch=2).run([])
    assert isinstance(report, BatchReport)
    assert report.n_sequences == 0
    assert report.makespan_s == 0.0
    assert report.overlap_ratio == 0.0
    assert report.occupancy("gpu") == 0.0


# ---- overlap_ratio degenerate inputs (zero spans, idle gaps) -----------------


def _stub_record(arrival_s, finish_s, span_s, n_generated=1):
    """Minimal SequenceRecord stand-in for report-math tests."""
    stats = SimpleNamespace(total_time_s=span_s)
    result = SimpleNamespace(stats=stats)
    return SimpleNamespace(
        arrival_s=arrival_s, finish_s=finish_s,
        n_generated=n_generated, result=result,
    )


def test_overlap_ratio_zero_for_empty_batch():
    report = BatchReport(engine="stub", max_batch=2)
    assert report.overlap_ratio == 0.0
    assert report.throughput_tokens_per_s == 0.0


def test_overlap_ratio_zero_for_zero_duration_sequences():
    """All-zero service spans must yield 0.0, not a division by zero."""
    report = BatchReport(engine="stub", max_batch=2, records=[
        _stub_record(arrival_s=0.0, finish_s=0.0, span_s=0.0),
        _stub_record(arrival_s=0.0, finish_s=0.0, span_s=0.0),
    ])
    assert report.sum_solo_makespans_s == 0.0
    assert report.overlap_ratio == 0.0


def test_overlap_ratio_clamped_under_sparse_arrivals():
    """Idle arrival gaps inflate the makespan past the summed spans;
    the ratio clamps to 0.0 instead of going negative."""
    report = BatchReport(engine="stub", max_batch=1, records=[
        _stub_record(arrival_s=0.0, finish_s=1.0, span_s=1.0),
        _stub_record(arrival_s=100.0, finish_s=101.0, span_s=1.0),
    ])
    assert report.makespan_s == pytest.approx(101.0)
    assert report.sum_solo_makespans_s == pytest.approx(2.0)
    assert report.overlap_ratio == 0.0


def test_overlap_ratio_clamped_end_to_end(daop, tiny_bundle):
    """Scheduler-produced reports stay in [0, 1) even with idle gaps."""
    requests = _requests(tiny_bundle, n=2)
    report = ContinuousBatchScheduler(daop, max_batch=2).run(
        requests, np.array([0.0, 1e6])
    )
    assert 0.0 <= report.overlap_ratio < 1.0


# ---- round-robin fairness: every active sequence steps once per round --------


class _StepCountingEngine:
    """Wraps an engine, counting batched/solo step invocations per seq_id."""

    def __init__(self, engine):
        self._engine = engine
        self.step_counts = Counter()

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def step(self, state):
        self.step_counts[state.seq_id] += 1
        return self._engine.step(state)

    def step_batch(self, states, gather_stats=None):
        for state in states:
            self.step_counts[state.seq_id] += 1
        return self._engine.step_batch(states, gather_stats=gather_stats)

    def step_prefill_batch(self, states, gather_stats=None):
        for state in states:
            self.step_counts[state.seq_id] += 1
        return self._engine.step_prefill_batch(
            states, gather_stats=gather_stats
        )


@pytest.mark.parametrize("mode", [INTERLEAVED, GATHERED])
def test_every_active_sequence_steps_once_per_round(
        fiddler, tiny_bundle, mode):
    """Mid-round finishes must never skip or double-step a survivor.

    Each sequence needs exactly ``max_new_tokens`` step units (one
    prefill + the decode tokens); heterogeneous lengths force sequences
    to retire mid-batch while others continue.
    """
    rng = np.random.default_rng(11)
    lengths = [2, 5, 3, 7]
    requests = [
        SequenceRequest(
            prompt_tokens=rng.integers(0, tiny_bundle.vocab.vocab_size,
                                       size=PROMPT_LEN, dtype=np.int64),
            max_new_tokens=n,
            seq_id=i,
        )
        for i, n in enumerate(lengths)
    ]
    counting = _StepCountingEngine(fiddler)
    report = ContinuousBatchScheduler(counting, max_batch=4,
                                      mode=mode).run(requests)
    assert report.n_sequences == len(lengths)
    assert dict(counting.step_counts) == {
        i: n for i, n in enumerate(lengths)
    }
    for record in report.records:
        assert record.n_generated == lengths[record.seq_id]


# ---- gathered cross-sequence execution ---------------------------------------


def test_mode_validated(daop):
    with pytest.raises(ValueError):
        ContinuousBatchScheduler(daop, max_batch=2, mode="turbo")


@pytest.mark.parametrize("engine_fixture", ["fiddler", "daop"])
def test_gathered_matches_interleaved_tokens_and_beats_it_on_time(
        engine_fixture, tiny_bundle, request):
    engine = request.getfixturevalue(engine_fixture)
    requests = _requests(tiny_bundle)
    interleaved = ContinuousBatchScheduler(
        engine, max_batch=4, mode=INTERLEAVED
    ).run(requests)
    gathered = ContinuousBatchScheduler(
        engine, max_batch=4, mode=GATHERED
    ).run(requests)
    # Identical token streams: gathering only changes the schedule.
    for a, b in zip(interleaved.records, gathered.records):
        assert np.array_equal(a.result.tokens, b.result.tokens)
        assert a.result.stats.counters == b.result.stats.counters
    # Acceptance: gathered decode is strictly faster at batch 4 and
    # physically launches fewer expert kernels than logical ops.
    assert gathered.makespan_s < interleaved.makespan_s
    assert (gathered.throughput_tokens_per_s
            > interleaved.throughput_tokens_per_s)
    assert gathered.n_expert_kernels < gathered.n_expert_ops
    assert interleaved.n_expert_kernels == interleaved.n_expert_ops
    assert gathered.gather.expert_amortization > 1.0
    assert gathered.gather.max_group_size > 1


def test_gathered_batch1_equals_interleaved_batch1(daop, tiny_bundle):
    """With one resident sequence there is nothing to gather: the two
    modes must produce identical schedules."""
    requests = _requests(tiny_bundle, n=2)
    interleaved = ContinuousBatchScheduler(
        daop, max_batch=1, mode=INTERLEAVED
    ).run(requests)
    gathered = ContinuousBatchScheduler(
        daop, max_batch=1, mode=GATHERED
    ).run(requests)
    assert interleaved.makespan_s == gathered.makespan_s
    for a, b in zip(interleaved.records, gathered.records):
        assert np.array_equal(a.result.tokens, b.result.tokens)
        assert a.finish_s == b.finish_s


def test_gathered_results_pass_invariant_audit(
        fiddler, tiny_bundle, audit_result):
    report = ContinuousBatchScheduler(
        fiddler, max_batch=4, mode=GATHERED
    ).run(_requests(tiny_bundle))
    for record in report.records:
        audit_result(fiddler, record.result)


def test_batch_report_json_carries_mode_and_kernels(fiddler, tiny_bundle):
    report = ContinuousBatchScheduler(
        fiddler, max_batch=4, mode=GATHERED
    ).run(_requests(tiny_bundle))
    payload = json.loads(report.to_json())
    assert payload["mode"] == GATHERED
    assert payload["n_expert_kernels"] < payload["n_expert_ops"]
    assert payload["expert_amortization"] > 1.0


# ---- gathered prefill --------------------------------------------------------


def test_gathered_prefill_defaults_follow_mode(daop):
    assert ContinuousBatchScheduler(
        daop, max_batch=2, mode=GATHERED
    ).gathered_prefill
    assert not ContinuousBatchScheduler(
        daop, max_batch=2, mode=INTERLEAVED
    ).gathered_prefill


def test_gathered_prefill_rejected_in_interleaved_mode(daop):
    with pytest.raises(ValueError):
        ContinuousBatchScheduler(daop, max_batch=2, mode=INTERLEAVED,
                                 gathered_prefill=True)


def test_gathered_prefill_opt_out_leaves_prefill_solo(daop, tiny_bundle):
    """Opting out keeps decode gathering but never forms prefill cohorts."""
    requests = _requests(tiny_bundle)
    solo_prefill = ContinuousBatchScheduler(
        daop, max_batch=4, mode=GATHERED, gathered_prefill=False
    ).run(requests)
    assert solo_prefill.gather.prefill_expert_kernels == 0
    assert solo_prefill.gather.expert_kernels < solo_prefill.gather.expert_ops
    cohort = ContinuousBatchScheduler(
        daop, max_batch=4, mode=GATHERED
    ).run(requests)
    assert cohort.gather.prefill_expert_kernels > 0
    # Either way the token streams match.
    for a, b in zip(solo_prefill.records, cohort.records):
        assert np.array_equal(a.result.tokens, b.result.tokens)


def test_batch_report_json_carries_phase_stats(fiddler, tiny_bundle):
    report = ContinuousBatchScheduler(
        fiddler, max_batch=4, mode=GATHERED
    ).run(_requests(tiny_bundle))
    payload = json.loads(report.to_json())
    phases = payload["phases"]
    prefill, decode = phases["prefill"], phases["decode"]
    assert prefill["expert_kernels"] < prefill["expert_ops"]
    assert prefill["expert_amortization"] > 1.0
    assert prefill["attn_kernels"] > 0
    assert prefill["gate_kernels"] > 0
    assert prefill["lm_head_kernels"] == 1  # all 4 prompts, one bucket
    assert decode["expert_kernels"] < decode["expert_ops"]
    assert (prefill["expert_ops"] + decode["expert_ops"]
            == payload["n_expert_ops"])
