"""Unit tests for the benchmark regression gate (`repro.perf.perf_delta`).

The committed ``BENCH_*.json`` artifacts double as baselines: the gate
diffs a candidate rerun against them and fails on throughput/speedup
regressions beyond a threshold.  The intentional-regression tests below
degrade the committed artifacts themselves, proving the gate actually
fires on the exact payload shape CI feeds it.
"""

import copy
import json
from pathlib import Path

import pytest

from repro.perf import (
    BATCH_BENCH,
    COMPUTE_BENCH,
    DEFAULT_THRESHOLD,
    MetricDelta,
    detect_kind,
    diff_batch_bench,
    diff_benchmarks,
    diff_compute_bench,
    load_benchmark,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def batch_payload():
    return load_benchmark(str(REPO_ROOT / "BENCH_batch.json"))


@pytest.fixture(scope="module")
def compute_payload():
    return load_benchmark(str(REPO_ROOT / "BENCH_compute.json"))


class TestMetricDelta:
    def test_relative_delta(self):
        delta = MetricDelta(metric="m", baseline=100.0, candidate=85.0)
        assert delta.delta == pytest.approx(-0.15)

    def test_zero_baseline_reports_zero(self):
        assert MetricDelta(metric="m", baseline=0.0,
                           candidate=5.0).delta == 0.0


class TestDetectKind:
    def test_committed_artifacts(self, batch_payload, compute_payload):
        assert detect_kind(batch_payload) == BATCH_BENCH
        assert detect_kind(compute_payload) == COMPUTE_BENCH

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError,
                           match="unrecognized benchmark artifact"):
            detect_kind({"something": "else"})


class TestBatchDiff:
    def test_self_diff_is_clean(self, batch_payload):
        report = diff_batch_bench(batch_payload, batch_payload)
        assert report.ok
        assert report.problems == []
        assert len(report.deltas) == len(batch_payload["runs"])
        assert all(d.delta == 0.0 for d in report.deltas)
        assert "-> ok" in report.format()

    def test_intentional_regression_fires(self, batch_payload):
        candidate = copy.deepcopy(batch_payload)
        candidate["runs"][0]["throughput_tokens_per_s"] *= 0.8
        report = diff_batch_bench(batch_payload, candidate)
        assert not report.ok
        assert len(report.regressions) == 1
        regressed = report.regressions[0]
        assert regressed.delta == pytest.approx(-0.2)
        assert "REGRESSION" in report.format()
        assert "FAIL" in report.format()

    def test_improvement_is_not_flagged(self, batch_payload):
        candidate = copy.deepcopy(batch_payload)
        for run in candidate["runs"]:
            run["throughput_tokens_per_s"] *= 1.2
        report = diff_batch_bench(batch_payload, candidate)
        assert report.ok
        assert report.regressions == []

    def test_threshold_is_respected(self, batch_payload):
        candidate = copy.deepcopy(batch_payload)
        candidate["runs"][0]["throughput_tokens_per_s"] *= 0.9
        assert diff_batch_bench(batch_payload, candidate,
                                threshold=DEFAULT_THRESHOLD).ok
        assert not diff_batch_bench(batch_payload, candidate,
                                    threshold=0.05).ok

    def test_missing_run_is_a_structural_problem(self, batch_payload):
        candidate = copy.deepcopy(batch_payload)
        dropped = candidate["runs"].pop(0)
        report = diff_batch_bench(batch_payload, candidate)
        assert not report.ok
        assert any(dropped["engine"] in p for p in report.problems)


class TestComputeDiff:
    def test_self_diff_is_clean(self, compute_payload):
        report = diff_compute_bench(compute_payload, compute_payload)
        assert report.ok
        assert report.deltas  # both speedup sections compared
        assert all(d.delta == 0.0 for d in report.deltas)

    def test_halved_speedup_fires(self, compute_payload):
        candidate = copy.deepcopy(compute_payload)
        candidate["differential_audit"]["speedup"] *= 0.5
        report = diff_compute_bench(compute_payload, candidate)
        assert not report.ok
        assert any("differential_audit" in d.metric
                   for d in report.regressions)


class TestDiffBenchmarks:
    def test_auto_detects_both_kinds(self, batch_payload,
                                     compute_payload):
        assert diff_benchmarks(batch_payload,
                               batch_payload).kind == BATCH_BENCH
        assert diff_benchmarks(compute_payload,
                               compute_payload).kind == COMPUTE_BENCH

    def test_kind_mismatch_rejected(self, batch_payload,
                                    compute_payload):
        with pytest.raises(ValueError, match="cannot diff"):
            diff_benchmarks(batch_payload, compute_payload)


class TestLoadBenchmark:
    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_benchmark(str(path))

    def test_rejects_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            load_benchmark(str(path))
