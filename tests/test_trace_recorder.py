"""Unit tests for routing-trace recording and aggregation."""

import numpy as np
import pytest

from repro.trace.recorder import DECODE, PREFILL, ActivationTrace


@pytest.fixture()
def trace():
    return ActivationTrace(n_blocks=2, n_experts=4)


def test_record_and_count(trace):
    trace.record(PREFILL, 0, 0, [0, 1])
    trace.record(PREFILL, 0, 1, [0, 2])
    trace.record(PREFILL, 1, 0, [3, 1])
    counts = trace.activation_counts(PREFILL)
    np.testing.assert_array_equal(counts[0], [2, 1, 1, 0])
    np.testing.assert_array_equal(counts[1], [0, 1, 0, 1])


def test_phase_separation(trace):
    trace.record(PREFILL, 0, 0, [0, 1])
    trace.record(DECODE, 0, 1, [2, 3])
    assert trace.activation_counts(PREFILL)[0].sum() == 2
    assert trace.activation_counts(DECODE)[0].sum() == 2
    assert trace.activation_counts(None)[0].sum() == 4


def test_invalid_phase(trace):
    with pytest.raises(ValueError):
        trace.record("warmup", 0, 0, [0])


def test_activation_matrix_normalized(trace):
    """Matrix rows are per-token routing fractions (paper P/D matrices)."""
    trace.record(DECODE, 0, 0, [0, 1])
    trace.record(DECODE, 0, 1, [0, 2])
    trace.record(DECODE, 1, 0, [0, 1])
    trace.record(DECODE, 1, 1, [0, 1])
    matrix = trace.activation_matrix(DECODE)
    np.testing.assert_allclose(matrix[0], [1.0, 0.5, 0.5, 0.0])
    # Each row sums to top_k when every token routes to top_k experts.
    np.testing.assert_allclose(matrix.sum(axis=1), [2.0, 2.0])


def test_executed_vs_selected(trace):
    trace.record(DECODE, 0, 0, [0, 1], executed_experts=[0, 3])
    selected = trace.activation_counts(DECODE, executed=False)
    executed = trace.activation_counts(DECODE, executed=True)
    np.testing.assert_array_equal(selected[0], [1, 1, 0, 0])
    np.testing.assert_array_equal(executed[0], [1, 0, 0, 1])


def test_token_count(trace):
    trace.record(DECODE, 0, 5, [0])
    trace.record(DECODE, 0, 6, [1])
    trace.record(DECODE, 1, 5, [2])  # other block, same position
    assert trace.token_count(DECODE) == 2
    assert trace.token_count(PREFILL) == 0


def test_decode_window_matrices(trace):
    for pos in range(6):
        trace.record(DECODE, 0, pos, [pos % 4, (pos + 1) % 4])
        trace.record(DECODE, 1, pos, [0, 1])
    windows = trace.decode_window_matrices(window=3)
    assert len(windows) == 2
    # Block 1 routed identically in both windows.
    np.testing.assert_allclose(windows[0][1], windows[1][1])


def test_window_validation(trace):
    with pytest.raises(ValueError):
        trace.decode_window_matrices(0)


def test_empty_trace(trace):
    assert trace.decode_window_matrices(15) == []
    assert trace.activation_matrix(DECODE).sum() == 0
