"""Unit tests for grouped-query attention and the KV cache."""

import numpy as np
import pytest

from repro.model.attention import GroupedQueryAttention, KVCache
from repro.model.config import SimSpec


@pytest.fixture()
def sim():
    return SimSpec(d_model=32, n_heads=4, n_kv_heads=2, d_ff=48,
                   vocab_size=64)


@pytest.fixture()
def attn(sim, rng):
    return GroupedQueryAttention(sim, rng)


class TestKVCache:
    def test_append_and_len(self):
        cache = KVCache(2, 8)
        k = np.ones((2, 3, 8), dtype=np.float32)
        cache.append(k, k)
        assert len(cache) == 3
        assert cache.keys.shape == (2, 3, 8)

    def test_growth_preserves_contents(self, rng):
        cache = KVCache(1, 4)
        chunks = [rng.standard_normal((1, 40, 4)).astype(np.float32)
                  for _ in range(4)]
        for c in chunks:
            cache.append(c, c)
        expected = np.concatenate(chunks, axis=1)
        np.testing.assert_allclose(cache.keys, expected)

    def test_truncate(self, rng):
        cache = KVCache(1, 4)
        data = rng.standard_normal((1, 10, 4)).astype(np.float32)
        cache.append(data, data)
        cache.truncate(4)
        assert len(cache) == 4
        np.testing.assert_allclose(cache.keys, data[:, :4])

    def test_truncate_invalid(self):
        cache = KVCache(1, 4)
        with pytest.raises(ValueError):
            cache.truncate(5)


class TestAttention:
    def test_output_shape(self, attn, rng):
        cache = attn.new_cache()
        x = rng.standard_normal((5, 32)).astype(np.float32)
        out = attn(x, cache, np.arange(5))
        assert out.shape == (5, 32)
        assert len(cache) == 5

    def test_incremental_matches_batch(self, attn, sim, rng):
        """Prefill-then-decode must equal one-shot processing (causality)."""
        x = rng.standard_normal((6, 32)).astype(np.float32)
        cache_full = attn.new_cache()
        full = attn(x, cache_full, np.arange(6))

        cache_inc = attn.new_cache()
        first = attn(x[:4], cache_inc, np.arange(4))
        np.testing.assert_allclose(first, full[:4], rtol=1e-4, atol=1e-5)
        for i in range(4, 6):
            step = attn(x[i : i + 1], cache_inc, np.array([i]))
            np.testing.assert_allclose(step, full[i : i + 1], rtol=1e-4,
                                       atol=1e-5)

    def test_causality(self, attn, rng):
        """Future tokens must not influence earlier outputs."""
        x = rng.standard_normal((6, 32)).astype(np.float32)
        out_full = attn(x, attn.new_cache(), np.arange(6))
        y = x.copy()
        y[5] += 10.0  # change only the last token
        out_mod = attn(y, attn.new_cache(), np.arange(6))
        np.testing.assert_allclose(out_mod[:5], out_full[:5], rtol=1e-4,
                                   atol=1e-5)
        assert not np.allclose(out_mod[5], out_full[5])

    def test_param_count(self, attn, sim):
        q = sim.d_model * sim.d_model
        kv = 2 * sim.d_model * sim.n_kv_heads * sim.head_dim
        o = sim.d_model * sim.d_model
        assert attn.n_params == q + kv + o
