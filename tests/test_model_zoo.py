"""Zoo tests: paper-scale parameter accounting (Fig. 1 and Table III)."""

import pytest

from repro.model.zoo import (
    MIXTRAL_8X7B_ARCH,
    PHI_3_5_MOE_ARCH,
    build_mixtral_8x7b_sim,
    build_phi_3_5_moe_sim,
    build_tiny_moe,
)


class TestMixtralArch:
    def test_total_params(self):
        """Paper Table III: 46.6 B total parameters."""
        assert MIXTRAL_8X7B_ARCH.total_params / 1e9 == pytest.approx(
            46.6, abs=0.15
        )

    def test_expert_params(self):
        """Paper Table III: 45.1 B expert parameters."""
        assert MIXTRAL_8X7B_ARCH.total_expert_params / 1e9 == pytest.approx(
            45.1, abs=0.1
        )

    def test_activated_fraction(self):
        """Paper Fig. 1: 27.4 % of parameters activated per token."""
        assert MIXTRAL_8X7B_ARCH.activated_fraction == pytest.approx(
            0.274, abs=0.005
        )

    def test_topology(self):
        assert MIXTRAL_8X7B_ARCH.n_blocks == 32
        assert MIXTRAL_8X7B_ARCH.n_experts == 8
        assert MIXTRAL_8X7B_ARCH.top_k == 2

    def test_expert_bytes_fp16(self):
        """One Mixtral expert is ~352 MB in fp16 (3 x 4096 x 14336)."""
        assert MIXTRAL_8X7B_ARCH.expert_bytes / 1e6 == pytest.approx(
            352.3, abs=1.0
        )


class TestPhiArch:
    def test_total_params(self):
        """Paper Table III: 41.7 B total parameters."""
        assert PHI_3_5_MOE_ARCH.total_params / 1e9 == pytest.approx(
            41.7, abs=0.15
        )

    def test_expert_params(self):
        """Paper Table III: 40.3 B expert parameters."""
        assert PHI_3_5_MOE_ARCH.total_expert_params / 1e9 == pytest.approx(
            40.3, abs=0.1
        )

    def test_topology(self):
        assert PHI_3_5_MOE_ARCH.n_blocks == 32
        assert PHI_3_5_MOE_ARCH.n_experts == 16
        assert PHI_3_5_MOE_ARCH.top_k == 2


class TestBuilders:
    def test_mixtral_topology_mirrored(self):
        bundle = build_mixtral_8x7b_sim(seed=0, n_blocks=4)
        assert bundle.model.n_blocks == 4
        assert bundle.model.n_experts == 8
        assert bundle.model.top_k == 2
        assert bundle.arch is MIXTRAL_8X7B_ARCH

    def test_phi_topology_mirrored(self):
        bundle = build_phi_3_5_moe_sim(seed=0, n_blocks=4)
        assert bundle.model.n_experts == 16

    def test_default_block_count_from_arch(self):
        bundle = build_mixtral_8x7b_sim(seed=0)
        assert bundle.model.n_blocks == 32

    def test_tiny(self):
        bundle = build_tiny_moe(seed=0, n_blocks=3)
        assert bundle.model.n_blocks == 3
        assert bundle.model.n_experts == 4
        assert len(bundle.tokenizer) == bundle.vocab.vocab_size

    def test_tokenizer_attached(self):
        bundle = build_tiny_moe(seed=0)
        text = bundle.tokenizer.decode([5, 6, 7])
        assert len(text.split()) == 3
