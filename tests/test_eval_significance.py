"""Unit tests for bootstrap significance helpers."""

import numpy as np
import pytest

from repro.eval.significance import (
    bootstrap_mean,
    paired_difference,
    significantly_below,
)


def test_bootstrap_mean_centers_on_mean(rng):
    scores = rng.random(60)
    ci = bootstrap_mean(scores, seed=1)
    assert ci.lower <= ci.mean <= ci.upper
    assert ci.mean == pytest.approx(float(scores.mean()))


def test_constant_scores_zero_width():
    ci = bootstrap_mean([0.5] * 20)
    assert ci.lower == ci.upper == ci.mean == 0.5
    assert ci.width == 0.0


def test_wider_confidence_wider_interval(rng):
    scores = rng.random(40)
    narrow = bootstrap_mean(scores, confidence=0.8, seed=2)
    wide = bootstrap_mean(scores, confidence=0.99, seed=2)
    assert wide.width >= narrow.width


def test_more_samples_narrower_interval(rng):
    small = bootstrap_mean(rng.random(10), seed=3)
    large = bootstrap_mean(rng.random(1000), seed=3)
    assert large.width < small.width


def test_contains():
    ci = bootstrap_mean([0.0, 1.0] * 20, seed=4)
    assert ci.contains(0.5)
    assert not ci.contains(2.0)


def test_validation():
    with pytest.raises(ValueError):
        bootstrap_mean([])
    with pytest.raises(ValueError):
        bootstrap_mean([1.0], confidence=1.5)
    with pytest.raises(ValueError):
        paired_difference([1.0, 0.0], [1.0])


def test_paired_difference_detects_gap(rng):
    better = (rng.random(80) < 0.9).astype(float)
    worse = (rng.random(80) < 0.3).astype(float)
    ci = paired_difference(better, worse, seed=5)
    assert ci.lower > 0.0  # significantly better
    assert significantly_below(worse, better)
    assert not significantly_below(better, worse)


def test_paired_difference_no_gap_on_identical(rng):
    scores = (rng.random(50) < 0.5).astype(float)
    ci = paired_difference(scores, scores, seed=6)
    assert ci.contains(0.0)
    assert not significantly_below(scores, scores)
