"""Quality gate: every public item in the library carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, "repro.")
)


def _public_members(module):
    for attr_name in dir(module):
        if attr_name.startswith("_"):
            continue
        member = getattr(module, attr_name)
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        if inspect.isclass(member) or inspect.isfunction(member):
            yield attr_name, member


def test_all_modules_have_docstrings():
    missing = []
    for name in MODULES:
        module = importlib.import_module(name)
        if not (module.__doc__ or "").strip():
            missing.append(name)
    assert not missing, f"modules without docstrings: {missing}"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for attr_name, member in _public_members(module):
        if not (member.__doc__ or "").strip():
            missing.append(f"{module_name}.{attr_name}")
        if inspect.isclass(member):
            for meth_name, meth in inspect.getmembers(
                member, inspect.isfunction
            ):
                if meth_name.startswith("_"):
                    continue
                if meth.__qualname__.split(".")[0] != member.__name__:
                    continue  # inherited
                if not (meth.__doc__ or "").strip():
                    missing.append(
                        f"{module_name}.{attr_name}.{meth_name}"
                    )
    assert not missing, f"undocumented public items: {missing}"
