"""Unit tests for pluggable eviction policies."""

import numpy as np
import pytest

from repro.memory.policies import (
    LFU,
    LRU,
    PRIORITY,
    EvictionPolicyCache,
)


class TestLRUPolicy:
    def test_matches_lru_semantics(self):
        cache = EvictionPolicyCache(2, policy=LRU)
        cache.admit(1)
        cache.admit(2)
        cache.touch(1)
        assert cache.admit(3) == 2


class TestLFUPolicy:
    def test_evicts_least_frequent(self):
        cache = EvictionPolicyCache(2, policy=LFU)
        cache.admit(1)
        cache.admit(2)
        cache.touch(1)
        cache.touch(1)
        cache.touch(2)
        assert cache.admit(3) == 2  # freq(1)=3, freq(2)=2

    def test_admission_counts_as_use(self):
        cache = EvictionPolicyCache(2, policy=LFU)
        cache.admit(1)
        cache.touch(1)
        cache.admit(2)
        assert cache.admit(3) == 2


class TestPriorityPolicy:
    def test_evicts_lowest_priority(self):
        priorities = np.array([0.9, 0.1, 0.5, 0.7])
        cache = EvictionPolicyCache(2, policy=PRIORITY,
                                    priorities=priorities)
        cache.admit(0)
        cache.admit(1)
        # Recency is irrelevant: expert 1 has the lowest offline priority.
        cache.touch(1)
        assert cache.admit(2) == 1

    def test_requires_priorities(self):
        with pytest.raises(ValueError):
            EvictionPolicyCache(2, policy=PRIORITY)


class TestCommon:
    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            EvictionPolicyCache(2, policy="random")

    def test_negative_capacity(self):
        with pytest.raises(ValueError):
            EvictionPolicyCache(-1)

    def test_zero_capacity(self):
        cache = EvictionPolicyCache(0)
        assert cache.admit(1) is None
        assert 1 not in cache

    def test_readmission_refreshes(self):
        cache = EvictionPolicyCache(2, policy=LRU)
        cache.admit(1)
        cache.admit(2)
        assert cache.admit(1) is None
        assert cache.admit(3) == 2

    def test_touch_missing(self):
        cache = EvictionPolicyCache(2)
        with pytest.raises(KeyError):
            cache.touch(5)

    def test_seed(self):
        cache = EvictionPolicyCache(3, policy=LRU)
        cache.seed([4, 5, 6])
        assert len(cache) == 3
        assert cache.admit(7) == 4


def test_on_demand_engine_accepts_policy(tiny_bundle, platform,
                                         tiny_calibration):
    from repro.core.baselines.on_demand import MoEOnDemandEngine
    from repro.memory.cache import CacheConfig
    from repro.workloads import C4, SequenceGenerator

    gen = SequenceGenerator(C4, tiny_bundle.vocab, seed=111)
    seq = gen.sample_sequence(12, 6, sample_idx=0)
    tokens = {}
    for policy in (LRU, LFU, PRIORITY):
        engine = MoEOnDemandEngine(
            tiny_bundle, platform, cache_config=CacheConfig(ecr=0.25),
            calibration_probs=tiny_calibration, eviction_policy=policy,
        )
        result = engine.generate(seq.prompt_tokens, 6)
        tokens[policy] = result.tokens
    # Policies change schedules, never math: identical outputs.
    np.testing.assert_array_equal(tokens[LRU], tokens[LFU])
    np.testing.assert_array_equal(tokens[LRU], tokens[PRIORITY])
