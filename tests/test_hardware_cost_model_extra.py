"""Additional cost-model coverage: scaling laws and cross-model effects."""

import pytest

from repro.hardware.cost_model import CostModel
from repro.model.zoo import MIXTRAL_8X7B_ARCH, PHI_3_5_MOE_ARCH


@pytest.fixture()
def mixtral_cm(platform):
    return CostModel(MIXTRAL_8X7B_ARCH, platform)


@pytest.fixture()
def phi_cm(platform):
    return CostModel(PHI_3_5_MOE_ARCH, platform)


def test_phi_expert_cheaper_than_mixtral(mixtral_cm, phi_cm, platform):
    """Phi's d_ff=6400 experts are ~2.2x smaller than Mixtral's 14336."""
    mixtral = mixtral_cm.expert_time(platform.gpu, 1)
    phi = phi_cm.expert_time(platform.gpu, 1)
    assert phi < mixtral
    ratio = mixtral_cm.arch.expert_bytes / phi_cm.arch.expert_bytes
    assert ratio == pytest.approx(14336 / 6400, rel=0.01)


def test_phi_transfer_cheaper(mixtral_cm, phi_cm):
    assert (phi_cm.expert_transfer_time()
            < mixtral_cm.expert_transfer_time())


def test_embed_time_scales_with_tokens(mixtral_cm, platform):
    one = mixtral_cm.embed_time(platform.gpu, 1)
    many = mixtral_cm.embed_time(platform.gpu, 256)
    assert many > one


def test_lm_head_heavier_than_gate(mixtral_cm, platform):
    """The weight-tied head touches the whole embedding table."""
    assert (mixtral_cm.lm_head_time(platform.gpu, 1)
            > mixtral_cm.gate_time(platform.gpu, 1))


def test_activation_transfer_scales_sublinearly(mixtral_cm):
    """Small transfers are latency-dominated (paper Table I: 0.02 ms)."""
    one = mixtral_cm.activation_transfer_time(1)
    hundred = mixtral_cm.activation_transfer_time(100)
    assert hundred < 100 * one


def test_gpu_faster_than_cpu_everywhere(mixtral_cm, platform):
    """Paper §VI-A assumption (2) holds on the modeled platform."""
    for n_tokens in (1, 16, 256):
        assert (mixtral_cm.expert_time(platform.gpu, n_tokens)
                < mixtral_cm.expert_time(platform.cpu, n_tokens))
        assert (mixtral_cm.non_moe_time(platform.gpu, n_tokens, 256)
                < mixtral_cm.non_moe_time(platform.cpu, n_tokens, 256))


def test_cpu_expert_cheaper_than_transfer(mixtral_cm, platform):
    """Paper §VI-A assumption (3): executing on the CPU beats moving the
    expert to the GPU, at decode batch size."""
    assert (mixtral_cm.expert_time(platform.cpu, 1)
            < mixtral_cm.expert_transfer_time())


def test_dequant_time_small_vs_transfer(mixtral_cm, platform):
    assert (mixtral_cm.dequant_time(platform.gpu, 0.25)
            < mixtral_cm.expert_transfer_time(0.25))


def test_block_time_additivity(mixtral_cm, platform):
    parts = (
        mixtral_cm.non_moe_time(platform.gpu, 1, 256)
        + mixtral_cm.gate_time(platform.gpu, 1)
        + 2 * mixtral_cm.expert_time(platform.gpu, 1)
    )
    assert mixtral_cm.block_time(platform.gpu, 1, 256) == pytest.approx(
        parts
    )
