"""Property-based tests for Algorithm 1 and graceful degradation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.allocation import plan_block_swaps
from repro.core.precalc import apply_graceful_degradation
from repro.hardware.device import DeviceKind
from repro.memory.placement import ExpertPlacement

N_EXPERTS = 8


def placement_from_mask(mask):
    p = ExpertPlacement(1, N_EXPERTS)
    for e, on_gpu in enumerate(mask):
        if on_gpu:
            p.set_device(0, e, DeviceKind.GPU)
    return p


activities = arrays(np.float64, N_EXPERTS,
                    elements=st.floats(0.0, 100.0, allow_nan=False))
masks = st.lists(st.booleans(), min_size=N_EXPERTS, max_size=N_EXPERTS)
thresholds = st.floats(1.0, 2.0)


@settings(max_examples=80)
@given(activities, masks, thresholds)
def test_swaps_are_valid_and_justified(activity, mask, threshold):
    placement = placement_from_mask(mask)
    plans = plan_block_swaps(0, activity, placement, threshold)
    hot_seen = set()
    cold_seen = set()
    for plan in plans:
        # Directions respect residency.
        assert not placement.is_on_gpu(0, plan.hot_expert)
        assert placement.is_on_gpu(0, plan.cold_expert)
        # The threshold justified the swap.
        assert plan.hot_activity >= threshold * plan.cold_activity
        # No expert appears in two swaps.
        assert plan.hot_expert not in hot_seen
        assert plan.cold_expert not in cold_seen
        hot_seen.add(plan.hot_expert)
        cold_seen.add(plan.cold_expert)
    assert len(plans) <= N_EXPERTS // 2


@settings(max_examples=80)
@given(activities, masks)
def test_swap_count_bounded_by_minority_side(activity, mask):
    placement = placement_from_mask(mask)
    plans = plan_block_swaps(0, activity, placement)
    n_gpu = placement.gpu_count(0)
    n_cpu = N_EXPERTS - n_gpu
    assert len(plans) <= min(n_gpu, n_cpu, N_EXPERTS // 2)


logits_strategy = arrays(np.float64, N_EXPERTS,
                         elements=st.floats(-5.0, 5.0, allow_nan=False))


@settings(max_examples=80)
@given(logits_strategy, masks, st.integers(0, 2))
def test_degradation_invariants(logits, mask, max_cpu):
    placement = placement_from_mask(mask)
    predicted = np.argsort(-logits, kind="stable")[:2]
    result = apply_graceful_degradation(
        0, predicted, logits, placement, max_cpu_experts=max_cpu
    )
    # Size preserved, no duplicates.
    assert len(result.experts) == 2
    assert len(set(result.experts.tolist())) == 2
    # Replacements and substitutes pair up.
    assert len(result.replaced) == len(result.substitutes)
    # Substitutes are GPU-resident and were not predicted.
    for sub in result.substitutes:
        assert placement.is_on_gpu(0, sub)
        assert sub not in predicted
    # CPU-expert cap holds whenever enough GPU substitutes existed.
    n_gpu_available = sum(
        1 for e in range(N_EXPERTS)
        if placement.is_on_gpu(0, e) and e not in predicted
    )
    on_cpu = sum(1 for e in result.experts
                 if not placement.is_on_gpu(0, int(e)))
    over_cap = max(0, sum(
        1 for e in predicted if not placement.is_on_gpu(0, int(e))
    ) - max_cpu)
    expected_remaining = max(over_cap - n_gpu_available, 0) + min(
        max_cpu, sum(1 for e in predicted
                     if not placement.is_on_gpu(0, int(e)))
    )
    assert on_cpu <= expected_remaining + 1e-9


@settings(max_examples=80)
@given(logits_strategy, masks)
def test_degradation_keeps_descending_score_order(logits, mask):
    placement = placement_from_mask(mask)
    predicted = np.argsort(-logits, kind="stable")[:2]
    result = apply_graceful_degradation(0, predicted, logits, placement)
    scores = logits[result.experts]
    assert scores[0] >= scores[1] - 1e-12
