"""Cross-engine serving integration: speed compounds into tail latency."""

import pytest

from repro.core import build_engine
from repro.serving import ServingSimulator, uniform_arrivals
from repro.workloads import SHAREGPT, SequenceGenerator

N_REQUESTS = 5
PROMPT = 16
OUTPUT = 10


@pytest.fixture(scope="module")
def reports(tiny_bundle, platform, tiny_calibration):
    out = {}
    # Arrivals tight enough that the slow engine is forced to queue.
    arrivals = uniform_arrivals(20.0, N_REQUESTS)
    for name in ("moe-ondemand", "fiddler", "daop"):
        engine = build_engine(name, tiny_bundle, platform, 0.25,
                              tiny_calibration)
        generator = SequenceGenerator(SHAREGPT, tiny_bundle.vocab,
                                      seed=121)
        out[name] = ServingSimulator(engine, generator).run(
            arrivals, PROMPT, OUTPUT
        )
    return out


def test_all_served(reports):
    for report in reports.values():
        assert report.n_requests == N_REQUESTS


def test_faster_engine_higher_throughput(reports):
    assert (reports["daop"].throughput_tokens_per_s
            >= reports["fiddler"].throughput_tokens_per_s)
    assert (reports["fiddler"].throughput_tokens_per_s
            > reports["moe-ondemand"].throughput_tokens_per_s)


def test_queueing_amplifies_tail_latency(reports):
    """Under identical arrivals, service-time gaps compound at p95."""
    assert (reports["daop"].latency_percentile(95)
            < reports["moe-ondemand"].latency_percentile(95))
    assert (reports["daop"].mean_queue_delay_s
            <= reports["moe-ondemand"].mean_queue_delay_s)


def test_ttft_ordering(reports):
    assert (reports["daop"].ttft_percentile(95)
            < reports["moe-ondemand"].ttft_percentile(95))
