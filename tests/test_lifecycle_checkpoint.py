"""Checkpoint/restore across the serving stack: parity and rejection.

The lifecycle invariant (docs/lifecycle.md): freezing any simulation
between ticks, pushing the checkpoint through real JSON bytes, and
restoring it into a freshly built simulator finishes with a bitwise
identical report.  The envelope must also *refuse* to resume anything
it cannot resume faithfully — corrupted bytes, version skew, a foreign
simulator kind, or a mismatched configuration.
"""

import json

import numpy as np
import pytest

from repro.cluster import ClusterSimulator, build_policy
from repro.core import build_engine
from repro.events import CHECKPOINT_RESTORE, CHECKPOINT_SAVE
from repro.serving import (
    CheckpointError,
    SERVING_KIND,
    ServingSimulator,
    SimCheckpoint,
    load_checkpoint,
    poisson_arrivals,
    save_checkpoint,
)
from repro.workloads import SHAREGPT, SequenceGenerator
from repro.workloads.requests import RequestSpec


def make_specs(bundle, n=4, prompt_len=12, output_len=5, seed=7,
               rate=0.05):
    """A small deterministic heterogeneous request list."""
    generator = SequenceGenerator(SHAREGPT, bundle.vocab, seed=seed)
    arrivals = np.sort(poisson_arrivals(rate, n,
                                        np.random.default_rng(seed)))
    specs = []
    for i, arrival in enumerate(arrivals):
        sequence = generator.sample_sequence(prompt_len, output_len,
                                             sample_idx=i)
        specs.append(RequestSpec(
            request_id=i,
            arrival_s=float(arrival),
            prompt_tokens=sequence.prompt_tokens,
            output_len=output_len,
            forced_tokens=sequence.continuation_tokens,
            dataset=SHAREGPT.name,
            sample_idx=i,
        ))
    return specs


def serving_records(report):
    """JSON-stable per-request tuples for bitwise comparison."""
    return [
        (r.request_id, r.arrival_s, r.start_s, r.first_token_s,
         r.finish_s, r.n_prompt_tokens, r.n_generated, r.energy_j)
        for r in sorted(report.requests, key=lambda r: r.request_id)
    ]


def cluster_records(report):
    return [
        (r.request_id, r.replica, r.arrival_s, r.start_s,
         r.first_token_s, r.finish_s, r.n_generated, r.energy_j)
        for r in sorted(report.requests, key=lambda r: r.request_id)
    ]


def json_round_trip(checkpoint):
    """Serialize a checkpoint to real bytes and back, as disk would."""
    return SimCheckpoint.from_dict(
        json.loads(json.dumps(checkpoint.to_dict(), sort_keys=True))
    )


class TestSimCheckpointEnvelope:
    def _checkpoint(self):
        return SimCheckpoint(kind=SERVING_KIND, engine="daop",
                             payload={"concurrency": 2, "mode": "gathered",
                                      "scheduler": {"x": [1, 2]}})

    def test_round_trip_through_json(self):
        restored = json_round_trip(self._checkpoint())
        assert restored == self._checkpoint()

    def test_unknown_kind_rejected_at_construction(self):
        with pytest.raises(CheckpointError, match="unknown checkpoint"):
            SimCheckpoint(kind="warp-drive", engine="daop", payload={})

    def test_missing_payload_rejected(self):
        with pytest.raises(CheckpointError,
                           match="not a simulation checkpoint"):
            SimCheckpoint.from_dict({"version": 1, "kind": SERVING_KIND})
        with pytest.raises(CheckpointError,
                           match="not a simulation checkpoint"):
            SimCheckpoint.from_dict([1, 2, 3])

    def test_version_skew_rejected(self):
        data = self._checkpoint().to_dict()
        data["version"] = 99
        with pytest.raises(CheckpointError,
                           match="unsupported checkpoint version 99"):
            SimCheckpoint.from_dict(data)

    def test_corruption_rejected(self):
        data = self._checkpoint().to_dict()
        data["payload"]["concurrency"] = 3  # flip a bit, keep the digest
        with pytest.raises(CheckpointError, match="corrupted"):
            SimCheckpoint.from_dict(data)
        data = self._checkpoint().to_dict()
        data["engine"] = "fiddler"
        with pytest.raises(CheckpointError, match="corrupted"):
            SimCheckpoint.from_dict(data)

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "sim.ckpt.json"
        save_checkpoint(str(path), self._checkpoint())
        assert load_checkpoint(str(path)) == self._checkpoint()

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            load_checkpoint(str(path))

    def test_load_rejects_truncated_file(self, tmp_path):
        """A checkpoint cut off mid-write (a crashed saver) is refused."""
        path = tmp_path / "full.json"
        save_checkpoint(str(path), self._checkpoint())
        text = path.read_text()
        truncated = tmp_path / "truncated.json"
        truncated.write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(str(truncated))


class TestServingResumeParity:
    def _simulator(self, tiny_bundle, platform, tiny_calibration,
                   engine="daop", concurrency=2, mode="gathered"):
        built = build_engine(engine, tiny_bundle, platform, 0.5,
                             tiny_calibration)
        return ServingSimulator(built, concurrency=concurrency, mode=mode)

    @pytest.mark.parametrize("cut", [1, 3, 6])
    def test_resume_matches_uninterrupted_run(
            self, tiny_bundle, platform, tiny_calibration, cut):
        specs = make_specs(tiny_bundle)
        reference = self._simulator(
            tiny_bundle, platform, tiny_calibration).run_requests(specs)

        first = self._simulator(tiny_bundle, platform, tiny_calibration)
        session = first.begin_session(specs)
        alive = True
        for _ in range(cut):
            alive = first.tick(session)
            if not alive:
                break
        checkpoint = json_round_trip(first.checkpoint(session))

        second = self._simulator(tiny_bundle, platform, tiny_calibration)
        resumed = second.restore(checkpoint)
        while second.tick(resumed):
            pass
        report = second.finish_session(resumed)
        assert serving_records(report) == serving_records(reference)

    def test_config_mismatch_rejected(self, tiny_bundle, platform,
                                      tiny_calibration):
        first = self._simulator(tiny_bundle, platform, tiny_calibration,
                                concurrency=2)
        checkpoint = first.checkpoint(
            first.begin_session(make_specs(tiny_bundle)))
        narrower = self._simulator(tiny_bundle, platform,
                                   tiny_calibration, concurrency=1)
        with pytest.raises(CheckpointError,
                           match="serving configuration mismatch"):
            narrower.restore(checkpoint)
        other_mode = self._simulator(tiny_bundle, platform,
                                     tiny_calibration, concurrency=2,
                                     mode="interleaved")
        with pytest.raises(CheckpointError,
                           match="serving configuration mismatch"):
            other_mode.restore(checkpoint)

    def test_foreign_engine_rejected(self, tiny_bundle, platform,
                                     tiny_calibration):
        first = self._simulator(tiny_bundle, platform, tiny_calibration,
                                engine="daop")
        checkpoint = first.checkpoint(
            first.begin_session(make_specs(tiny_bundle)))
        other = self._simulator(tiny_bundle, platform, tiny_calibration,
                                engine="fiddler")
        with pytest.raises(CheckpointError):
            other.restore(checkpoint)

    def test_checkpoint_events_emitted(self, tiny_bundle, platform,
                                       tiny_calibration):
        simulator = self._simulator(tiny_bundle, platform,
                                    tiny_calibration)
        seen = []
        simulator.events.subscribe(
            seen.append, kinds=[CHECKPOINT_SAVE, CHECKPOINT_RESTORE])
        session = simulator.begin_session(make_specs(tiny_bundle))
        simulator.tick(session)
        checkpoint = simulator.checkpoint(session)
        simulator.restore(checkpoint)
        kinds = [event.kind for event in seen]
        assert kinds == [CHECKPOINT_SAVE, CHECKPOINT_RESTORE]
        assert seen[0].payload["sim_kind"] == SERVING_KIND
        assert seen[0].payload["engine"] == "daop"


class TestClusterResumeParity:
    def _simulator(self, tiny_bundle, platform, tiny_calibration,
                   n_replicas=2, policy="round-robin", **kwargs):
        engines = [
            build_engine("fiddler", tiny_bundle, platform, 0.5,
                         tiny_calibration)
            for _ in range(n_replicas)
        ]
        return ClusterSimulator(engines, None, build_policy(policy),
                                **kwargs)

    @pytest.mark.parametrize("cut", [1, 4])
    def test_resume_matches_uninterrupted_run(
            self, tiny_bundle, platform, tiny_calibration, cut):
        specs = make_specs(tiny_bundle, n=5, rate=0.02)
        reference = self._simulator(
            tiny_bundle, platform, tiny_calibration).run_requests(specs)

        first = self._simulator(tiny_bundle, platform, tiny_calibration)
        session = first.begin_session(specs)
        for _ in range(cut):
            if not first.tick(session):
                break
        checkpoint = json_round_trip(first.checkpoint(session))

        second = self._simulator(tiny_bundle, platform, tiny_calibration)
        resumed = second.restore(checkpoint)
        while second.tick(resumed):
            pass
        report = second.finish_session(resumed)
        assert cluster_records(report) == cluster_records(reference)
        assert report.to_json() == reference.to_json()

    def test_kind_mismatch_rejected_both_ways(
            self, tiny_bundle, platform, tiny_calibration):
        cluster = self._simulator(tiny_bundle, platform, tiny_calibration)
        cluster_ckpt = cluster.checkpoint(
            cluster.begin_session(make_specs(tiny_bundle, n=2)))

        engine = build_engine("fiddler", tiny_bundle, platform, 0.5,
                              tiny_calibration)
        serving = ServingSimulator(engine)
        serving_ckpt = serving.checkpoint(
            serving.begin_session(make_specs(tiny_bundle, n=2)))

        with pytest.raises(CheckpointError,
                           match="cannot resume on a serving simulator"):
            serving.restore(cluster_ckpt)
        with pytest.raises(
                CheckpointError,
                match="cannot restore a 'serving' checkpoint"):
            cluster.restore(serving_ckpt)

    def test_fleet_config_mismatch_rejected(
            self, tiny_bundle, platform, tiny_calibration):
        first = self._simulator(tiny_bundle, platform, tiny_calibration,
                                n_replicas=2)
        checkpoint = first.checkpoint(
            first.begin_session(make_specs(tiny_bundle, n=3)))
        bigger = self._simulator(tiny_bundle, platform, tiny_calibration,
                                 n_replicas=3)
        with pytest.raises(CheckpointError,
                           match="checkpoint n_replicas mismatch"):
            bigger.restore(checkpoint)
        other_policy = self._simulator(tiny_bundle, platform,
                                       tiny_calibration,
                                       policy="join-shortest-queue")
        with pytest.raises(CheckpointError,
                           match="checkpoint policy mismatch"):
            other_policy.restore(checkpoint)
