"""Unit tests for Rouge scoring."""

import pytest

from repro.eval.rouge import rouge_1, rouge_2, rouge_n


def test_identical_sequences():
    assert rouge_1([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)
    assert rouge_2([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)


def test_disjoint_sequences():
    assert rouge_1([1, 2], [3, 4]) == 0.0
    assert rouge_2([1, 2, 3], [4, 5, 6]) == 0.0


def test_partial_overlap_unigram():
    # hyp {1,2}, ref {2,3}: overlap 1; P = R = 0.5 -> F1 = 0.5
    assert rouge_1([1, 2], [2, 3]) == pytest.approx(0.5)


def test_bigram_order_sensitivity():
    assert rouge_2([1, 2, 3], [3, 2, 1]) == 0.0
    assert rouge_1([1, 2, 3], [3, 2, 1]) == pytest.approx(1.0)


def test_f1_symmetry():
    a, b = [1, 2, 3, 4], [2, 3]
    assert rouge_1(a, b) == pytest.approx(rouge_1(b, a))


def test_duplicate_counting():
    # hyp [1,1], ref [1]: clipped overlap 1; P=0.5, R=1 -> F1 = 2/3
    assert rouge_1([1, 1], [1]) == pytest.approx(2.0 / 3.0)


def test_empty_sequences():
    assert rouge_1([], []) == 1.0
    assert rouge_1([1], []) == 0.0
    assert rouge_1([], [1]) == 0.0
    assert rouge_2([1], [1]) == 1.0  # both have zero bigrams


def test_invalid_n():
    with pytest.raises(ValueError):
        rouge_n([1], [1], 0)


def test_bounds(rng):
    for _ in range(20):
        hyp = rng.integers(0, 5, size=rng.integers(1, 10)).tolist()
        ref = rng.integers(0, 5, size=rng.integers(1, 10)).tolist()
        score = rouge_2(hyp, ref)
        assert 0.0 <= score <= 1.0
