"""Cost-model tests, including the paper Table I reproduction."""

import pytest

from repro.hardware.cost_model import CostModel
from repro.model.zoo import MIXTRAL_8X7B_ARCH


@pytest.fixture()
def cm(table1_platform):
    return CostModel(MIXTRAL_8X7B_ARCH, table1_platform)


class TestTable1:
    """Paper Table I: block and migration times on A100 + Xeon 6326.

    Tolerances are deliberately loose (20 %): the point is that the
    calibrated model lands in the measured regime, preserving the ratios
    that drive every scheduling decision (expert upload ~32x a GPU block).
    """

    def test_gpu_block_time(self, cm):
        t = cm.block_time(cm.platform.gpu, n_tokens=1, context_len=256)
        assert t * 1e3 == pytest.approx(1.24, rel=0.20)

    def test_cpu_block_time(self, cm):
        t = cm.block_time(cm.platform.cpu, n_tokens=1, context_len=256)
        assert t * 1e3 == pytest.approx(8.02, rel=0.20)

    def test_expert_upload_time(self, cm):
        t = cm.expert_transfer_time()
        assert t * 1e3 == pytest.approx(39.87, rel=0.20)

    def test_activation_transfer_time(self, cm):
        t = cm.activation_transfer_time(1)
        assert t * 1e3 == pytest.approx(0.02, rel=0.5)

    def test_upload_much_slower_than_gpu_block(self, cm):
        """The paper's headline ratio: migration ~32x GPU block time."""
        ratio = cm.expert_transfer_time() / cm.block_time(
            cm.platform.gpu, 1, 256
        )
        assert 20 < ratio < 45

    def test_activations_tiny_vs_weights(self, cm):
        """Expert I/O is ~4 orders of magnitude below expert weights."""
        ratio = cm.arch.expert_bytes / cm.arch.hidden_state_bytes
        assert ratio > 10_000


class TestScaling:
    def test_prefill_cpu_compute_bound(self, cm):
        """CPU expert time grows ~linearly with token count (paper IV-B)."""
        t1 = cm.expert_time(cm.platform.cpu, 1)
        t256 = cm.expert_time(cm.platform.cpu, 256)
        assert t256 > 10 * t1

    def test_decode_gpu_memory_bound(self, cm):
        """At batch 1 the GPU expert op is weight-bandwidth bound."""
        t1 = cm.expert_time(cm.platform.gpu, 1)
        t8 = cm.expert_time(cm.platform.gpu, 8)
        assert t8 < 1.5 * t1

    def test_non_moe_grows_with_context(self, cm):
        short = cm.non_moe_time(cm.platform.gpu, 1, 128)
        long = cm.non_moe_time(cm.platform.gpu, 1, 4096)
        assert long > short

    def test_quantized_transfer_faster(self, cm):
        assert cm.expert_transfer_time(0.25) < cm.expert_transfer_time(1.0)

    def test_quant_ratio_validated(self, cm):
        with pytest.raises(ValueError):
            cm.expert_transfer_time(0.0)
        with pytest.raises(ValueError):
            cm.expert_transfer_time(1.5)


class TestCapacity:
    def test_gpu_expert_slots_positive(self, cm):
        slots = cm.gpu_expert_slots()
        assert 0 < slots <= 32 * 8

    def test_reserve_reduces_slots(self, cm):
        assert cm.gpu_expert_slots(0.4) < cm.gpu_expert_slots(0.0)

    def test_a6000_capacity_near_paper_ecr(self, platform):
        """The paper's 'full GPU memory' ECR for Mixtral is 46.9 %.

        48 GB minus non-expert weights leaves ~120 expert slots of 256.
        """
        cm = CostModel(MIXTRAL_8X7B_ARCH, platform)
        ecr = cm.gpu_expert_slots() / (32 * 8)
        assert ecr == pytest.approx(0.469, abs=0.05)


class TestBatchEfficiency:
    """Batch-efficiency curves backing gathered cross-sequence kernels."""

    def test_single_row_is_unity(self, cm):
        assert cm.expert_batch_efficiency(cm.platform.gpu, 1) == 1.0
        assert cm.lm_head_batch_efficiency(cm.platform.gpu, 1) == 1.0

    def test_ratio_bounded_and_decreasing(self, cm):
        prev = 1.0
        for n in (2, 4, 8, 16):
            eff = cm.expert_batch_efficiency(cm.platform.gpu, n)
            assert 0.0 < eff <= 1.0
            assert eff < prev
            prev = eff

    def test_bandwidth_bound_regime_is_nearly_free(self, cm):
        """In the decode regime, 4 gathered rows cost far less than 4 ops."""
        eff = cm.expert_batch_efficiency(cm.platform.gpu, 4)
        # Weight bytes dominate: amortization should approach 1/4.
        assert eff < 0.5

    def test_overhead_amortizes(self, cm):
        plain = cm.expert_batch_efficiency(cm.platform.gpu, 4)
        with_overhead = cm.expert_batch_efficiency(
            cm.platform.gpu, 4, overhead_s=1e-3
        )
        # A fixed per-op overhead is paid once instead of n times, so it
        # only improves the gathered-to-solo ratio.
        assert with_overhead < plain

    def test_rejects_nonpositive_rows(self, cm):
        with pytest.raises(ValueError):
            cm.batch_efficiency(cm.platform.gpu, cm.arch.expert_params, 0)

    # (curve method, ArchSpec weight field) for every priced stage.
    STAGE_CURVES = (
        ("expert_batch_efficiency", "expert_params"),
        ("lm_head_batch_efficiency", "embedding_params"),
        ("attention_batch_efficiency", "attention_params"),
        ("gate_batch_efficiency", "gate_params"),
    )

    @pytest.mark.parametrize("curve,params_field", STAGE_CURVES)
    @pytest.mark.parametrize("overhead", (0.0, 2.5e-4))
    def test_every_stage_curve_monotone_non_increasing(
        self, cm, curve, params_field, overhead
    ):
        """Gathering one more row never makes the per-row cost worse."""
        eff = [
            getattr(cm, curve)(cm.platform.gpu, n, overhead_s=overhead)
            for n in range(1, 65)
        ]
        assert eff[0] == 1.0
        assert all(0.0 < e <= 1.0 for e in eff)
        for wider, narrower in zip(eff[1:], eff):
            assert wider <= narrower + 1e-12

    @pytest.mark.parametrize("curve,params_field", STAGE_CURVES)
    @pytest.mark.parametrize("overhead", (0.0, 2.5e-4))
    def test_every_stage_curve_bounded_by_compute_roofline(
        self, cm, curve, params_field, overhead
    ):
        """No curve dips below the per-row compute-roofline ratio.

        ``eff(n) = (oh + T(n)) / (n * (oh + T(1)))`` and ``T(n)`` can
        never beat the compute roofline ``2*W*n / flops``, so the curve
        is bounded below by ``(2*W/flops) / (oh + T(1))`` at every n.
        """
        gpu = cm.platform.gpu
        weights = getattr(cm.arch, params_field)
        solo = overhead + gpu.op_time(
            2.0 * weights,
            weights * cm.arch.dtype_bytes + 2.0 * cm.arch.hidden_state_bytes,
        )
        floor = (2.0 * weights / gpu.effective_flops) / solo
        for n in (1, 2, 4, 8, 32, 256, 4096):
            eff = getattr(cm, curve)(cm.platform.gpu, n, overhead_s=overhead)
            assert eff >= floor - 1e-15

    def test_crossover_matches_roofline(self, cm):
        n = cm.batch_crossover_tokens(cm.platform.gpu)
        if n == 0:
            # Never compute-bound: efficiency keeps dropping with n.
            assert cm.expert_batch_efficiency(
                cm.platform.gpu, 64
            ) < cm.expert_batch_efficiency(cm.platform.gpu, 32)
            return
        assert n >= 1
        gpu = cm.platform.gpu
        flops = 2.0 * cm.arch.expert_params * n
        weight_bytes = cm.arch.expert_params * cm.arch.dtype_bytes
        act_bytes = 2.0 * n * cm.arch.hidden_state_bytes
        # At the crossover, compute time meets or exceeds memory time.
        assert flops / gpu.effective_flops >= (
            (weight_bytes + act_bytes) / gpu.effective_bandwidth
        )
