"""Unit tests for GenerationStats / EngineCounters arithmetic."""

import pytest

from repro.core.engine import EngineCounters, GenerationStats
from repro.hardware.energy import EnergyBreakdown


def make_stats(**kw):
    base = dict(
        n_prompt_tokens=16,
        n_generated=8,
        prefill_time_s=1.0,
        total_time_s=5.0,
        energy=EnergyBreakdown(gpu_j=600.0, cpu_j=300.0, link_j=50.0,
                               base_j=50.0),
        counters=EngineCounters(),
    )
    base.update(kw)
    return GenerationStats(**base)


def test_decode_time():
    assert make_stats().decode_time_s == pytest.approx(4.0)


def test_tokens_per_second():
    stats = make_stats()
    assert stats.tokens_per_second == pytest.approx(8 / 5.0)
    # The first generated token comes from the prefill logits, so only
    # n_generated - 1 tokens are produced by decode steps (matches
    # ServedRequest.tpot_s).
    assert stats.decode_tokens_per_second == pytest.approx(7 / 4.0)


def test_decode_tps_single_token():
    # One generated token means zero decode steps: rate is defined as 0.
    stats = make_stats(n_generated=1)
    assert stats.decode_tokens_per_second == 0.0


def test_tokens_per_kilojoule():
    stats = make_stats()
    assert stats.energy.total_j == pytest.approx(1000.0)
    assert stats.tokens_per_kilojoule == pytest.approx(8.0)


def test_average_power():
    assert make_stats().average_power_w == pytest.approx(200.0)


def test_zero_guards():
    stats = make_stats(total_time_s=0.0, prefill_time_s=0.0,
                       energy=EnergyBreakdown(0.0, 0.0, 0.0, 0.0))
    assert stats.tokens_per_second == 0.0
    assert stats.decode_tokens_per_second == 0.0
    assert stats.tokens_per_kilojoule == 0.0
    assert stats.average_power_w == 0.0


class TestCounters:
    def test_hit_rate(self):
        counters = EngineCounters(activated_gpu_resident=3,
                                  activated_total=4)
        assert counters.gpu_hit_rate == pytest.approx(0.75)

    def test_hit_rate_empty(self):
        assert EngineCounters().gpu_hit_rate == 0.0

    def test_defaults_zero(self):
        counters = EngineCounters()
        assert counters.cpu_expert_execs == 0
        assert counters.expert_uploads == 0
        assert counters.prefill_swaps == 0
        assert counters.decode_swaps == 0
        assert counters.degraded_swaps == 0
        assert counters.stale_input_execs == 0
