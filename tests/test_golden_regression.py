"""Golden-value regression pins.

These values were captured from a verified build; any change here means
model math, workload generation, calibration, or engine scheduling moved,
which would silently shift every benchmark in EXPERIMENTS.md.  Update
deliberately, never casually.
"""

import numpy as np
import pytest

from repro.core import build_engine
from repro.workloads import C4, SequenceGenerator

GOLDEN_PROMPT = [1, 74, 94, 18, 54, 63, 58, 66, 106, 115, 74, 105]
GOLDEN_GREEDY = [105, 105, 105, 105, 105, 105]
GOLDEN_CALIB_CHECKSUM = 246.8333333333
GOLDEN_TIMES = {
    "official": 0.056015522,
    "fiddler": 0.067482037,
    "daop": 0.059737881,
}


@pytest.fixture(scope="module")
def golden_sequence(tiny_bundle):
    generator = SequenceGenerator(C4, tiny_bundle.vocab, seed=9)
    return generator.sample_sequence(12, 6, sample_idx=0)


def test_workload_generation_pinned(golden_sequence):
    assert golden_sequence.prompt_tokens.tolist() == GOLDEN_PROMPT


def test_model_forward_pinned(tiny_bundle, golden_sequence):
    tokens = tiny_bundle.model.greedy_generate(
        golden_sequence.prompt_tokens, 6
    )
    assert tokens.tolist() == GOLDEN_GREEDY


def test_calibration_pinned(tiny_calibration):
    checksum = float(np.sum(
        tiny_calibration
        * np.arange(tiny_calibration.size).reshape(tiny_calibration.shape)
    ))
    assert checksum == pytest.approx(GOLDEN_CALIB_CHECKSUM, abs=1e-6)


@pytest.mark.parametrize("name", sorted(GOLDEN_TIMES))
def test_engine_schedule_pinned(name, tiny_bundle, platform,
                                tiny_calibration, golden_sequence):
    engine = build_engine(name, tiny_bundle, platform, 0.5,
                          tiny_calibration)
    result = engine.generate(golden_sequence.prompt_tokens, 6)
    assert result.tokens.tolist() == GOLDEN_GREEDY
    assert result.stats.total_time_s == pytest.approx(
        GOLDEN_TIMES[name], rel=1e-6
    )
