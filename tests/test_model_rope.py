"""Unit tests for rotary positional embeddings."""

import numpy as np
import pytest

from repro.model.rope import RotaryEmbedding


def test_rejects_odd_head_dim():
    with pytest.raises(ValueError):
        RotaryEmbedding(7)


def test_norm_preserved(rng):
    rope = RotaryEmbedding(16)
    x = rng.standard_normal((2, 5, 16)).astype(np.float32)
    out = rope.apply(x, np.arange(5))
    np.testing.assert_allclose(
        np.linalg.norm(out, axis=-1), np.linalg.norm(x, axis=-1), rtol=1e-4
    )


def test_position_zero_is_identity(rng):
    rope = RotaryEmbedding(8)
    x = rng.standard_normal((1, 1, 8)).astype(np.float32)
    out = rope.apply(x, np.array([0]))
    np.testing.assert_allclose(out, x, atol=1e-6)


def test_relative_rotation_property(rng):
    """Dot products of rotated q/k depend only on relative position."""
    rope = RotaryEmbedding(8)
    q = rng.standard_normal(8).astype(np.float32)
    k = rng.standard_normal(8).astype(np.float32)

    def score(pq, pk):
        rq = rope.apply(q.reshape(1, 8), np.array([pq]))[0]
        rk = rope.apply(k.reshape(1, 8), np.array([pk]))[0]
        return float(rq @ rk)

    assert score(3, 1) == pytest.approx(score(12, 10), rel=1e-4)
    assert score(0, 0) == pytest.approx(score(9, 9), rel=1e-4)


def test_cache_grows_lazily(rng):
    rope = RotaryEmbedding(8)
    x = rng.standard_normal((1, 1, 8)).astype(np.float32)
    rope.apply(x, np.array([3]))
    assert rope._cos.shape[0] >= 4
    rope.apply(x, np.array([100]))
    assert rope._cos.shape[0] >= 101


def test_noncontiguous_positions(rng):
    rope = RotaryEmbedding(8)
    x = rng.standard_normal((1, 3, 8)).astype(np.float32)
    out = rope.apply(x, np.array([5, 2, 11]))
    # Each row must match an individual application at its own position.
    for i, pos in enumerate([5, 2, 11]):
        single = rope.apply(x[:, i : i + 1], np.array([pos]))
        np.testing.assert_allclose(out[:, i : i + 1], single, atol=1e-6)
