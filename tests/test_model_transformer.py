"""Unit tests for the full functional transformer."""

import numpy as np
import pytest

from repro.model.zoo import build_tiny_moe


@pytest.fixture(scope="module")
def bundle():
    return build_tiny_moe(seed=7, n_blocks=4)


def test_embed_bounds(bundle):
    with pytest.raises(ValueError):
        bundle.model.embed(np.array([bundle.vocab.vocab_size]))
    with pytest.raises(ValueError):
        bundle.model.embed(np.array([-1]))


def test_forward_exact_shapes(bundle):
    model = bundle.model
    h, decisions = model.forward_exact(np.array([5, 6, 7]))
    assert h.shape == (3, model.profile.sim.d_model)
    assert len(decisions) == model.n_blocks
    assert decisions[0].experts.shape == (3, model.top_k)


def test_incremental_equals_batch(bundle):
    """Prefill + decode token-by-token equals one-shot forward."""
    model = bundle.model
    tokens = np.array([5, 9, 13, 21, 8])
    h_full, dec_full = model.forward_exact(tokens)

    caches = model.new_caches()
    h_pre, _ = model.forward_exact(tokens[:3], caches)
    np.testing.assert_allclose(h_pre, h_full[:3], rtol=1e-4, atol=1e-5)
    for i in range(3, 5):
        h_step, dec_step = model.forward_exact(
            tokens[i : i + 1], caches, start_pos=i
        )
        np.testing.assert_allclose(h_step, h_full[i : i + 1], rtol=1e-4,
                                   atol=1e-5)
        for b in range(model.n_blocks):
            np.testing.assert_array_equal(
                dec_step[b].experts[0], dec_full[b].experts[i]
            )


def test_greedy_generate_deterministic(bundle):
    model = bundle.model
    prompt = np.array([5, 6, 7, 8])
    a = model.greedy_generate(prompt, 6)
    b = model.greedy_generate(prompt, 6)
    np.testing.assert_array_equal(a, b)
    assert a.shape == (6,)
    assert np.all((a >= 0) & (a < bundle.vocab.vocab_size))


def test_lm_logits_weight_tied(bundle):
    model = bundle.model
    h = np.random.default_rng(0).standard_normal(
        (1, model.profile.sim.d_model)
    ).astype(np.float32)
    logits = model.lm_logits(h)
    assert logits.shape == (1, bundle.vocab.vocab_size)
    expected = model.final_norm(h) @ model.embedding.T
    np.testing.assert_allclose(logits, expected, rtol=1e-5)


def test_log_probs_normalized(bundle):
    model = bundle.model
    h = np.random.default_rng(1).standard_normal(
        (2, model.profile.sim.d_model)
    ).astype(np.float32)
    lp = model.lm_log_probs(h)
    np.testing.assert_allclose(np.exp(lp).sum(axis=-1), np.ones(2),
                               rtol=1e-5)


def test_seed_controls_weights():
    a = build_tiny_moe(seed=1, n_blocks=2).model
    b = build_tiny_moe(seed=2, n_blocks=2).model
    c = build_tiny_moe(seed=1, n_blocks=2).model
    assert not np.allclose(a.blocks[0].router.gate.weight,
                           b.blocks[0].router.gate.weight)
    np.testing.assert_array_equal(a.blocks[0].router.gate.weight,
                                  c.blocks[0].router.gate.weight)
