"""Unit tests for admission control and SLO targets."""

import pytest

from repro.cluster import EXPIRED, SHED, AdmissionController, SLOTarget


class TestSLOTarget:
    def test_defaults(self):
        slo = SLOTarget()
        assert slo.ttft_s > 0 and slo.tpot_s > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SLOTarget(ttft_s=0.0)
        with pytest.raises(ValueError):
            SLOTarget(tpot_s=-1.0)


class TestAdmissionController:
    def test_admit_bounds_queue(self):
        admission = AdmissionController(max_queue_len=2)
        assert admission.admit(0)
        assert admission.admit(1)
        assert not admission.admit(2)
        assert not admission.admit(5)

    def test_no_deadline_never_expires(self):
        admission = AdmissionController()
        assert not admission.expired(arrival_s=0.0, now=1e9)

    def test_deadline_expiry(self):
        admission = AdmissionController(ttft_deadline_s=5.0)
        assert not admission.expired(arrival_s=10.0, now=15.0)  # exactly at
        assert admission.expired(arrival_s=10.0, now=15.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue_len=0)
        with pytest.raises(ValueError):
            AdmissionController(ttft_deadline_s=0.0)
        with pytest.raises(ValueError):
            AdmissionController(batch_hold_s=-0.1)
        with pytest.raises(ValueError):
            AdmissionController(crossover_tokens=-1)

    def test_reason_constants_distinct(self):
        assert SHED != EXPIRED


class TestBatchHold:
    def test_disabled_by_default(self):
        admission = AdmissionController()
        assert admission.hold_window_s == 0.0
        assert not admission.should_hold(1, 8, 0.0)

    def test_holds_lone_sub_crossover_prefill(self):
        admission = AdmissionController(batch_hold_s=2.0,
                                        crossover_tokens=100)
        assert admission.should_hold(1, 32, 0.0)
        assert admission.should_hold(1, 99, 1.9)

    def test_never_holds_a_cohort(self):
        """Two queued requests already form a cohort — dispatch."""
        admission = AdmissionController(batch_hold_s=2.0)
        assert not admission.should_hold(2, 32, 0.0)
        assert not admission.should_hold(0, 32, 0.0)

    def test_never_holds_past_crossover(self):
        """A compute-bound prompt gains nothing from gathering."""
        admission = AdmissionController(batch_hold_s=2.0,
                                        crossover_tokens=100)
        assert not admission.should_hold(1, 100, 0.0)
        assert not admission.should_hold(1, 500, 0.0)

    def test_zero_crossover_means_always_sub_crossover(self):
        admission = AdmissionController(batch_hold_s=2.0,
                                        crossover_tokens=0)
        assert admission.should_hold(1, 10_000, 0.0)

    def test_hold_window_expires(self):
        admission = AdmissionController(batch_hold_s=2.0)
        assert admission.should_hold(1, 32, 1.999)
        assert not admission.should_hold(1, 32, 2.0)  # strict <
        assert not admission.should_hold(1, 32, 5.0)

    def test_hold_window_capped_by_half_ttft_deadline(self):
        admission = AdmissionController(batch_hold_s=10.0,
                                        ttft_deadline_s=4.0)
        assert admission.hold_window_s == 2.0
        assert not admission.should_hold(1, 32, 2.0)
        # A hold budget inside the cap passes through unchanged.
        loose = AdmissionController(batch_hold_s=1.0, ttft_deadline_s=4.0)
        assert loose.hold_window_s == 1.0
