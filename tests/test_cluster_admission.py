"""Unit tests for admission control and SLO targets."""

import pytest

from repro.cluster import EXPIRED, SHED, AdmissionController, SLOTarget


class TestSLOTarget:
    def test_defaults(self):
        slo = SLOTarget()
        assert slo.ttft_s > 0 and slo.tpot_s > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SLOTarget(ttft_s=0.0)
        with pytest.raises(ValueError):
            SLOTarget(tpot_s=-1.0)


class TestAdmissionController:
    def test_admit_bounds_queue(self):
        admission = AdmissionController(max_queue_len=2)
        assert admission.admit(0)
        assert admission.admit(1)
        assert not admission.admit(2)
        assert not admission.admit(5)

    def test_no_deadline_never_expires(self):
        admission = AdmissionController()
        assert not admission.expired(arrival_s=0.0, now=1e9)

    def test_deadline_expiry(self):
        admission = AdmissionController(ttft_deadline_s=5.0)
        assert not admission.expired(arrival_s=10.0, now=15.0)  # exactly at
        assert admission.expired(arrival_s=10.0, now=15.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue_len=0)
        with pytest.raises(ValueError):
            AdmissionController(ttft_deadline_s=0.0)

    def test_reason_constants_distinct(self):
        assert SHED != EXPIRED
