"""Unit tests for the MoE transformer block."""

import numpy as np
import pytest

from repro.model.config import SimSpec
from repro.model.moe_block import MoEBlock


@pytest.fixture()
def sim():
    return SimSpec(d_model=32, n_heads=4, n_kv_heads=2, d_ff=48,
                   vocab_size=64)


@pytest.fixture()
def block(sim, rng):
    return MoEBlock(sim, n_experts=4, top_k=2, rng=rng, block_idx=5)


def test_fine_grained_matches_forward(block, rng):
    """Stage-by-stage execution equals the reference block forward."""
    h = rng.standard_normal((4, 32)).astype(np.float32)
    cache_a = block.attention.new_cache()
    positions = np.arange(4)
    ref, decision = block.forward(h, cache_a, positions)

    cache_b = block.attention.new_cache()
    h_att = block.attention_part(h, cache_b, positions)
    routing = block.route(h_att)
    np.testing.assert_array_equal(routing.experts, decision.experts)
    outs = np.stack([
        np.stack([block.expert_forward(int(e), h_att[t : t + 1])[0]
                  for e in routing.experts[t]])
        for t in range(4)
    ])
    out = block.combine(h_att, outs, routing.weights)
    np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-6)


def test_residual_scale_early_boost(sim, rng):
    early = MoEBlock(sim, 4, 2, rng, block_idx=0)
    late = MoEBlock(sim, 4, 2, rng, block_idx=10)
    assert early.residual_scale > late.residual_scale
    assert late.residual_scale == pytest.approx(sim.residual_scale, rel=0.01)


def test_gate_logits_shape(block, rng):
    h = rng.standard_normal((3, 32)).astype(np.float32)
    assert block.gate_logits(h).shape == (3, 4)


def test_combine_weighted_sum(block, rng):
    h_att = rng.standard_normal((2, 32)).astype(np.float32)
    outs = rng.standard_normal((2, 2, 32)).astype(np.float32)
    weights = np.array([[1.0, 0.0], [0.5, 0.5]], dtype=np.float32)
    out = block.combine(h_att, outs, weights)
    expected0 = h_att[0] + block.residual_scale * outs[0, 0]
    np.testing.assert_allclose(out[0], expected0, rtol=1e-5)
    expected1 = h_att[1] + block.residual_scale * 0.5 * (
        outs[1, 0] + outs[1, 1]
    )
    np.testing.assert_allclose(out[1], expected1, rtol=1e-5)


def test_n_params_consistent(block):
    manual = (
        block.attn_norm.n_params
        + block.attention.n_params
        + block.ffn_norm.n_params
        + block.router.n_params
        + sum(e.n_params for e in block.experts)
    )
    assert block.n_params == manual


def test_expert_forward_isolated(block, rng):
    """Each expert is a distinct function."""
    x = rng.standard_normal((1, 32)).astype(np.float32)
    outs = [block.expert_forward(e, x) for e in range(4)]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not np.allclose(outs[i], outs[j])
