"""Baseline-engine behaviour tests."""

import numpy as np
import pytest

from repro.core import build_engine
from repro.workloads import C4, SequenceGenerator


@pytest.fixture(scope="module")
def sequence(tiny_bundle):
    gen = SequenceGenerator(C4, tiny_bundle.vocab, seed=21)
    return gen.sample_sequence(12, 6, sample_idx=0)


class TestOnDemand:
    def test_uploads_on_miss(self, tiny_bundle, platform, tiny_calibration,
                             sequence):
        engine = build_engine("moe-ondemand", tiny_bundle, platform, 0.25,
                              tiny_calibration)
        result = engine.generate(sequence.prompt_tokens, 6)
        assert result.stats.counters.expert_uploads > 0
        # Migration happens in decode too (unlike DAOP).
        uploads = [op for op in result.timeline.ops
                   if op.kind == "expert_upload"]
        assert any(op.start > result.stats.prefill_time_s for op in uploads)

    def test_no_cpu_execution(self, tiny_bundle, platform, tiny_calibration,
                              sequence):
        engine = build_engine("moe-ondemand", tiny_bundle, platform, 0.25,
                              tiny_calibration)
        result = engine.generate(sequence.prompt_tokens, 6)
        assert result.stats.counters.cpu_expert_execs == 0

    def test_full_cache_never_uploads(self, tiny_bundle, platform,
                                      tiny_calibration, sequence):
        engine = build_engine("moe-ondemand", tiny_bundle, platform, 1.0,
                              tiny_calibration)
        result = engine.generate(sequence.prompt_tokens, 6)
        assert result.stats.counters.expert_uploads == 0


class TestDeepSpeedMII:
    def test_streams_every_activation(self, tiny_bundle, platform, sequence):
        engine = build_engine("deepspeed-mii", tiny_bundle, platform)
        result = engine.generate(sequence.prompt_tokens, 6)
        # Prefill: one upload per activated expert per block; decode: one
        # per (token, block, expert).  Far more than OnDemand with a cache.
        assert result.stats.counters.expert_uploads >= (
            tiny_bundle.model.n_blocks * 2
        )
        assert result.stats.counters.cpu_expert_execs == 0

    def test_nothing_stays_resident(self, tiny_bundle, platform, sequence):
        engine = build_engine("deepspeed-mii", tiny_bundle, platform)
        result = engine.generate(sequence.prompt_tokens, 6)
        assert result.placement.expert_cache_ratio == 0.0


class TestMixtralOffloading:
    def test_quantized_uploads_cheaper_than_ondemand(
            self, tiny_bundle, platform, tiny_calibration, sequence):
        quant = build_engine("mixtral-offloading", tiny_bundle, platform,
                             0.25, tiny_calibration, stream_overhead=1.0)
        full = build_engine("moe-ondemand", tiny_bundle, platform, 0.25,
                            tiny_calibration)
        up_q = [op for op in quant.generate(sequence.prompt_tokens, 6)
                .timeline.ops if op.kind == "expert_upload"]
        up_f = [op for op in full.generate(sequence.prompt_tokens, 6)
                .timeline.ops if op.kind == "expert_upload"]
        assert up_q and up_f
        assert up_q[0].duration < up_f[0].duration

    def test_dequant_ops_emitted(self, tiny_bundle, platform,
                                 tiny_calibration, sequence):
        engine = build_engine("mixtral-offloading", tiny_bundle, platform,
                              0.25, tiny_calibration)
        result = engine.generate(sequence.prompt_tokens, 6)
        dequants = [op for op in result.timeline.ops if op.kind == "dequant"]
        uploads = [op for op in result.timeline.ops
                   if op.kind == "expert_upload"]
        assert len(dequants) == len(uploads) > 0

    def test_validation(self, tiny_bundle, platform, tiny_calibration):
        with pytest.raises(ValueError):
            build_engine("mixtral-offloading", tiny_bundle, platform, 0.25,
                         tiny_calibration, quant_ratio=0.0)
        with pytest.raises(ValueError):
            build_engine("mixtral-offloading", tiny_bundle, platform, 0.25,
                         tiny_calibration, stream_overhead=0.5)


class TestFiddler:
    def test_no_migration_ever(self, tiny_bundle, platform,
                               tiny_calibration, sequence):
        engine = build_engine("fiddler", tiny_bundle, platform, 0.25,
                              tiny_calibration)
        result = engine.generate(sequence.prompt_tokens, 6)
        assert result.stats.counters.expert_uploads == 0
        np.testing.assert_array_equal(
            result.placement.as_matrix(),
            engine.initial_placement.as_matrix(),
        )

    def test_cpu_execution_on_miss(self, tiny_bundle, platform,
                                   tiny_calibration, sequence):
        engine = build_engine("fiddler", tiny_bundle, platform, 0.25,
                              tiny_calibration)
        result = engine.generate(sequence.prompt_tokens, 6)
        assert result.stats.counters.cpu_expert_execs > 0

    def test_activation_roundtrips_scheduled(self, tiny_bundle, platform,
                                             tiny_calibration, sequence):
        engine = build_engine("fiddler", tiny_bundle, platform, 0.25,
                              tiny_calibration)
        result = engine.generate(sequence.prompt_tokens, 6)
        d2h = [op for op in result.timeline.ops if op.kind == "act_d2h"]
        h2d = [op for op in result.timeline.ops if op.kind == "act_h2d"]
        assert len(d2h) == len(h2d) == result.stats.counters.cpu_expert_execs


class TestPreGated:
    def test_prefetches_ahead(self, tiny_bundle, platform, tiny_calibration,
                              sequence):
        engine = build_engine("pregated-moe", tiny_bundle, platform, 0.25,
                              tiny_calibration)
        result = engine.generate(sequence.prompt_tokens, 6)
        assert result.stats.counters.expert_uploads > 0

    def test_exact_routing_preserved(self, tiny_bundle, platform,
                                     tiny_calibration, sequence):
        """Pre-gated prefetching must not change the computed tokens."""
        official = build_engine("official", tiny_bundle, platform)
        pregated = build_engine("pregated-moe", tiny_bundle, platform, 0.25,
                                tiny_calibration)
        a = official.generate(sequence.prompt_tokens, 6)
        b = pregated.generate(sequence.prompt_tokens, 6)
        np.testing.assert_array_equal(a.tokens, b.tokens)
