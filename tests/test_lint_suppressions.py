"""Edge-case tests for suppression markers and the audit tooling.

Covers multi-rule ``disable=`` lines, markers on decorated and
multi-line statements (the marker must sit on the line the diagnostic
anchors to), the ``--list-suppressions`` audit flag with stale-marker
detection, and the SARIF export of a lint report.
"""

import json
import textwrap

from repro.lint import lint_source, write_sarif
from repro.lint.runner import LintReport, _stale_markers, main
from repro.lint.suppressions import SuppressionIndex


def lint(source, path="src/repro/core/sample.py", select=None):
    """Lint a dedented snippet against a virtual repo path."""
    return lint_source(textwrap.dedent(source), path=path, select=select)


# ---- marker parsing -----------------------------------------------------------


def test_multi_rule_disable_line_parses_every_rule():
    index = SuppressionIndex(
        "x = 1  # daoplint: disable=stdlib-random,DET002, wall-clock\n"
    )
    assert len(index.markers) == 1
    marker = index.markers[0]
    assert marker.rules == ("stdlib-random", "DET002", "wall-clock")
    assert not marker.file_wide
    assert index.is_suppressed("stdlib-random", "DET001", 1)
    assert index.is_suppressed("unseeded-numpy", "DET002", 1)
    assert index.is_suppressed("wall-clock", "DET003", 1)
    assert not index.is_suppressed("import-layering", "LAY001", 1)
    assert not index.is_suppressed("stdlib-random", "DET001", 2)


def test_multi_rule_disable_suppresses_both_diagnostics():
    diags = lint(
        '''\
        """Doc."""
        import time
        import numpy as np

        def f():
            """Doc."""
            return np.random.rand(3), time.time()  # daoplint: disable=DET002,DET003
        ''',
        select=["unseeded-numpy", "wall-clock"],
    )
    assert diags == []


def test_disable_file_marker_spans_the_whole_file():
    diags = lint(
        '''\
        """Doc."""
        # daoplint: disable-file=unseeded-numpy
        import numpy as np

        a = np.random.rand(3)
        b = np.random.rand(3)
        ''',
        select=["unseeded-numpy"],
    )
    assert diags == []


def test_marker_on_decorated_function_line_placement():
    # DET003 anchors at the call inside the body, not at the decorator:
    # a marker on the decorator line must NOT suppress it, a marker on
    # the offending line must.
    undecorated = '''\
    """Doc."""
    import functools
    import time

    @functools.lru_cache  # daoplint: disable=wall-clock
    def now():
        """Doc."""
        return time.time()
    '''
    diags = lint(undecorated, select=["wall-clock"])
    assert [d.code for d in diags] == ["DET003"]

    on_line = '''\
    """Doc."""
    import functools
    import time

    @functools.lru_cache
    def now():
        """Doc."""
        return time.time()  # daoplint: disable=wall-clock
    '''
    assert lint(on_line, select=["wall-clock"]) == []


def test_marker_inside_multiline_statement():
    # The diagnostic anchors at the expression's own line; a marker on
    # that physical line works even mid-expression.
    diags = lint(
        '''\
        """Doc."""
        import numpy as np

        values = (
            np.random.rand(3)  # daoplint: disable=unseeded-numpy
            + 1.0
        )
        ''',
        select=["unseeded-numpy"],
    )
    assert diags == []


# ---- stale-marker audit -------------------------------------------------------


def _report_with(markers, suppressed):
    report = LintReport()
    report.suppression_markers = markers
    report.suppressed = suppressed
    return report


def test_stale_marker_detection():
    from repro.lint.diagnostics import Diagnostic, Severity

    live = ("a.py", 3, ("DET002",), False)
    stale_line = ("a.py", 9, ("DET002",), False)
    stale_file = ("b.py", 1, ("wall-clock",), True)
    hit = Diagnostic(path="a.py", line=3, col=1, rule="unseeded-numpy",
                     code="DET002", severity=Severity.ERROR, message="m")
    report = _report_with([live, stale_line, stale_file], [hit])
    assert sorted(_stale_markers(report)) == sorted(
        [stale_line, stale_file]
    )


def test_list_suppressions_cli_flags_stale_markers(tmp_path, capsys):
    target = tmp_path / "sample.py"
    target.write_text(textwrap.dedent(
        '''\
        """Doc."""
        import numpy as np

        a = np.random.rand(3)  # daoplint: disable=unseeded-numpy
        b = 1  # daoplint: disable=wall-clock
        '''
    ), encoding="utf-8")
    exit_code = main([str(target), "--list-suppressions"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "disable=unseeded-numpy" in out
    assert "disable=wall-clock" in out
    assert out.count("STALE") == 1
    assert "2 suppression marker(s), 1 stale" in out


def test_list_suppressions_cli_reports_empty(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text('"""Doc."""\n', encoding="utf-8")
    assert main([str(target), "--list-suppressions"]) == 0
    assert "no suppression markers" in capsys.readouterr().out


# ---- SARIF export -------------------------------------------------------------


def test_sarif_export_round_trips_diagnostics(tmp_path):
    from repro.lint import all_rules
    from repro.lint.diagnostics import Diagnostic, Severity

    report = LintReport(files=1)
    report.diagnostics.append(Diagnostic(
        path="src/repro/core/sample.py", line=4, col=2,
        rule="unseeded-numpy", code="DET002", severity=Severity.ERROR,
        message="legacy singleton call",
    ))
    out = tmp_path / "report.sarif"
    write_sarif(out, report, all_rules())
    document = json.loads(out.read_text(encoding="utf-8"))
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "daoplint"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert "DET002" in rule_ids
    (result,) = run["results"]
    assert result["ruleId"] == "DET002"
    assert result["level"] == "error"
    assert "unseeded-numpy" in result["message"]["text"]
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] \
        == "src/repro/core/sample.py"
    assert location["region"] == {"startLine": 4, "startColumn": 2}


def test_sarif_cli_flag_writes_file(tmp_path, capsys):
    target = tmp_path / "bad.py"
    target.write_text(
        '"""Doc."""\nimport numpy as np\n\na = np.random.rand(3)\n',
        encoding="utf-8",
    )
    out = tmp_path / "out.sarif"
    exit_code = main([str(target), "--select", "unseeded-numpy",
                      "--sarif", str(out)])
    capsys.readouterr()
    assert exit_code == 1
    document = json.loads(out.read_text(encoding="utf-8"))
    assert document["runs"][0]["results"][0]["ruleId"] == "DET002"
