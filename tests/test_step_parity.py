"""Step-machine parity: start/step/finish reproduces generate() exactly.

The refactor's acceptance criterion: for every registered engine, one
sequence driven through the explicit step API — and through the batch-1
continuous-batch scheduler — must be *bitwise* identical to the
monolithic ``generate()`` run: same tokens, same counters, same op
schedule, same makespan.  No tolerance, no approx.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.audit import run_step_parity_audit
from repro.core import ENGINE_NAMES, build_engine
from repro.core.engine import (
    SEQ_DECODE,
    SEQ_DONE,
    SEQ_PREFILL,
    SequenceRequest,
)
from repro.sched import GATHERED, ContinuousBatchScheduler

PROMPT_LEN = 12
MAX_NEW = 6


def _prompt(bundle, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, bundle.vocab.vocab_size, size=PROMPT_LEN,
                        dtype=np.int64)


@pytest.fixture(params=ENGINE_NAMES)
def engine(request, tiny_bundle, platform, tiny_calibration):
    return build_engine(request.param, tiny_bundle, platform,
                        expert_cache_ratio=0.5,
                        calibration_probs=tiny_calibration)


def test_step_loop_is_bitwise_identical_to_generate(engine, tiny_bundle):
    prompt = _prompt(tiny_bundle)
    reference = engine.generate(prompt, MAX_NEW)

    state = engine.start(SequenceRequest(prompt_tokens=prompt,
                                         max_new_tokens=MAX_NEW))
    phases = []
    while not state.done:
        phases.append(state.phase)
        engine.step(state)
    result = engine.finish(state)

    assert phases[0] == SEQ_PREFILL
    assert all(p == SEQ_DECODE for p in phases[1:])
    assert state.phase == SEQ_DONE
    assert np.array_equal(result.tokens, reference.tokens)
    assert result.stats.counters == reference.stats.counters
    assert result.stats.prefill_time_s == reference.stats.prefill_time_s
    assert result.stats.total_time_s == reference.stats.total_time_s
    assert result.timeline.makespan == reference.timeline.makespan
    assert len(result.timeline.ops) == len(reference.timeline.ops)
    for got, want in zip(result.timeline.ops, reference.timeline.ops):
        assert (got.resource, got.kind, got.start, got.end) == \
            (want.resource, want.kind, want.start, want.end)


def test_scheduler_batch1_is_bitwise_identical_to_generate(
        engine, tiny_bundle):
    prompt = _prompt(tiny_bundle)
    reference = engine.generate(prompt, MAX_NEW)

    scheduler = ContinuousBatchScheduler(engine, max_batch=1)
    report = scheduler.run([SequenceRequest(prompt_tokens=prompt,
                                            max_new_tokens=MAX_NEW)])
    assert report.n_sequences == 1
    result = report.records[0].result
    assert np.array_equal(result.tokens, reference.tokens)
    assert result.stats.counters == reference.stats.counters
    assert result.stats.total_time_s == reference.stats.total_time_s
    assert result.timeline.makespan == reference.timeline.makespan


def test_gathered_batch4_matches_solo_runs_token_for_token(
        engine, tiny_bundle):
    """Gathered cross-sequence execution may only change the schedule:
    every sequence in a batch-4 gathered run must reproduce its own solo
    ``generate()`` tokens and counters exactly."""
    prompts = [_prompt(tiny_bundle, seed=s) for s in range(4)]
    references = [engine.generate(p, MAX_NEW) for p in prompts]

    scheduler = ContinuousBatchScheduler(engine, max_batch=4, mode=GATHERED)
    report = scheduler.run([
        SequenceRequest(prompt_tokens=p, max_new_tokens=MAX_NEW, seq_id=i)
        for i, p in enumerate(prompts)
    ])
    assert report.n_sequences == 4
    records = sorted(report.records, key=lambda r: r.seq_id)
    for record, reference in zip(records, references):
        result = record.result
        assert np.array_equal(result.tokens, reference.tokens)
        assert result.stats.counters == reference.stats.counters
    # The batch actually gathered: fewer kernels than logical ops.
    assert report.n_expert_kernels < report.n_expert_ops


def test_step_raises_after_done_and_finish_requires_done(
        engine, tiny_bundle):
    prompt = _prompt(tiny_bundle)
    state = engine.start(SequenceRequest(prompt_tokens=prompt,
                                         max_new_tokens=1))
    with pytest.raises(RuntimeError):
        engine.finish(state)
    engine.step(state)
    assert state.done
    with pytest.raises(RuntimeError):
        engine.step(state)
    engine.finish(state)


def test_step_parity_audit_reports_all_engines_ok(
        tiny_bundle, platform, tiny_calibration):
    report = run_step_parity_audit(
        tiny_bundle, platform,
        max_new_tokens=4,
        calibration_probs=tiny_calibration,
    )
    assert report.ok, report.format()
    assert {c.engine for c in report.comparisons} == set(ENGINE_NAMES)
    assert all(c.audit is not None and c.audit.ok
               for c in report.comparisons)
