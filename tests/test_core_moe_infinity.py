"""Behaviour tests for the MoE-Infinity-style baseline."""

import numpy as np
import pytest

from repro.core import build_engine
from repro.core.baselines.moe_infinity import MoEInfinityEngine
from repro.memory.cache import CacheConfig
from repro.workloads import C4, SequenceGenerator


@pytest.fixture(scope="module")
def sequence(tiny_bundle):
    gen = SequenceGenerator(C4, tiny_bundle.vocab, seed=91)
    return gen.sample_sequence(16, 12, sample_idx=0)


def test_validation(tiny_bundle, platform, tiny_calibration):
    with pytest.raises(ValueError):
        MoEInfinityEngine(tiny_bundle, platform,
                          cache_config=CacheConfig(ecr=0.5),
                          calibration_probs=tiny_calibration, lookahead=0)
    with pytest.raises(ValueError):
        MoEInfinityEngine(tiny_bundle, platform,
                          cache_config=CacheConfig(ecr=0.5),
                          calibration_probs=tiny_calibration,
                          score_decay=0.0)


def test_generates_and_prefetches(tiny_bundle, platform, tiny_calibration,
                                  sequence):
    engine = build_engine("moe-infinity", tiny_bundle, platform, 0.25,
                          tiny_calibration)
    result = engine.generate(sequence.prompt_tokens, 12,
                             forced_tokens=sequence.continuation_tokens)
    assert result.tokens.shape == (12,)
    assert result.stats.counters.expert_uploads > 0
    # GPU-only execution like the rest of the prefetch family.
    assert result.stats.counters.cpu_expert_execs == 0


def test_exact_routing_preserved(tiny_bundle, platform, tiny_calibration,
                                 sequence):
    """Prefetching must not change computed tokens."""
    official = build_engine("official", tiny_bundle, platform)
    infinity = build_engine("moe-infinity", tiny_bundle, platform, 0.25,
                            tiny_calibration)
    a = official.generate(sequence.prompt_tokens, 8)
    b = infinity.generate(sequence.prompt_tokens, 8)
    np.testing.assert_array_equal(a.tokens, b.tokens)


def test_activation_aware_beats_on_demand(tiny_bundle, platform,
                                          tiny_calibration):
    """Sequence-aware prefetching should reduce critical-path uploads
    relative to pure migrate-on-miss on topically-skewed input."""
    gen = SequenceGenerator(C4, tiny_bundle.vocab, seed=92)
    speeds = {}
    for name in ("moe-ondemand", "moe-infinity"):
        engine = build_engine(name, tiny_bundle, platform, 0.25,
                              tiny_calibration)
        tps = []
        for i in range(3):
            seq = gen.sample_sequence(24, 16, sample_idx=i)
            result = engine.generate(
                seq.prompt_tokens, 16,
                forced_tokens=seq.continuation_tokens,
            )
            tps.append(result.stats.tokens_per_second)
        speeds[name] = np.mean(tps)
    assert speeds["moe-infinity"] >= 0.95 * speeds["moe-ondemand"]


def test_deterministic(tiny_bundle, platform, tiny_calibration, sequence):
    engine = build_engine("moe-infinity", tiny_bundle, platform, 0.5,
                          tiny_calibration)
    a = engine.generate(sequence.prompt_tokens, 8)
    b = engine.generate(sequence.prompt_tokens, 8)
    np.testing.assert_array_equal(a.tokens, b.tokens)
    assert a.stats.total_time_s == pytest.approx(b.stats.total_time_s)
