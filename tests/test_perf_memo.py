"""Unit tests for the identity LRU memo (repro.perf.memo)."""

import numpy as np
import pytest

from repro.perf import (
    DEFAULT_MEMO_CAPACITY,
    IdentityLRUMemo,
    StageCounters,
    TensorCache,
)


class TestIdentityLRUMemo:
    def test_hit_returns_exact_object(self, rng):
        memo = IdentityLRUMemo(capacity=4)
        arr = rng.standard_normal(8).astype(np.float32)
        value = rng.standard_normal(8).astype(np.float32)
        assert memo.get(arr) is None
        assert memo.put(arr, value) is value
        assert memo.get(arr) is value

    def test_identity_not_equality(self, rng):
        """An equal-bytes copy is a different object and must miss."""
        memo = IdentityLRUMemo(capacity=4)
        arr = rng.standard_normal(8).astype(np.float32)
        memo.put(arr, arr * 2)
        assert memo.get(arr.copy()) is None

    def test_capacity_evicts_lru(self):
        memo = IdentityLRUMemo(capacity=2)
        arrays = [np.zeros(2) + i for i in range(3)]
        memo.put(arrays[0], "a")
        memo.put(arrays[1], "b")
        assert memo.get(arrays[0]) == "a"  # refresh: arrays[1] is now LRU
        memo.put(arrays[2], "c")
        assert len(memo) == 2
        assert memo.get(arrays[1]) is None
        assert memo.get(arrays[0]) == "a"
        assert memo.get(arrays[2]) == "c"

    def test_put_same_object_replaces_without_growth(self):
        memo = IdentityLRUMemo(capacity=2)
        arr = np.zeros(2)
        memo.put(arr, "old")
        memo.put(arr, "new")
        assert len(memo) == 1
        assert memo.get(arr) == "new"

    def test_counters_credit_memo_hits_only(self, rng):
        counters = StageCounters()
        memo = IdentityLRUMemo(capacity=2, counters=counters)
        arr = rng.standard_normal(4).astype(np.float32)
        memo.get(arr)  # miss: deliberately uncounted
        memo.put(arr, arr)
        memo.get(arr)
        memo.get(arr)
        assert counters.memo_hits == 2
        assert (counters.hits, counters.misses) == (0, 0)
        assert counters.lookups == 2
        assert counters.hit_rate == 1.0

    def test_clear(self):
        memo = IdentityLRUMemo(capacity=2)
        arr = np.zeros(2)
        memo.put(arr, "v")
        memo.clear()
        assert len(memo) == 0
        assert memo.get(arr) is None

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            IdentityLRUMemo(capacity=0)


class TestTensorCacheIdentityMemoFactory:
    def test_factory_binds_stage_counters(self, rng):
        cache = TensorCache()
        memo = cache.identity_memo("ffn_norm", capacity=4)
        arr = rng.standard_normal(4).astype(np.float32)
        memo.put(arr, arr)
        memo.get(arr)
        counters = cache.stage_counters["ffn_norm"]
        assert counters.memo_hits == 1
        # Memo hits show in the stage hit rate but not in cache.hits.
        assert counters.hit_rate == 1.0
        assert cache.hits == 0
        assert cache.stats()["stages"]["ffn_norm"]["memo_hits"] == 1

    def test_default_capacity(self):
        memo = TensorCache().identity_memo("ffn_norm")
        assert memo.capacity == DEFAULT_MEMO_CAPACITY

    def test_unnamed_stage_uncounted(self, rng):
        cache = TensorCache()
        memo = cache.identity_memo()
        arr = rng.standard_normal(4).astype(np.float32)
        memo.put(arr, arr)
        memo.get(arr)
        assert cache.stage_counters == {}
