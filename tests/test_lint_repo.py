"""Repo-wide lint gate: runs daoplint on every pytest invocation.

This is the wiring that keeps future PRs honest: the full rule set must
pass over ``src/repro`` with zero suppression markers anywhere in
``repro/core`` and ``repro/memory`` (acceptance criterion of the lint
subsystem issue).  The whole-program semantic analyses (DET1xx, MUT00x,
FPR001, STL001 — see docs/static-analysis.md) gate here too: they must
run over the full package and come back with zero unsuppressed
findings.
"""

from repro.lint import run_lint, run_semantic_lint


def _report():
    report = run_lint()
    assert report.files > 50, "lint walked suspiciously few files"
    return report


def test_repo_is_lint_clean():
    report = _report()
    rendered = "\n".join(d.format() for d in report.diagnostics)
    assert report.diagnostics == [], f"daoplint violations:\n{rendered}"
    assert report.exit_code == 0


def test_repo_is_semantically_clean():
    report = run_semantic_lint()
    assert report.files > 50, "semantic lint walked suspiciously few files"
    rendered = "\n".join(d.format() for d in report.diagnostics)
    assert report.diagnostics == [], (
        f"semantic analysis violations:\n{rendered}"
    )
    assert report.exit_code == 0


def test_no_suppressions_in_core_or_memory():
    report = _report()
    offenders = [
        (path, line)
        for path, line, _rules, _file_wide in report.suppression_markers
        if "core" in path.split("/") or "memory" in path.split("/")
    ]
    assert offenders == [], (
        "daoplint suppression markers are forbidden in repro/core and "
        f"repro/memory: {offenders}"
    )
