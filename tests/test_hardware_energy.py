"""Unit tests for the energy model."""

import pytest

from repro.hardware.energy import EnergyModel
from repro.hardware.timeline import CPU, GPU, H2D, Timeline


@pytest.fixture()
def model(platform):
    return EnergyModel(platform)


def test_idle_floor(model, platform):
    """An idle makespan still burns idle + base power."""
    tl = Timeline()
    tl.add(GPU, 0.0)  # zero-duration marker; makespan 0
    e = model.energy(tl)
    assert e.total_j == 0.0


def test_busy_energy_exceeds_idle(model):
    tl_idle = Timeline()
    tl_idle.add(CPU, 0.0)
    tl_idle.add(GPU, 10.0)  # gpu busy 10 s
    tl_busy = Timeline()
    tl_busy.add(CPU, 10.0)
    tl_busy.add(GPU, 10.0)
    assert model.energy(tl_busy).total_j > model.energy(tl_idle).total_j


def test_breakdown_adds_up(model):
    tl = Timeline()
    tl.add(GPU, 2.0)
    tl.add(CPU, 1.0)
    tl.add(H2D, 0.5)
    e = model.energy(tl)
    assert e.total_j == pytest.approx(e.gpu_j + e.cpu_j + e.link_j + e.base_j)
    assert e.total_kj == pytest.approx(e.total_j / 1e3)


def test_exact_integration(model, platform):
    tl = Timeline()
    tl.add(GPU, 2.0)  # makespan 2
    e = model.energy(tl)
    gpu = platform.gpu
    expected_gpu = gpu.idle_power_w * 2.0 + (
        gpu.active_power_w - gpu.idle_power_w
    ) * 2.0
    assert e.gpu_j == pytest.approx(expected_gpu)
    assert e.cpu_j == pytest.approx(platform.cpu.idle_power_w * 2.0)
    assert e.base_j == pytest.approx(platform.base_power_w * 2.0)


def test_average_power(model, platform):
    tl = Timeline()
    tl.add(GPU, 4.0)
    avg = model.average_power_w(tl)
    floor = (platform.gpu.idle_power_w + platform.cpu.idle_power_w
             + platform.base_power_w)
    assert avg > floor
    assert model.average_power_w(Timeline()) == 0.0
