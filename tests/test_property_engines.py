"""Property-based engine invariants on randomized tiny workloads.

Each example draws a random engine, cache ratio, and request shape, runs
a full generation, and checks structural invariants that must hold for
*any* schedule the engine could emit.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import build_engine
from repro.hardware.presets import default_platform
from repro.hardware.timeline import RESOURCES
from repro.model.zoo import build_tiny_moe
from repro.workloads import C4, SequenceGenerator

_BUNDLE = build_tiny_moe(seed=0, n_blocks=6)
_PLATFORM = default_platform()
_GENERATOR = SequenceGenerator(C4, _BUNDLE.vocab, seed=7)

engine_names = st.sampled_from(
    ["official", "moe-ondemand", "deepspeed-mii", "mixtral-offloading",
     "moe-infinity", "fiddler", "pregated-moe", "daop"]
)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    name=engine_names,
    ecr=st.sampled_from([0.0, 0.25, 0.5, 1.0]),
    prompt_len=st.integers(2, 20),
    n_new=st.integers(1, 8),
    sample_idx=st.integers(0, 5),
)
def test_engine_run_invariants(name, ecr, prompt_len, n_new, sample_idx):
    engine = build_engine(name, _BUNDLE, _PLATFORM, ecr)
    sequence = _GENERATOR.sample_sequence(prompt_len, 0,
                                          sample_idx=sample_idx)
    result = engine.generate(sequence.prompt_tokens, n_new)

    # Tokens: right count, in vocabulary.
    assert result.tokens.shape == (n_new,)
    assert np.all((result.tokens >= 0)
                  & (result.tokens < _BUNDLE.vocab.vocab_size))

    # Timing: positive, prefill within total, finite energy.
    stats = result.stats
    assert 0 < stats.prefill_time_s <= stats.total_time_s
    assert stats.energy.total_j > 0
    assert 0.0 <= stats.counters.gpu_hit_rate <= 1.0

    # Timeline: every op within [0, makespan], FIFO per resource.
    makespan = result.timeline.makespan
    assert stats.total_time_s == pytest.approx(makespan)
    for resource in RESOURCES:
        ops = result.timeline.ops_on(resource)
        for a, b in zip(ops, ops[1:]):
            assert b.start >= a.end - 1e-12
    for op in result.timeline.ops:
        assert 0.0 <= op.start <= op.end <= makespan + 1e-12

    # Trace: prefill covers the prompt; decode covers n_new - 1 inputs.
    assert result.trace.token_count("prefill") == prompt_len
    assert result.trace.token_count("decode") == n_new - 1

    # Placement: ECR preserved for engines that never change the budget
    # (all of them: swaps are one-in-one-out, uploads evict or stream).
    if name not in ("deepspeed-mii",):
        expected = engine.initial_placement.expert_cache_ratio
        assert result.placement.expert_cache_ratio == pytest.approx(
            expected, abs=1e-9
        )
