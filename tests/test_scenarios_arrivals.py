"""Unit tests for the time-varying arrival generators."""

import numpy as np
import pytest

from repro.scenarios.arrivals import (
    diurnal_arrivals,
    flash_crowd_arrivals,
    onoff_arrivals,
)


class TestDiurnal:
    def test_count_and_sortedness(self, rng):
        times = diurnal_arrivals(2.0, 200, rng, period_s=100.0)
        assert times.shape == (200,)
        assert np.all(np.diff(times) >= 0)
        assert np.all(times > 0)

    def test_seed_determinism(self):
        a = diurnal_arrivals(1.0, 50, np.random.default_rng(5),
                             period_s=40.0)
        b = diurnal_arrivals(1.0, 50, np.random.default_rng(5),
                             period_s=40.0)
        np.testing.assert_array_equal(a, b)

    def test_peak_denser_than_trough(self, rng):
        """Arrivals concentrate in the sinusoid's high-rate half."""
        period = 100.0
        times = diurnal_arrivals(5.0, 3000, rng, period_s=period,
                                 amplitude=0.9)
        phase = (times % period) / period
        # sin is positive on the first half of each period.
        in_peak_half = np.mean(phase < 0.5)
        assert in_peak_half > 0.6

    def test_zero_amplitude_is_homogeneous(self, rng):
        """amplitude=0 collapses to a plain Poisson process."""
        times = diurnal_arrivals(10.0, 2000, rng, period_s=50.0,
                                 amplitude=0.0)
        mean_gap = times[-1] / times.size
        assert mean_gap == pytest.approx(0.1, rel=0.15)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            diurnal_arrivals(0.0, 5, rng)
        with pytest.raises(ValueError):
            diurnal_arrivals(1.0, 0, rng)
        with pytest.raises(ValueError):
            diurnal_arrivals(1.0, 5, rng, amplitude=1.0)
        with pytest.raises(ValueError):
            diurnal_arrivals(1.0, 5, rng, period_s=0.0)


class TestFlashCrowd:
    def test_count_and_sortedness(self, rng):
        times = flash_crowd_arrivals(1.0, 100, rng, spike_start_s=20.0,
                                     spike_duration_s=10.0)
        assert times.shape == (100,)
        assert np.all(np.diff(times) >= 0)

    def test_seed_determinism(self):
        a = flash_crowd_arrivals(1.0, 40, np.random.default_rng(9),
                                 spike_start_s=5.0, spike_duration_s=5.0)
        b = flash_crowd_arrivals(1.0, 40, np.random.default_rng(9),
                                 spike_start_s=5.0, spike_duration_s=5.0)
        np.testing.assert_array_equal(a, b)

    def test_spike_window_is_denser(self, rng):
        """The in-window arrival rate beats the baseline rate."""
        start, duration = 50.0, 50.0
        times = flash_crowd_arrivals(1.0, 400, rng, spike_start_s=start,
                                     spike_duration_s=duration,
                                     spike_multiplier=10.0)
        in_window = np.sum((times >= start) & (times < start + duration))
        window_rate = in_window / duration
        outside = times[(times < start) | (times >= start + duration)]
        span_outside = (times[-1] - times[0]) - duration
        outside_rate = outside.size / max(span_outside, 1e-9)
        assert window_rate > 2 * outside_rate

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            flash_crowd_arrivals(0.0, 5, rng, spike_start_s=1.0,
                                 spike_duration_s=1.0)
        with pytest.raises(ValueError):
            flash_crowd_arrivals(1.0, 0, rng, spike_start_s=1.0,
                                 spike_duration_s=1.0)
        with pytest.raises(ValueError):
            flash_crowd_arrivals(1.0, 5, rng, spike_start_s=-1.0,
                                 spike_duration_s=1.0)
        with pytest.raises(ValueError):
            flash_crowd_arrivals(1.0, 5, rng, spike_start_s=1.0,
                                 spike_duration_s=0.0)
        with pytest.raises(ValueError):
            flash_crowd_arrivals(1.0, 5, rng, spike_start_s=1.0,
                                 spike_duration_s=1.0,
                                 spike_multiplier=0.5)


class TestOnOff:
    def test_count_and_sortedness(self, rng):
        times = onoff_arrivals(5.0, 120, rng, mean_on_s=10.0,
                               mean_off_s=30.0)
        assert times.shape == (120,)
        assert np.all(np.diff(times) >= 0)

    def test_seed_determinism(self):
        a = onoff_arrivals(2.0, 30, np.random.default_rng(3))
        b = onoff_arrivals(2.0, 30, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_burstier_than_poisson(self, rng):
        """OFF periods stretch the gap distribution's tail: the gap
        coefficient of variation exceeds the Poisson value of 1."""
        times = onoff_arrivals(10.0, 2000, rng, mean_on_s=5.0,
                               mean_off_s=50.0)
        gaps = np.diff(times)
        cv = float(np.std(gaps) / np.mean(gaps))
        assert cv > 1.5

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            onoff_arrivals(0.0, 5, rng)
        with pytest.raises(ValueError):
            onoff_arrivals(1.0, 0, rng)
        with pytest.raises(ValueError):
            onoff_arrivals(1.0, 5, rng, mean_on_s=0.0)
        with pytest.raises(ValueError):
            onoff_arrivals(1.0, 5, rng, mean_off_s=-1.0)
