"""Unit tests for the serving simulator and arrival processes."""

import importlib

import numpy as np
import pytest

from repro.core import build_engine
from repro.serving import (
    ServingSimulator,
    bursty_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.workloads import SHAREGPT, SequenceGenerator


@pytest.fixture(params=["repro.scenarios.arrivals",
                        "repro.serving.arrivals"])
def arrivals_mod(request):
    """The arrival generators via both their canonical and legacy paths.

    The generators live in ``repro.scenarios.arrivals``;
    ``repro.serving.arrivals`` re-exports them for compatibility.  Every
    behavioral test below runs against both import paths.
    """
    return importlib.import_module(request.param)


class TestArrivals:
    def test_poisson_mean_rate(self, rng, arrivals_mod):
        times = arrivals_mod.poisson_arrivals(10.0, 2000, rng)
        assert times.shape == (2000,)
        assert np.all(np.diff(times) >= 0)
        mean_gap = times[-1] / 2000
        assert mean_gap == pytest.approx(0.1, rel=0.15)

    def test_uniform_spacing(self, arrivals_mod):
        times = arrivals_mod.uniform_arrivals(4.0, 8)
        np.testing.assert_allclose(np.diff(times), 0.25)

    def test_bursty_clusters(self, rng, arrivals_mod):
        times = arrivals_mod.bursty_arrivals(10.0, 40, rng, burst_size=4,
                                             burst_spread_s=0.01)
        assert times.shape == (40,)
        assert np.all(np.diff(times) >= 0)
        # Most consecutive gaps inside bursts are tiny.
        gaps = np.diff(times)
        assert np.median(gaps) < 0.05

    def test_validation(self, rng, arrivals_mod):
        with pytest.raises(ValueError):
            arrivals_mod.poisson_arrivals(0.0, 5, rng)
        with pytest.raises(ValueError):
            arrivals_mod.poisson_arrivals(1.0, 0, rng)
        with pytest.raises(ValueError):
            arrivals_mod.uniform_arrivals(-1.0, 5)
        with pytest.raises(ValueError):
            arrivals_mod.bursty_arrivals(1.0, 5, rng, burst_size=0)

    def test_bursty_exact_count_non_multiple(self, rng, arrivals_mod):
        """10 requests in bursts of 4: the last burst is truncated."""
        times = arrivals_mod.bursty_arrivals(10.0, 10, rng, burst_size=4)
        assert times.shape == (10,)

    @pytest.mark.parametrize("n_requests", [1, 3, 4, 5, 17])
    def test_bursty_count_and_sortedness(self, rng, arrivals_mod,
                                         n_requests):
        times = arrivals_mod.bursty_arrivals(5.0, n_requests, rng,
                                             burst_size=4)
        assert times.shape == (n_requests,)
        assert np.all(np.diff(times) >= 0)

    def test_bursty_seed_determinism(self, arrivals_mod):
        a = arrivals_mod.bursty_arrivals(10.0, 11,
                                         np.random.default_rng(7),
                                         burst_size=3)
        b = arrivals_mod.bursty_arrivals(10.0, 11,
                                         np.random.default_rng(7),
                                         burst_size=3)
        np.testing.assert_array_equal(a, b)

    def test_reexport_is_same_object(self):
        """The legacy path re-exports the very same functions."""
        from repro.scenarios import arrivals as canonical
        from repro.serving import arrivals as legacy

        assert legacy.poisson_arrivals is canonical.poisson_arrivals
        assert legacy.bursty_arrivals is canonical.bursty_arrivals
        assert legacy.uniform_arrivals is canonical.uniform_arrivals


@pytest.fixture(scope="module")
def served(tiny_bundle, platform, tiny_calibration):
    engine = build_engine("daop", tiny_bundle, platform, 0.5,
                          tiny_calibration)
    generator = SequenceGenerator(SHAREGPT, tiny_bundle.vocab, seed=61)
    simulator = ServingSimulator(engine, generator)
    arrivals = uniform_arrivals(2.0, 6)
    return simulator.run(arrivals, prompt_len=12, output_len=6)


class TestServingSimulator:
    def test_all_requests_served(self, served):
        assert served.n_requests == 6
        assert all(r.n_generated == 6 for r in served.requests)

    def test_fifo_no_overlap(self, served):
        reqs = sorted(served.requests, key=lambda r: r.start_s)
        for a, b in zip(reqs, reqs[1:]):
            assert b.start_s >= a.finish_s - 1e-12

    def test_request_invariants(self, served):
        for r in served.requests:
            assert r.start_s >= r.arrival_s
            assert r.arrival_s <= r.first_token_s <= r.finish_s
            assert r.queue_delay_s >= 0
            assert r.ttft_s >= 0
            assert r.latency_s >= r.ttft_s
            assert r.tpot_s >= 0
            assert r.energy_j > 0

    def test_percentiles_ordered(self, served):
        assert (served.latency_percentile(50)
                <= served.latency_percentile(95)
                <= served.latency_percentile(99))
        assert served.ttft_percentile(50) <= served.ttft_percentile(99)

    def test_throughput_positive(self, served):
        assert served.throughput_tokens_per_s > 0
        assert served.tokens_per_kilojoule > 0

    def test_overload_grows_queue(self, tiny_bundle, platform,
                                  tiny_calibration):
        """Arrivals faster than service accumulate queue delay."""
        engine = build_engine("fiddler", tiny_bundle, platform, 0.25,
                              tiny_calibration)
        generator = SequenceGenerator(SHAREGPT, tiny_bundle.vocab, seed=62)
        simulator = ServingSimulator(engine, generator)
        slow = simulator.run(uniform_arrivals(0.01, 4), 12, 6)
        fast = simulator.run(uniform_arrivals(100.0, 4), 12, 6)
        assert fast.mean_queue_delay_s > slow.mean_queue_delay_s
        # Last request in the overloaded trace waits behind all others.
        assert fast.requests[-1].queue_delay_s > 0

    def test_identical_work_across_engines(self, tiny_bundle, platform,
                                           tiny_calibration):
        """Two engines given the same arrivals serve identical prompts."""
        generator_a = SequenceGenerator(SHAREGPT, tiny_bundle.vocab, seed=63)
        generator_b = SequenceGenerator(SHAREGPT, tiny_bundle.vocab, seed=63)
        a = ServingSimulator(
            build_engine("fiddler", tiny_bundle, platform, 0.5,
                         tiny_calibration), generator_a)
        b = ServingSimulator(
            build_engine("daop", tiny_bundle, platform, 0.5,
                         tiny_calibration), generator_b)
        arrivals = uniform_arrivals(1.0, 3)
        ra = a.run(arrivals, 12, 6)
        rb = b.run(arrivals, 12, 6)
        assert [r.n_prompt_tokens for r in ra.requests] == [
            r.n_prompt_tokens for r in rb.requests
        ]

    def test_concurrency_must_be_positive(self, tiny_bundle, platform,
                                          tiny_calibration):
        engine = build_engine("daop", tiny_bundle, platform, 0.5,
                              tiny_calibration)
        generator = SequenceGenerator(SHAREGPT, tiny_bundle.vocab, seed=64)
        with pytest.raises(ValueError):
            ServingSimulator(engine, generator, concurrency=0)

    def test_concurrency_cuts_queue_delay_same_tokens(
            self, tiny_bundle, platform, tiny_calibration):
        """Batched serving admits queued requests early: TTFT drops,
        served tokens stay identical (per-sequence state isolation)."""
        def run(concurrency):
            engine = build_engine("daop", tiny_bundle, platform, 0.5,
                                  tiny_calibration)
            generator = SequenceGenerator(SHAREGPT, tiny_bundle.vocab,
                                          seed=65)
            simulator = ServingSimulator(engine, generator,
                                         concurrency=concurrency)
            return simulator.run(uniform_arrivals(100.0, 4), 12, 6)

        solo = run(1)
        batched = run(4)
        assert batched.mean_queue_delay_s < solo.mean_queue_delay_s
        assert batched.ttft_percentile(95) < solo.ttft_percentile(95)
        assert [r.n_generated for r in batched.requests] == [
            r.n_generated for r in solo.requests
        ]
        # Service spans overlap under concurrency.
        reqs = sorted(batched.requests, key=lambda r: r.start_s)
        assert any(b.start_s < a.finish_s for a, b in zip(reqs, reqs[1:]))

    def test_uniform_run_wrapper_byte_identical(self, tiny_bundle,
                                                platform,
                                                tiny_calibration):
        """run() (now a RequestSpec wrapper) must reproduce the
        pre-wrapper body's report exactly, field for field."""
        from repro.core.engine import SequenceRequest
        from repro.sched.scheduler import ContinuousBatchScheduler
        from repro.serving.simulator import ServedRequest

        arrivals = bursty_arrivals(2.0, 5, np.random.default_rng(17),
                                   burst_size=2)

        engine = build_engine("daop", tiny_bundle, platform, 0.5,
                              tiny_calibration)
        generator = SequenceGenerator(SHAREGPT, tiny_bundle.vocab,
                                      seed=66)
        report = ServingSimulator(engine, generator).run(arrivals, 12, 6)

        # Hand-rolled replica of the historical run() body.
        engine_b = build_engine("daop", tiny_bundle, platform, 0.5,
                                tiny_calibration)
        generator_b = SequenceGenerator(SHAREGPT, tiny_bundle.vocab,
                                        seed=66)
        arrival_times = np.sort(np.asarray(arrivals, dtype=np.float64))
        requests = []
        for i, _ in enumerate(arrival_times):
            sequence = generator_b.sample_sequence(12, 6, sample_idx=i)
            requests.append(SequenceRequest(
                prompt_tokens=sequence.prompt_tokens,
                max_new_tokens=6,
                forced_tokens=sequence.continuation_tokens,
                seq_id=i,
            ))
        batch = ContinuousBatchScheduler(engine_b, max_batch=1).run(
            requests, arrival_times
        )
        expected = [
            ServedRequest(
                request_id=rec.seq_id,
                arrival_s=rec.arrival_s,
                start_s=rec.service_start_s,
                first_token_s=rec.first_token_s,
                finish_s=rec.finish_s,
                n_prompt_tokens=rec.n_prompt_tokens,
                n_generated=rec.n_generated,
                energy_j=rec.result.stats.energy.total_j,
            )
            for rec in batch.records
        ]
        assert repr(report.requests) == repr(expected)

    def test_run_requests_heterogeneous(self, tiny_bundle, platform,
                                        tiny_calibration):
        """Per-request lengths and ids flow through run_requests."""
        from repro.workloads import RequestSpec

        engine = build_engine("daop", tiny_bundle, platform, 0.5,
                              tiny_calibration)
        simulator = ServingSimulator(engine)
        generator = SequenceGenerator(SHAREGPT, tiny_bundle.vocab,
                                      seed=67)
        shapes = [(8, 3), (14, 6), (10, 4)]
        specs = []
        for i, (prompt_len, output_len) in enumerate(shapes):
            sequence = generator.sample_sequence(prompt_len, output_len,
                                                 sample_idx=i)
            specs.append(RequestSpec(
                request_id=10 + i,
                arrival_s=float(i),
                prompt_tokens=sequence.prompt_tokens,
                output_len=output_len,
                forced_tokens=sequence.continuation_tokens,
            ))
        report = simulator.run_requests(specs)
        generated = {r.request_id: r.n_generated for r in report.requests}
        assert generated == {10: 3, 11: 6, 12: 4}
        prompts = {r.request_id: r.n_prompt_tokens
                   for r in report.requests}
        assert prompts == {10: 8, 11: 14, 12: 10}

    def test_run_without_generator_raises(self, tiny_bundle, platform,
                                          tiny_calibration):
        engine = build_engine("daop", tiny_bundle, platform, 0.5,
                              tiny_calibration)
        simulator = ServingSimulator(engine)
        with pytest.raises(ValueError):
            simulator.run(uniform_arrivals(1.0, 2), 8, 4)

    def test_empty_report(self):
        from repro.serving.simulator import ServingReport

        report = ServingReport(engine="x")
        assert report.makespan_s == 0.0
        assert report.throughput_tokens_per_s == 0.0
        assert report.mean_queue_delay_s == 0.0
        assert report.tokens_per_kilojoule == 0.0

    def test_empty_report_percentiles(self):
        """Regression: percentiles of an empty report must not crash."""
        from repro.serving.simulator import ServingReport

        report = ServingReport(engine="x")
        assert report.ttft_percentile(50) == 0.0
        assert report.tpot_percentile(99) == 0.0
        assert report.latency_percentile(95) == 0.0


class TestPercentileOrZero:
    def test_empty_returns_zero(self):
        from repro.serving import percentile_or_zero

        assert percentile_or_zero([], 50) == 0.0
        assert percentile_or_zero((), 99) == 0.0

    def test_matches_numpy_when_nonempty(self):
        from repro.serving import percentile_or_zero

        values = [3.0, 1.0, 2.0, 10.0]
        for q in (0, 50, 95, 100):
            assert percentile_or_zero(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )
