"""Unit tests for platform sensitivity sweeps."""

import pytest

from repro.hardware.sweeps import (
    AXES,
    run_sweep,
    scale_cpu_bandwidth,
    scale_gpu_bandwidth,
    scale_gpu_capacity,
    scale_link_bandwidth,
    sweep,
)


def test_link_scaling(platform):
    scaled = scale_link_bandwidth(platform, 4.0)
    assert scaled.link.bandwidth == pytest.approx(
        4.0 * platform.link.bandwidth
    )
    # Everything else untouched.
    assert scaled.gpu is platform.gpu
    assert scaled.cpu is platform.cpu


def test_cpu_and_gpu_scaling(platform):
    assert scale_cpu_bandwidth(platform, 2.0).cpu.mem_bandwidth == (
        pytest.approx(2.0 * platform.cpu.mem_bandwidth)
    )
    assert scale_gpu_bandwidth(platform, 0.5).gpu.mem_bandwidth == (
        pytest.approx(0.5 * platform.gpu.mem_bandwidth)
    )
    assert scale_gpu_capacity(platform, 2.0).gpu.mem_capacity == (
        pytest.approx(2.0 * platform.gpu.mem_capacity)
    )


def test_original_platform_not_mutated(platform):
    before = platform.link.bandwidth
    scale_link_bandwidth(platform, 8.0)
    assert platform.link.bandwidth == before


def test_invalid_factor(platform):
    with pytest.raises(ValueError):
        scale_link_bandwidth(platform, 0.0)
    with pytest.raises(ValueError):
        scale_cpu_bandwidth(platform, -1.0)


def test_sweep_axes(platform):
    for axis in AXES:
        variants = sweep(platform, axis, [1.0, 2.0])
        assert len(variants) == 2
        assert variants[0][0] == 1.0


def test_unknown_axis(platform):
    with pytest.raises(KeyError):
        sweep(platform, "quantum_tunneling", [1.0])


def test_run_sweep_measures_each_variant(platform):
    values = run_sweep(platform, "link_bandwidth", [1.0, 2.0, 4.0],
                       measure=lambda p: p.link.bandwidth)
    assert values[2.0] == pytest.approx(2.0 * values[1.0])
    assert values[4.0] == pytest.approx(4.0 * values[1.0])


def test_sweep_changes_cost_model(platform):
    """Scaling the link really changes simulated upload latency."""
    from repro.hardware.cost_model import CostModel
    from repro.model.zoo import MIXTRAL_8X7B_ARCH

    values = run_sweep(
        platform, "link_bandwidth", [1.0, 10.0],
        measure=lambda p: CostModel(
            MIXTRAL_8X7B_ARCH, p
        ).expert_transfer_time(),
    )
    assert values[10.0] < values[1.0] / 5.0


# ---- shared compute cache across sweep points --------------------------------


def test_run_sweep_with_shared_compute_cache(platform):
    from repro.model.zoo import build_tiny_moe
    from repro.perf import TensorCache

    model = build_tiny_moe(seed=0, n_blocks=2).model
    tokens = list(range(6))
    cache = TensorCache()

    def measure(variant):
        logits, _ = model.forward_exact(tokens)
        return float(variant.link.bandwidth + logits[0, 0] * 0.0)

    out = run_sweep(platform, "link_bandwidth", [1.0, 2.0, 4.0], measure,
                    model=model, compute_cache=cache)
    assert set(out) == {1.0, 2.0, 4.0}
    # Points after the first reuse the first point's forwards...
    assert cache.hits > 0
    # ...and the sweep detaches the cache when it finishes.
    assert model.compute_cache is None
    assert all(b.compute_cache is None for b in model.blocks)


def test_run_sweep_rejects_half_given_cache(platform):
    from repro.model.zoo import build_tiny_moe
    from repro.perf import TensorCache

    with pytest.raises(ValueError):
        run_sweep(platform, "link_bandwidth", [1.0], lambda p: 0.0,
                  model=build_tiny_moe(seed=0, n_blocks=1).model)
    with pytest.raises(ValueError):
        run_sweep(platform, "link_bandwidth", [1.0], lambda p: 0.0,
                  compute_cache=TensorCache())
