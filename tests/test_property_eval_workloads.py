"""Property-based tests for Rouge, accuracy metrics, and the generator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.accuracy import (
    exact_match,
    prefix_agreement,
    token_agreement,
)
from repro.eval.rouge import rouge_1, rouge_2

token_seqs = st.lists(st.integers(0, 30), min_size=0, max_size=20)


@given(token_seqs)
def test_rouge_self_identity(seq):
    assert rouge_1(seq, seq) == 1.0
    assert rouge_2(seq, seq) == 1.0


@given(token_seqs, token_seqs)
def test_rouge_bounds_and_symmetry(a, b):
    for fn in (rouge_1, rouge_2):
        score = fn(a, b)
        assert 0.0 <= score <= 1.0
        assert score == fn(b, a)  # F1 is symmetric


@given(token_seqs, token_seqs)
def test_exact_match_iff_equal(a, b):
    assert exact_match(a, b) == (1.0 if a == b else 0.0)


@given(token_seqs, token_seqs)
def test_agreement_bounds(a, b):
    assert 0.0 <= token_agreement(a, b) <= 1.0
    assert 0.0 <= prefix_agreement(a, b) <= 1.0


@given(token_seqs)
def test_prefix_agreement_self(a):
    assert prefix_agreement(a, a) == 1.0


@given(token_seqs, token_seqs)
def test_exact_match_implies_full_agreement(a, b):
    if exact_match(a, b) == 1.0 and a:
        assert token_agreement(a, b) == 1.0
        assert prefix_agreement(a, b) == 1.0


class TestGeneratorProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 40), st.integers(0, 20), st.integers(0, 50))
    def test_lengths_and_vocab(self, prompt_len, cont_len, idx):
        from repro.model.zoo import build_tiny_moe
        from repro.workloads import C4, SequenceGenerator

        bundle = build_tiny_moe(seed=0, n_blocks=2)
        gen = SequenceGenerator(C4, bundle.vocab, seed=1)
        seq = gen.sample_sequence(prompt_len, cont_len, sample_idx=idx)
        assert seq.prompt_tokens.shape == (prompt_len,)
        assert seq.continuation_tokens.shape == (cont_len,)
        assert seq.full_tokens.min() >= 0
        assert seq.full_tokens.max() < bundle.vocab.vocab_size
