"""Integration tests for the multi-replica cluster simulator."""

import numpy as np
import pytest

from repro.cluster import (
    AdmissionController,
    ClusterSimulator,
    build_policy,
    prefill_fingerprint,
    warm_hit_rate,
)
from repro.core import build_engine
from repro.serving import uniform_arrivals
from repro.workloads import SHAREGPT, SequenceGenerator

# Three-cluster request pattern: non-cyclic, so round-robin's rotation
# cannot accidentally align with the similarity structure.
PATTERN = [0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 0, 1]


def build_fleet(tiny_bundle, platform, tiny_calibration, n=2,
                engine="daop"):
    """n identically-configured engine replicas."""
    return [
        build_engine(engine, tiny_bundle, platform, 0.5, tiny_calibration)
        for _ in range(n)
    ]


def run_policy(tiny_bundle, platform, tiny_calibration, policy_name,
               rate=0.002, **sim_kwargs):
    """One clustered-workload fleet run under the named policy."""
    engines = build_fleet(tiny_bundle, platform, tiny_calibration)
    generator = SequenceGenerator(SHAREGPT, tiny_bundle.vocab, seed=61)
    simulator = ClusterSimulator(engines, generator,
                                 build_policy(policy_name), **sim_kwargs)
    arrivals = uniform_arrivals(rate, len(PATTERN))
    return simulator.run(arrivals, prompt_len=12, output_len=6,
                         sample_indices=PATTERN)


@pytest.fixture(scope="module")
def policy_reports(tiny_bundle, platform, tiny_calibration):
    """The clustered workload served under every routing policy."""
    return {
        name: run_policy(tiny_bundle, platform, tiny_calibration, name)
        for name in ("round-robin", "join-shortest-queue",
                     "cache-affinity")
    }


class TestFingerprint:
    def test_fingerprint_counts_topk_activations(self, tiny_bundle):
        generator = SequenceGenerator(SHAREGPT, tiny_bundle.vocab, seed=61)
        prompt = generator.sample_sequence(12, 4, sample_idx=0).prompt_tokens
        model = tiny_bundle.model
        fp = prefill_fingerprint(model, prompt)
        assert fp.shape == (model.n_blocks, model.n_experts)
        # top-k routing: every block activates exactly k slots per token.
        expected = len(prompt) * model.top_k
        np.testing.assert_allclose(fp.sum(axis=1), expected)

    def test_warm_hit_rate_bounds(self, tiny_bundle, platform,
                                  tiny_calibration):
        engine = build_fleet(tiny_bundle, platform, tiny_calibration,
                             n=1)[0]
        generator = SequenceGenerator(SHAREGPT, tiny_bundle.vocab, seed=61)
        prompt = generator.sample_sequence(12, 4, sample_idx=0).prompt_tokens
        fp = prefill_fingerprint(tiny_bundle.model, prompt)
        rate = warm_hit_rate(engine.initial_placement, fp)
        assert 0.0 <= rate <= 1.0
        assert warm_hit_rate(engine.initial_placement, np.zeros_like(fp)) \
            == 0.0


class TestLightLoad:
    def test_all_requests_served(self, policy_reports):
        for report in policy_reports.values():
            assert report.n_served == len(PATTERN)
            assert report.rejected == []
            assert all(r.n_generated == 6 for r in report.requests)

    def test_request_invariants(self, policy_reports):
        for report in policy_reports.values():
            for r in report.requests:
                assert 0 <= r.replica < report.n_replicas
                assert r.arrival_s <= r.start_s <= r.first_token_s \
                    <= r.finish_s
                assert 0.0 <= r.warm_hit_rate <= 1.0
                assert 0.0 <= r.engine_hit_rate <= 1.0

    def test_no_overlap_per_replica(self, policy_reports):
        for report in policy_reports.values():
            for replica in range(report.n_replicas):
                mine = sorted((r for r in report.requests
                               if r.replica == replica),
                              key=lambda r: r.start_s)
                for a, b in zip(mine, mine[1:]):
                    assert b.start_s >= a.finish_s - 1e-12

    def test_busy_time_matches_served_requests(self, policy_reports):
        for report in policy_reports.values():
            for replica in range(report.n_replicas):
                served = sum(r.finish_s - r.start_s
                             for r in report.requests
                             if r.replica == replica)
                assert report.replica_busy_s[replica] \
                    == pytest.approx(served)

    def test_round_robin_alternates(self, policy_reports):
        replicas = [r.replica for r in sorted(
            policy_reports["round-robin"].requests,
            key=lambda r: r.request_id)]
        assert replicas == [i % 2 for i in range(len(PATTERN))]


class TestDeterminism:
    def test_two_fresh_simulators_byte_identical(self, tiny_bundle,
                                                 platform,
                                                 tiny_calibration):
        a = run_policy(tiny_bundle, platform, tiny_calibration,
                       "cache-affinity")
        b = run_policy(tiny_bundle, platform, tiny_calibration,
                       "cache-affinity")
        assert a.to_json() == b.to_json()

    def test_same_simulator_rerun_identical(self, tiny_bundle, platform,
                                            tiny_calibration):
        engines = build_fleet(tiny_bundle, platform, tiny_calibration)
        generator = SequenceGenerator(SHAREGPT, tiny_bundle.vocab, seed=61)
        simulator = ClusterSimulator(engines, generator,
                                     build_policy("cache-affinity"))
        arrivals = uniform_arrivals(0.002, len(PATTERN))
        first = simulator.run(arrivals, 12, 6, sample_indices=PATTERN)
        second = simulator.run(arrivals, 12, 6, sample_indices=PATTERN)
        assert first.to_json() == second.to_json()


class TestRunRequests:
    """The RequestSpec entry point added for the scenario library."""

    def _specs_from_pattern(self, tiny_bundle, arrivals):
        from repro.workloads import RequestSpec

        generator = SequenceGenerator(SHAREGPT, tiny_bundle.vocab,
                                      seed=61)
        sequences = {
            idx: generator.sample_sequence(12, 6, sample_idx=idx)
            for idx in set(PATTERN)
        }
        ordered = np.sort(np.asarray(arrivals, dtype=np.float64))
        return [
            RequestSpec(
                request_id=i,
                arrival_s=float(ordered[i]),
                prompt_tokens=sequences[idx].prompt_tokens,
                output_len=6,
                forced_tokens=sequences[idx].continuation_tokens,
                sample_idx=idx,
            )
            for i, idx in enumerate(PATTERN)
        ]

    def test_matches_uniform_run_on_equivalent_specs(
            self, tiny_bundle, platform, tiny_calibration):
        """run() and run_requests() fed the same work produce the same
        report: the uniform path is a true thin wrapper."""
        arrivals = uniform_arrivals(0.002, len(PATTERN))
        baseline = run_policy(tiny_bundle, platform, tiny_calibration,
                              "cache-affinity")
        engines = build_fleet(tiny_bundle, platform, tiny_calibration)
        simulator = ClusterSimulator(engines, None,
                                     build_policy("cache-affinity"))
        specs = self._specs_from_pattern(tiny_bundle, arrivals)
        report = simulator.run_requests(specs)
        assert report.to_json() == baseline.to_json()

    def test_content_dedupe_across_sample_idx_collision(
            self, tiny_bundle, platform, tiny_calibration):
        """Two requests with the same sample_idx but different token
        content must not alias to one payload (the per-tenant
        generator regime)."""
        from repro.workloads import RequestSpec

        generator_a = SequenceGenerator(SHAREGPT, tiny_bundle.vocab,
                                        seed=61)
        generator_b = SequenceGenerator(SHAREGPT, tiny_bundle.vocab,
                                        seed=62)
        seq_a = generator_a.sample_sequence(12, 6, sample_idx=0)
        seq_b = generator_b.sample_sequence(10, 4, sample_idx=0)
        specs = [
            RequestSpec(request_id=0, arrival_s=0.0,
                        prompt_tokens=seq_a.prompt_tokens, output_len=6,
                        forced_tokens=seq_a.continuation_tokens,
                        sample_idx=0),
            RequestSpec(request_id=1, arrival_s=1.0,
                        prompt_tokens=seq_b.prompt_tokens, output_len=4,
                        forced_tokens=seq_b.continuation_tokens,
                        sample_idx=0),
        ]
        engines = build_fleet(tiny_bundle, platform, tiny_calibration)
        simulator = ClusterSimulator(engines, None,
                                     build_policy("round-robin"))
        report = simulator.run_requests(specs)
        served = {r.request_id: r for r in report.requests}
        assert served[0].n_prompt_tokens == 12
        assert served[0].n_generated == 6
        assert served[1].n_prompt_tokens == 10
        assert served[1].n_generated == 4

    def test_duplicate_request_ids_rejected(self, tiny_bundle, platform,
                                            tiny_calibration):
        from repro.workloads import RequestSpec

        generator = SequenceGenerator(SHAREGPT, tiny_bundle.vocab,
                                      seed=61)
        seq = generator.sample_sequence(8, 2, sample_idx=0)
        specs = [
            RequestSpec(request_id=3, arrival_s=float(i),
                        prompt_tokens=seq.prompt_tokens, output_len=2,
                        forced_tokens=seq.continuation_tokens)
            for i in range(2)
        ]
        engines = build_fleet(tiny_bundle, platform, tiny_calibration)
        simulator = ClusterSimulator(engines, None,
                                     build_policy("round-robin"))
        with pytest.raises(ValueError):
            simulator.run_requests(specs)

    def test_run_without_generator_raises(self, tiny_bundle, platform,
                                          tiny_calibration):
        engines = build_fleet(tiny_bundle, platform, tiny_calibration)
        simulator = ClusterSimulator(engines, None,
                                     build_policy("round-robin"))
        with pytest.raises(ValueError):
            simulator.run(uniform_arrivals(1.0, 2), 8, 4)


class TestCacheAffinityWins:
    """The subsystem's headline property (ISSUE acceptance criterion)."""

    def test_higher_warm_hit_rate_than_round_robin(self, policy_reports):
        affinity = policy_reports["cache-affinity"]
        round_robin = policy_reports["round-robin"]
        assert affinity.mean_warm_hit_rate > round_robin.mean_warm_hit_rate

    def test_fewer_prefill_swaps_than_round_robin(self, policy_reports):
        swaps = {
            name: sum(r.prefill_swaps for r in report.requests)
            for name, report in policy_reports.items()
        }
        assert swaps["cache-affinity"] < swaps["round-robin"]


class TestOverload:
    def test_full_queues_shed(self, tiny_bundle, platform,
                              tiny_calibration):
        report = run_policy(
            tiny_bundle, platform, tiny_calibration, "join-shortest-queue",
            rate=100.0, admission=AdmissionController(max_queue_len=1),
        )
        assert report.n_shed > 0
        assert report.n_served + report.n_shed == len(PATTERN)
        assert report.slo_attainment < 1.0

    def test_deadline_expires_queued_requests(self, tiny_bundle, platform,
                                              tiny_calibration):
        report = run_policy(
            tiny_bundle, platform, tiny_calibration, "join-shortest-queue",
            rate=100.0,
            admission=AdmissionController(max_queue_len=32,
                                          ttft_deadline_s=1e-6),
        )
        # Requests dispatched immediately on arrival survive; anything
        # that waited behind a busy replica blows the tiny deadline.
        assert report.n_expired > 0
        assert report.n_served + report.n_expired == len(PATTERN)


class TestGangDispatch:
    def test_concurrency1_matches_sequential_service(
            self, tiny_bundle, platform, tiny_calibration):
        """The gang path at concurrency=1 is byte-identical to the
        sequential dispatch it replaced."""
        sequential = run_policy(tiny_bundle, platform, tiny_calibration,
                                "round-robin", concurrency=1)
        baseline = run_policy(tiny_bundle, platform, tiny_calibration,
                              "round-robin")
        assert sequential.to_json() == baseline.to_json()

    def test_gangs_batch_queued_requests(self, tiny_bundle, platform,
                                         tiny_calibration):
        """Under load, a gang serves several requests concurrently on
        one replica: spans overlap and tail TTFT drops."""
        sequential = run_policy(tiny_bundle, platform, tiny_calibration,
                                "round-robin", rate=100.0)
        ganged = run_policy(tiny_bundle, platform, tiny_calibration,
                            "round-robin", rate=100.0, concurrency=3)
        assert len(ganged.requests) == len(sequential.requests)
        assert ganged.ttft_percentile(95) < sequential.ttft_percentile(95)
        by_replica = {}
        for r in ganged.requests:
            by_replica.setdefault(r.replica, []).append(r)
        overlapped = False
        for reqs in by_replica.values():
            reqs.sort(key=lambda r: r.start_s)
            overlapped = overlapped or any(
                b.start_s < a.finish_s for a, b in zip(reqs, reqs[1:])
            )
        assert overlapped
        # Tokens served are identical either way.
        assert sorted(r.n_generated for r in ganged.requests) == \
            sorted(r.n_generated for r in sequential.requests)

    def test_gang_requests_pass_invariants(self, tiny_bundle, platform,
                                           tiny_calibration):
        report = run_policy(tiny_bundle, platform, tiny_calibration,
                            "cache-affinity", rate=100.0, concurrency=4)
        for r in report.requests:
            assert r.start_s >= r.arrival_s
            assert r.start_s <= r.first_token_s <= r.finish_s
            assert 0.0 <= r.warm_hit_rate <= 1.0


class TestBatchHold:
    """Crossover-aware admission: holding lone prefills for a cohort."""

    def _run(self, tiny_bundle, platform, tiny_calibration, arrivals,
             admission, concurrency=2):
        from repro.events import CLUSTER_HOLD

        engines = build_fleet(tiny_bundle, platform, tiny_calibration, n=1)
        generator = SequenceGenerator(SHAREGPT, tiny_bundle.vocab, seed=61)
        simulator = ClusterSimulator(
            engines, generator, build_policy("round-robin"),
            admission=admission, concurrency=concurrency,
        )
        held = []
        simulator.events.subscribe(held.append, kinds=(CLUSTER_HOLD,))
        report = simulator.run(np.asarray(arrivals), prompt_len=12,
                               output_len=6)
        return report, held

    def test_hold_forms_a_cohort(self, tiny_bundle, platform,
                                 tiny_calibration):
        """A lone prefill waits; the next arrival joins it in one gang."""
        report, held = self._run(
            tiny_bundle, platform, tiny_calibration, [0.0, 0.01],
            AdmissionController(batch_hold_s=1.0),
        )
        assert len(held) >= 1
        assert held[0].payload["replica"] == 0
        first = min(report.requests, key=lambda r: r.arrival_s)
        # The held request started when its batchmate arrived, not at
        # its own arrival and not at the full hold window.
        assert first.start_s == pytest.approx(0.01)
        assert report.n_served == 2

    def test_lone_request_dispatches_at_window_end(
            self, tiny_bundle, platform, tiny_calibration):
        report, held = self._run(
            tiny_bundle, platform, tiny_calibration, [0.0],
            AdmissionController(batch_hold_s=0.5),
        )
        assert len(held) == 1
        assert held[0].payload["until_s"] == pytest.approx(0.5)
        assert report.requests[0].start_s == pytest.approx(0.5)
        assert report.n_served == 1

    def test_window_end_terminates_on_inexact_arrival(
            self, tiny_bundle, platform, tiny_calibration):
        """The fallback dispatch must not re-hold at the window end.

        With a non-round arrival ``a``, ``(a + window) - a`` can round
        strictly below ``window`` in float arithmetic, so an expiry
        guard phrased as ``now - arrival < window`` re-holds forever at
        the fallback timestamp.  0.123456 with a 0.086 s window
        reproduces the rounding asymmetry.
        """
        arrival = 0.123456
        admission = AdmissionController(batch_hold_s=0.086)
        window = admission.hold_window_s
        assert (arrival + window) - arrival < window  # the trap exists
        report, held = self._run(
            tiny_bundle, platform, tiny_calibration, [arrival], admission,
        )
        assert len(held) == 1
        assert report.n_served == 1
        assert report.requests[0].start_s == pytest.approx(arrival + window)

    def test_no_hold_at_concurrency_one(self, tiny_bundle, platform,
                                        tiny_calibration):
        """A replica that cannot gang anyway never waits."""
        report, held = self._run(
            tiny_bundle, platform, tiny_calibration, [0.0],
            AdmissionController(batch_hold_s=0.5),
            concurrency=1,
        )
        assert held == []
        assert report.requests[0].start_s == pytest.approx(0.0)

    def test_no_hold_past_crossover(self, tiny_bundle, platform,
                                    tiny_calibration):
        """A compute-bound prompt dispatches immediately."""
        report, held = self._run(
            tiny_bundle, platform, tiny_calibration, [0.0],
            AdmissionController(batch_hold_s=0.5, crossover_tokens=12),
        )
        assert held == []
        assert report.requests[0].start_s == pytest.approx(0.0)

    def test_hold_off_is_byte_identical_to_baseline(
            self, tiny_bundle, platform, tiny_calibration):
        baseline = run_policy(tiny_bundle, platform, tiny_calibration,
                              "round-robin", concurrency=2)
        hold_off = run_policy(
            tiny_bundle, platform, tiny_calibration, "round-robin",
            concurrency=2, admission=AdmissionController(),
        )
        assert hold_off.to_json() == baseline.to_json()


class TestValidation:
    def test_requires_engines(self):
        generator = object()
        with pytest.raises(ValueError):
            ClusterSimulator([], generator, build_policy("round-robin"))

    def test_concurrency_must_be_positive(self, tiny_bundle, platform,
                                          tiny_calibration):
        engines = build_fleet(tiny_bundle, platform, tiny_calibration)
        generator = SequenceGenerator(SHAREGPT, tiny_bundle.vocab, seed=61)
        with pytest.raises(ValueError):
            ClusterSimulator(engines, generator,
                             build_policy("round-robin"), concurrency=0)

    def test_sample_indices_length_checked(self, tiny_bundle, platform,
                                           tiny_calibration):
        engines = build_fleet(tiny_bundle, platform, tiny_calibration)
        generator = SequenceGenerator(SHAREGPT, tiny_bundle.vocab, seed=61)
        simulator = ClusterSimulator(engines, generator,
                                     build_policy("round-robin"))
        with pytest.raises(ValueError):
            simulator.run(uniform_arrivals(1.0, 3), 12, 4,
                          sample_indices=[0])
