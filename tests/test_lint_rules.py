"""Unit tests for each daoplint rule family (positive + negative)."""

import textwrap

from repro.lint import all_rules, get_rule, lint_source

CORE = "src/repro/core/sample.py"
BASELINE = "src/repro/core/baselines/sample.py"
INIT = "src/repro/memory/__init__.py"
HARDWARE = "src/repro/hardware/sample.py"


def lint(source, path=CORE, select=None):
    """Lint a dedented snippet against a virtual repo path."""
    return lint_source(textwrap.dedent(source), path=path, select=select)


def codes(diagnostics):
    """The set of diagnostic codes found."""
    return {d.code for d in diagnostics}


def test_registry_exposes_all_rule_families():
    registered = {rule.code for rule in all_rules()}
    assert {"DET001", "DET002", "DET003", "LAY001", "ENG001", "ENG002",
            "ENG003", "ENG004", "ENG005", "ENG006", "API001", "API002",
            "API003", "API004", "TL001", "DOC001", "NUM001"} <= registered
    assert get_rule("stdlib-random").code == "DET001"
    assert get_rule("checkpoint-hook-pair").code == "ENG006"
    assert get_rule("DET001").name == "stdlib-random"
    assert get_rule("timeline-ops-mutation").code == "TL001"


# ---- determinism --------------------------------------------------------------


def test_stdlib_random_flagged():
    diags = lint('"""Doc."""\nimport random\n', select=["stdlib-random"])
    assert codes(diags) == {"DET001"}
    diags = lint('"""Doc."""\nfrom random import choice\n',
                 select=["stdlib-random"])
    assert codes(diags) == {"DET001"}


def test_legacy_numpy_random_flagged():
    diags = lint(
        '''\
        """Doc."""
        import numpy as np
        x = np.random.rand(3)
        ''',
        select=["unseeded-numpy"],
    )
    assert codes(diags) == {"DET002"}
    assert diags[0].line == 3


def test_unseeded_default_rng_flagged_but_seeded_ok():
    bad = lint('"""Doc."""\nimport numpy as np\n'
               'rng = np.random.default_rng()\n',
               select=["unseeded-numpy"])
    assert codes(bad) == {"DET002"}
    good = lint('"""Doc."""\nimport numpy as np\n'
                'rng = np.random.default_rng(7)\n'
                'ss = np.random.SeedSequence([1, 2])\n',
                select=["unseeded-numpy"])
    assert good == []


def test_wall_clock_flagged():
    diags = lint(
        '''\
        """Doc."""
        import time
        from datetime import datetime

        def now():
            """Doc."""
            return time.time() + datetime.now().timestamp()
        ''',
        select=["wall-clock"],
    )
    assert len(diags) == 2
    diags = lint('"""Doc."""\nfrom time import perf_counter\n',
                 select=["wall-clock"])
    assert codes(diags) == {"DET003"}


def test_timeline_usage_not_flagged():
    diags = lint(
        '''\
        """Doc."""
        from repro.hardware.timeline import Timeline

        def makespan(timeline):
            """Doc."""
            return timeline.makespan
        ''',
        select=["stdlib-random", "unseeded-numpy", "wall-clock"],
    )
    assert diags == []


# ---- import layering ----------------------------------------------------------


def test_lower_layer_may_not_import_core():
    diags = lint('"""Doc."""\nfrom repro.core.engine import BaseEngine\n',
                 path="src/repro/model/sample.py",
                 select=["import-layering"])
    assert codes(diags) == {"LAY001"}
    assert "repro.model" in diags[0].message


def test_core_may_import_substrate_but_not_cli():
    good = lint('"""Doc."""\nfrom repro.memory.placement import '
                'ExpertPlacement\n', select=["import-layering"])
    assert good == []
    bad = lint('"""Doc."""\nimport repro.cli\n',
               select=["import-layering"])
    assert codes(bad) == {"LAY001"}


def test_cli_may_import_everything():
    diags = lint('"""Doc."""\nfrom repro.core import build_engine\n'
                 'from repro.lint import run_lint\n',
                 path="src/repro/cli.py", select=["import-layering"])
    assert diags == []


def test_unregistered_package_flagged():
    diags = lint('"""Doc."""\n',
                 path="src/repro/telemetry/sample.py",
                 select=["package-registration"])
    assert codes(diags) == {"LAY002"}
    assert "repro.telemetry" in diags[0].message


def test_registered_packages_and_root_modules_pass():
    for path in ("src/repro/core/sample.py",
                 "src/repro/lint/semantics/sample.py",
                 "src/repro/cli.py",
                 "src/repro/__init__.py"):
        assert lint('"""Doc."""\n', path=path,
                    select=["package-registration"]) == []


# ---- engine contract -----------------------------------------------------------


def test_baseline_may_not_import_migration_planner():
    source = '''\
        """Doc."""
        from repro.core.allocation import plan_block_swaps
        '''
    assert codes(lint(source, path=BASELINE,
                      select=["baseline-migration"])) == {"ENG001"}
    # The same import is fine outside core/baselines/ (DAOP itself).
    assert lint(source, path=CORE, select=["baseline-migration"]) == []


def test_baseline_may_not_override_substrate_primitives():
    source = '''\
        """Doc."""
        from repro.core.engine import BaseEngine

        class Sneaky(BaseEngine):
            """Doc."""

            def _expert_gpu(self, ctx, block_idx, expert, x, deps):
                """Doc."""
                return None

            def _prepare_decode_block(self, ctx, block_idx, act, deps):
                """Doc."""
                return {}
        '''
    diags = lint(source, path=BASELINE, select=["substrate-override"])
    assert codes(diags) == {"ENG002"}
    assert len(diags) == 1  # the hook override is allowed


def test_private_substrate_access_flagged_only_off_self():
    source = '''\
        """Doc."""

        class Engine:
            """Doc."""

            def peek(self, ctx):
                """Doc."""
                self._own = 1  # fine: own private state
                return ctx.timeline._resource_free
        '''
    diags = lint(source, path=BASELINE, select=["private-substrate"])
    assert codes(diags) == {"ENG003"}
    assert "timeline._resource_free" in diags[0].message


def test_sequence_extra_access_flagged_in_engine_code():
    source = '''\
        """Doc."""

        class Engine:
            """Doc."""

            def _prepare_decode_block(self, ctx, block_idx, experts):
                """Doc."""
                ctx.extra["force_gpu"] = set(experts)
                return ctx.extra.pop("deps", {})
        '''
    for path in (CORE, BASELINE):
        diags = lint(source, path=path, select=["sequence-extra-access"])
        assert codes(diags) == {"ENG004"}
        assert len(diags) == 2
        assert "ctx.extra" in diags[0].message


def test_sequence_extra_access_allowed_in_engine_py_and_elsewhere():
    source = '''\
        """Doc."""

        def touch(state):
            """Doc."""
            return state.extra
        '''
    # engine.py owns the scratch dict; code outside repro/core is out
    # of the rule's scope entirely.
    for path in ("src/repro/core/engine.py", "src/repro/sched/sample.py"):
        assert lint(source, path=path,
                    select=["sequence-extra-access"]) == []


def test_policy_state_not_flagged_by_extra_rule():
    source = '''\
        """Doc."""

        class Engine:
            """Doc."""

            def _after_decode_token(self, ctx, token):
                """Doc."""
                ctx.policy.window.append(token)
        '''
    assert lint(source, path=CORE,
                select=["sequence-extra-access"]) == []


# ---- API hygiene ---------------------------------------------------------------


def test_module_docstring_required():
    diags = lint("x = 1\n", select=["module-docstring"])
    assert codes(diags) == {"API001"}


def test_dunder_all_missing_and_dangling_entries():
    missing = lint('"""Doc."""\nfrom repro.memory.cache import '
                   'CacheConfig\n', path=INIT, select=["dunder-all"])
    assert codes(missing) == {"API002"}
    dangling = lint('"""Doc."""\n__all__ = ["Ghost"]\n', path=INIT,
                    select=["dunder-all"])
    assert any("Ghost" in d.message for d in dangling)
    dupes = lint('"""Doc."""\nx = 1\n__all__ = ["x", "x"]\n', path=INIT,
                 select=["dunder-all"])
    assert any("duplicate" in d.message for d in dupes)


def test_export_drift_detected_for_own_package_imports():
    source = '''\
        """Doc."""
        from repro.memory.cache import CacheConfig
        from repro.hardware.platform import Platform

        __all__ = []
        '''
    diags = lint(source, path=INIT, select=["export-drift"])
    # Own-package re-export must be listed; the cross-package
    # dependency import (Platform) is exempt.
    assert len(diags) == 1
    assert "CacheConfig" in diags[0].message


def test_field_units_required_in_hardware_dataclasses():
    bad = '''\
        """Doc."""
        from dataclasses import dataclass

        @dataclass
        class Spec:
            """A spec.

            Attributes:
                latency: how slow it is.
            """

            latency: float
        '''
    assert codes(lint(bad, path=HARDWARE,
                      select=["field-units"])) == {"API004"}
    good = bad.replace("how slow it is", "setup latency in seconds")
    assert lint(good, path=HARDWARE, select=["field-units"]) == []


def test_attribute_docstring_satisfies_field_units():
    source = '''\
        """Doc."""
        from dataclasses import dataclass

        @dataclass
        class Spec:
            """A spec."""

            mem_bandwidth: float
            """Peak bandwidth in bytes/s."""
        '''
    assert lint(source, path=HARDWARE, select=["field-units"]) == []


# ---- suppressions --------------------------------------------------------------


def test_line_suppression_by_name_and_code():
    base = '"""Doc."""\nimport numpy as np\n'
    line = "x = np.random.rand(3)"
    for marker in ("unseeded-numpy", "DET002", "all"):
        diags = lint(f"{base}{line}  # daoplint: disable={marker}\n",
                     select=["unseeded-numpy"])
        assert diags == [], marker


def test_file_suppression():
    diags = lint('"""Doc."""\n# daoplint: disable-file=unseeded-numpy\n'
                 'import numpy as np\nx = np.random.rand(3)\n'
                 'y = np.random.randn(2)\n', select=["unseeded-numpy"])
    assert diags == []


def test_suppression_of_other_rule_does_not_mask():
    diags = lint('"""Doc."""\nimport numpy as np\n'
                 'x = np.random.rand(3)  # daoplint: disable=wall-clock\n',
                 select=["unseeded-numpy"])
    assert codes(diags) == {"DET002"}


# ---- timeline integrity --------------------------------------------------------


def test_timeline_ops_mutations_flagged():
    source = '''\
        """Doc."""

        def tamper(timeline, op):
            """Doc."""
            timeline.ops.append(op)
            timeline.ops.extend([op])
            timeline.ops.sort()
            timeline.ops = []
            timeline.ops += [op]
            timeline.ops[0] = op
            del timeline.ops[0]
        '''
    diags = lint(source, select=["timeline-ops-mutation"])
    assert codes(diags) == {"TL001"}
    assert len(diags) == 7


def test_timeline_ops_tuple_target_flagged():
    diags = lint('"""Doc."""\n(a, t.ops) = (1, [])\n',
                 select=["timeline-ops-mutation"])
    assert codes(diags) == {"TL001"}


def test_timeline_ops_reads_allowed():
    source = '''\
        """Doc."""

        def render(timeline):
            """Doc."""
            for op in timeline.ops:
                last = timeline.ops[-1]
            return len(timeline.ops), sorted(timeline.ops)
        '''
    assert lint(source, select=["timeline-ops-mutation"]) == []


def test_timeline_ops_mutation_allowed_in_hardware():
    source = '''\
        """Doc."""

        class Timeline:
            """Doc."""

            def add(self, op):
                """Doc."""
                self.ops.append(op)
        '''
    assert lint(source, path=HARDWARE,
                select=["timeline-ops-mutation"]) == []


def test_unrelated_attribute_mutation_allowed():
    diags = lint('"""Doc."""\nqueue.items.append(3)\nqueue.items = []\n',
                 select=["timeline-ops-mutation"])
    assert diags == []


# ---- docs sync ----------------------------------------------------------------

CORE_INIT = "src/repro/core/__init__.py"
GOLDEN = "tests/test_golden_regression.py"


def test_undocumented_engine_flagged():
    source = '''\
        """Doc."""
        ENGINE_NAMES = ("official", "totally-new-engine")
        '''
    diags = lint(source, path=CORE_INIT, select=["engine-taxonomy-doc"])
    assert codes(diags) == {"DOC001"}
    assert "totally-new-engine" in diags[0].message
    assert len(diags) == 1  # "official" has a taxonomy row


def test_undocumented_build_engine_branch_flagged():
    source = '''\
        """Doc."""
        ENGINE_NAMES = ("official",)

        def build_engine(name):
            """Doc."""
            if name == "sneaky-branch-engine":
                return object()
        '''
    diags = lint(source, path=CORE_INIT, select=["engine-taxonomy-doc"])
    assert codes(diags) == {"DOC001"}
    assert "sneaky-branch-engine" in diags[0].message


def test_documented_engines_clean():
    from repro.lint import lint_paths

    report = lint_paths(["src/repro/core/__init__.py"],
                        select=["engine-taxonomy-doc"])
    assert report.diagnostics == []


def test_taxonomy_rule_scoped_to_core_init():
    source = '"""Doc."""\nENGINE_NAMES = ("bogus",)\n'
    assert lint(source, path=CORE, select=["engine-taxonomy-doc"]) == []


def test_float_equality_flagged_in_golden_tests():
    source = '''\
        """Doc."""

        def test_time():
            """Doc."""
            assert summary.total_time_s == 1.2345
        '''
    diags = lint(source, path=GOLDEN, select=["float-equality"])
    assert codes(diags) == {"NUM001"}


def test_float_inequality_and_negative_literal_flagged():
    diags = lint('"""Doc."""\nok = x != -0.5\n', path=GOLDEN,
                 select=["float-equality"])
    assert codes(diags) == {"NUM001"}


def test_approx_and_int_comparisons_clean():
    source = '''\
        """Doc."""
        import pytest

        def test_time():
            """Doc."""
            assert summary.total_time_s == pytest.approx(1.2345)
            assert summary.expert_uploads == 3
            assert 0.5 < summary.ratio
        '''
    assert lint(source, path=GOLDEN, select=["float-equality"]) == []


def test_float_equality_scoped_to_golden_tests():
    assert lint('"""Doc."""\nok = x == 1.5\n', path=CORE,
                select=["float-equality"]) == []


def test_real_golden_test_file_is_tolerant():
    from repro.lint import lint_paths

    report = lint_paths(["tests/test_golden_regression.py"],
                        select=["float-equality"])
    assert report.diagnostics == []


# ---- ENG005: expert stage API -----------------------------------------------


def test_direct_expert_call_flagged_in_core_and_audit():
    src = '''\
        """Doc."""
        def run(block, x):
            return block.experts[0](x)
        '''
    for path in (CORE, "src/repro/audit/sample.py"):
        diags = lint(src, path=path, select=["expert-stage-api"])
        assert codes(diags) == {"ENG005"}


def test_swiglu_import_flagged_in_core():
    diags = lint('"""Doc."""\nfrom repro.model.experts import SwiGLUExpert\n',
                 select=["expert-stage-api"])
    assert codes(diags) == {"ENG005"}
    diags = lint('"""Doc."""\nimport repro.model.experts\n',
                 select=["expert-stage-api"])
    assert codes(diags) == {"ENG005"}


def test_experts_subscript_reads_allowed():
    """Reading routing decisions is legal; only *calling* is flagged."""
    diags = lint(
        '''\
        """Doc."""
        def inspect(routing, block):
            first = routing.experts[0]
            n = len(block.experts)
            return first, n
        ''',
        select=["expert-stage-api"],
    )
    assert diags == []


def test_stage_api_calls_allowed():
    diags = lint(
        '''\
        """Doc."""
        def run(block, h_att, token_idx):
            logits = block.gate_logits(h_att)
            routing = block.route_from_logits(logits)
            return block.expert_forward(0, h_att, token_idx=token_idx)
        ''',
        select=["expert-stage-api"],
    )
    assert diags == []


def test_expert_stage_api_scoped_to_core_and_audit():
    """The model layer itself (and tests) may call experts directly."""
    src = '''\
        """Doc."""
        from repro.model.experts import SwiGLUExpert
        def run(block, x):
            return block.experts[0](x)
        '''
    for path in ("src/repro/model/sample.py", "tests/sample.py"):
        assert lint(src, path=path, select=["expert-stage-api"]) == []


# ---- ENG006: checkpoint hook pair -------------------------------------------


def test_one_sided_checkpoint_hooks_flagged():
    for present, missing in (("_policy_state_dict", "_restore_policy"),
                             ("_restore_policy", "_policy_state_dict")):
        src = f'''\
            """Doc."""

            class Half:
                """Doc."""

                def {present}(self, *args):
                    """Doc."""
                    return None
            '''
        diags = lint(src, path=BASELINE,
                     select=["checkpoint-hook-pair"])
        assert codes(diags) == {"ENG006"}
        assert present in diags[0].message
        assert missing in diags[0].message


def test_paired_or_absent_checkpoint_hooks_allowed():
    paired = '''\
        """Doc."""

        class Whole:
            """Doc."""

            def _policy_state_dict(self, state):
                """Doc."""
                return None

            def _restore_policy(self, state, payload):
                """Doc."""
                return None
        '''
    neither = '''\
        """Doc."""

        class Stateless:
            """Doc."""

            def _begin_sequence(self, ctx):
                """Doc."""
                return None
        '''
    for src in (paired, neither):
        assert lint(src, path=BASELINE,
                    select=["checkpoint-hook-pair"]) == []


def test_checkpoint_hook_pair_scoped_to_core():
    """Non-engine layers may use the names freely (e.g. adapters)."""
    src = '''\
        """Doc."""

        class Adapter:
            """Doc."""

            def _policy_state_dict(self):
                """Doc."""
                return {}
        '''
    assert lint(src, path="src/repro/serving/sample.py",
                select=["checkpoint-hook-pair"]) == []


def test_checkpoint_resume_are_substrate_methods():
    """Baselines may not override the checkpoint/restore substrate."""
    src = '''\
        """Doc."""
        from repro.core.engine import BaseEngine

        class Sneaky(BaseEngine):
            """Doc."""

            def checkpoint_sequence(self, state, include_clock=True):
                """Doc."""
                return {}

            def restore_sequence(self, payload, clock=None):
                """Doc."""
                return None
        '''
    diags = lint(src, path=BASELINE, select=["substrate-override"])
    assert codes(diags) == {"ENG002"}
    assert len(diags) == 2
