"""Unit tests for scenario specs and the named registry."""

import numpy as np
import pytest

from repro.scenarios import (
    SCENARIO_NAMES,
    SCENARIOS,
    ArrivalSpec,
    LengthSpec,
    ScenarioSpec,
    SessionSpec,
    TenantSpec,
    get_scenario,
    register_scenario,
)
from repro.scenarios.spec import ARRIVAL_KINDS


class TestLengthSpec:
    def test_fixed_returns_value(self, rng):
        spec = LengthSpec(kind="fixed", value=17)
        assert spec.sample(rng) == 17

    def test_uniform_stays_in_bounds(self, rng):
        spec = LengthSpec(kind="uniform", low=4, high=9)
        draws = [spec.sample(rng) for _ in range(200)]
        assert min(draws) >= 4
        assert max(draws) <= 9
        assert len(set(draws)) > 1

    def test_lognormal_clipped(self, rng):
        spec = LengthSpec(kind="lognormal", mean_log=5.0, sigma_log=2.0,
                          low=8, high=32)
        draws = [spec.sample(rng) for _ in range(200)]
        assert min(draws) >= 8
        assert max(draws) <= 32

    def test_validation(self):
        with pytest.raises(ValueError):
            LengthSpec(kind="zipf")
        with pytest.raises(ValueError):
            LengthSpec(low=0)
        with pytest.raises(ValueError):
            LengthSpec(low=10, high=5)
        with pytest.raises(ValueError):
            LengthSpec(sigma_log=-0.1)


class TestSessionAndTenant:
    def test_session_validation(self):
        with pytest.raises(ValueError):
            SessionSpec(requests_per_session=0)
        with pytest.raises(ValueError):
            SessionSpec(prefix_len=0)

    def test_tenant_validation(self):
        with pytest.raises(ValueError):
            TenantSpec(name="")
        with pytest.raises(ValueError):
            TenantSpec(name="t", weight=0.0)
        with pytest.raises(ValueError):
            TenantSpec(name="t", slo_class="platinum")
        with pytest.raises(ValueError):
            TenantSpec(name="t", n_distinct=0)


class TestArrivalSpec:
    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_generate_count_and_sortedness(self, kind, rng):
        spec = ArrivalSpec(kind=kind, rate_per_s=0.5, n_requests=12)
        times = spec.generate(rng)
        assert times.shape == (12,)
        assert np.all(np.diff(times) >= 0)

    def test_generate_count_override(self, rng):
        spec = ArrivalSpec(kind="poisson", n_requests=16)
        assert spec.generate(rng, n_requests=3).shape == (3,)

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalSpec(kind="weibull")
        with pytest.raises(ValueError):
            ArrivalSpec(rate_per_s=0.0)
        with pytest.raises(ValueError):
            ArrivalSpec(n_requests=0)


class TestScenarioSpec:
    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="dup", description="d",
                tenants=(TenantSpec(name="a"), TenantSpec(name="a")),
            )

    def test_empty_tenants_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="none", description="d", tenants=())

    def test_tenant_weights_normalized(self):
        spec = ScenarioSpec(
            name="mix", description="d",
            tenants=(TenantSpec(name="a", weight=3.0),
                     TenantSpec(name="b", weight=1.0)),
        )
        np.testing.assert_allclose(spec.tenant_weights, [0.75, 0.25])

    def test_with_overrides(self):
        base = get_scenario("gsm8k-topic-drift")
        small = base.with_overrides(
            arrival=ArrivalSpec(kind="uniform", rate_per_s=1.0,
                                n_requests=3)
        )
        assert small.arrival.n_requests == 3
        assert small.name == base.name
        assert base.arrival.n_requests != 3  # original untouched


class TestRegistry:
    def test_library_size_and_order(self):
        assert len(SCENARIO_NAMES) >= 6
        assert list(SCENARIO_NAMES) == sorted(SCENARIO_NAMES)
        assert "gsm8k-topic-drift" in SCENARIO_NAMES

    def test_get_scenario(self):
        spec = get_scenario("multi-tenant-slo")
        assert spec.name == "multi-tenant-slo"
        assert len(spec.tenants) == 3

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_scenario("no-such-scenario")

    def test_register_duplicate_rejected(self):
        name = next(iter(SCENARIOS))
        with pytest.raises(ValueError):
            register_scenario(ScenarioSpec(name=name, description="d"))

    def test_every_entry_materializes_arrivals(self, rng):
        for name in SCENARIO_NAMES:
            spec = get_scenario(name)
            times = spec.arrival.generate(rng, n_requests=4)
            assert times.shape == (4,)
