"""Failure-injection tests: engines degrade gracefully, never break."""

import numpy as np
import pytest

from repro.core import build_engine
from repro.workloads import C4, SequenceGenerator


@pytest.fixture(scope="module")
def sequence(tiny_bundle):
    gen = SequenceGenerator(C4, tiny_bundle.vocab, seed=131)
    return gen.sample_sequence(14, 8, sample_idx=0)


def test_adversarial_calibration_still_works(tiny_bundle, platform,
                                             tiny_calibration, sequence):
    """Inverted calibration (cache the *coldest* experts) must only cost
    performance, never correctness."""
    inverted = tiny_calibration.max() - tiny_calibration
    good = build_engine("daop", tiny_bundle, platform, 0.5,
                        tiny_calibration)
    bad = build_engine("daop", tiny_bundle, platform, 0.5, inverted)
    r_good = good.generate(sequence.prompt_tokens, 8,
                           forced_tokens=sequence.continuation_tokens)
    r_bad = bad.generate(sequence.prompt_tokens, 8,
                         forced_tokens=sequence.continuation_tokens)
    assert r_bad.tokens.shape == (8,)
    # The schedule survives; prefill re-allocation partially rescues the
    # bad initialization, so the gap is bounded but the good calibration
    # never loses.
    assert (r_good.stats.tokens_per_second
            >= r_bad.stats.tokens_per_second * 0.99)


def test_constant_calibration(tiny_bundle, platform, sequence):
    """All-equal probabilities: ties must break deterministically."""
    flat = np.full(
        (tiny_bundle.model.n_blocks, tiny_bundle.model.n_experts), 0.5
    )
    engine = build_engine("fiddler", tiny_bundle, platform, 0.5, flat)
    a = engine.generate(sequence.prompt_tokens, 4)
    b = engine.generate(sequence.prompt_tokens, 4)
    np.testing.assert_array_equal(a.tokens, b.tokens)
    assert a.stats.total_time_s == pytest.approx(b.stats.total_time_s)


def test_wrong_calibration_shape_rejected(tiny_bundle, platform):
    with pytest.raises(ValueError):
        build_engine("fiddler", tiny_bundle, platform, 0.5,
                     np.ones((2, 2)))


def test_engine_reusable_across_sequences(tiny_bundle, platform,
                                          tiny_calibration):
    """generate() must fully reset per-sequence state."""
    engine = build_engine("daop", tiny_bundle, platform, 0.25,
                          tiny_calibration)
    gen = SequenceGenerator(C4, tiny_bundle.vocab, seed=132)
    seq_a = gen.sample_sequence(12, 0, sample_idx=0)
    seq_b = gen.sample_sequence(12, 0, sample_idx=1)
    first = engine.generate(seq_a.prompt_tokens, 4)
    engine.generate(seq_b.prompt_tokens, 4)  # interleave another request
    again = engine.generate(seq_a.prompt_tokens, 4)
    np.testing.assert_array_equal(first.tokens, again.tokens)
    assert first.stats.total_time_s == pytest.approx(
        again.stats.total_time_s
    )


def test_repeated_token_prompt(tiny_bundle, platform, tiny_calibration):
    """Degenerate prompts (one token repeated) must not break anything."""
    engine = build_engine("daop", tiny_bundle, platform, 0.5,
                          tiny_calibration)
    prompt = np.full(16, 7, dtype=np.int64)
    result = engine.generate(prompt, 4)
    assert result.tokens.shape == (4,)


def test_special_token_prompt(tiny_bundle, platform, tiny_calibration):
    """Prompts of special tokens (pad/bos/eos) are handled like any other."""
    engine = build_engine("fiddler", tiny_bundle, platform, 0.5,
                          tiny_calibration)
    prompt = np.array([0, 1, 2, 3, 0, 1], dtype=np.int64)
    result = engine.generate(prompt, 3)
    assert result.tokens.shape == (3,)
