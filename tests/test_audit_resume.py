"""Resume-parity audit and per-engine sequence checkpoints.

Two layers of pinning.  The *audit* (`repro.audit.resume`) replays every
engine's generation with a mid-decode checkpoint/restore through real
JSON bytes and demands bitwise parity with the uninterrupted run.  The
*golden digests* below additionally pin each engine's serialized
checkpoint content itself, so a change that alters what an engine
persists (new policy field, changed state layout) is surfaced here even
if it happens to stay resume-consistent — such a change must bump
``SEQUENCE_CHECKPOINT_VERSION`` or knowingly update the goldens.
"""

import json

import pytest

from repro.audit import run_resume_parity_audit
from repro.core import ENGINE_NAMES, build_engine
from repro.core.engine import SequenceRequest
from repro.workloads import C4, SequenceGenerator

#: Digest of every engine's sequence checkpoint after three steps of the
#: recipe in :func:`checkpoint_after_three_steps` (fixture model:
#: tiny-MoE seed 0, 8 blocks; calibration seed 0).
GOLDEN_CHECKPOINT_DIGESTS = {
    "official": "c69735df46cdbbd537f263e55ada82eb",
    "moe-ondemand": "dca1994b47c869314b9aaf4faa34d3af",
    "deepspeed-mii": "a1fe9e562a3c57dafd773a965e977018",
    "mixtral-offloading": "b196df0c3918b28a97360f459dff09c4",
    "moe-infinity": "00d41a38be3112c69bacf1c05129141d",
    "fiddler": "5c592d23efd1170130c3d381f72fd599",
    "pregated-moe": "7423c376157624f7383476d375703f06",
    "daop": "fa619e1c2cd36243ce9731c2dd905c9e",
}


def checkpoint_after_three_steps(name, tiny_bundle, platform,
                                 tiny_calibration):
    """Prefill + two decode steps, then checkpoint (fixed recipe)."""
    engine = build_engine(name, tiny_bundle, platform, 0.5,
                          tiny_calibration)
    sequence = SequenceGenerator(C4, tiny_bundle.vocab,
                                 seed=3).sample_sequence(12, 6)
    state = engine.start(SequenceRequest(
        prompt_tokens=sequence.prompt_tokens,
        max_new_tokens=6,
        forced_tokens=sequence.continuation_tokens,
    ))
    for _ in range(3):
        engine.step(state)
    return engine, state, engine.checkpoint_sequence(state)


def test_golden_digests_cover_every_engine():
    assert set(GOLDEN_CHECKPOINT_DIGESTS) == set(ENGINE_NAMES)


@pytest.mark.parametrize("name", ENGINE_NAMES)
def test_golden_checkpoint_digest(name, tiny_bundle, platform,
                                  tiny_calibration):
    _, _, payload = checkpoint_after_three_steps(
        name, tiny_bundle, platform, tiny_calibration)
    assert payload["engine"] == name
    assert payload["digest"] == GOLDEN_CHECKPOINT_DIGESTS[name]
    # The payload is genuinely plain data: real JSON bytes round-trip.
    assert json.loads(json.dumps(payload, sort_keys=True)) == payload


class TestSequenceCheckpointRejection:
    @pytest.fixture()
    def checkpointed(self, tiny_bundle, platform, tiny_calibration):
        return checkpoint_after_three_steps(
            "daop", tiny_bundle, platform, tiny_calibration)

    def test_corrupted_payload_rejected(self, checkpointed):
        engine, _, payload = checkpointed
        doctored = json.loads(json.dumps(payload))
        doctored["state"]["n_generated"] = 99
        with pytest.raises(ValueError, match="corrupted"):
            engine.restore_sequence(doctored)

    def test_version_skew_rejected(self, checkpointed):
        engine, _, payload = checkpointed
        doctored = dict(payload)
        doctored["version"] = 2
        with pytest.raises(ValueError,
                           match="unsupported sequence-checkpoint "
                                 "version 2"):
            engine.restore_sequence(doctored)

    def test_foreign_engine_rejected(self, checkpointed, tiny_bundle,
                                     platform, tiny_calibration):
        _, _, payload = checkpointed
        other = build_engine("fiddler", tiny_bundle, platform, 0.5,
                             tiny_calibration)
        with pytest.raises(ValueError, match="cannot resume on"):
            other.restore_sequence(payload)

    def test_restore_accepts_untouched_payload(self, checkpointed,
                                               tiny_bundle, platform,
                                               tiny_calibration):
        _, original, payload = checkpointed
        fresh = build_engine("daop", tiny_bundle, platform, 0.5,
                             tiny_calibration)
        state = fresh.restore_sequence(
            json.loads(json.dumps(payload, sort_keys=True)))
        assert list(state.generated) == list(original.generated)


class TestResumeParityAudit:
    def test_passes_for_exact_and_predictive_engines(
            self, tiny_bundle, platform, tiny_calibration):
        report = run_resume_parity_audit(
            tiny_bundle, platform, engine_names=["fiddler", "daop"],
            seeds=(0,), prompt_len=12, max_new_tokens=6,
            calibration_probs=tiny_calibration,
        )
        assert report.ok
        assert report.problems == []
        # One comparison per engine x seed x cut, each covering both
        # the sequence and the scheduler resume paths.
        assert len(report.comparisons) == 2 * 1 * 2
        assert "all ok" in report.format()

    def test_detects_a_lossy_restore(self, tiny_bundle, platform,
                                     tiny_calibration, monkeypatch):
        """Sabotage: perturb restored state and demand the audit sees it.

        This is the corruption test proving the auditor actually
        compares the resumed run — a restore path that silently loses
        state must fail the audit, never report parity.
        """
        from repro.core.engine import BaseEngine

        original = BaseEngine.restore_sequence

        def lossy(self, payload, clock=None):
            state = original(self, payload, clock=clock)
            state.counters.expert_uploads += 1
            return state

        monkeypatch.setattr(BaseEngine, "restore_sequence", lossy)
        report = run_resume_parity_audit(
            tiny_bundle, platform, engine_names=["fiddler"],
            seeds=(0,), prompt_len=12, max_new_tokens=6,
            calibration_probs=tiny_calibration,
        )
        assert not report.ok
        assert any("EngineCounters" in p for p in report.problems)
        assert "FAILURES" in report.format()
