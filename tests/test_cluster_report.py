"""Unit tests for ClusterReport metric math (hand-built requests)."""

import json

import pytest

from repro.cluster import (
    EXPIRED,
    SHED,
    ClusterReport,
    ClusterRequest,
    RejectedRequest,
    SLOTarget,
)


def served(request_id, arrival, start, first, finish, n_generated=10,
           replica=0, warm=0.5):
    """A ClusterRequest with explicit timing."""
    return ClusterRequest(
        request_id=request_id, arrival_s=arrival, start_s=start,
        first_token_s=first, finish_s=finish, n_prompt_tokens=8,
        n_generated=n_generated, energy_j=1.0, replica=replica,
        warm_hit_rate=warm,
    )


@pytest.fixture()
def report():
    """Two served requests (one SLO miss) plus one shed, one expired."""
    slo = SLOTarget(ttft_s=2.0, tpot_s=1.0)
    return ClusterReport(
        engine="daop", policy="round-robin", n_replicas=2, slo=slo,
        requests=[
            # ttft 1.0, tpot 7/9 ≈ 0.78 -> meets SLO
            served(0, 0.0, 0.5, 1.0, 8.0, replica=0, warm=0.8),
            # ttft 5.0 -> misses SLO
            served(1, 1.0, 5.0, 6.0, 12.0, replica=1, warm=0.4),
        ],
        rejected=[
            RejectedRequest(request_id=2, arrival_s=2.0, replica=0,
                            reason=SHED),
            RejectedRequest(request_id=3, arrival_s=3.0, replica=1,
                            reason=EXPIRED),
        ],
        replica_busy_s=[7.5, 7.0],
    )


class TestCounts:
    def test_counts(self, report):
        assert report.n_served == 2
        assert report.n_shed == 1
        assert report.n_expired == 1
        assert report.n_offered == 4

    def test_makespan_spans_rejected_arrivals(self, report):
        assert report.makespan_s == 12.0  # 0.0 arrival -> 12.0 finish


class TestSLO:
    def test_meets_slo(self, report):
        assert report.meets_slo(report.requests[0])
        assert not report.meets_slo(report.requests[1])

    def test_attainment_over_offered(self, report):
        # 1 of 4 offered requests met SLO (rejections count as misses).
        assert report.slo_attainment == pytest.approx(0.25)

    def test_goodput_below_throughput(self, report):
        assert report.throughput_tokens_per_s == pytest.approx(20 / 12.0)
        assert report.goodput_tokens_per_s == pytest.approx(10 / 12.0)

    def test_percentiles(self, report):
        assert report.ttft_percentile(50) == pytest.approx(3.0)
        assert report.latency_percentile(99) <= 11.0


class TestFleetHealth:
    def test_utilization(self, report):
        utils = report.replica_utilization()
        assert utils == pytest.approx([7.5 / 12.0, 7.0 / 12.0])

    def test_jain_index_near_even(self, report):
        assert 0.99 < report.load_balance_index <= 1.0

    def test_jain_index_one_sided(self):
        lopsided = ClusterReport(engine="daop", policy="p", n_replicas=2,
                                 replica_busy_s=[10.0, 0.0])
        assert lopsided.load_balance_index == pytest.approx(0.5)

    def test_warm_hit_rates(self, report):
        assert report.mean_warm_hit_rate == pytest.approx(0.6)
        assert report.replica_warm_hit_rate(0) == pytest.approx(0.8)
        assert report.replica_warm_hit_rate(1) == pytest.approx(0.4)
        assert report.replica_warm_hit_rate(9) == 0.0


class TestEmptyReport:
    def test_all_metrics_zero_safe(self):
        empty = ClusterReport(engine="daop", policy="p", n_replicas=2)
        assert empty.makespan_s == 0.0
        assert empty.throughput_tokens_per_s == 0.0
        assert empty.goodput_tokens_per_s == 0.0
        assert empty.slo_attainment == 0.0
        assert empty.ttft_percentile(99) == 0.0
        assert empty.tpot_percentile(50) == 0.0
        assert empty.latency_percentile(50) == 0.0
        assert empty.mean_queue_delay_s == 0.0
        assert empty.mean_warm_hit_rate == 0.0
        assert empty.load_balance_index == 1.0
        assert empty.replica_utilization() == []


class TestSerialization:
    def test_to_dict_round_trips_through_json(self, report):
        payload = json.loads(report.to_json())
        assert payload["summary"]["served"] == 2
        assert payload["summary"]["shed"] == 1
        assert payload["summary"]["expired"] == 1
        assert len(payload["requests"]) == 2
        assert len(payload["rejected"]) == 2
        assert len(payload["replicas"]) == 2
        assert payload["requests"][0]["meets_slo"] is True

    def test_json_deterministic(self, report):
        assert report.to_json() == report.to_json()
