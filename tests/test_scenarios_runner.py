"""End-to-end tests for scenario materialization and execution."""

import dataclasses
import json

import numpy as np
import pytest

from repro.core import build_engine
from repro.scenarios import ScenarioRunner, get_scenario
from repro.scenarios.report import diff_reports
from repro.serving import ServingSimulator
from repro.workloads import (
    load_request_specs,
    record_request_specs,
    save_workload,
)


def _payload_json(runner):
    """Canonical rendering of a runner's materialized request list."""
    payload = record_request_specs(runner.build_requests())
    return json.dumps(payload, sort_keys=True)


def make_simulator(tiny_bundle, platform, tiny_calibration):
    """A fresh DAOP serving simulator (fresh engine state each call)."""
    engine = build_engine("daop", tiny_bundle, platform, 0.5,
                         tiny_calibration)
    return ServingSimulator(engine)


class TestBuildRequests:
    def test_deterministic_for_same_seed(self, tiny_bundle):
        spec = get_scenario("multi-tenant-slo")
        a = ScenarioRunner(spec, tiny_bundle.vocab, seed=11)
        b = ScenarioRunner(spec, tiny_bundle.vocab, seed=11)
        assert _payload_json(a) == _payload_json(b)

    def test_seed_changes_requests(self, tiny_bundle):
        spec = get_scenario("multi-tenant-slo")
        a = ScenarioRunner(spec, tiny_bundle.vocab, seed=11)
        b = ScenarioRunner(spec, tiny_bundle.vocab, seed=12)
        assert _payload_json(a) != _payload_json(b)

    def test_session_requests_share_prefix(self, tiny_bundle):
        spec = get_scenario("session-prefix-reuse")
        runner = ScenarioRunner(spec, tiny_bundle.vocab, seed=5)
        specs = runner.build_requests()
        prefix_len = spec.tenants[0].session.prefix_len
        by_session = {}
        for request in specs:
            assert request.session is not None
            by_session.setdefault(request.session, []).append(request)
        assert len(by_session) > 1
        for members in by_session.values():
            first = members[0].prompt_tokens[:prefix_len]
            for member in members[1:]:
                np.testing.assert_array_equal(
                    member.prompt_tokens[:prefix_len], first
                )
        # Distinct sessions use distinct prefixes.
        prefixes = {
            tuple(members[0].prompt_tokens[:prefix_len].tolist())
            for members in by_session.values()
        }
        assert len(prefixes) == len(by_session)

    def test_n_distinct_reuses_content(self, tiny_bundle):
        spec = get_scenario("onoff-batch-bursts")
        runner = ScenarioRunner(spec, tiny_bundle.vocab, seed=5)
        specs = runner.build_requests()
        n_distinct = spec.tenants[0].n_distinct
        by_sample = {}
        for request in specs:
            by_sample.setdefault(request.sample_idx, []).append(request)
        assert set(by_sample) == set(range(n_distinct))
        for members in by_sample.values():
            for member in members[1:]:
                np.testing.assert_array_equal(member.prompt_tokens,
                                              members[0].prompt_tokens)
                np.testing.assert_array_equal(member.forced_tokens,
                                              members[0].forced_tokens)

    def test_fast_caps_requests_and_lengths(self, tiny_bundle):
        spec = get_scenario("chat-diurnal")
        runner = ScenarioRunner(spec, tiny_bundle.vocab, seed=2,
                                fast=True, fast_requests=4,
                                fast_max_len=8)
        specs = runner.build_requests()
        assert len(specs) == 4
        assert all(s.prompt_tokens.size <= 8 for s in specs)
        assert all(s.output_len <= 8 for s in specs)

    def test_bad_fast_caps_rejected(self, tiny_bundle):
        spec = get_scenario("chat-diurnal")
        with pytest.raises(ValueError):
            ScenarioRunner(spec, tiny_bundle.vocab, fast_requests=0)
        with pytest.raises(ValueError):
            ScenarioRunner(spec, tiny_bundle.vocab, fast_max_len=1)


class TestGoldenDigest:
    def test_digest_stable_across_runs_and_reconstruction(
            self, tiny_bundle, platform, tiny_calibration):
        """Same scenario + seed => identical report digest, even after
        re-constructing the runner and the simulator from scratch."""
        spec = get_scenario("gsm8k-topic-drift")
        runner = ScenarioRunner(spec, tiny_bundle.vocab, seed=3,
                                fast=True)
        first = runner.run(
            make_simulator(tiny_bundle, platform, tiny_calibration)
        )
        second = runner.run(
            make_simulator(tiny_bundle, platform, tiny_calibration)
        )
        rebuilt = ScenarioRunner(spec, tiny_bundle.vocab, seed=3,
                                 fast=True).run(
            make_simulator(tiny_bundle, platform, tiny_calibration)
        )
        assert first.content_digest() == second.content_digest()
        assert first.content_digest() == rebuilt.content_digest()

    def test_recorded_workload_replays_bit_exactly(
            self, tmp_path, tiny_bundle, platform, tiny_calibration):
        spec = get_scenario("mixed-interactive-batch")
        runner = ScenarioRunner(spec, tiny_bundle.vocab, seed=7,
                                fast=True)
        requests = runner.build_requests()
        path = tmp_path / "scenario.workload.json"
        save_workload(str(path),
                      record_request_specs(requests, label=spec.name))
        live = runner.run(
            make_simulator(tiny_bundle, platform, tiny_calibration),
            requests=requests,
        )
        replayed = runner.run(
            make_simulator(tiny_bundle, platform, tiny_calibration),
            requests=load_request_specs(str(path)),
        )
        assert live.content_digest() == replayed.content_digest()
        assert live.to_json() == replayed.to_json()


class TestReport:
    @pytest.fixture()
    def report(self, tiny_bundle, platform, tiny_calibration):
        spec = get_scenario("multi-tenant-slo")
        runner = ScenarioRunner(spec, tiny_bundle.vocab, seed=9,
                                fast=True)
        return runner.run(
            make_simulator(tiny_bundle, platform, tiny_calibration)
        )

    def test_mode_and_counts(self, report):
        assert report.mode == "serving"
        assert report.scenario == "multi-tenant-slo"
        assert report.n_served == report.n_offered == 6

    def test_breakdowns_partition_the_requests(self, report):
        tenants = {"chat", "summarize", "analyst"}
        per_tenant = report.per_tenant()
        assert set(per_tenant) <= tenants
        assert sum(g["offered"] for g in per_tenant.values()) == 6
        per_slo = report.per_slo_class()
        assert set(per_slo) <= {"interactive", "batch", "long_context"}
        assert sum(g["served"] for g in per_slo.values()) == 6

    def test_to_json_round_trips_with_digest(self, report):
        payload = json.loads(report.to_json())
        assert payload["digest"] == report.content_digest()
        assert payload["summary"]["served"] == 6
        assert len(payload["requests"]) == 6

    def test_diff_reports_empty_for_identical(self, report):
        assert diff_reports(report, report) == []

    def test_diff_reports_flags_perturbation(self, report):
        altered = dataclasses.replace(report)
        altered.requests = list(report.requests)
        altered.requests[0] = dataclasses.replace(
            altered.requests[0],
            latency_s=altered.requests[0].latency_s + 1.0,
        )
        lines = diff_reports(report, altered)
        assert lines
        assert lines[0].startswith("digest:")


class TestLifecycle:
    """Resumable scenario runs (docs/lifecycle.md) and digest scope."""

    SPEC = "mixed-interactive-batch"

    def _simulator(self, tiny_bundle, platform, tiny_calibration,
                   concurrency=2, mode="gathered"):
        engine = build_engine("daop", tiny_bundle, platform, 0.5,
                              tiny_calibration)
        return ServingSimulator(engine, concurrency=concurrency,
                                mode=mode)

    def _runner(self, tiny_bundle, seed=7):
        return ScenarioRunner(get_scenario(self.SPEC), tiny_bundle.vocab,
                              seed=seed, fast=True)

    def test_begin_tick_finish_equals_run(self, tiny_bundle, platform,
                                          tiny_calibration):
        runner = self._runner(tiny_bundle)
        whole = runner.run(
            self._simulator(tiny_bundle, platform, tiny_calibration))
        simulator = self._simulator(tiny_bundle, platform,
                                    tiny_calibration)
        session = runner.begin(simulator)
        while simulator.tick(session.backend):
            pass
        stepped = runner.finish(simulator, session)
        assert stepped.content_digest() == whole.content_digest()

    def test_pause_checkpoint_resume_digest_parity(
            self, tiny_bundle, platform, tiny_calibration):
        from repro.serving import SimCheckpoint

        runner = self._runner(tiny_bundle)
        reference = runner.run(
            self._simulator(tiny_bundle, platform, tiny_calibration))

        first = self._simulator(tiny_bundle, platform, tiny_calibration)
        session = runner.begin(first)
        for _ in range(3):
            if not first.tick(session.backend):
                break
        # Through real JSON bytes, as the CLI's --checkpoint-to writes.
        checkpoint = SimCheckpoint.from_dict(json.loads(json.dumps(
            first.checkpoint(session.backend).to_dict(), sort_keys=True)))

        second = self._simulator(tiny_bundle, platform, tiny_calibration)
        resumed = runner.resume(second, checkpoint)
        while second.tick(resumed.backend):
            pass
        report = runner.finish(second, resumed)
        assert report.content_digest() == reference.content_digest()
        assert report.to_json() == reference.to_json()

    def test_digest_discriminates_backend_config(
            self, tiny_bundle, platform, tiny_calibration):
        """Runs that scheduled differently must never alias."""
        runner = self._runner(tiny_bundle)
        gathered = runner.run(self._simulator(
            tiny_bundle, platform, tiny_calibration, mode="gathered"))
        interleaved = runner.run(self._simulator(
            tiny_bundle, platform, tiny_calibration, mode="interleaved"))
        solo = runner.run(self._simulator(
            tiny_bundle, platform, tiny_calibration, concurrency=1))
        digests = {gathered.content_digest(),
                   interleaved.content_digest(),
                   solo.content_digest()}
        assert len(digests) == 3

    def test_report_records_backend_config(self, tiny_bundle, platform,
                                           tiny_calibration):
        runner = self._runner(tiny_bundle)
        report = runner.run(self._simulator(
            tiny_bundle, platform, tiny_calibration, concurrency=2))
        assert report.backend_mode == "gathered"
        assert report.concurrency == 2
        payload = json.loads(report.to_json())
        assert payload["backend"] == {"mode": "gathered",
                                      "concurrency": 2}
