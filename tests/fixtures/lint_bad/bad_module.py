"""Deliberately bad fixture file for the daoplint CLI tests."""

import random

import numpy as np


def unseeded_everything():
    """Trip every determinism rule at once."""
    rng = np.random.default_rng()
    values = np.random.rand(4)
    import time

    return random.random() + float(values.sum()) + rng.random() + time.time()
