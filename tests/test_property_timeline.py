"""Property-based tests for the event-driven timeline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.timeline import RESOURCES, Timeline

op_specs = st.lists(
    st.tuples(
        st.sampled_from(RESOURCES),
        st.floats(0.0, 10.0, allow_nan=False),
        st.lists(st.integers(0, 100), max_size=3),  # dep indices (mod i)
    ),
    min_size=1,
    max_size=40,
)


def build(specs):
    tl = Timeline()
    ops = []
    for i, (resource, duration, dep_idx) in enumerate(specs):
        deps = [ops[d % i] for d in dep_idx] if i else []
        ops.append(tl.add(resource, duration, deps=deps))
    return tl, [(o, [ops[d % i] for d in dep]) if i else (o, [])
                for i, ((_, _, dep), o) in enumerate(zip(specs, ops))]


@settings(max_examples=60)
@given(op_specs)
def test_dependencies_respected(specs):
    _, annotated = build(specs)
    for op, deps in annotated:
        for dep in deps:
            assert op.start >= dep.end - 1e-12


@settings(max_examples=60)
@given(op_specs)
def test_fifo_per_resource(specs):
    tl, _ = build(specs)
    for resource in RESOURCES:
        ops = tl.ops_on(resource)
        for a, b in zip(ops, ops[1:]):
            assert b.start >= a.end - 1e-12


@settings(max_examples=60)
@given(op_specs)
def test_makespan_bounds(specs):
    tl, _ = build(specs)
    assert tl.makespan >= max(op.end for op in tl.ops) - 1e-12
    # Makespan is at least the busiest resource's total work.
    for resource in RESOURCES:
        assert tl.makespan >= tl.busy_time(resource) - 1e-9


@settings(max_examples=60)
@given(op_specs)
def test_durations_preserved(specs):
    tl, _ = build(specs)
    for op, (_, duration, _) in zip(tl.ops, specs):
        assert abs((op.end - op.start) - duration) < 1e-9


@settings(max_examples=30)
@given(op_specs)
def test_utilization_bounded(specs):
    tl, _ = build(specs)
    for resource in RESOURCES:
        u = tl.utilization(resource)
        assert 0.0 <= u <= 1.0 + 1e-9
