"""Unit tests for routing-pattern statistics."""

import numpy as np
import pytest

from repro.trace.recorder import ActivationTrace
from repro.trace.statistics import (
    coactivation_matrix,
    expert_load_stats,
    gini_coefficient,
    normalized_entropy,
    summarize_routing,
    temporal_locality,
)


class TestGini:
    def test_balanced_is_zero(self):
        assert gini_coefficient(np.ones(8)) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_is_high(self):
        loads = np.zeros(8)
        loads[0] = 100.0
        assert gini_coefficient(loads) > 0.8

    def test_monotone_in_skew(self):
        mild = np.array([3.0, 2.0, 2.0, 1.0])
        strong = np.array([6.0, 1.0, 0.5, 0.5])
        assert gini_coefficient(strong) > gini_coefficient(mild)

    def test_zero_loads(self):
        assert gini_coefficient(np.zeros(4)) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([]))
        with pytest.raises(ValueError):
            gini_coefficient(np.array([-1.0, 1.0]))


class TestEntropy:
    def test_uniform_is_one(self):
        assert normalized_entropy(np.ones(8)) == pytest.approx(1.0)

    def test_degenerate_is_zero(self):
        loads = np.zeros(8)
        loads[3] = 5.0
        assert normalized_entropy(loads) == pytest.approx(0.0)

    def test_needs_two_experts(self):
        with pytest.raises(ValueError):
            normalized_entropy(np.array([1.0]))


@pytest.fixture()
def trace():
    t = ActivationTrace(2, 4)
    # Block 0 decode: expert 0 always on, partner rotates.
    for pos in range(4):
        t.record("decode", 0, pos, [0, 1 + pos % 3])
        t.record("decode", 1, pos, [pos % 4, (pos + 1) % 4])
    return t


def test_expert_load_stats(trace):
    stats = expert_load_stats(trace)
    assert stats["gini_per_block"].shape == (2,)
    # Block 0 (dominant expert 0) is more skewed than block 1 (rotating).
    assert stats["gini_per_block"][0] > stats["gini_per_block"][1]
    assert stats["entropy_per_block"][0] < stats["entropy_per_block"][1]
    assert 0.0 <= stats["mean_entropy"] <= 1.0


def test_coactivation_matrix(trace):
    m = coactivation_matrix(trace, block=0)
    assert m.shape == (4, 4)
    np.testing.assert_allclose(m, m.T)
    assert np.all(np.diag(m) == 0)
    # Expert 0 co-activates with everything in block 0.
    assert m[0].sum() == 4


def test_temporal_locality(trace):
    # Expert 0 persists across every consecutive block-0 pair: of the two
    # experts per step, one always survives.
    locality = temporal_locality(trace, block=0)
    assert 0.4 <= locality <= 1.0
    # Block 1 rotates: each step shares exactly one expert with the next.
    assert temporal_locality(trace, block=1) == pytest.approx(0.5)


def test_temporal_locality_short_trace():
    t = ActivationTrace(1, 4)
    t.record("decode", 0, 0, [0, 1])
    assert temporal_locality(t, 0) == 0.0


def test_summarize_routing(trace):
    text = summarize_routing(trace)
    assert "Gini" in text
    assert "locality" in text
