"""Unit tests for the content-addressed tensor cache (repro.perf)."""

import numpy as np
import pytest

from repro.perf import DEFAULT_MAX_BYTES, StageCounters, TensorCache, content_key


# ---- key construction --------------------------------------------------------


def test_key_deterministic(rng):
    a = rng.standard_normal((3, 4)).astype(np.float32)
    assert content_key("scope", 3, "gate", a) == content_key(
        "scope", 3, "gate", a.copy()
    )
    assert TensorCache.key("s", a) == content_key("s", a)


def test_key_discriminates_values(rng):
    a = rng.standard_normal((3, 4)).astype(np.float32)
    b = a.copy()
    b[0, 0] += 1.0
    assert content_key("s", a) != content_key("s", b)
    assert content_key("s", 0, a) != content_key("s", 1, a)
    assert content_key("s", "gate", a) != content_key("s", "route", a)


def test_key_discriminates_types_and_boundaries():
    # Concatenation ambiguity: ("ab", "c") vs ("a", "bc").
    assert content_key("ab", "c") != content_key("a", "bc")
    # Type confusion: int vs str vs bool vs None.
    assert content_key(1) != content_key("1")
    assert content_key(1) != content_key(True)
    assert content_key(None) != content_key("")
    assert content_key(1.0) != content_key(1)


def test_key_covers_dtype_and_shape():
    a = np.arange(6, dtype=np.float32)
    assert content_key(a) != content_key(a.reshape(2, 3))
    assert content_key(a) != content_key(a.astype(np.float64))
    # Non-contiguous views hash by content, not by memory layout.
    m = np.arange(12, dtype=np.float32).reshape(3, 4)
    assert content_key(m[:, ::2]) == content_key(
        np.ascontiguousarray(m[:, ::2])
    )


def test_key_rejects_unhashable_parts():
    with pytest.raises(TypeError):
        content_key([1, 2, 3])


# ---- get / put ---------------------------------------------------------------


def test_put_get_roundtrip_is_bitwise_and_readonly(rng):
    cache = TensorCache()
    value = rng.standard_normal((4, 8)).astype(np.float32)
    key = cache.key("s", 0, "gate", value)
    stored = cache.put(key, "gate", value)
    # Mutating the original cannot corrupt the entry.
    value[:] = 0.0
    hit = cache.get(key, "gate")
    assert hit is stored
    assert not hit.flags.writeable
    assert np.any(hit != 0.0)
    with pytest.raises(ValueError):
        hit[0, 0] = 1.0


def test_tuple_values_roundtrip(rng):
    cache = TensorCache()
    k = rng.standard_normal((2, 3)).astype(np.float32)
    v = rng.standard_normal((2, 3)).astype(np.float32)
    key = cache.key("s", "attn", k)
    stored = cache.put(key, "attn", (k, v))
    assert isinstance(stored, tuple) and len(stored) == 2
    hit_k, hit_v = cache.get(key, "attn")
    np.testing.assert_array_equal(hit_k, k)
    np.testing.assert_array_equal(hit_v, v)
    assert not hit_k.flags.writeable and not hit_v.flags.writeable


def test_put_rejects_non_arrays():
    cache = TensorCache()
    with pytest.raises(TypeError):
        cache.put(b"key", "gate", [1, 2, 3])
    with pytest.raises(TypeError):
        cache.put(b"key", "gate", (np.zeros(2), "nope"))


def test_max_bytes_must_be_positive():
    with pytest.raises(ValueError):
        TensorCache(max_bytes=0)


# ---- LRU byte budget (acceptance criterion) ----------------------------------


def test_lru_eviction_enforces_byte_budget():
    one_kib = np.zeros(256, dtype=np.float32)  # 1024 bytes each
    cache = TensorCache(max_bytes=3 * one_kib.nbytes)
    for i in range(3):
        cache.put(cache.key(i), "expert", one_kib + i)
    assert len(cache) == 3 and cache.evictions == 0
    # Touch entry 0 so entry 1 becomes the LRU victim.
    assert cache.get(cache.key(0), "expert") is not None
    cache.put(cache.key(3), "expert", one_kib + 3)
    assert len(cache) == 3
    assert cache.evictions == 1
    assert cache.current_bytes <= cache.max_bytes
    assert cache.get(cache.key(1), "expert") is None      # evicted
    assert cache.get(cache.key(0), "expert") is not None  # kept (recent)
    assert cache.get(cache.key(3), "expert") is not None  # kept (new)


def test_oversize_value_skipped_not_stored():
    cache = TensorCache(max_bytes=64)
    big = np.zeros(1024, dtype=np.float32)
    stored = cache.put(cache.key("big"), "expert", big)
    np.testing.assert_array_equal(stored, big)
    assert not stored.flags.writeable
    assert len(cache) == 0
    assert cache.oversize_skips == 1
    assert cache.evictions == 0


def test_reinsert_same_key_replaces_bytes():
    cache = TensorCache(max_bytes=8192)
    key = cache.key("k")
    cache.put(key, "gate", np.zeros(16, dtype=np.float32))
    before = cache.current_bytes
    cache.put(key, "gate", np.zeros(16, dtype=np.float32))
    assert len(cache) == 1
    assert cache.current_bytes == before


# ---- counters and stats ------------------------------------------------------


def test_stage_counters_and_stats(rng):
    cache = TensorCache()
    a = rng.standard_normal((2, 2)).astype(np.float32)
    key = cache.key("s", a)
    assert cache.get(key, "gate") is None
    cache.put(key, "gate", a)
    assert cache.get(key, "gate") is not None
    assert cache.get(cache.key("other"), "route") is None

    gate = cache.stage_counters["gate"]
    assert (gate.hits, gate.misses, gate.lookups) == (1, 1, 2)
    assert gate.hit_rate == pytest.approx(0.5)
    assert cache.hits == 1 and cache.misses == 2

    stats = cache.stats()
    assert stats["entries"] == 1
    assert stats["max_bytes"] == DEFAULT_MAX_BYTES
    assert stats["stages"]["gate"]["hit_rate"] == pytest.approx(0.5)
    assert stats["stages"]["route"] == {
        "hits": 0, "misses": 1, "memo_hits": 0, "hit_rate": 0.0,
    }
    # JSON-serializable snapshot.
    import json

    json.dumps(stats)


def test_unused_stage_counters_convention():
    assert StageCounters().hit_rate == 0.0


def test_clear_and_reset_counters(rng):
    cache = TensorCache()
    a = rng.standard_normal(4).astype(np.float32)
    key = cache.key(a)
    cache.put(key, "gate", a)
    cache.get(key, "gate")
    cache.clear()
    assert len(cache) == 0 and cache.current_bytes == 0
    assert cache.hits == 1  # counters survive clear()
    cache.reset_counters()
    assert cache.hits == 0 and cache.misses == 0
    assert cache.evictions == 0 and cache.oversize_skips == 0


# ---- batch-dimension aliasing (gathered execution) ---------------------------


def test_key_discriminates_leading_batch_dim():
    """Same bytes under different leading dims must never share a key."""
    flat = np.arange(256, dtype=np.float32)
    assert content_key(flat.reshape(4, 64)) != content_key(
        flat.reshape(1, 256)
    )
    assert content_key(flat.reshape(4, 64)) != content_key(
        flat.reshape(2, 128)
    )


def test_expert_stage_key_separates_gathered_from_solo(tiny_bundle, rng):
    """A [batch*k, d] gathered input misses against the [k, d] solo entry."""
    model = tiny_bundle.model
    cache = TensorCache()
    model.attach_compute_cache(cache)
    try:
        block = model.blocks[0]
        d_model = model.profile.sim.d_model
        solo = rng.standard_normal((1, d_model)).astype(np.float32)
        stacked = np.vstack([solo, solo])

        block.expert_forward(0, solo)
        counters = cache.stage_counters["expert"]
        assert (counters.hits, counters.misses) == (0, 1)

        # Two rows of identical bytes: distinct shape, distinct key.
        block.expert_forward(0, stacked)
        assert (counters.hits, counters.misses) == (0, 2)

        # The original solo entry is still retrievable.
        block.expert_forward(0, solo)
        assert (counters.hits, counters.misses) == (1, 2)
    finally:
        model.detach_compute_cache()
