"""The decode block-work protocol and gathered-batch validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_engine
from repro.core.batching import (
    CPU_LOC,
    GPU_LOC,
    BlockWork,
    ExpertCall,
    GatherStats,
    group_block_work,
)
from repro.core.engine import SequenceRequest
from repro.hardware.timeline import ResourceClock, Timeline


def _call(expert, location, rows=1):
    return ExpertCall(
        expert=expert, location=location,
        h_att=np.zeros((rows, 4), dtype=np.float32), deps=(),
    )


def _prompt(bundle, seed=0, n=10):
    rng = np.random.default_rng(seed)
    return rng.integers(0, bundle.vocab.vocab_size, size=n, dtype=np.int64)


# ---- data types --------------------------------------------------------------


def test_expert_call_n_rows_counts_selection():
    full = _call(0, GPU_LOC, rows=3)
    assert full.n_rows == 3
    selected = ExpertCall(
        expert=0, location=GPU_LOC,
        h_att=np.zeros((3, 4), dtype=np.float32), deps=(),
        token_idx=np.asarray([0, 2]),
    )
    assert selected.n_rows == 2


def test_gather_stats_amortization():
    stats = GatherStats()
    assert stats.expert_amortization == 1.0
    stats.expert_ops = 8
    stats.expert_kernels = 2
    assert stats.expert_amortization == pytest.approx(4.0)


def test_group_block_work_merges_across_sequences():
    work_a = BlockWork(block_idx=3, calls=(
        _call(1, GPU_LOC), _call(2, CPU_LOC),
    ))
    work_b = BlockWork(block_idx=3, calls=(_call(1, GPU_LOC),))
    groups = group_block_work([work_a, work_b])
    assert groups[(3, 1, GPU_LOC)] == [(0, 0), (1, 0)]
    assert groups[(3, 2, CPU_LOC)] == [(0, 1)]
    # Same expert on another device is a different kernel.
    assert (3, 1, CPU_LOC) not in groups


def test_group_block_work_preserves_admission_order():
    works = [
        BlockWork(block_idx=0, calls=(_call(5, GPU_LOC),))
        for _ in range(4)
    ]
    groups = group_block_work(works)
    assert groups[(0, 5, GPU_LOC)] == [(i, 0) for i in range(4)]


# ---- step_batch validation ---------------------------------------------------


@pytest.fixture()
def daop(tiny_bundle, platform, tiny_calibration):
    return build_engine("daop", tiny_bundle, platform,
                        expert_cache_ratio=0.5,
                        calibration_probs=tiny_calibration)


def test_step_batch_rejects_empty(daop):
    with pytest.raises(ValueError):
        daop.step_batch([])


def test_step_batch_rejects_prefill_phase(daop, tiny_bundle):
    state = daop.start(SequenceRequest(
        prompt_tokens=_prompt(tiny_bundle), max_new_tokens=4,
    ))
    with pytest.raises(RuntimeError, match="prefill"):
        daop.step_batch([state])


def test_step_batch_rejects_done_sequence(daop, tiny_bundle):
    state = daop.start(SequenceRequest(
        prompt_tokens=_prompt(tiny_bundle), max_new_tokens=1,
    ))
    daop.step(state)
    assert state.done
    with pytest.raises(RuntimeError, match="finish"):
        daop.step_batch([state])


def test_step_batch_rejects_mixed_clocks(daop, tiny_bundle):
    states = []
    for seed in (0, 1):
        state = daop.start(
            SequenceRequest(prompt_tokens=_prompt(tiny_bundle, seed),
                            max_new_tokens=4, seq_id=seed),
            timeline=Timeline(clock=ResourceClock()),
        )
        daop.step(state)
        states.append(state)
    with pytest.raises(ValueError, match="ResourceClock"):
        daop.step_batch(states)


def test_step_batch_single_state_matches_step(daop, tiny_bundle):
    """n=1 gathered execution degenerates to the solo schedule bitwise."""
    prompt = _prompt(tiny_bundle)
    solo = daop.start(SequenceRequest(prompt_tokens=prompt,
                                      max_new_tokens=4))
    batched = daop.start(SequenceRequest(prompt_tokens=prompt,
                                         max_new_tokens=4))
    daop.step(solo)
    daop.step(batched)
    while not solo.done:
        daop.step(solo)
        daop.step_batch([batched])
    assert batched.done
    assert solo.generated == batched.generated
    assert len(solo.timeline.ops) == len(batched.timeline.ops)
    for got, want in zip(batched.timeline.ops, solo.timeline.ops):
        assert (got.resource, got.kind, got.start, got.end) == \
            (want.resource, want.kind, want.start, want.end)


def test_step_batch_distinct_sequences_share_kernels(
        daop, tiny_bundle):
    """Two decode-phase sequences on one clock gather same-expert calls."""
    clock = ResourceClock()
    states = []
    for seed in (0, 1):
        state = daop.start(
            SequenceRequest(prompt_tokens=_prompt(tiny_bundle, seed),
                            max_new_tokens=4, seq_id=seed),
            timeline=Timeline(clock=clock),
        )
        daop.step(state)
        states.append(state)
    stats = GatherStats()
    results = daop.step_batch(states, gather_stats=stats)
    assert len(results) == 2
    assert all(r.phase == "decode" for r in results)
    assert stats.expert_ops >= stats.expert_kernels > 0
    assert stats.lm_head_kernels == 1
    assert stats.lm_head_ops == 2


# ---- step_prefill_batch validation and parity --------------------------------


def test_step_prefill_batch_rejects_empty(daop):
    with pytest.raises(ValueError):
        daop.step_prefill_batch([])


def test_step_prefill_batch_rejects_decode_phase(daop, tiny_bundle):
    state = daop.start(SequenceRequest(
        prompt_tokens=_prompt(tiny_bundle), max_new_tokens=4,
    ))
    daop.step(state)
    with pytest.raises(RuntimeError, match="decode"):
        daop.step_prefill_batch([state])


def test_step_prefill_batch_rejects_done_sequence(daop, tiny_bundle):
    state = daop.start(SequenceRequest(
        prompt_tokens=_prompt(tiny_bundle), max_new_tokens=1,
    ))
    daop.step(state)
    assert state.done
    with pytest.raises(RuntimeError, match="finish"):
        daop.step_prefill_batch([state])


def test_step_prefill_batch_rejects_mixed_clocks(daop, tiny_bundle):
    states = [
        daop.start(
            SequenceRequest(prompt_tokens=_prompt(tiny_bundle, seed),
                            max_new_tokens=4, seq_id=seed),
            timeline=Timeline(clock=ResourceClock()),
        )
        for seed in (0, 1)
    ]
    with pytest.raises(ValueError, match="ResourceClock"):
        daop.step_prefill_batch(states)


def test_step_prefill_batch_single_state_matches_step(daop, tiny_bundle):
    """n=1 gathered prefill degenerates to the solo schedule bitwise."""
    prompt = _prompt(tiny_bundle)
    solo = daop.start(SequenceRequest(prompt_tokens=prompt,
                                      max_new_tokens=4))
    batched = daop.start(SequenceRequest(prompt_tokens=prompt,
                                         max_new_tokens=4))
    daop.step(solo)
    daop.step_prefill_batch([batched])
    assert solo.generated == batched.generated
    assert len(solo.timeline.ops) == len(batched.timeline.ops)
    for got, want in zip(batched.timeline.ops, solo.timeline.ops):
        assert (got.resource, got.kind, got.start, got.end) == \
            (want.resource, want.kind, want.start, want.end)


def test_step_prefill_batch_cohort_counts_and_token_parity(
        daop, tiny_bundle):
    """A two-sequence cohort gathers every stage yet samples solo tokens."""
    prompts = [_prompt(tiny_bundle, seed) for seed in (0, 1)]
    solo_tokens = []
    for prompt in prompts:
        solo = daop.start(SequenceRequest(prompt_tokens=prompt,
                                          max_new_tokens=4))
        daop.step(solo)
        solo_tokens.append(list(solo.generated))

    clock = ResourceClock()
    states = [
        daop.start(
            SequenceRequest(prompt_tokens=prompt, max_new_tokens=4,
                            seq_id=i),
            timeline=Timeline(clock=clock),
        )
        for i, prompt in enumerate(prompts)
    ]
    stats = GatherStats()
    results = daop.step_prefill_batch(states, gather_stats=stats)
    assert all(r.phase == "prefill" for r in results)
    assert [list(s.generated) for s in states] == solo_tokens

    n_blocks = len(tiny_bundle.model.blocks)
    assert stats.attn_kernels == n_blocks
    assert stats.attn_ops == 2 * n_blocks
    assert stats.gate_kernels == n_blocks
    assert stats.gate_ops == 2 * n_blocks
    assert stats.prefill_expert_ops >= stats.prefill_expert_kernels > 0
    assert stats.prefill_lm_head_kernels == 1
    assert stats.prefill_lm_head_ops == 2
    # Totals accrue to the same ledger, so the decode share stays zero.
    assert stats.decode_expert_ops == 0
    assert stats.lm_head_ops == stats.prefill_lm_head_ops
