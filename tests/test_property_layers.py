"""Property-based tests for numerical layers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.model.layers import RMSNorm, log_softmax, silu, softmax

finite_floats = st.floats(min_value=-50.0, max_value=50.0,
                          allow_nan=False, allow_infinity=False)


def vec(n_max=16):
    return st.integers(1, n_max).flatmap(
        lambda n: arrays(np.float64, n, elements=finite_floats)
    )


@given(vec())
def test_softmax_is_distribution(x):
    p = softmax(x)
    assert np.all(p >= 0)
    assert p.sum() == np.float64(1.0) or abs(p.sum() - 1.0) < 1e-9


@given(vec(), st.floats(-30, 30, allow_nan=False))
def test_softmax_shift_invariant(x, c):
    np.testing.assert_allclose(softmax(x), softmax(x + c), atol=1e-9)


@given(vec())
def test_softmax_preserves_order(x):
    p = softmax(x)
    for i in range(len(x)):
        for j in range(len(x)):
            if x[i] > x[j]:
                assert p[i] >= p[j]


@given(vec())
def test_log_softmax_matches_log_of_softmax(x):
    np.testing.assert_allclose(log_softmax(x), np.log(softmax(x)),
                               atol=1e-8)


@given(vec())
def test_silu_bounds(x):
    y = silu(x)
    # silu(x) is bounded below by ~-0.279 and by x from above for x>0.
    assert np.all(y >= -0.2785)
    assert np.all(y[x > 0] <= x[x > 0])


@given(vec())
def test_silu_monotone_above_minimum(x):
    """SiLU is increasing for inputs above ~-1.278."""
    xs = np.sort(x[x > -1.27])
    ys = silu(xs)
    assert np.all(np.diff(ys) >= -1e-12)


@settings(max_examples=25)
@given(arrays(np.float64, (4, 8),
              elements=st.floats(min_value=1.0, max_value=50.0)),
       st.floats(0.1, 10.0))
def test_rmsnorm_scale_invariance(x, scale):
    norm = RMSNorm(8)
    a = norm(x)
    b = norm(x * scale)
    np.testing.assert_allclose(a, b, atol=1e-4)


@settings(max_examples=25)
@given(arrays(np.float64, (3, 8),
              elements=st.floats(min_value=0.1, max_value=50.0)))
def test_rmsnorm_output_rms_is_one(x):
    norm = RMSNorm(8)
    out = norm(x)
    rms = np.sqrt(np.mean(out**2, axis=-1))
    np.testing.assert_allclose(rms, np.ones(3), rtol=1e-3)
