"""Unit tests for sampling strategies."""

import numpy as np
import pytest

from repro.model.sampling import greedy, top_k_sample


def test_greedy_argmax():
    assert greedy(np.array([0.1, 5.0, 2.0])) == 1


def test_greedy_flattens():
    assert greedy(np.array([[0.1, 5.0, 2.0]])) == 1


def test_top_k_validates(rng):
    with pytest.raises(ValueError):
        top_k_sample(np.zeros(4), 0, rng)


def test_top_k_respects_support(rng):
    logits = np.array([10.0, 9.0, -50.0, -50.0])
    for _ in range(50):
        assert top_k_sample(logits, 2, rng) in (0, 1)


def test_top_k_deterministic_with_seed():
    logits = np.random.default_rng(0).standard_normal(16)
    a = [top_k_sample(logits, 4, np.random.default_rng(9)) for _ in range(5)]
    b = [top_k_sample(logits, 4, np.random.default_rng(9)) for _ in range(5)]
    assert a == b


def test_zero_temperature_is_greedy(rng):
    logits = np.array([1.0, 3.0, 2.0])
    assert top_k_sample(logits, 3, rng, temperature=0.0) == 1


def test_k_larger_than_vocab(rng):
    logits = np.array([1.0, 2.0])
    assert top_k_sample(logits, 10, rng) in (0, 1)
