"""Unit tests for prompt-length bucketing (repro.core.bucketing)."""

import pytest

from repro.core.bucketing import (
    MIN_BUCKET,
    PrefillBucket,
    bucket_key,
    bucket_prompt_lengths,
)


class TestBucketKey:
    def test_power_of_two_ceiling(self):
        assert bucket_key(17) == 32
        assert bucket_key(32) == 32
        assert bucket_key(33) == 64
        assert bucket_key(1000) == 1024

    def test_clamped_below_at_min_bucket(self):
        for n in range(1, MIN_BUCKET + 1):
            assert bucket_key(n) == MIN_BUCKET

    def test_exact_powers_map_to_themselves(self):
        n = MIN_BUCKET
        while n <= 4096:
            assert bucket_key(n) == n
            n *= 2

    def test_custom_min_bucket(self):
        assert bucket_key(3, min_bucket=4) == 4
        assert bucket_key(5, min_bucket=4) == 8

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bucket_key(0)
        with pytest.raises(ValueError):
            bucket_key(-3)


class TestBucketPromptLengths:
    def test_deterministic(self):
        lengths = [7, 100, 31, 100, 9, 64, 7]
        assert bucket_prompt_lengths(lengths) == bucket_prompt_lengths(
            lengths
        )

    def test_every_index_exactly_once(self):
        lengths = [5, 300, 17, 17, 64, 5, 2048, 33]
        buckets = bucket_prompt_lengths(lengths)
        seen = [i for bucket in buckets for i in bucket.indices]
        assert sorted(seen) == list(range(len(lengths)))
        assert len(seen) == len(set(seen))

    def test_groups_by_bucket_key(self):
        buckets = bucket_prompt_lengths([10, 12, 100, 120, 9])
        assert buckets == [
            PrefillBucket(key=MIN_BUCKET, indices=(0, 1, 4)),
            PrefillBucket(key=128, indices=(2, 3)),
        ]

    def test_first_appearance_order_and_index_order(self):
        # 64 appears before 16's second member; bucket order follows the
        # first member's arrival, indices stay in input order.
        buckets = bucket_prompt_lengths([16, 64, 16, 64])
        assert [b.key for b in buckets] == [16, 64]
        assert buckets[0].indices == (0, 2)
        assert buckets[1].indices == (1, 3)

    def test_is_cohort(self):
        singleton, cohort = bucket_prompt_lengths([5, 900, 901])
        assert not singleton.is_cohort
        assert cohort.is_cohort

    def test_empty_input(self):
        assert bucket_prompt_lengths([]) == []

    def test_rejects_invalid_length(self):
        with pytest.raises(ValueError):
            bucket_prompt_lengths([16, 0])
