"""DAOP engine behaviour tests."""

import numpy as np
import pytest

from repro.core.daop import DAOPEngine
from repro.memory.cache import CacheConfig
from repro.workloads import C4, SequenceGenerator


@pytest.fixture(scope="module")
def sequence(tiny_bundle):
    gen = SequenceGenerator(C4, tiny_bundle.vocab, seed=11)
    return gen.sample_sequence(16, 8, sample_idx=0)


def make_daop(tiny_bundle, platform, tiny_calibration, **kw):
    return DAOPEngine(
        tiny_bundle, platform,
        cache_config=CacheConfig(ecr=kw.pop("ecr", 0.5)),
        calibration_probs=tiny_calibration,
        prediction_start_block=kw.pop("prediction_start_block", 2),
        **kw,
    )


def test_migrations_restricted_to_prefill(tiny_bundle, platform,
                                          tiny_calibration, sequence):
    """Paper §IV-B: expert migration only happens during prefill."""
    engine = make_daop(tiny_bundle, platform, tiny_calibration)
    result = engine.generate(sequence.prompt_tokens, 8)
    prefill_end = result.stats.prefill_time_s
    uploads = [op for op in result.timeline.ops
               if op.kind == "expert_upload"]
    assert all(op.start <= prefill_end for op in uploads)


def test_swaps_preserve_cache_size(tiny_bundle, platform, tiny_calibration,
                                   sequence):
    """Algorithm 1 swaps one-in-one-out: the ECR never changes."""
    engine = make_daop(tiny_bundle, platform, tiny_calibration)
    before = engine.initial_placement.expert_cache_ratio
    result = engine.generate(sequence.prompt_tokens, 8)
    assert result.placement.expert_cache_ratio == pytest.approx(before)


def test_sequence_allocation_improves_hit_rate(tiny_bundle, platform,
                                               tiny_calibration):
    """Algorithm 1 should lift the decode GPU hit rate on skewed input."""
    gen = SequenceGenerator(C4, tiny_bundle.vocab, seed=13)
    hits = {}
    for alloc in (False, True):
        engine = make_daop(tiny_bundle, platform, tiny_calibration,
                           enable_seq_allocation=alloc, ecr=0.25,
                           enable_precalc=False)
        rates = []
        for i in range(4):
            seq = gen.sample_sequence(24, 12, sample_idx=i)
            result = engine.generate(
                seq.prompt_tokens, 12,
                forced_tokens=seq.continuation_tokens,
            )
            rates.append(result.stats.counters.gpu_hit_rate)
        hits[alloc] = np.mean(rates)
    assert hits[True] > hits[False]


def test_precalc_emits_stale_executions(tiny_bundle, platform,
                                        tiny_calibration, sequence):
    engine = make_daop(tiny_bundle, platform, tiny_calibration, ecr=0.25)
    result = engine.generate(sequence.prompt_tokens, 8)
    assert result.stats.counters.stale_input_execs > 0


def test_precalc_disabled_no_stale(tiny_bundle, platform, tiny_calibration,
                                   sequence):
    engine = make_daop(tiny_bundle, platform, tiny_calibration,
                       enable_precalc=False, ecr=0.25)
    result = engine.generate(sequence.prompt_tokens, 8)
    assert result.stats.counters.stale_input_execs == 0
    assert result.stats.counters.degraded_swaps == 0


def test_graceful_degradation_counter(tiny_bundle, platform,
                                      tiny_calibration):
    """With a tiny cache and drifting input, both predicted experts often
    sit on the CPU, so graceful degradation must fire."""
    from repro.workloads import GSM8K

    gen = SequenceGenerator(
        GSM8K.with_overrides(drift_rate=0.2), tiny_bundle.vocab, seed=5
    )
    engine = make_daop(tiny_bundle, platform, tiny_calibration, ecr=0.25,
                       enable_seq_allocation=False)
    total = 0
    for i in range(3):
        seq = gen.sample_sequence(16, 24, sample_idx=i)
        result = engine.generate(seq.prompt_tokens, 24,
                                 forced_tokens=seq.continuation_tokens)
        total += result.stats.counters.degraded_swaps
    assert total > 0


def test_degradation_off_executes_prediction_verbatim(
        tiny_bundle, platform, tiny_calibration, sequence):
    engine = make_daop(tiny_bundle, platform, tiny_calibration, ecr=0.25,
                       graceful_degradation=False)
    result = engine.generate(sequence.prompt_tokens, 8)
    assert result.stats.counters.degraded_swaps == 0


def test_predicted_blocks_marked_in_trace(tiny_bundle, platform,
                                          tiny_calibration, sequence):
    engine = make_daop(tiny_bundle, platform, tiny_calibration)
    result = engine.generate(sequence.prompt_tokens, 8)
    predicted_blocks = {e.block for e in result.trace.events if e.predicted}
    n = tiny_bundle.model.n_blocks
    # Prediction from block >= 2 targets blocks 3..n-1.
    assert predicted_blocks == set(range(3, n))


def test_early_blocks_use_true_gate(tiny_bundle, platform, tiny_calibration,
                                    sequence):
    engine = make_daop(tiny_bundle, platform, tiny_calibration,
                       prediction_start_block=4)
    result = engine.generate(sequence.prompt_tokens, 8)
    for event in result.trace.events:
        if event.phase == "decode" and event.block <= 4:
            assert not event.predicted
            assert event.executed_experts == event.experts


def test_precalc_overlap_reduces_latency(tiny_bundle, platform,
                                         tiny_calibration, sequence):
    """Pre-calculation must strictly help at equal placement quality."""
    base = make_daop(tiny_bundle, platform, tiny_calibration, ecr=0.25,
                     enable_precalc=False)
    fast = make_daop(tiny_bundle, platform, tiny_calibration, ecr=0.25)
    t_base = base.generate(sequence.prompt_tokens, 12).stats.decode_time_s
    t_fast = fast.generate(sequence.prompt_tokens, 12).stats.decode_time_s
    assert t_fast < t_base


def test_executed_cpu_experts_capped_by_degradation(
        tiny_bundle, platform, tiny_calibration, sequence):
    """With degradation on, predicted blocks run at most one CPU expert."""
    engine = make_daop(tiny_bundle, platform, tiny_calibration, ecr=0.25,
                       max_cpu_experts=1)
    result = engine.generate(sequence.prompt_tokens, 12)
    placement = result.placement
    for event in result.trace.events:
        if not event.predicted or event.executed_experts is None:
            continue
        on_cpu = sum(
            1 for e in event.executed_experts
            if not placement.is_on_gpu(event.block, e)
        )
        # Cap holds whenever any GPU-resident alternative existed.
        if placement.gpu_experts(event.block).size >= 1:
            assert on_cpu <= 1
