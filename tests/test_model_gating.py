"""Unit tests for the top-k router."""

import numpy as np
import pytest

from repro.model.gating import Router


@pytest.fixture()
def router(rng):
    return Router(d_model=16, n_experts=8, top_k=2, rng=rng)


def test_invalid_top_k(rng):
    with pytest.raises(ValueError):
        Router(16, 4, 0, rng)
    with pytest.raises(ValueError):
        Router(16, 4, 5, rng)


def test_route_shapes(router, rng):
    x = rng.standard_normal((5, 16))
    decision = router.route(x)
    assert decision.logits.shape == (5, 8)
    assert decision.experts.shape == (5, 2)
    assert decision.weights.shape == (5, 2)
    assert decision.n_tokens == 5
    assert decision.top_k == 2


def test_experts_are_argmax(router, rng):
    x = rng.standard_normal((10, 16))
    decision = router.route(x)
    for t in range(10):
        top = set(np.argsort(-decision.logits[t])[:2])
        assert set(decision.experts[t]) == top


def test_experts_sorted_descending(router, rng):
    x = rng.standard_normal((10, 16))
    decision = router.route(x)
    for t in range(10):
        logits = decision.logits[t][decision.experts[t]]
        assert logits[0] >= logits[1]


def test_weights_softmax_over_selected(router, rng):
    x = rng.standard_normal((4, 16))
    decision = router.route(x)
    np.testing.assert_allclose(decision.weights.sum(axis=1), np.ones(4),
                               rtol=1e-6)
    # Higher-logit expert gets the larger weight.
    assert np.all(decision.weights[:, 0] >= decision.weights[:, 1])


def test_route_from_logits_matches_route(router, rng):
    x = rng.standard_normal((3, 16))
    a = router.route(x)
    b = router.route_from_logits(router.logits(x))
    np.testing.assert_array_equal(a.experts, b.experts)
    np.testing.assert_allclose(a.weights, b.weights)


def test_renormalize_arbitrary_subset():
    logits = np.array([3.0, 1.0, 2.0, 0.0])
    weights = Router.renormalize(logits, np.array([0, 3]))
    assert weights.sum() == pytest.approx(1.0)
    assert weights[0] > weights[1]
    # Matches a direct softmax over the chosen logits.
    expected = np.exp([3.0, 0.0]) / np.exp([3.0, 0.0]).sum()
    np.testing.assert_allclose(weights, expected, rtol=1e-6)


def test_1d_input_promoted(router, rng):
    x = rng.standard_normal(16)
    decision = router.route(x)
    assert decision.experts.shape == (1, 2)


def test_topk_selection_never_repeats_an_expert(rng):
    """argsort top-k yields k *distinct* experts for every token.

    The engines' combine step relies on this (a duplicate id would mean
    one expert claiming two weight slots); the property must hold even
    with heavily tied logits.
    """
    router = Router(d_model=16, n_experts=4, top_k=3, rng=rng)
    x = rng.standard_normal((256, 16))
    decision = router.route(x)
    for row in decision.experts:
        assert len(set(row.tolist())) == len(row)
    # Ties everywhere: identical logits still route to distinct experts.
    tied = router.route_from_logits(np.zeros((8, 4)))
    for row in tied.experts:
        assert len(set(row.tolist())) == len(row)
