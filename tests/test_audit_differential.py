"""Tests for the cross-engine differential audit (repro.audit.differential)."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.audit import (
    DEFAULT_SEEDS,
    ORACLE_ENGINE,
    block_divergence_accounting,
    compare_token_streams,
    run_differential_audit,
)
from repro.audit.differential import _compare
from repro.core import ENGINE_NAMES, build_engine
from repro.workloads import C4, SequenceGenerator


# ---- token-stream comparison -------------------------------------------------


def test_identical_streams():
    tokens = np.array([1, 2, 3, 4])
    assert compare_token_streams(tokens, tokens.copy()) == (0, None)


def test_first_divergence_located():
    n, first = compare_token_streams(np.array([1, 2, 3, 4]),
                                     np.array([1, 2, 9, 4]))
    assert (n, first) == (1, 2)


def test_length_mismatch_counts_tail():
    n, first = compare_token_streams(np.array([1, 2, 3, 4]),
                                     np.array([1, 2]))
    assert (n, first) == (2, 2)
    n, first = compare_token_streams(np.array([1, 2]),
                                     np.array([1, 9, 3]))
    assert (n, first) == (2, 1)


# ---- comparison classification -----------------------------------------------


def fake_result(tokens, events=()):
    return SimpleNamespace(tokens=np.asarray(tokens),
                           trace=SimpleNamespace(events=list(events)))


def fake_event(predicted, experts=(0, 1), executed=None, block=0,
               token_pos=0):
    return SimpleNamespace(phase="decode", block=block,
                           token_pos=token_pos, experts=tuple(experts),
                           executed_experts=executed, predicted=predicted)


def test_non_predictive_divergence_is_a_problem():
    oracle = fake_result([1, 2, 3])
    diverged = fake_result([1, 2, 9])
    comparison = _compare(object(), "fiddler", 0, oracle, diverged,
                          audit_invariants=False)
    assert not comparison.ok
    assert any("placement must never change values" in p
               for p in comparison.problems)


def test_non_predictive_predicted_event_is_a_problem():
    oracle = fake_result([1, 2, 3])
    result = fake_result([1, 2, 3], events=[fake_event(predicted=True)])
    comparison = _compare(object(), "fiddler", 0, oracle, result,
                          audit_invariants=False)
    assert any("predicted=True" in p for p in comparison.problems)


def test_predictive_divergence_requires_predicted_events():
    predictive = SimpleNamespace(enable_precalc=True)
    oracle = fake_result([1, 2, 3])
    # Divergence with a predicted event to attribute it to: allowed.
    attributed = fake_result([1, 2, 9],
                             events=[fake_event(predicted=True)])
    ok = _compare(predictive, "daop", 0, oracle, attributed,
                  audit_invariants=False)
    assert ok.ok and not ok.identical
    # The same divergence without any predicted event: a problem.
    orphan = fake_result([1, 2, 9], events=[fake_event(predicted=False)])
    bad = _compare(predictive, "daop", 0, oracle, orphan,
                   audit_invariants=False)
    assert any("without a single predicted=True" in p
               for p in bad.problems)


def test_predictive_first_token_must_match():
    predictive = SimpleNamespace(enable_precalc=True)
    oracle = fake_result([1, 2, 3])
    result = fake_result([9, 2, 3], events=[fake_event(predicted=True)])
    comparison = _compare(predictive, "daop", 0, oracle, result,
                          audit_invariants=False)
    assert any("prefill is exact" in p for p in comparison.problems)


# ---- per-block accounting ----------------------------------------------------


def test_block_divergence_accounting():
    events = [
        fake_event(predicted=False, block=0),
        fake_event(predicted=True, block=0, experts=(0, 1),
                   executed=(0, 1)),
        fake_event(predicted=True, block=1, experts=(0, 1),
                   executed=(2, 3)),
    ]
    blocks = {b.block: b
              for b in block_divergence_accounting(fake_result([], events))}
    assert blocks[0].decode_events == 2
    assert blocks[0].predicted_events == 1
    assert blocks[0].mispredicted_events == 0
    assert blocks[0].prediction_accuracy == pytest.approx(1.0)
    assert blocks[1].mispredicted_events == 1
    assert blocks[1].prediction_accuracy == pytest.approx(0.0)


# ---- the full harness --------------------------------------------------------


@pytest.fixture(scope="module")
def report(tiny_bundle, platform, tiny_calibration):
    return run_differential_audit(
        tiny_bundle, platform, calibration_probs=tiny_calibration,
        prompt_len=12, max_new_tokens=8,
    )


def test_differential_audit_passes(report):
    assert report.ok, report.format()
    assert report.oracle == ORACLE_ENGINE


def test_differential_audit_covers_every_engine_and_seed(report):
    covered = {(c.engine, c.seed) for c in report.comparisons}
    engines = [n for n in ENGINE_NAMES if n != ORACLE_ENGINE]
    assert covered == {(e, s) for e in engines for s in DEFAULT_SEEDS}
    assert len(report.oracle_audits) == len(DEFAULT_SEEDS)


def test_non_predictive_engines_are_token_identical(report):
    for comparison in report.comparisons:
        if not comparison.predictive:
            assert comparison.identical, (
                f"{comparison.engine}/seed{comparison.seed} diverged"
            )


def test_daop_divergence_is_attributed(report):
    daop = [c for c in report.comparisons if c.engine == "daop"]
    assert daop and all(c.predictive for c in daop)
    for comparison in daop:
        if not comparison.identical:
            assert sum(b.predicted_events
                       for b in comparison.block_divergence) > 0


def test_report_rows_match_comparisons(report):
    rows = report.rows()
    assert len(rows) == len(report.comparisons)
    assert all(row[-1] == "ok" for row in rows)


def test_detects_a_value_changing_engine(tiny_bundle, platform,
                                         tiny_calibration):
    """A non-predictive engine whose math deviates must fail the audit."""

    class LyingEngine:
        """Wraps fiddler but corrupts its third emitted token."""

        def __init__(self):
            self.inner = build_engine("fiddler", tiny_bundle, platform,
                                      0.5, tiny_calibration)
            self.name = "lying-fiddler"

        def __getattr__(self, attr):
            return getattr(self.inner, attr)

        def generate(self, prompt, max_new_tokens, **kw):
            result = self.inner.generate(prompt, max_new_tokens, **kw)
            result.tokens[2] = (result.tokens[2] + 1) % 7
            return result

    oracle = build_engine(ORACLE_ENGINE, tiny_bundle, platform, 0.5,
                          tiny_calibration)
    gen = SequenceGenerator(C4, tiny_bundle.vocab, seed=0)
    prompt = gen.sample_sequence(12, 0, sample_idx=0).prompt_tokens
    oracle_result = oracle.generate(prompt, 8)
    liar = LyingEngine()
    comparison = _compare(liar, "lying-fiddler", 0, oracle_result,
                          liar.generate(prompt, 8),
                          audit_invariants=False)
    assert not comparison.ok
    assert comparison.first_divergence == 2


# ---- shared compute cache + cache parity -------------------------------------


@pytest.fixture(scope="module")
def cached_report(tiny_bundle, platform, tiny_calibration):
    from repro.perf import TensorCache

    cache = TensorCache()
    report = run_differential_audit(
        tiny_bundle, platform, engine_names=["fiddler", "daop"],
        seeds=(0,), prompt_len=10, max_new_tokens=6,
        calibration_probs=tiny_calibration,
        compute_cache=cache, cache_parity=True,
    )
    return report, cache


def test_cache_parity_audit_passes(cached_report):
    report, cache = cached_report
    assert report.ok, report.format()
    assert report.cache_parity_problems == []
    # The cache actually served forwards across the engine matrix.
    assert cache.hits > 0


def test_cache_detached_after_audit(tiny_bundle, cached_report):
    assert tiny_bundle.model.compute_cache is None
    assert all(b.compute_cache is None for b in tiny_bundle.model.blocks)


def test_cache_parity_requires_a_cache(tiny_bundle, platform):
    with pytest.raises(ValueError):
        run_differential_audit(tiny_bundle, platform, cache_parity=True)


def test_cache_parity_problems_catch_divergence():
    from repro.audit import cache_parity_problems

    a = SimpleNamespace(
        tokens=np.array([1, 2, 3]),
        trace=SimpleNamespace(events=[]),
        stats=SimpleNamespace(counters={"expert_gpu": 4},
                              prefill_time_s=1.0, total_time_s=2.0),
        timeline=SimpleNamespace(ops=[], makespan=2.0),
    )
    b = SimpleNamespace(
        tokens=np.array([1, 2, 9]),
        trace=SimpleNamespace(events=[]),
        stats=SimpleNamespace(counters={"expert_gpu": 5},
                              prefill_time_s=1.0, total_time_s=2.5),
        timeline=SimpleNamespace(ops=[], makespan=2.5),
    )
    problems = cache_parity_problems(a, b)
    assert problems and all(p.startswith("cache parity") for p in problems)
    assert cache_parity_problems(a, a) == []


def test_step_parity_audit_with_shared_cache(tiny_bundle, platform,
                                             tiny_calibration):
    from repro.audit import run_step_parity_audit
    from repro.perf import TensorCache

    cache = TensorCache()
    report = run_step_parity_audit(
        tiny_bundle, platform, engine_names=["fiddler"], seeds=(0,),
        prompt_len=10, max_new_tokens=6,
        calibration_probs=tiny_calibration, compute_cache=cache,
    )
    assert report.ok, report.format()
    assert cache.hits > 0
    assert tiny_bundle.model.compute_cache is None
