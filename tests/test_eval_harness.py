"""Integration tests for the accuracy harness."""

import pytest

from repro.core import build_engine
from repro.eval.harness import AccuracyHarness
from repro.workloads import get_task
from repro.workloads.datasets import PIQA
from repro.workloads.tasks import TaskSpec

N_SAMPLES = 8


@pytest.fixture(scope="module")
def harness(tiny_bundle, platform):
    return AccuracyHarness(tiny_bundle, platform, seed=7)


def test_official_below_perfect(harness):
    """Paraphrasing makes even the oracle imperfect (sets difficulty)."""
    task = get_task("piqa")
    result = harness.evaluate_official(task, n_samples=N_SAMPLES)
    assert 0.0 < result.score <= 1.0


def test_zero_perturbation_is_perfect(harness, tiny_bundle, platform):
    """With no paraphrase the official engine matches itself exactly."""
    easy = TaskSpec("identity", PIQA.with_overrides(
        perturbation_strength=0.0), prompt_len=16, answer_len=4,
        metric="exact_match")
    result = harness.evaluate_official(easy, n_samples=4)
    assert result.score == pytest.approx(1.0)


def test_daop_prefill_exact_first_token(harness, tiny_bundle, platform,
                                        tiny_calibration):
    """Paper Table V: first-token tasks see no degradation from DAOP.

    DAOP's prefill is mathematically exact (migration moves weights, not
    values), so its first output token equals the official engine's on the
    same input -- per-sample scores must match exactly, not just on
    average.
    """
    task = get_task("piqa")
    daop = build_engine("daop", tiny_bundle, platform, 0.25,
                        tiny_calibration, prediction_start_block=2)
    official = harness.evaluate_official(task, n_samples=N_SAMPLES)
    ours = harness.evaluate(daop, task, n_samples=N_SAMPLES)
    assert ours.per_sample == official.per_sample


def test_fiddler_accuracy_equals_official(harness, tiny_bundle, platform,
                                          tiny_calibration):
    """Engines with exact routing score identically to the oracle."""
    task = TaskSpec("gen", PIQA, prompt_len=16, answer_len=6,
                    metric="exact_match")
    fiddler = build_engine("fiddler", tiny_bundle, platform, 0.25,
                           tiny_calibration)
    official = harness.evaluate_official(task, n_samples=4)
    ours = harness.evaluate(fiddler, task, n_samples=4)
    assert ours.per_sample == official.per_sample


def test_rouge_task_reports_both_scores(harness):
    task = get_task("truthfulqa_gen")
    result = harness.evaluate_official(task, n_samples=4)
    assert result.rouge1 is not None
    assert result.rouge2 is not None
    assert result.rouge2 <= result.rouge1 + 1e-9


def test_reference_cache_reused(harness):
    task = get_task("piqa")
    harness.evaluate_official(task, n_samples=2)
    n_cached = len(harness._reference_cache)
    harness.evaluate_official(task, n_samples=2)
    assert len(harness._reference_cache) == n_cached


def test_result_metadata(harness):
    task = get_task("triviaqa")
    result = harness.evaluate_official(task, n_samples=3)
    assert result.task == "triviaqa"
    assert result.engine == "official"
    assert result.n_samples == 3
    assert len(result.per_sample) == 3
