"""Unit tests for trace/timeline serialization."""

import json

import pytest

from repro.hardware.timeline import CPU, GPU, Timeline
from repro.trace.export import (
    save_run,
    timeline_to_chrome_trace,
    timeline_to_dict,
    trace_to_dict,
)
from repro.trace.recorder import ActivationTrace


@pytest.fixture()
def timeline():
    tl = Timeline()
    a = tl.add(GPU, 1.0, label="attn", kind="non_moe")
    tl.add(CPU, 2.0, deps=[a], label="expert", kind="expert_cpu")
    tl.add(GPU, 0.0, label="sync", kind="sync")
    return tl


@pytest.fixture()
def trace():
    t = ActivationTrace(2, 4)
    t.record("prefill", 0, 0, [0, 1])
    t.record("decode", 1, 1, [2, 3], executed_experts=[2, 0],
             predicted=True)
    return t


def test_timeline_to_dict(timeline):
    d = timeline_to_dict(timeline)
    assert d["makespan_s"] == pytest.approx(3.0)
    assert len(d["ops"]) == 3
    assert d["ops"][1]["kind"] == "expert_cpu"
    json.dumps(d)  # serializable


def test_trace_to_dict(trace):
    d = trace_to_dict(trace)
    assert d["n_blocks"] == 2
    assert d["events"][0]["experts"] == [0, 1]
    assert d["events"][1]["executed_experts"] == [2, 0]
    assert d["events"][1]["predicted"] is True
    json.dumps(d)


def test_chrome_trace_format(timeline):
    payload = json.loads(timeline_to_chrome_trace(timeline))
    events = payload["traceEvents"]
    complete = [e for e in events if e.get("ph") == "X"]
    # Zero-duration sync ops are omitted.
    assert len(complete) == 2
    for event in complete:
        assert event["dur"] > 0
        assert "ts" in event
    metadata = [e for e in events if e.get("ph") == "M"]
    names = {e["args"]["name"] for e in metadata}
    assert "gpu" in names and "cpu" in names


def test_save_run_roundtrip(tmp_path, timeline, trace):
    path = tmp_path / "run.json"
    save_run(str(path), timeline, trace)
    loaded = json.loads(path.read_text())
    assert loaded["timeline"]["makespan_s"] == pytest.approx(3.0)
    assert loaded["trace"]["n_experts"] == 4


def test_save_run_without_trace(tmp_path, timeline):
    path = tmp_path / "run.json"
    save_run(str(path), timeline)
    loaded = json.loads(path.read_text())
    assert "trace" not in loaded
