"""Tests for the engine factory helpers."""

import numpy as np
import pytest

from repro.core import ENGINE_NAMES, build_engine
from repro.core.daop import DAOPEngine, build_daop


def test_build_daop_convenience(tiny_bundle, platform, tiny_calibration):
    engine = build_daop(tiny_bundle, platform, expert_cache_ratio=0.25,
                        calibration_probs=tiny_calibration,
                        swap_threshold=1.2)
    assert isinstance(engine, DAOPEngine)
    assert engine.swap_threshold == 1.2
    assert engine.initial_placement.expert_cache_ratio == pytest.approx(
        0.25
    )


def test_factory_covers_every_name(tiny_bundle, platform,
                                   tiny_calibration):
    for name in ENGINE_NAMES:
        engine = build_engine(name, tiny_bundle, platform, 0.5,
                              tiny_calibration)
        assert engine.name == name


def test_factory_passes_engine_kwargs(tiny_bundle, platform,
                                      tiny_calibration):
    engine = build_engine("daop", tiny_bundle, platform, 0.5,
                          tiny_calibration, graceful_degradation=False)
    assert engine.graceful_degradation is False
    engine = build_engine("moe-infinity", tiny_bundle, platform, 0.5,
                          tiny_calibration, lookahead=3)
    assert engine.lookahead == 3


def test_factory_default_calibration(tiny_bundle, platform):
    """Without calibration the factory still builds a valid placement."""
    engine = build_engine("fiddler", tiny_bundle, platform, 0.5)
    assert engine.initial_placement.expert_cache_ratio == pytest.approx(
        0.5
    )
    result = engine.generate(np.arange(5, 13), 3)
    assert result.tokens.shape == (3,)
