"""Unit tests for the cluster event heap, clock, and replica state."""

from collections import deque

import pytest

from repro.cluster import (
    ARRIVAL,
    COMPLETION,
    DISPATCH,
    EventQueue,
    ReplicaState,
)


class TestEventQueue:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(3.0, ARRIVAL, request_id=0)
        q.push(1.0, ARRIVAL, request_id=1)
        q.push(2.0, DISPATCH, replica=0)
        assert [q.pop().time for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_ties_break_by_submission_order(self):
        q = EventQueue()
        q.push(5.0, COMPLETION, request_id=7)
        q.push(5.0, ARRIVAL, request_id=8)
        q.push(5.0, DISPATCH, replica=1)
        kinds = [q.pop().kind for _ in range(3)]
        assert kinds == [COMPLETION, ARRIVAL, DISPATCH]

    def test_clock_advances_on_pop(self):
        q = EventQueue()
        assert q.now == 0.0
        q.push(2.5, ARRIVAL)
        q.push(4.0, ARRIVAL)
        q.pop()
        assert q.now == 2.5
        q.pop()
        assert q.now == 4.0

    def test_push_into_the_past_rejected(self):
        q = EventQueue()
        q.push(10.0, ARRIVAL)
        q.pop()
        with pytest.raises(ValueError):
            q.push(9.0, DISPATCH)
        # Scheduling at exactly `now` is fine (immediate dispatch).
        q.push(10.0, DISPATCH)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(0.0, "teleport")

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(1.0, ARRIVAL)
        assert q and len(q) == 1
        q.pop()
        assert not q
        with pytest.raises(IndexError):
            q.pop()


class TestReplicaState:
    def test_idle_and_backlog(self):
        replica = ReplicaState()
        assert replica.idle
        assert replica.backlog == 0
        replica.queue = deque([3, 4])
        assert replica.backlog == 2
        replica.in_service = 2
        assert not replica.idle
        assert replica.backlog == 3
