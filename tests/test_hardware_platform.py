"""Unit tests for the platform container."""

import dataclasses

import pytest

from repro.hardware.device import DeviceKind
from repro.hardware.presets import (
    INTEL_I9_10980XE,
    NVIDIA_A6000,
    PCIE_4_X16,
    default_platform,
    paper_table1_platform,
)
from repro.hardware.platform import Platform


def test_default_platform_is_paper_testbed():
    p = default_platform()
    assert "A6000" in p.gpu.name
    assert "i9-10980XE" in p.cpu.name
    assert "PCIe 4.0" in p.link.name


def test_table1_platform():
    p = paper_table1_platform()
    assert "A100" in p.gpu.name
    assert "6326" in p.cpu.name


def test_kind_validation():
    with pytest.raises(ValueError):
        Platform(gpu=INTEL_I9_10980XE, cpu=INTEL_I9_10980XE, link=PCIE_4_X16)
    with pytest.raises(ValueError):
        Platform(gpu=NVIDIA_A6000, cpu=NVIDIA_A6000, link=PCIE_4_X16)


def test_device_lookup():
    p = default_platform()
    assert p.device(DeviceKind.GPU) is p.gpu
    assert p.device(DeviceKind.CPU) is p.cpu


def test_expert_capacity_math():
    p = default_platform()
    # 48 GB, 10% reserve -> 43.2 GB usable; 3.2 GB non-expert leaves 40 GB.
    slots = p.gpu_expert_capacity(3.2e9, 0.4e9, reserve_fraction=0.1)
    assert slots == 100


def test_expert_capacity_zero_when_full():
    p = default_platform()
    assert p.gpu_expert_capacity(48e9, 1e9) == 0


def test_capacity_shrinks_with_reserve():
    p = default_platform()
    a = p.gpu_expert_capacity(1e9, 0.35e9, reserve_fraction=0.0)
    b = p.gpu_expert_capacity(1e9, 0.35e9, reserve_fraction=0.3)
    assert a > b
