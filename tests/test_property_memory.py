"""Property-based tests for cache initialization and placement."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.memory.cache import CacheConfig, build_calibrated_placement

shapes = st.tuples(st.integers(1, 12), st.integers(2, 16))


@settings(max_examples=50)
@given(
    shapes.flatmap(
        lambda s: st.tuples(
            arrays(np.float64, s,
                   elements=st.floats(0.0, 1.0, allow_nan=False)),
            st.integers(0, s[0] * s[1]),
        )
    )
)
def test_slot_budget_exact(data):
    probs, slots = data
    placement = build_calibrated_placement(
        probs, CacheConfig(total_slots=slots)
    )
    assert placement.gpu_count() == slots


@settings(max_examples=50)
@given(
    shapes.flatmap(
        lambda s: st.tuples(
            arrays(np.float64, s,
                   elements=st.floats(0.0, 1.0, allow_nan=False)),
            st.floats(0.0, 1.0),
        )
    )
)
def test_ecr_within_rounding(data):
    probs, ecr = data
    placement = build_calibrated_placement(probs, CacheConfig(ecr=ecr))
    total = probs.shape[0] * probs.shape[1]
    assert abs(placement.gpu_count() - ecr * total) <= 0.5 + 1e-9


@settings(max_examples=50)
@given(
    shapes.flatmap(
        lambda s: st.tuples(
            arrays(np.float64, s,
                   elements=st.floats(0.0, 1.0, allow_nan=False)),
            st.integers(0, s[0] * s[1]),
        )
    )
)
def test_standardized_per_layer(data):
    """Every layer gets base or base+1 slots (paper IV-A)."""
    probs, slots = data
    placement = build_calibrated_placement(
        probs, CacheConfig(total_slots=slots)
    )
    n_blocks = probs.shape[0]
    base = slots // n_blocks
    counts = [placement.gpu_count(b) for b in range(n_blocks)]
    assert all(c in (base, base + 1) for c in counts)


@settings(max_examples=50)
@given(
    shapes.flatmap(
        lambda s: arrays(
            np.float64, s,
            elements=st.floats(0.01, 1.0, allow_nan=False),
        )
    )
)
def test_cached_experts_dominate_uncached(probs):
    """Within each layer, every base-cached expert has activation >= every
    uncached expert (the cache holds the layer's hottest experts)."""
    n_blocks, n_experts = probs.shape
    base = n_experts // 2
    placement = build_calibrated_placement(
        probs, CacheConfig(total_slots=base * n_blocks)
    )
    for block in range(n_blocks):
        cached = placement.gpu_experts(block)
        uncached = placement.cpu_experts(block)
        if cached.size and uncached.size:
            assert probs[block][cached].min() >= probs[block][uncached].max() - 1e-12
