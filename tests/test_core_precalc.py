"""Unit tests for graceful degradation (paper §IV-C-b)."""

import numpy as np
import pytest

from repro.core.precalc import apply_graceful_degradation
from repro.hardware.device import DeviceKind
from repro.memory.placement import ExpertPlacement


def make_placement(gpu_experts, n_experts=8):
    p = ExpertPlacement(1, n_experts)
    for e in gpu_experts:
        p.set_device(0, e, DeviceKind.GPU)
    return p


LOGITS = np.array([3.0, 2.5, 2.0, 1.5, 1.0, 0.5, 0.0, -0.5])


def test_no_change_when_one_cpu_expert():
    placement = make_placement([0])  # predicted {0 gpu, 1 cpu}
    result = apply_graceful_degradation(
        0, np.array([0, 1]), LOGITS, placement
    )
    np.testing.assert_array_equal(result.experts, [0, 1])
    assert result.replaced == ()


def test_both_cpu_replaces_weaker():
    placement = make_placement([2, 3])  # predicted {0, 1} both on CPU
    result = apply_graceful_degradation(
        0, np.array([0, 1]), LOGITS, placement
    )
    # Weaker prediction (1) replaced by best GPU expert (2).
    assert result.replaced == (1,)
    assert result.substitutes == (2,)
    assert set(result.experts) == {0, 2}


def test_substitute_is_highest_scoring_gpu_expert():
    placement = make_placement([5, 6])
    result = apply_graceful_degradation(
        0, np.array([0, 1]), LOGITS, placement
    )
    assert result.substitutes == (5,)  # 5 outscores 6


def test_no_suitable_alternative_keeps_original():
    """Paper: 'If no suitable alternative is available, the original
    selection is maintained for execution.'"""
    placement = make_placement([])  # nothing on the GPU
    result = apply_graceful_degradation(
        0, np.array([0, 1]), LOGITS, placement
    )
    np.testing.assert_array_equal(result.experts, [0, 1])
    assert result.replaced == ()


def test_disabled_passthrough():
    placement = make_placement([2, 3])
    result = apply_graceful_degradation(
        0, np.array([0, 1]), LOGITS, placement, enabled=False
    )
    np.testing.assert_array_equal(result.experts, [0, 1])


def test_result_sorted_by_score():
    placement = make_placement([7])  # substitute has the lowest logit
    result = apply_graceful_degradation(
        0, np.array([0, 1]), LOGITS, placement
    )
    assert set(result.experts) == {0, 7}
    # Descending predicted-logit order.
    assert result.experts[0] == 0


def test_max_cpu_experts_zero_replaces_all():
    placement = make_placement([4, 5, 6])
    result = apply_graceful_degradation(
        0, np.array([0, 1]), LOGITS, placement, max_cpu_experts=0
    )
    assert set(result.experts) <= {4, 5, 6}
    assert len(result.replaced) == 2


def test_gpu_predictions_untouched():
    placement = make_placement([0, 1])
    result = apply_graceful_degradation(
        0, np.array([0, 1]), LOGITS, placement
    )
    np.testing.assert_array_equal(result.experts, [0, 1])


def test_no_duplicate_experts():
    placement = make_placement([0, 2])  # 0 predicted and on GPU
    result = apply_graceful_degradation(
        0, np.array([0, 1]), LOGITS, placement, max_cpu_experts=0
    )
    assert len(set(result.experts.tolist())) == len(result.experts)
    assert 0 in result.experts  # kept
    assert 2 in result.experts  # substitute, not a duplicate of 0
