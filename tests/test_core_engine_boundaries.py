"""Boundary-condition tests: extreme cache ratios and routing configs."""

import numpy as np
import pytest

from repro.core import ENGINE_NAMES, build_engine
from repro.model.config import ArchSpec, ModelProfile, SimSpec
from repro.model.tokenizer import ToyTokenizer
from repro.model.transformer import MoETransformer
from repro.model.vocab import TopicVocabulary
from repro.model.zoo import ModelBundle
from repro.workloads import C4, SequenceGenerator

CACHED_ENGINES = [n for n in ENGINE_NAMES
                  if n not in ("official", "deepspeed-mii")]


@pytest.fixture(scope="module")
def sequence(tiny_bundle):
    gen = SequenceGenerator(C4, tiny_bundle.vocab, seed=101)
    return gen.sample_sequence(10, 5, sample_idx=0)


@pytest.mark.parametrize("name", CACHED_ENGINES)
def test_zero_cache_ratio(name, tiny_bundle, platform, tiny_calibration,
                          sequence):
    """ECR 0: nothing resident; every engine must still generate."""
    engine = build_engine(name, tiny_bundle, platform, 0.0,
                          tiny_calibration)
    result = engine.generate(sequence.prompt_tokens, 4)
    assert result.tokens.shape == (4,)
    assert result.stats.total_time_s > 0


@pytest.mark.parametrize("name", CACHED_ENGINES)
def test_full_cache_ratio(name, tiny_bundle, platform, tiny_calibration,
                          sequence):
    """ECR 1: all resident; no engine may upload or use the CPU."""
    engine = build_engine(name, tiny_bundle, platform, 1.0,
                          tiny_calibration)
    result = engine.generate(sequence.prompt_tokens, 4)
    assert result.stats.counters.expert_uploads == 0
    assert result.stats.counters.cpu_expert_execs == 0


@pytest.mark.parametrize("name", CACHED_ENGINES)
def test_full_cache_matches_official_tokens(name, tiny_bundle, platform,
                                            tiny_calibration, sequence):
    """At ECR 1 every engine's math reduces to the official engine's."""
    official = build_engine("official", tiny_bundle, platform)
    engine = build_engine(name, tiny_bundle, platform, 1.0,
                          tiny_calibration)
    a = official.generate(sequence.prompt_tokens, 5)
    b = engine.generate(sequence.prompt_tokens, 5)
    np.testing.assert_array_equal(a.tokens, b.tokens)


def test_single_token_prompt(tiny_bundle, platform, tiny_calibration):
    engine = build_engine("daop", tiny_bundle, platform, 0.5,
                          tiny_calibration)
    result = engine.generate(np.asarray([5]), 3)
    assert result.tokens.shape == (3,)


def test_single_decode_token(tiny_bundle, platform, tiny_calibration,
                             sequence):
    engine = build_engine("daop", tiny_bundle, platform, 0.5,
                          tiny_calibration)
    result = engine.generate(sequence.prompt_tokens, 1)
    assert result.tokens.shape == (1,)
    # One generated token means no decode-phase forward at all.
    assert result.trace.token_count("decode") == 0


def _build_topk_bundle(top_k: int) -> ModelBundle:
    arch = ArchSpec(
        name=f"Top{top_k}-MoE", d_model=256, n_heads=4, n_kv_heads=2,
        d_ff=512, n_blocks=6, n_experts=4, top_k=top_k, vocab_size=128,
    )
    sim = SimSpec(d_model=32, n_heads=2, n_kv_heads=1, d_ff=48,
                  vocab_size=128)
    profile = ModelProfile.from_arch(arch, sim=sim, seed=1)
    vocab = TopicVocabulary(vocab_size=128, n_topics=8, d_model=32, seed=1)
    model = MoETransformer(profile, embedding=vocab.build_embedding())
    return ModelBundle(model=model, vocab=vocab,
                       tokenizer=ToyTokenizer(vocab))


@pytest.mark.parametrize("top_k", [1, 3])
def test_non_top2_routing(top_k, platform):
    """Engines generalize beyond the paper's top-2 configuration."""
    bundle = _build_topk_bundle(top_k)
    gen = SequenceGenerator(C4, bundle.vocab, seed=7)
    seq = gen.sample_sequence(10, 5, sample_idx=0)
    for name in ("official", "fiddler", "daop"):
        engine = build_engine(name, bundle, platform, 0.5)
        result = engine.generate(seq.prompt_tokens, 4)
        assert result.tokens.shape == (4,)
        for event in result.trace.events:
            assert len(event.experts) == top_k


def test_daop_without_prediction_window(tiny_bundle, platform,
                                        tiny_calibration, sequence):
    """prediction_start_block beyond the model: DAOP must degrade to
    true-gated execution everywhere and still work."""
    from repro.core.daop import DAOPEngine
    from repro.memory.cache import CacheConfig

    engine = DAOPEngine(
        tiny_bundle, platform, cache_config=CacheConfig(ecr=0.5),
        calibration_probs=tiny_calibration,
        prediction_start_block=tiny_bundle.model.n_blocks + 5,
    )
    result = engine.generate(sequence.prompt_tokens, 4)
    assert not any(e.predicted for e in result.trace.events)
