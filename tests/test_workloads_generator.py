"""Unit tests for the synthetic sequence generator."""

import numpy as np
import pytest

from repro.workloads.datasets import C4, GSM8K, DatasetSpec
from repro.workloads.generator import SequenceGenerator


@pytest.fixture()
def generator(tiny_bundle):
    return SequenceGenerator(C4, tiny_bundle.vocab, seed=0)


def test_lengths(generator):
    seq = generator.sample_sequence(16, 8, sample_idx=0)
    assert seq.prompt_tokens.shape == (16,)
    assert seq.continuation_tokens.shape == (8,)
    assert seq.full_tokens.shape == (24,)


def test_tokens_in_vocab(generator, tiny_bundle):
    seq = generator.sample_sequence(64, 64, sample_idx=1)
    assert seq.full_tokens.min() >= 0
    assert seq.full_tokens.max() < tiny_bundle.vocab.vocab_size


def test_starts_with_bos(generator, tiny_bundle):
    seq = generator.sample_sequence(8, 0, sample_idx=2)
    assert seq.prompt_tokens[0] == tiny_bundle.vocab.bos_id


def test_deterministic_per_index(generator):
    a = generator.sample_sequence(16, 8, sample_idx=5)
    b = generator.sample_sequence(16, 8, sample_idx=5)
    np.testing.assert_array_equal(a.full_tokens, b.full_tokens)


def test_distinct_across_indices(generator):
    a = generator.sample_sequence(32, 0, sample_idx=0)
    b = generator.sample_sequence(32, 0, sample_idx=1)
    assert not np.array_equal(a.prompt_tokens, b.prompt_tokens)


def test_topic_concentration(tiny_bundle):
    """A low-drift sequence concentrates on few topics (observation 1)."""
    spec = DatasetSpec("focused", n_active_topics=2, concentration=0.4,
                       drift_rate=0.0, noise_rate=0.0)
    gen = SequenceGenerator(spec, tiny_bundle.vocab, seed=1)
    seq = gen.sample_sequence(64, 0, sample_idx=0)
    topics = {tiny_bundle.vocab.topic_of(int(t))
              for t in seq.prompt_tokens[1:]}
    assert len(topics) <= 2


def test_drift_broadens_topics(tiny_bundle):
    low = DatasetSpec("low", n_active_topics=2, drift_rate=0.0,
                      noise_rate=0.0)
    high = DatasetSpec("high", n_active_topics=2, drift_rate=0.25,
                       noise_rate=0.0)
    counts = []
    for spec in (low, high):
        gen = SequenceGenerator(spec, tiny_bundle.vocab, seed=2)
        distinct = []
        for i in range(5):
            seq = gen.sample_sequence(80, 0, sample_idx=i)
            distinct.append(len({
                tiny_bundle.vocab.topic_of(int(t))
                for t in seq.prompt_tokens[1:]
            }))
        counts.append(np.mean(distinct))
    assert counts[1] > counts[0]


def test_gsm8k_drifts_more_than_c4(tiny_bundle):
    """The paper attributes GSM8K degradation to within-sequence drift."""
    assert GSM8K.drift_rate > C4.drift_rate


def test_batch(generator):
    batch = generator.sample_batch(3, 8, 4)
    assert len(batch) == 3
    assert all(s.prompt_tokens.shape == (8,) for s in batch)


def test_invalid_prompt_len(generator):
    with pytest.raises(ValueError):
        generator.sample_sequence(0, 4)


class TestPerturbation:
    def test_preserves_topics(self, generator, tiny_bundle):
        seq = generator.sample_sequence(64, 0, sample_idx=3)
        perturbed = generator.perturb_prompt(seq, strength=1.0)
        for orig, new in zip(seq.prompt_tokens[1:], perturbed[1:]):
            t_orig = tiny_bundle.vocab.topic_of(int(orig))
            if t_orig >= 0:
                assert tiny_bundle.vocab.topic_of(int(new)) == t_orig

    def test_keeps_bos(self, generator, tiny_bundle):
        seq = generator.sample_sequence(16, 0, sample_idx=4)
        perturbed = generator.perturb_prompt(seq, strength=1.0)
        assert perturbed[0] == tiny_bundle.vocab.bos_id

    def test_zero_strength_identity(self, generator):
        seq = generator.sample_sequence(16, 0, sample_idx=4)
        np.testing.assert_array_equal(
            generator.perturb_prompt(seq, strength=0.0), seq.prompt_tokens
        )

    def test_strength_scales_changes(self, generator):
        seq = generator.sample_sequence(128, 0, sample_idx=6)
        weak = generator.perturb_prompt(seq, strength=0.1)
        strong = generator.perturb_prompt(seq, strength=0.9)
        n_weak = int(np.sum(weak != seq.prompt_tokens))
        n_strong = int(np.sum(strong != seq.prompt_tokens))
        assert n_strong > n_weak

    def test_deterministic(self, generator):
        seq = generator.sample_sequence(32, 0, sample_idx=7)
        a = generator.perturb_prompt(seq)
        b = generator.perturb_prompt(seq)
        np.testing.assert_array_equal(a, b)

    def test_validates_strength(self, generator):
        seq = generator.sample_sequence(8, 0, sample_idx=0)
        with pytest.raises(ValueError):
            generator.perturb_prompt(seq, strength=1.5)
