"""Unit tests for metrics aggregation and report formatting."""

import pytest

from repro.core import build_engine
from repro.metrics import format_series, format_table, summarize_results
from repro.workloads import C4, SequenceGenerator


def test_format_table_alignment():
    table = format_table(
        ["engine", "tok/s"],
        [["daop", 4.52], ["fiddler", 3.23]],
        title="Fig. 9",
    )
    lines = table.splitlines()
    assert lines[0] == "Fig. 9"
    assert "engine" in lines[1] and "tok/s" in lines[1]
    assert "4.52" in table and "3.23" in table
    # All data rows aligned to the same width.
    assert len(lines[3]) == len(lines[4])


def test_format_table_custom_float_fmt():
    table = format_table(["x"], [[1.23456]], float_fmt="{:.4f}")
    assert "1.2346" in table


def test_format_series():
    s = format_series("daop", [0.25, 0.5], [3.2, 4.5], x_label="ecr")
    assert "daop" in s
    assert "0.25=3.20" in s
    assert "0.5=4.50" in s


def test_summarize_results(tiny_bundle, platform, tiny_calibration):
    engine = build_engine("fiddler", tiny_bundle, platform, 0.5,
                          tiny_calibration)
    gen = SequenceGenerator(C4, tiny_bundle.vocab, seed=41)
    results = [
        engine.generate(gen.sample_sequence(12, 0, sample_idx=i)
                        .prompt_tokens, 6)
        for i in range(2)
    ]
    summary = summarize_results("fiddler", results)
    assert summary.engine == "fiddler"
    assert summary.n_sequences == 2
    assert summary.tokens_per_second > 0
    total_tokens = sum(r.stats.n_generated for r in results)
    total_time = sum(r.stats.total_time_s for r in results)
    assert summary.tokens_per_second == pytest.approx(
        total_tokens / total_time
    )


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize_results("x", [])
