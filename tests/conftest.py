"""Shared fixtures: a tiny functional model, platform, and calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.calibration import calibrate_activation_probs
from repro.hardware.presets import default_platform, paper_table1_platform
from repro.model.zoo import build_tiny_moe


@pytest.fixture(scope="session")
def tiny_bundle():
    """An 8-block, 4-expert, top-2 model small enough for fast tests."""
    return build_tiny_moe(seed=0, n_blocks=8)


@pytest.fixture(scope="session")
def platform():
    """The paper's evaluation platform (A6000 + i9)."""
    return default_platform()


@pytest.fixture(scope="session")
def table1_platform():
    """The paper's Table I microbenchmark platform (A100 + Xeon)."""
    return paper_table1_platform()


@pytest.fixture(scope="session")
def tiny_calibration(tiny_bundle):
    """Calibrated activation probabilities for the tiny model."""
    return calibrate_activation_probs(
        tiny_bundle, n_sequences=3, prompt_len=12, decode_len=12, seed=0
    )


@pytest.fixture()
def rng():
    """A deterministic random generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def audit_result():
    """Post-hoc invariant audit: ``audit_result(engine, result)``.

    Runs :func:`repro.audit.audit_generation` on a finished generation
    (timeline causality, counter conservation, upload/placement
    bookkeeping, energy consistency, divergence provenance) and fails
    the test with the formatted report if any invariant is violated.
    """
    from repro.audit import audit_generation

    def _audit(engine, result, platform=None):
        report = audit_generation(engine, result, platform=platform)
        assert report.ok, report.format()
        return report

    return _audit


@pytest.fixture()
def engine_contracts():
    """Opt-in runtime contracts: ``engine_contracts(engine, **kwargs)``.

    Attaches an :class:`repro.lint.contracts.EngineContractGuard` to an
    engine (timeline monotonicity, slot-budget conservation, and
    prefill-only migration when ``decode_realloc_interval`` is None) and
    detaches every guard at test teardown.
    """
    from repro.lint.contracts import EngineContractGuard

    guards = []

    def _attach(engine, **kwargs):
        guard = EngineContractGuard(engine, **kwargs)
        guard.attach()
        guards.append(guard)
        return guard

    yield _attach
    for guard in guards:
        guard.detach()
