"""Unit tests for cache sizing and calibrated initialization (paper IV-A)."""

import numpy as np
import pytest

from repro.memory.cache import (
    CacheConfig,
    build_calibrated_placement,
    uniform_placement,
)


def test_config_resolution():
    assert CacheConfig(ecr=0.5).resolve_slots(4, 8) == 16
    assert CacheConfig(total_slots=10).resolve_slots(4, 8) == 10
    # total_slots wins over ecr
    assert CacheConfig(ecr=0.5, total_slots=3).resolve_slots(4, 8) == 3


def test_config_validation():
    with pytest.raises(ValueError):
        CacheConfig().resolve_slots(4, 8)
    with pytest.raises(ValueError):
        CacheConfig(ecr=1.5).resolve_slots(4, 8)
    with pytest.raises(ValueError):
        CacheConfig(total_slots=33).resolve_slots(4, 8)


def test_hottest_experts_cached_per_layer():
    probs = np.array([
        [0.9, 0.1, 0.5, 0.3],
        [0.1, 0.9, 0.3, 0.5],
    ])
    placement = build_calibrated_placement(probs, CacheConfig(ecr=0.5))
    # 4 slots total, 2 per layer: each layer's top-2.
    assert set(placement.gpu_experts(0)) == {0, 2}
    assert set(placement.gpu_experts(1)) == {1, 3}


def test_remainder_goes_to_globally_hottest():
    probs = np.array([
        [0.9, 0.1, 0.2, 0.3],
        [0.8, 0.7, 0.2, 0.1],
    ])
    # 3 slots: base 1 per layer + 1 remainder -> layer 1 expert 1 (0.7 is
    # the hottest uncached entry).
    placement = build_calibrated_placement(probs, CacheConfig(total_slots=3))
    assert set(placement.gpu_experts(0)) == {0}
    assert set(placement.gpu_experts(1)) == {0, 1}


def test_slot_budget_exact():
    rng = np.random.default_rng(0)
    probs = rng.random((6, 8))
    for slots in (0, 1, 7, 13, 48):
        placement = build_calibrated_placement(
            probs, CacheConfig(total_slots=slots)
        )
        assert placement.gpu_count() == slots


def test_standardized_across_layers():
    """Per-layer counts differ by at most 1 (base + remainder)."""
    rng = np.random.default_rng(1)
    probs = rng.random((8, 8))
    placement = build_calibrated_placement(probs, CacheConfig(ecr=0.469))
    counts = [placement.gpu_count(b) for b in range(8)]
    assert max(counts) - min(counts) <= 1


def test_ecr_round_trip():
    rng = np.random.default_rng(2)
    probs = rng.random((32, 8))
    placement = build_calibrated_placement(probs, CacheConfig(ecr=0.25))
    assert placement.expert_cache_ratio == pytest.approx(0.25, abs=0.01)


def test_rejects_bad_shapes():
    with pytest.raises(ValueError):
        build_calibrated_placement(np.ones(8), CacheConfig(ecr=0.5))


def test_uniform_placement_budget():
    placement = uniform_placement(4, 8, CacheConfig(ecr=0.5))
    assert placement.gpu_count() == 16
