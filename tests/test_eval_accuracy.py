"""Unit tests for accuracy metrics."""

import pytest

from repro.eval.accuracy import (
    exact_match,
    first_token_match,
    prefix_agreement,
    token_agreement,
)


def test_exact_match():
    assert exact_match([1, 2], [1, 2]) == 1.0
    assert exact_match([1, 2], [1, 3]) == 0.0
    assert exact_match([1], [1, 2]) == 0.0


def test_first_token_match():
    assert first_token_match([5, 9], [5, 1]) == 1.0
    assert first_token_match([4, 9], [5, 9]) == 0.0
    assert first_token_match([], [1]) == 0.0


def test_token_agreement():
    assert token_agreement([1, 2, 3, 4], [1, 0, 3, 0]) == pytest.approx(0.5)
    assert token_agreement([1, 2], [1, 2, 3]) == pytest.approx(1.0)
    assert token_agreement([], []) == 0.0


def test_prefix_agreement():
    assert prefix_agreement([1, 2, 9, 9], [1, 2, 3, 4]) == pytest.approx(0.5)
    assert prefix_agreement([1, 2, 3], [1, 2, 3]) == 1.0
    assert prefix_agreement([9], [1, 2]) == 0.0
    assert prefix_agreement([], []) == 1.0
