"""Unit tests for the next-layer expert predictor."""

import numpy as np
import pytest

from repro.core.predictor import NextLayerPredictor


@pytest.fixture()
def predictor(tiny_bundle):
    return NextLayerPredictor(tiny_bundle.model, start_block=4)


def test_can_predict_window(predictor, tiny_bundle):
    n = tiny_bundle.model.n_blocks  # 8
    assert not predictor.can_predict_from(3)   # below start_block
    assert predictor.can_predict_from(4)
    assert predictor.can_predict_from(n - 2)
    assert not predictor.can_predict_from(n - 1)  # no next block


def test_prediction_uses_next_blocks_gate(predictor, tiny_bundle, rng):
    model = tiny_bundle.model
    h = rng.standard_normal((1, model.profile.sim.d_model)).astype(np.float32)
    pred = predictor.predict(4, h)
    assert pred.block == 5
    expected = model.blocks[5].gate_logits(h)[0]
    np.testing.assert_allclose(pred.logits, expected, rtol=1e-5)
    np.testing.assert_array_equal(
        pred.experts, np.argsort(-expected)[: model.top_k]
    )


def test_predict_last_block_raises(predictor, tiny_bundle, rng):
    model = tiny_bundle.model
    h = rng.standard_normal((1, model.profile.sim.d_model)).astype(np.float32)
    with pytest.raises(ValueError):
        predictor.predict(model.n_blocks - 1, h)


def test_negative_start_block_rejected(tiny_bundle):
    with pytest.raises(ValueError):
        NextLayerPredictor(tiny_bundle.model, start_block=-1)


def test_prediction_accuracy_reasonable(tiny_bundle):
    """On real decoding states the predictor beats chance by a wide margin.

    Chance for top-2-of-4 set overlap is ~58 %; the residual stream makes
    layer-ahead prediction much better (paper observation 3).
    """
    from repro.workloads import C4, SequenceGenerator
    from repro.trace.prediction import PredictionStats

    model = tiny_bundle.model
    predictor = NextLayerPredictor(model, start_block=1)
    gen = SequenceGenerator(C4, tiny_bundle.vocab, seed=0)
    stats = PredictionStats(model.n_blocks)
    for i in range(3):
        seq = gen.sample_sequence(16, 16, sample_idx=i)
        caches = model.new_caches()
        model.forward_exact(seq.prompt_tokens, caches)
        pos = seq.prompt_tokens.size
        for token in seq.continuation_tokens:
            h = model.embed(np.asarray([token]))
            positions = np.asarray([pos])
            prev_h_att = None
            for b, block in enumerate(model.blocks):
                h_att = block.attention_part(h, caches[b], positions)
                decision = block.route(h_att)
                if b >= 1 and prev_h_att is not None:
                    pred = predictor.predict(b - 1, prev_h_att)
                    stats.record(b, pred.experts, decision.experts[0])
                outs = np.stack([[
                    block.expert_forward(int(e), h_att)[0]
                    for e in decision.experts[0]
                ]])
                h = block.combine(h_att, outs, decision.weights)
                prev_h_att = h_att
            pos += 1
    assert stats.mean_accuracy(2) > 0.75
