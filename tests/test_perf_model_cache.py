"""Model-side compute-cache behavior: stage memoization stays bitwise.

Covers the cache-aware ``MoEBlock`` stage API, the hoisted ``ffn_norm``
(one normalization shared by the gate and every expert), the grouped
expert dispatch in ``MoEBlock.forward``, the attention KV replay, and the
weights-fingerprint invalidation on quantization.
"""

import numpy as np
import pytest

from repro.model.config import SimSpec
from repro.model.moe_block import MoEBlock
from repro.model.quantization import quantize_experts
from repro.model.zoo import build_tiny_moe
from repro.perf import TensorCache


@pytest.fixture()
def sim():
    return SimSpec(d_model=32, n_heads=4, n_kv_heads=2, d_ff=48,
                   vocab_size=64)


@pytest.fixture()
def block(sim, rng):
    return MoEBlock(sim, n_experts=4, top_k=2, rng=rng, block_idx=5)


# ---- the ffn_norm hoist (satellite: bitwise property test) -------------------


def test_ffn_norm_hoist_bitwise_over_random_routings(block, rng):
    """``ffn_norm(h_att)[t]`` == ``ffn_norm(h_att[t])`` for every token.

    RMSNorm is row-wise, so hoisting the normalization out of the
    per-expert calls (old: ``experts[e](ffn_norm(h_att[t:t+1]))``) into
    one shared pass (new: ``expert_forward(e, h_att, token_idx=[t])``)
    must be *bitwise* — not merely approximately — equal, for arbitrary
    routings.
    """
    for trial in range(10):
        n_tokens = int(rng.integers(1, 7))
        h_att = rng.standard_normal((n_tokens, 32)).astype(np.float32)
        h_att *= rng.choice([1e-3, 1.0, 1e3])  # exercise scale extremes
        for t in range(n_tokens):
            for e in rng.choice(4, size=2, replace=False):
                old = block.experts[e](block.ffn_norm(h_att[t : t + 1]))
                new = block.expert_forward(int(e), h_att, token_idx=[t])
                np.testing.assert_array_equal(old, new)


def test_ffn_normed_identity_memo_computes_once(block, rng, monkeypatch):
    h_att = rng.standard_normal((3, 32)).astype(np.float32)
    calls = []
    real = block.ffn_norm.__call__
    monkeypatch.setattr(
        block, "ffn_norm", lambda x: (calls.append(1), real(x))[1]
    )
    first = block.ffn_normed(h_att)
    second = block.ffn_normed(h_att)  # same array object: memo hit
    assert second is first
    assert len(calls) == 1
    # A different array (even equal bytes) recomputes — the memo is by
    # identity, correctness comes from the content-addressed cache.
    block.ffn_normed(h_att.copy())
    assert len(calls) == 2


# ---- grouped dispatch (satellite: bitwise equivalence) -----------------------


def test_forward_grouped_dispatch_matches_reference_bitwise(block, rng):
    """``forward`` equals a hand-rolled grouped per-expert dispatch."""
    h = rng.standard_normal((5, 32)).astype(np.float32)
    positions = np.arange(5)
    out, decision = block.forward(h, block.attention.new_cache(), positions)

    cache_b = block.attention.new_cache()
    h_att = block.attention_part(h, cache_b, positions)
    routing = block.route(h_att)
    np.testing.assert_array_equal(routing.experts, decision.experts)
    normed = block.ffn_norm(h_att)
    outs = np.empty((5, block.top_k, 32), dtype=np.float32)
    for expert_idx in np.unique(routing.experts):
        mask = routing.experts == expert_idx
        token_idx = np.nonzero(mask.any(axis=1))[0]
        batch = block.experts[int(expert_idx)](normed[token_idx])
        for row, t in enumerate(token_idx):
            for slot in np.nonzero(mask[t])[0]:
                outs[t, int(slot)] = batch[row]
    np.testing.assert_array_equal(
        out, block.combine(h_att, outs, routing.weights)
    )


def test_forward_cold_and_warm_cache_bitwise_equal(block, rng):
    """No-cache, cache-cold, and cache-warm forwards are byte-identical."""
    h = rng.standard_normal((4, 32)).astype(np.float32)
    positions = np.arange(4)
    baseline, decision = block.forward(
        h, block.attention.new_cache(), positions
    )

    cache = TensorCache()
    block.set_compute_cache(cache, "scope")
    try:
        cold, cold_dec = block.forward(h, block.attention.new_cache(),
                                       positions)
        assert cache.hits == 0 and cache.misses > 0
        warm, warm_dec = block.forward(h, block.attention.new_cache(),
                                       positions)
        assert cache.hits > 0
    finally:
        block.set_compute_cache(None, None)

    np.testing.assert_array_equal(cold, baseline)
    np.testing.assert_array_equal(warm, baseline)
    np.testing.assert_array_equal(cold_dec.experts, decision.experts)
    np.testing.assert_array_equal(warm_dec.experts, decision.experts)
    np.testing.assert_array_equal(warm_dec.weights, decision.weights)


# ---- attention KV replay -----------------------------------------------------


def test_attention_hit_replays_kv_append(block, rng):
    h = rng.standard_normal((3, 32)).astype(np.float32)
    positions = np.arange(3)
    cache = TensorCache()
    block.set_compute_cache(cache, "scope")
    try:
        kv_a = block.attention.new_cache()
        miss = block.attention_part(h, kv_a, positions)
        kv_b = block.attention.new_cache()
        hit = block.attention_part(h, kv_b, positions)
    finally:
        block.set_compute_cache(None, None)
    assert cache.stage_counters["attn"].hits == 1
    np.testing.assert_array_equal(hit, miss)
    # The hit replayed the append: both KV caches hold identical bytes
    # and identical digests (so subsequent decode steps key identically).
    assert len(kv_b) == len(kv_a) == 3
    np.testing.assert_array_equal(kv_b.keys, kv_a.keys)
    np.testing.assert_array_equal(kv_b.values, kv_a.values)
    assert kv_b.content_digest == kv_a.content_digest


def test_truncated_kv_cache_bypasses_memoization(block, rng):
    h = rng.standard_normal((2, 32)).astype(np.float32)
    cache = TensorCache()
    block.set_compute_cache(cache, "scope")
    try:
        kv = block.attention.new_cache()
        block.attention_part(h, kv, np.arange(2))
        kv.truncate(1)
        assert kv.content_digest is None
        before = cache.stage_counters["attn"].lookups
        block.attention_part(h, kv, np.arange(1, 3))
        assert cache.stage_counters["attn"].lookups == before  # bypassed
    finally:
        block.set_compute_cache(None, None)


# ---- routing stages ----------------------------------------------------------


def test_route_and_gate_stages_hit_on_repeat(block, rng):
    h_att = rng.standard_normal((3, 32)).astype(np.float32)
    baseline = block.route(h_att)
    cache = TensorCache()
    block.set_compute_cache(cache, "scope")
    try:
        cold = block.route(h_att)
        warm = block.route(h_att.copy())  # equal bytes, different object
    finally:
        block.set_compute_cache(None, None)
    assert cache.stage_counters["gate"].hits == 1
    assert cache.stage_counters["route"].hits == 1
    for decision in (cold, warm):
        np.testing.assert_array_equal(decision.experts, baseline.experts)
        np.testing.assert_array_equal(decision.weights, baseline.weights)
        np.testing.assert_array_equal(decision.logits, baseline.logits)


def test_expert_token_idx_canonicalization(block, rng):
    """Full-coverage ``token_idx`` shares the plain-call cache key."""
    h_att = rng.standard_normal((3, 32)).astype(np.float32)
    cache = TensorCache()
    block.set_compute_cache(cache, "scope")
    try:
        a = block.expert_forward(0, h_att)
        b = block.expert_forward(0, h_att, token_idx=np.arange(3))
    finally:
        block.set_compute_cache(None, None)
    assert cache.stage_counters["expert"].hits == 1
    np.testing.assert_array_equal(a, b)


# ---- model-level plumbing ----------------------------------------------------


def test_attach_detach_compute_cache():
    model = build_tiny_moe(seed=0, n_blocks=2).model
    cache = TensorCache()
    model.attach_compute_cache(cache)
    scope = model.weights_fingerprint()
    assert model.compute_cache is cache
    assert all(b.compute_cache is cache and b.cache_scope == scope
               for b in model.blocks)
    model.detach_compute_cache()
    assert model.compute_cache is None
    assert all(b.compute_cache is None for b in model.blocks)


def test_forward_exact_bitwise_with_shared_cache(rng):
    model = build_tiny_moe(seed=0, n_blocks=2).model
    tokens = rng.integers(0, model.profile.sim.vocab_size, size=6)
    baseline, _ = model.forward_exact(tokens)
    cache = TensorCache()
    model.attach_compute_cache(cache)
    try:
        cold, _ = model.forward_exact(tokens)
        warm, _ = model.forward_exact(tokens)
    finally:
        model.detach_compute_cache()
    assert cache.hits > 0
    np.testing.assert_array_equal(cold, baseline)
    np.testing.assert_array_equal(warm, baseline)


def test_quantization_invalidates_weights_fingerprint(rng):
    """Stale pre-quantization entries can never serve the mutated model."""
    model = build_tiny_moe(seed=0, n_blocks=2).model
    h_att = rng.standard_normal(
        (2, model.profile.sim.d_model)
    ).astype(np.float32)
    cache = TensorCache()
    model.attach_compute_cache(cache)
    try:
        fp_before = model.weights_fingerprint()
        before = model.blocks[0].expert_forward(0, h_att)
        quantize_experts(model, bits=4)
        fp_after = model.weights_fingerprint()
        assert fp_after != fp_before
        assert model.blocks[0].cache_scope == fp_after
        after = model.blocks[0].expert_forward(0, h_att)
    finally:
        model.detach_compute_cache()
    # Quantization changed the math; a stale hit would have hidden it.
    assert not np.array_equal(before, after)
    np.testing.assert_array_equal(
        after, model.blocks[0].expert_forward(0, h_att)
    )
