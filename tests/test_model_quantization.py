"""Unit tests for fake quantization."""

import numpy as np
import pytest

from repro.model.quantization import (
    fake_quantize,
    quantization_error,
    quantize_expert,
    quantize_experts,
)
from repro.model.zoo import build_tiny_moe


def test_identity_at_high_bits(rng):
    w = rng.standard_normal((8, 16)).astype(np.float32)
    assert quantization_error(w, 16) < 1e-3


def test_error_decreases_with_bits(rng):
    w = rng.standard_normal((16, 32)).astype(np.float32)
    errors = [quantization_error(w, bits) for bits in (2, 4, 8)]
    assert errors[0] > errors[1] > errors[2]


def test_range_preserved(rng):
    w = rng.standard_normal((4, 8)).astype(np.float32)
    q = fake_quantize(w, 4)
    # Per-row max magnitude cannot grow.
    assert np.all(np.abs(q).max(axis=1) <= np.abs(w).max(axis=1) + 1e-6)


def test_zero_rows_stay_zero():
    w = np.zeros((3, 5), dtype=np.float32)
    np.testing.assert_array_equal(fake_quantize(w, 4), w)


def test_bits_validated(rng):
    w = rng.standard_normal((2, 2))
    with pytest.raises(ValueError):
        fake_quantize(w, 1)
    with pytest.raises(ValueError):
        fake_quantize(w, 17)


def test_quantize_expert_in_place(rng):
    bundle = build_tiny_moe(seed=3, n_blocks=2)
    expert = bundle.model.blocks[0].experts[0]
    original = expert.w1.weight.copy()
    quantize_expert(expert, 4)
    assert not np.allclose(expert.w1.weight, original)
    # Idempotent: quantizing a quantized grid changes nothing.
    after = expert.w1.weight.copy()
    quantize_expert(expert, 4)
    np.testing.assert_allclose(expert.w1.weight, after, atol=1e-6)


def test_quantize_experts_counts_and_scope():
    bundle = build_tiny_moe(seed=4, n_blocks=3)
    model = bundle.model
    router_before = model.blocks[0].router.gate.weight.copy()
    n = quantize_experts(model, 4, blocks=[0, 2])
    assert n == 2 * model.n_experts
    # Router weights untouched (mixed quantization: experts only).
    np.testing.assert_array_equal(
        model.blocks[0].router.gate.weight, router_before
    )


def test_quantization_perturbs_outputs():
    bundle = build_tiny_moe(seed=5, n_blocks=3)
    prompt = np.arange(5, 17)
    reference = bundle.model.greedy_generate(prompt, 8)
    quantize_experts(bundle.model, 3)
    quantized = bundle.model.greedy_generate(prompt, 8)
    # 3-bit experts visibly change behaviour (not necessarily every token).
    assert quantized.shape == reference.shape
