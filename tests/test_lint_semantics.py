"""Fixture tests for the whole-program semantic rule families.

Every family gets at least one true positive and one near miss (code
that looks like the violation but honors the invariant), exercised
through ``semantic_lint_source`` so the full pipeline — project index,
call graph, CFG, dataflow, suppression filtering — runs on each
snippet.  Cross-file behavior (FPR001 caller coverage, STL001
reachability) uses ``extra_files`` to assemble small virtual projects.
"""

import textwrap

from repro.lint import all_semantic_rules, get_semantic_rule
from repro.lint.semantics import (
    CFG,
    ProjectIndex,
    SemanticCache,
    build_cfg,
    semantic_lint_source,
)

MODULE = "src/repro/core/sample.py"


def lint(source, path=MODULE, select=None, extra_files=None):
    """Semantically lint a dedented snippet against a virtual path."""
    return semantic_lint_source(
        textwrap.dedent(source), path=path, select=select,
        extra_files={
            p: textwrap.dedent(s)
            for p, s in (extra_files or {}).items()
        },
    )


def codes(diagnostics):
    """The set of diagnostic codes found."""
    return {d.code for d in diagnostics}


# ---- registry -----------------------------------------------------------------


def test_semantic_registry_exposes_all_families():
    registered = {rule.code for rule in all_semantic_rules()}
    assert {"DET101", "DET102", "MUT001", "MUT002", "MUT003",
            "FPR001", "STL001"} <= registered
    assert get_semantic_rule("rng-provenance").code == "DET101"
    assert get_semantic_rule("FPR001").name == "fingerprint-invalidation"


# ---- DET101 rng-provenance ----------------------------------------------------


def test_det101_unseeded_default_rng_and_draw_flagged():
    diags = lint(
        '''\
        """Doc."""
        import numpy as np

        def sample():
            """Doc."""
            rng = np.random.default_rng()
            return rng.normal()
        ''',
        select=["rng-provenance"],
    )
    assert codes(diags) == {"DET101"}
    assert len(diags) == 2  # the construction and the draw


def test_det101_seeded_construction_passes():
    diags = lint(
        '''\
        """Doc."""
        import numpy as np

        def sample(seed):
            """Doc."""
            rng = np.random.default_rng(seed)
            return rng.normal()
        ''',
        select=["rng-provenance"],
    )
    assert diags == []


def test_det101_unseeded_bitgen_flows_into_generator():
    diags = lint(
        '''\
        """Doc."""
        import numpy as np

        def sample():
            """Doc."""
            bitgen = np.random.PCG64()
            rng = np.random.Generator(bitgen)
            return rng.normal()
        ''',
        select=["rng-provenance"],
    )
    assert codes(diags) == {"DET101"}


def test_det101_rebinding_to_seeded_clears_taint():
    diags = lint(
        '''\
        """Doc."""
        import numpy as np

        def sample():
            """Doc."""
            rng = np.random.default_rng()
            rng = np.random.default_rng(7)
            return rng.normal()
        ''',
        select=["rng-provenance"],
    )
    # The unseeded construction itself is still flagged; the draw,
    # reached only by the reseeded binding, is not.
    assert [d.line for d in diags] == [6]


def test_det101_parameter_rng_is_trusted():
    diags = lint(
        '''\
        """Doc."""

        def sample(rng):
            """Doc."""
            return rng.normal()
        ''',
        select=["rng-provenance"],
    )
    assert diags == []


# ---- DET102 rng-escape --------------------------------------------------------


def test_det102_module_level_rng_flagged():
    diags = lint(
        '''\
        """Doc."""
        import numpy as np

        RNG = np.random.default_rng(0)
        ''',
        select=["rng-escape"],
    )
    assert codes(diags) == {"DET102"}


def test_det102_global_rebinding_flagged():
    diags = lint(
        '''\
        """Doc."""
        import numpy as np

        _RNG = None

        def reseed(seed):
            """Doc."""
            global _RNG
            _RNG = np.random.default_rng(seed)
        ''',
        select=["rng-escape"],
    )
    assert codes(diags) == {"DET102"}


def test_det102_local_and_attribute_rngs_pass():
    diags = lint(
        '''\
        """Doc."""
        import numpy as np

        class Config:
            """Doc."""

            def __init__(self, seed):
                """Doc."""
                self.rng = np.random.default_rng(seed)

        def local(seed):
            """Doc."""
            rng = np.random.default_rng(seed)
            return rng
        ''',
        select=["rng-escape"],
    )
    assert diags == []


# ---- MUT001 cache-value-mutation ----------------------------------------------


def test_mut001_mutating_cache_get_result_flagged():
    diags = lint(
        '''\
        """Doc."""

        def warm(tensor_cache, key):
            """Doc."""
            value = tensor_cache.get(key)
            value[0] = 1.0
            return value
        ''',
        select=["cache-value-mutation"],
    )
    assert codes(diags) == {"MUT001"}


def test_mut001_tuple_unpacked_put_result_flagged():
    diags = lint(
        '''\
        """Doc."""

        def stage(self, h):
            """Doc."""
            h_att, key, hit = self.compute_cache.put(h)
            h_att += 1.0
            return h_att, key, hit
        ''',
        select=["cache-value-mutation"],
    )
    assert codes(diags) == {"MUT001"}


def test_mut001_copy_before_mutation_passes():
    diags = lint(
        '''\
        """Doc."""

        def warm(tensor_cache, key):
            """Doc."""
            value = tensor_cache.get(key)
            value = value.copy()
            value[0] = 1.0
            return value
        ''',
        select=["cache-value-mutation"],
    )
    assert diags == []


def test_mut001_non_cache_receiver_passes():
    diags = lint(
        '''\
        """Doc."""

        def fetch(registry, key):
            """Doc."""
            value = registry.get(key)
            value[0] = 1.0
            return value
        ''',
        select=["cache-value-mutation"],
    )
    assert diags == []


# ---- MUT002 param-mutation ----------------------------------------------------


def test_mut002_mutating_borrowed_ndarray_param_flagged():
    diags = lint(
        '''\
        """Doc."""
        import numpy as np

        def normalize(x: np.ndarray):
            """Doc."""
            x /= x.sum()
            return x
        ''',
        select=["param-mutation"],
    )
    assert codes(diags) == {"MUT002"}


def test_mut002_out_buffer_and_documented_inplace_pass():
    diags = lint(
        '''\
        """Doc."""
        import numpy as np

        def write_into(out: np.ndarray, value):
            """Doc."""
            out[:] = value

        def scale(x: np.ndarray, factor):
            """Scale ``x`` in place (documented contract)."""
            x *= factor
        ''',
        select=["param-mutation"],
    )
    assert diags == []


def test_mut002_copy_rebinding_clears_taint():
    diags = lint(
        '''\
        """Doc."""
        import numpy as np

        def normalize(x: np.ndarray):
            """Doc."""
            x = x.copy()
            x /= x.sum()
            return x
        ''',
        select=["param-mutation"],
    )
    assert diags == []


# ---- MUT003 cache-freeze-defeat -----------------------------------------------


def test_mut003_setflags_write_true_flagged():
    diags = lint(
        '''\
        """Doc."""

        def thaw(frozen):
            """Doc."""
            frozen.setflags(write=True)
            return frozen
        ''',
        select=["cache-freeze-defeat"],
    )
    assert codes(diags) == {"MUT003"}


def test_mut003_setflags_write_false_passes():
    diags = lint(
        '''\
        """Doc."""

        def freeze(value):
            """Doc."""
            value.setflags(write=False)
            return value
        ''',
        select=["cache-freeze-defeat"],
    )
    assert diags == []


# ---- FPR001 fingerprint-invalidation ------------------------------------------


def test_fpr001_uninvalidated_weight_write_flagged():
    diags = lint(
        '''\
        """Doc."""

        class Model:
            """Doc."""

            def set_weight(self, w):
                """Doc."""
                self.layer.weight = w
        ''',
        select=["fingerprint-invalidation"],
    )
    assert codes(diags) == {"FPR001"}


def test_fpr001_invalidation_on_every_path_passes():
    diags = lint(
        '''\
        """Doc."""

        class Model:
            """Doc."""

            def set_weight(self, w):
                """Doc."""
                self.layer.weight = w
                self.invalidate_weights_fingerprint()
        ''',
        select=["fingerprint-invalidation"],
    )
    assert diags == []


def test_fpr001_invalidation_on_one_branch_only_flagged():
    diags = lint(
        '''\
        """Doc."""

        class Model:
            """Doc."""

            def set_weight(self, w, notify):
                """Doc."""
                self.layer.weight = w
                if notify:
                    self.invalidate_weights_fingerprint()
        ''',
        select=["fingerprint-invalidation"],
    )
    assert codes(diags) == {"FPR001"}


def test_fpr001_raise_paths_do_not_count_as_missing():
    diags = lint(
        '''\
        """Doc."""

        class Model:
            """Doc."""

            def set_weight(self, w):
                """Doc."""
                self.layer.weight = w
                if w is None:
                    raise ValueError("no weight")
                self.invalidate_weights_fingerprint()
        ''',
        select=["fingerprint-invalidation"],
    )
    assert diags == []


def test_fpr001_constructors_are_exempt():
    diags = lint(
        '''\
        """Doc."""

        class Model:
            """Doc."""

            def __init__(self, w):
                """Doc."""
                self.layer.weight = w
        ''',
        select=["fingerprint-invalidation"],
    )
    assert diags == []


HELPER = '''\
"""Doc."""

def quantize_one(layer, w):
    """Doc."""
    layer.weight = w
'''


def test_fpr001_caller_invalidation_covers_helper():
    caller = '''\
    """Doc."""
    from repro.core.sample import quantize_one

    def quantize_all(model, weights):
        """Doc."""
        for layer, w in zip(model.layers, weights):
            quantize_one(layer, w)
        model.invalidate_weights_fingerprint()
    '''
    diags = lint(HELPER, select=["fingerprint-invalidation"],
                 extra_files={"src/repro/core/consumer.py": caller})
    assert diags == []


def test_fpr001_caller_without_invalidation_flags_helper():
    caller = '''\
    """Doc."""
    from repro.core.sample import quantize_one

    def quantize_all(model, weights):
        """Doc."""
        for layer, w in zip(model.layers, weights):
            quantize_one(layer, w)
    '''
    diags = lint(HELPER, select=["fingerprint-invalidation"],
                 extra_files={"src/repro/core/consumer.py": caller})
    assert codes(diags) == {"FPR001"}


# ---- STL001 step-state-leakage ------------------------------------------------


def test_stl001_step_mutating_module_global_flagged():
    diags = lint(
        '''\
        """Doc."""

        _PENDING = []

        class Engine:
            """Doc."""

            def step(self):
                """Doc."""
                _PENDING.append(1)
        ''',
        select=["step-state-leakage"],
    )
    assert codes(diags) == {"STL001"}


def test_stl001_helper_reached_from_step_flagged():
    diags = lint(
        '''\
        """Doc."""

        _COUNTS = {}

        class Engine:
            """Doc."""

            def step(self):
                """Doc."""
                bump("step")

        def bump(key):
            """Doc."""
            _COUNTS[key] = _COUNTS.get(key, 0) + 1
        ''',
        select=["step-state-leakage"],
    )
    assert codes(diags) == {"STL001"}


def test_stl001_instance_state_and_module_constant_reads_pass():
    diags = lint(
        '''\
        """Doc."""

        POLICIES = {"greedy": 1}

        class Engine:
            """Doc."""

            def __init__(self):
                """Doc."""
                self.pending = []

            def step(self):
                """Doc."""
                self.pending.append(POLICIES["greedy"])
        ''',
        select=["step-state-leakage"],
    )
    assert diags == []


def test_stl001_mutable_class_attribute_on_step_class_flagged():
    diags = lint(
        '''\
        """Doc."""

        class Engine:
            """Doc."""

            history = []

            def step(self):
                """Doc."""
                self.history.append(1)
        ''',
        select=["step-state-leakage"],
    )
    assert codes(diags) == {"STL001"}


def test_stl001_unreachable_function_may_touch_globals():
    diags = lint(
        '''\
        """Doc."""

        _REGISTRY = {}

        def register(name, value):
            """Doc."""
            _REGISTRY[name] = value
        ''',
        select=["step-state-leakage"],
    )
    assert diags == []


# ---- suppressions flow through the semantic pipeline --------------------------


def test_semantic_findings_respect_suppressions():
    diags = lint(
        '''\
        """Doc."""
        import numpy as np

        RNG = np.random.default_rng(0)  # daoplint: disable=rng-escape
        ''',
        select=["rng-escape"],
    )
    assert diags == []


# ---- CFG primitives -----------------------------------------------------------


def _cfg_of(source):
    import ast

    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body[0])


def test_cfg_branch_reaches_exit_around_blocked_node():
    cfg = _cfg_of(
        '''\
        def f(flag):
            a = 1
            if flag:
                b = 2
            return a
        ''',
    )
    assert isinstance(cfg, CFG)
    blocked = {
        node_id for node_id, stmt in cfg.stmts.items()
        if getattr(stmt, "lineno", 0) == 4
    }
    # Blocking only the if-body still leaves the fall-through path.
    assert cfg.reachable_avoiding(cfg.entry, blocked)
    # Blocking the return statement cuts every path to the exit...
    returns = {
        node_id for node_id, stmt in cfg.stmts.items()
        if stmt.__class__.__name__ == "Return"
    }
    assert not cfg.reachable_avoiding(cfg.entry, blocked | returns)


def test_cfg_while_loop_has_back_edge_and_exit():
    cfg = _cfg_of(
        '''\
        def f(n):
            total = 0
            while n:
                total += n
                n -= 1
            return total
        ''',
    )
    assert cfg.reachable_avoiding(cfg.entry, set())


# ---- semantic cache -----------------------------------------------------------


def test_semantic_cache_round_trip(tmp_path):
    from repro.lint.diagnostics import Diagnostic, Severity

    cache = SemanticCache(tmp_path / "semantic.json")
    finding = Diagnostic(
        path="src/repro/core/sample.py", line=3, col=1,
        rule="rng-escape", code="DET102", severity=Severity.ERROR,
        message="module-level RNG binding",
    )
    cache.store("key123", [finding], files=7)
    loaded = cache.load("key123")
    assert loaded is not None
    findings, files = loaded
    assert files == 7
    assert findings[0].code == "DET102"
    assert findings[0].severity is Severity.ERROR
    # A different key (sources changed) misses.
    assert cache.load("other-key") is None


def test_semantic_cache_end_to_end_replay(tmp_path):
    from repro.lint.semantics import run_semantic_lint

    cache_path = tmp_path / "semantic.json"
    first = run_semantic_lint(cache_path=str(cache_path))
    assert cache_path.exists()
    second = run_semantic_lint(cache_path=str(cache_path))
    assert [d.format() for d in second.diagnostics] \
        == [d.format() for d in first.diagnostics]
    assert second.files == first.files


def test_project_global_sha_changes_with_salt_and_source():
    import ast

    from repro.lint.semantics.index import ModuleRecord

    def project_for(text):
        record = ModuleRecord.build(
            "src/repro/core/sample.py", ("core", "sample.py"),
            text, ast.parse(text),
        )
        return ProjectIndex.build([record])

    a = project_for('"""Doc."""\nX = 1\n')
    b = project_for('"""Doc."""\nX = 2\n')
    assert a.global_sha("s1") != b.global_sha("s1")
    assert a.global_sha("s1") != a.global_sha("s2")
    assert a.global_sha("s1") == project_for(
        '"""Doc."""\nX = 1\n'
    ).global_sha("s1")
