"""Tests for the runtime contract layer (repro.lint.contracts)."""

import numpy as np
import pytest

from repro.core import build_engine
from repro.hardware.timeline import GPU, Timeline
from repro.lint.contracts import (
    ContractViolation,
    EngineContractGuard,
    validate_slot_budget,
    validate_timeline,
)
from repro.memory.placement import ExpertPlacement
from repro.workloads import C4, SequenceGenerator

PROMPT_LEN = 12
DECODE_LEN = 6


@pytest.fixture(scope="module")
def sequence(tiny_bundle):
    gen = SequenceGenerator(C4, tiny_bundle.vocab, seed=11)
    return gen.sample_sequence(PROMPT_LEN, DECODE_LEN, sample_idx=0)


def build(name, tiny_bundle, platform, tiny_calibration, **kwargs):
    return build_engine(name, tiny_bundle, platform,
                        expert_cache_ratio=0.5,
                        calibration_probs=tiny_calibration, **kwargs)


# ---- timeline monotonicity -----------------------------------------------------


def test_validate_timeline_accepts_engine_schedule(
        tiny_bundle, platform, tiny_calibration, sequence):
    engine = build("daop", tiny_bundle, platform, tiny_calibration)
    result = engine.generate(sequence.prompt_tokens, DECODE_LEN)
    validate_timeline(result.timeline)  # must not raise


def test_validate_timeline_rejects_lane_overlap():
    timeline = Timeline()
    first = timeline.add(GPU, 1.0, label="a")
    timeline.add(GPU, 1.0, deps=[first], label="b")
    # Corrupt the lane: second op starts before the first finishes.
    timeline.ops[1].start = 0.25
    timeline.ops[1].end = 1.25
    with pytest.raises(ContractViolation, match="monotonic"):
        validate_timeline(timeline)


def test_validate_timeline_rejects_span_duration_mismatch():
    timeline = Timeline()
    timeline.add(GPU, 1.0, label="a")
    timeline.ops[0].end = 3.0
    with pytest.raises(ContractViolation, match="duration"):
        validate_timeline(timeline)


# ---- slot-budget conservation --------------------------------------------------


def test_validate_slot_budget():
    placement = ExpertPlacement(2, 4)
    placement._on_gpu[0, :2] = True
    validate_slot_budget(placement, 2)  # exactly at budget
    with pytest.raises(ContractViolation, match="budget"):
        validate_slot_budget(placement, 1)


def test_daop_generation_conserves_slot_budget(
        tiny_bundle, platform, tiny_calibration, sequence,
        engine_contracts):
    engine = build("daop", tiny_bundle, platform, tiny_calibration)
    guard = engine_contracts(engine)
    assert guard.prefill_only  # decode_realloc_interval defaults to None
    result = engine.generate(sequence.prompt_tokens, DECODE_LEN)
    # Algorithm 1 swaps happened and never exceeded the budget.
    assert result.stats.counters.prefill_swaps >= 0
    assert engine.placement.gpu_count() <= \
        engine.initial_placement.gpu_count()


# ---- prefill-only migration ----------------------------------------------------


def test_paper_daop_never_migrates_during_decode(
        tiny_bundle, platform, tiny_calibration, sequence,
        engine_contracts):
    engine = build("daop", tiny_bundle, platform, tiny_calibration)
    engine_contracts(engine)
    result = engine.generate(sequence.prompt_tokens, DECODE_LEN)
    assert result.stats.counters.decode_swaps == 0


def test_baseline_migrating_during_decode_trips_contract(
        tiny_bundle, platform, tiny_calibration, sequence,
        engine_contracts):
    # MoE-OnDemand uploads every miss during decode; forcing the
    # prefill-only contract onto it must trip at the offending upload.
    engine = build("moe-ondemand", tiny_bundle, platform,
                   tiny_calibration)
    engine_contracts(engine, prefill_only=True, slot_budget=False)
    with pytest.raises(ContractViolation, match="prefill"):
        engine.generate(sequence.prompt_tokens, DECODE_LEN)


def test_decode_realloc_engine_is_not_auto_guarded(
        tiny_bundle, platform, tiny_calibration, sequence,
        engine_contracts):
    # The decode-reallocation extension legitimately migrates during
    # decode, so the auto contract must not fire for it.
    engine = build("daop", tiny_bundle, platform, tiny_calibration,
                   decode_realloc_interval=2,
                   decode_realloc_min_activity=0.0,
                   decode_realloc_threshold=1.01)
    guard = engine_contracts(engine)
    assert not guard.prefill_only
    result = engine.generate(sequence.prompt_tokens, DECODE_LEN)
    assert result.tokens.shape == (DECODE_LEN,)


# ---- guard mechanics -----------------------------------------------------------


def test_guard_detach_restores_engine(
        tiny_bundle, platform, tiny_calibration, sequence):
    engine = build("daop", tiny_bundle, platform, tiny_calibration)
    guard = EngineContractGuard(engine)
    guard.attach()
    assert "generate" in engine.__dict__
    guard.detach()
    assert "generate" not in engine.__dict__
    result = engine.generate(sequence.prompt_tokens, DECODE_LEN)
    assert result.tokens.shape == (DECODE_LEN,)


def test_guard_context_manager(
        tiny_bundle, platform, tiny_calibration, sequence):
    engine = build("fiddler", tiny_bundle, platform, tiny_calibration)
    with EngineContractGuard(engine, prefill_only=True) as guard:
        result = engine.generate(sequence.prompt_tokens, DECODE_LEN)
        assert guard.phase == "idle"
    # Fiddler never migrates, so the strictest contract passes.
    assert result.stats.counters.expert_uploads == 0
