"""Unit tests for SwiGLU experts."""

import numpy as np

from repro.model.experts import SwiGLUExpert
from repro.model.layers import silu


def test_output_shape(rng):
    expert = SwiGLUExpert(16, 32, rng)
    out = expert(rng.standard_normal((5, 16)))
    assert out.shape == (5, 16)


def test_matches_definition(rng):
    expert = SwiGLUExpert(8, 12, rng)
    x = rng.standard_normal((2, 8)).astype(np.float32)
    expected = expert.w2(silu(expert.w1(x)) * expert.w3(x))
    np.testing.assert_allclose(expert(x), expected)


def test_param_count(rng):
    expert = SwiGLUExpert(8, 12, rng)
    assert expert.n_params == 3 * 8 * 12


def test_nonlinearity(rng):
    """SwiGLU is not linear: f(2x) != 2 f(x) in general."""
    expert = SwiGLUExpert(8, 12, rng)
    x = rng.standard_normal((1, 8)).astype(np.float32)
    assert not np.allclose(expert(2 * x), 2 * expert(x), rtol=1e-2)
