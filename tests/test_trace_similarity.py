"""Unit tests for similarity metrics (paper Eq. 1 and §VI-B)."""

import numpy as np
import pytest

from repro.trace.similarity import (
    cosine_similarity,
    matrix_similarity,
    windowed_decode_similarity,
)


def test_cosine_identical():
    v = np.array([1.0, 2.0, 3.0])
    assert cosine_similarity(v, v) == pytest.approx(1.0)


def test_cosine_orthogonal():
    assert cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)


def test_cosine_zero_vector():
    assert cosine_similarity([0, 0], [1, 1]) == 0.0


def test_cosine_scale_invariant():
    a = np.array([1.0, 2.0])
    assert cosine_similarity(a, 10 * a) == pytest.approx(1.0)


def test_matrix_similarity_is_row_mean():
    p = np.array([[1.0, 0.0], [0.0, 1.0]])
    d = np.array([[1.0, 0.0], [1.0, 0.0]])
    # Row 0: identical (1.0); row 1: orthogonal (0.0).
    assert matrix_similarity(p, d) == pytest.approx(0.5)


def test_matrix_similarity_shape_checks():
    with pytest.raises(ValueError):
        matrix_similarity(np.ones((2, 2)), np.ones((3, 2)))
    with pytest.raises(ValueError):
        matrix_similarity(np.ones(4), np.ones(4))


def test_windowed_similarity_constant_windows():
    m = np.ones((2, 4))
    assert windowed_decode_similarity([m, m, m]) == pytest.approx(1.0)


def test_windowed_similarity_single_window():
    assert windowed_decode_similarity([np.ones((2, 2))]) == 1.0


def test_windowed_similarity_detects_drift():
    a = np.array([[1.0, 0.0], [1.0, 0.0]])
    b = np.array([[0.0, 1.0], [0.0, 1.0]])
    drifting = windowed_decode_similarity([a, b, a])
    stable = windowed_decode_similarity([a, a, a])
    assert drifting < stable
