"""Unit tests for the elementary layers."""

import warnings

import numpy as np
import pytest

from repro.model.layers import Linear, RMSNorm, log_softmax, silu, softmax


class TestSilu:
    def test_zero(self):
        assert silu(np.zeros(3)) == pytest.approx(0.0)

    def test_positive_limit(self):
        x = np.array([50.0])
        assert silu(x)[0] == pytest.approx(50.0, rel=1e-6)

    def test_negative_limit(self):
        x = np.array([-50.0])
        assert silu(x)[0] == pytest.approx(0.0, abs=1e-6)

    def test_matches_definition(self, rng):
        x = rng.standard_normal(100)
        expected = x / (1.0 + np.exp(-x))
        np.testing.assert_allclose(silu(x), expected)


class TestSoftmax:
    def test_sums_to_one(self, rng):
        x = rng.standard_normal((5, 7))
        np.testing.assert_allclose(softmax(x).sum(axis=-1), np.ones(5),
                                   rtol=1e-6)

    def test_shift_invariance(self, rng):
        x = rng.standard_normal(9)
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), rtol=1e-5)

    def test_large_values_stable(self):
        x = np.array([1e4, 1e4 - 1.0])
        out = softmax(x)
        assert np.all(np.isfinite(out))
        assert out[0] > out[1]

    def test_axis(self, rng):
        x = rng.standard_normal((3, 4))
        np.testing.assert_allclose(softmax(x, axis=0).sum(axis=0),
                                   np.ones(4), rtol=1e-6)

    def test_log_softmax_consistent(self, rng):
        x = rng.standard_normal(11)
        np.testing.assert_allclose(log_softmax(x), np.log(softmax(x)),
                                   rtol=1e-5)


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(6, 4, rng)
        out = layer(rng.standard_normal((3, 6)))
        assert out.shape == (3, 4)

    def test_linearity(self, rng):
        layer = Linear(5, 5, rng)
        a = rng.standard_normal((2, 5)).astype(np.float32)
        b = rng.standard_normal((2, 5)).astype(np.float32)
        np.testing.assert_allclose(layer(a + b), layer(a) + layer(b),
                                   rtol=1e-4, atol=1e-5)

    def test_param_count(self, rng):
        layer = Linear(6, 4, rng)
        assert layer.n_params == 24

    def test_custom_scale(self, rng):
        layer = Linear(100, 100, rng, scale=0.0)
        assert np.all(layer.weight == 0.0)


class TestRMSNorm:
    def test_unit_rms_output(self, rng):
        norm = RMSNorm(16)
        x = rng.standard_normal((4, 16)) * 10.0
        out = norm(x)
        rms = np.sqrt(np.mean(out**2, axis=-1))
        np.testing.assert_allclose(rms, np.ones(4), rtol=1e-4)

    def test_scale_invariance(self, rng):
        norm = RMSNorm(8)
        x = rng.standard_normal(8)
        np.testing.assert_allclose(norm(x), norm(x * 7.3), rtol=1e-4)

    def test_gain_applied(self, rng):
        norm = RMSNorm(8)
        norm.gain[:] = 2.0
        x = rng.standard_normal(8)
        rms = np.sqrt(np.mean(norm(x) ** 2))
        assert rms == pytest.approx(2.0, rel=1e-3)

    def test_zero_input_finite(self):
        norm = RMSNorm(4)
        out = norm(np.zeros(4))
        assert np.all(np.isfinite(out))


def test_silu_extreme_inputs_finite_and_quiet():
    """No overflow warnings, finite float32 outputs at both extremes."""
    x = np.array([-1e4, -88.0, -30.0, 0.0, 30.0, 88.0, 1e4],
                 dtype=np.float32)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        out = silu(x)
    assert out.dtype == np.float32
    assert np.all(np.isfinite(out))
    # Asymptotics: silu(x) -> 0 for x -> -inf, -> x for x -> +inf.
    assert out[0] == 0.0
    assert out[-1] == x[-1]
