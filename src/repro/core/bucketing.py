"""Prompt-length bucketing for gathered prefill cohorts.

Gathered prefill (:meth:`~repro.core.engine.BaseEngine.
step_prefill_batch`) is functionally correct for any mix of prompt
lengths — every sequence's block-work generator yields block-locked and
values are evaluated per-sequence — but its *benefit* depends on the
cohort's rows being comparable: one short prompt gathered with one very
long prompt amortizes almost nothing for the long member while the
pricing still assumes shared launches.  The scheduler therefore groups
admitted prefill sequences into power-of-two length buckets and only
forms cohorts within a bucket, so every member's row count is within 2x
of the others'.

The bucketer is deliberately dumb and deterministic: bucket membership
is a pure function of the prompt length, buckets are ordered by first
appearance, and members keep admission order.  Together those make the
partition reproducible run-to-run and exactly-once over the input —
properties the parity audits and checkpoint/resume machinery rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Smallest bucket; prompts shorter than this share one bucket so tiny
#: prompts (which benefit most per row from sharing fixed overheads)
#: still cohort together.
MIN_BUCKET = 16


def bucket_key(n_tokens: int, min_bucket: int = MIN_BUCKET) -> int:
    """Power-of-two ceiling bucket of a prompt length.

    Args:
        n_tokens: prompt length in tokens (positive).
        min_bucket: floor bucket; lengths at or below it map there.

    Returns:
        The smallest power of two >= ``n_tokens``, clamped below at
        ``min_bucket``.
    """
    if n_tokens < 1:
        raise ValueError("n_tokens must be positive")
    ceiling = 1 << (int(n_tokens) - 1).bit_length()
    return max(ceiling, min_bucket)


@dataclass(frozen=True)
class PrefillBucket:
    """One prompt-length cohort candidate.

    Attributes:
        key: the shared :func:`bucket_key` of every member.
        indices: member positions in the bucketer's input, in input
            (admission) order.
    """

    key: int
    indices: tuple[int, ...]

    @property
    def is_cohort(self) -> bool:
        """Whether the bucket holds enough members to gather (>= 2)."""
        return len(self.indices) >= 2


def bucket_prompt_lengths(lengths, min_bucket: int = MIN_BUCKET) -> list:
    """Partition prompt lengths into :class:`PrefillBucket` groups.

    Args:
        lengths: iterable of prompt lengths, in admission order.
        min_bucket: passed through to :func:`bucket_key`.

    Returns:
        Buckets ordered by first appearance; each input index appears in
        exactly one bucket, and within a bucket indices keep input
        order.  The partition is a pure function of ``lengths`` — no
        randomness, no iteration-order dependence.
    """
    groups: dict[int, list[int]] = {}
    for idx, n_tokens in enumerate(lengths):
        groups.setdefault(bucket_key(n_tokens, min_bucket), []).append(idx)
    return [
        PrefillBucket(key=key, indices=tuple(indices))
        for key, indices in groups.items()
    ]
