"""Inference-engine base class.

An engine runs the functional model for *values* while charging simulated
time for every op against the platform timeline at paper-scale dimensions.
Subclasses implement the prefill and decode policies that differentiate
DAOP from the baselines: where experts execute, when they migrate, and
whether next-layer predictions pre-calculate anything.

The shared primitives here guarantee that all engines are compared on an
identical substrate: same functional model, same cost model, same timeline
semantics, same trace instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.batching import (
    CPU_LOC,
    GPU_LOC,
    BlockWork,
    ExpertCall,
    group_block_work,
)
from repro.events import (
    ENGINE_STEP,
    SEQUENCE_FINISH,
    SEQUENCE_START,
    EventBus,
)
from repro.hardware.cost_model import CostModel
from repro.hardware.device import DeviceKind
from repro.hardware.energy import EnergyBreakdown, EnergyModel
from repro.hardware.platform import Platform
from repro.hardware.timeline import CPU, D2H, GPU, H2D, Op, Timeline
from repro.memory.cache import CacheConfig, build_calibrated_placement
from repro.memory.placement import ExpertPlacement
from repro.model.attention import KVCache
from repro.model.sampling import greedy
from repro.model.serialization import (
    canonical_digest,
    decode_array,
    decode_optional_array,
    encode_array,
    encode_optional_array,
)
from repro.model.zoo import ModelBundle
from repro.trace.recorder import DECODE, PREFILL, ActivationTrace

#: Version of the sequence-checkpoint payload layout.  Bumped whenever
#: the state-dict schema changes shape; restore rejects other versions
#: instead of misreading them.
SEQUENCE_CHECKPOINT_VERSION = 1


@dataclass
class EngineCounters:
    """Operational counters accumulated over one generation."""

    gpu_expert_execs: int = 0
    cpu_expert_execs: int = 0
    expert_uploads: int = 0
    expert_downloads: int = 0
    stale_input_execs: int = 0
    degraded_swaps: int = 0
    activated_gpu_resident: int = 0
    activated_total: int = 0
    prefill_swaps: int = 0
    decode_swaps: int = 0

    @property
    def gpu_hit_rate(self) -> float:
        """Fraction of activated experts GPU-resident at execution time."""
        if self.activated_total == 0:
            return 0.0
        return self.activated_gpu_resident / self.activated_total

    def to_state_dict(self) -> dict:
        """Serialize the counters for a checkpoint."""
        return {
            "gpu_expert_execs": self.gpu_expert_execs,
            "cpu_expert_execs": self.cpu_expert_execs,
            "expert_uploads": self.expert_uploads,
            "expert_downloads": self.expert_downloads,
            "stale_input_execs": self.stale_input_execs,
            "degraded_swaps": self.degraded_swaps,
            "activated_gpu_resident": self.activated_gpu_resident,
            "activated_total": self.activated_total,
            "prefill_swaps": self.prefill_swaps,
            "decode_swaps": self.decode_swaps,
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "EngineCounters":
        """Rebuild counters captured by :meth:`to_state_dict`."""
        return cls(**{key: int(value) for key, value in payload.items()})


@dataclass
class GenerationStats:
    """Simulated performance summary of one generation."""

    n_prompt_tokens: int
    n_generated: int
    prefill_time_s: float
    total_time_s: float
    energy: EnergyBreakdown
    counters: EngineCounters

    @property
    def decode_time_s(self) -> float:
        """Simulated time spent in the decode phase."""
        return self.total_time_s - self.prefill_time_s

    @property
    def tokens_per_second(self) -> float:
        """End-to-end generated tokens per simulated second."""
        if self.total_time_s <= 0:
            return 0.0
        return self.n_generated / self.total_time_s

    @property
    def decode_tokens_per_second(self) -> float:
        """Decode-phase generated tokens per simulated second.

        The first generated token comes from the *prefill* logits, so a
        generation of ``n_generated`` tokens runs only ``n_generated - 1``
        decode steps; dividing by that count matches
        :attr:`repro.serving.simulator.ServedRequest.tpot_s`.
        """
        if self.decode_time_s <= 0 or self.n_generated <= 1:
            return 0.0
        return (self.n_generated - 1) / self.decode_time_s

    @property
    def tokens_per_kilojoule(self) -> float:
        """Energy efficiency (paper Table IV metric)."""
        kj = self.energy.total_kj
        if kj <= 0:
            return 0.0
        return self.n_generated / kj

    @property
    def average_power_w(self) -> float:
        """Mean platform power over the generation."""
        if self.total_time_s <= 0:
            return 0.0
        return self.energy.total_j / self.total_time_s

    def to_state_dict(self) -> dict:
        """Serialize the stats for a checkpoint."""
        return {
            "n_prompt_tokens": self.n_prompt_tokens,
            "n_generated": self.n_generated,
            "prefill_time_s": self.prefill_time_s,
            "total_time_s": self.total_time_s,
            "energy": self.energy.to_state_dict(),
            "counters": self.counters.to_state_dict(),
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "GenerationStats":
        """Rebuild stats captured by :meth:`to_state_dict`."""
        return cls(
            n_prompt_tokens=int(payload["n_prompt_tokens"]),
            n_generated=int(payload["n_generated"]),
            prefill_time_s=payload["prefill_time_s"],
            total_time_s=payload["total_time_s"],
            energy=EnergyBreakdown.from_state_dict(payload["energy"]),
            counters=EngineCounters.from_state_dict(payload["counters"]),
        )


@dataclass
class GenerationResult:
    """Everything produced by one engine generation."""

    tokens: np.ndarray
    trace: ActivationTrace
    timeline: Timeline
    stats: GenerationStats
    placement: ExpertPlacement

    def to_state_dict(self) -> dict:
        """Serialize the result for a checkpoint.

        The timeline is rebased sequence-local time by the time a result
        exists, so its resource clock carries no information and is not
        serialized.
        """
        return {
            "tokens": encode_array(self.tokens),
            "trace": self.trace.to_state_dict(),
            "timeline": self.timeline.to_state_dict(include_clock=False),
            "stats": self.stats.to_state_dict(),
            "placement": self.placement.to_state_dict(),
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "GenerationResult":
        """Rebuild a result captured by :meth:`to_state_dict`."""
        return cls(
            tokens=decode_array(payload["tokens"]),
            trace=ActivationTrace.from_state_dict(payload["trace"]),
            timeline=Timeline.from_state_dict(payload["timeline"]),
            stats=GenerationStats.from_state_dict(payload["stats"]),
            placement=ExpertPlacement.from_state_dict(payload["placement"]),
        )


#: Sequence lifecycle phases (:attr:`SequenceState.phase`).
SEQ_PREFILL = "prefill"
SEQ_DECODE = "decode"
SEQ_DONE = "done"


@dataclass(frozen=True)
class SequenceRequest:
    """One generation request, as handed to :meth:`BaseEngine.start`.

    Attributes:
        prompt_tokens: input token ids (non-empty 1-D array).
        max_new_tokens: decode steps to run (>= 1).
        forced_tokens: optional teacher-forced decode inputs; step ``t``
            consumes ``forced_tokens[t]`` instead of the engine's own
            previous sample (the engine's sampled outputs are still
            returned).
        sampler: callable ``logits -> token id``; ``None`` means greedy.
        seq_id: caller-chosen identifier carried through to the state
            and scheduler reports.
    """

    prompt_tokens: np.ndarray
    max_new_tokens: int
    forced_tokens: np.ndarray | None = None
    sampler: object = None
    seq_id: int = 0

    def to_state_dict(self) -> dict:
        """Serialize the request for a checkpoint.

        Raises:
            ValueError: for a custom sampler.  An arbitrary callable
                cannot be captured in a checkpoint; only the default
                greedy sampler (``sampler=None``) is serializable.
        """
        if self.sampler is not None:
            raise ValueError(
                "a request with a custom sampler cannot be checkpointed; "
                "only greedy sampling (sampler=None) is serializable"
            )
        return {
            "prompt_tokens": encode_array(
                np.asarray(self.prompt_tokens, dtype=np.int64)
            ),
            "max_new_tokens": self.max_new_tokens,
            "forced_tokens": encode_optional_array(self.forced_tokens),
            "seq_id": self.seq_id,
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "SequenceRequest":
        """Rebuild a request captured by :meth:`to_state_dict`."""
        return cls(
            prompt_tokens=decode_array(payload["prompt_tokens"]),
            max_new_tokens=int(payload["max_new_tokens"]),
            forced_tokens=decode_optional_array(payload["forced_tokens"]),
            sampler=None,
            seq_id=int(payload["seq_id"]),
        )


@dataclass(frozen=True)
class BlockPlan:
    """Residency arrangement returned by the per-block policy hooks.

    Attributes:
        extra_deps: per-expert additional dependency ops (e.g. the
            upload that brings the expert's weights onto the device).
        force_gpu: experts that must execute on the GPU regardless of
            the placement map (streamed through scratch buffers that the
            placement bookkeeping has already released).
    """

    extra_deps: dict[int, list[Op]] = field(default_factory=dict)
    force_gpu: set[int] | None = None


@dataclass
class SequenceState:
    """Everything one in-flight sequence owns, threaded through the hooks.

    A state is created by :meth:`BaseEngine.start`, advanced one prefill
    pass or one decode token at a time by :meth:`BaseEngine.step`, and
    summarized into a :class:`GenerationResult` by
    :meth:`BaseEngine.finish`.  Because the placement copy, KV caches,
    trace, counters, and engine-policy state all live here (not on the
    engine), any number of states may be interleaved on one engine.

    ``policy`` belongs to the engine subclass (set in
    ``_begin_sequence``); ``extra`` is scratch private to
    ``repro.core.engine`` itself -- policy code must communicate through
    hook arguments and :class:`BlockPlan` returns (lint rule ENG004).
    """

    request: SequenceRequest
    sampler: object
    placement: ExpertPlacement
    caches: list[KVCache]
    timeline: Timeline
    trace: ActivationTrace
    counters: EngineCounters
    position: int = 0
    phase: str = SEQ_PREFILL
    generated: list[int] = field(default_factory=list)
    last_op: Op | None = None
    prefill_time_s: float = 0.0
    policy: object = None
    extra: dict = field(default_factory=dict)

    @property
    def seq_id(self) -> int:
        """Identifier carried over from the request."""
        return self.request.seq_id

    @property
    def done(self) -> bool:
        """Whether the sequence has produced all requested tokens."""
        return self.phase == SEQ_DONE

    @property
    def n_generated(self) -> int:
        """Tokens generated so far."""
        return len(self.generated)

    def to_state_dict(self, include_clock: bool = True) -> dict:
        """Serialize everything the sequence owns except ``policy``.

        Engine policy state is serialized by the owning engine
        (:meth:`BaseEngine.checkpoint_sequence`) because only the engine
        knows its shape.  States are checkpointable exactly *between*
        step calls: decode-policy generators live only inside
        ``step``/``step_batch``, so position/phase/generated plus the
        last op fully determine the resume point.

        Args:
            include_clock: serialize the timeline's resource clock.
                Pass ``False`` in the shared-clock scheduler regime,
                where the scheduler checkpoints the one clock itself.
        """
        return {
            "request": self.request.to_state_dict(),
            "placement": self.placement.to_state_dict(),
            "caches": [cache.to_state_dict() for cache in self.caches],
            "timeline": self.timeline.to_state_dict(
                include_clock=include_clock
            ),
            "trace": self.trace.to_state_dict(),
            "counters": self.counters.to_state_dict(),
            "position": self.position,
            "phase": self.phase,
            "generated": list(self.generated),
            "last_op": None if self.last_op is None else self.last_op.index,
            "prefill_time_s": self.prefill_time_s,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_state_dict(cls, payload: dict,
                        clock=None) -> "SequenceState":
        """Rebuild a state captured by :meth:`to_state_dict`.

        Args:
            payload: the captured state dict.
            clock: resource clock for the restored timeline; ``None``
                restores the serialized clock (or a fresh one if the
                clock was not serialized).

        The restored ``policy`` is ``None``; the owning engine's
        ``_restore_policy`` reinstalls it.
        """
        timeline = Timeline.from_state_dict(payload["timeline"], clock=clock)
        last_op = payload["last_op"]
        state = cls(
            request=SequenceRequest.from_state_dict(payload["request"]),
            sampler=greedy,
            placement=ExpertPlacement.from_state_dict(payload["placement"]),
            caches=[
                KVCache.from_state_dict(cache)
                for cache in payload["caches"]
            ],
            timeline=timeline,
            trace=ActivationTrace.from_state_dict(payload["trace"]),
            counters=EngineCounters.from_state_dict(payload["counters"]),
            position=int(payload["position"]),
            phase=payload["phase"],
            generated=[int(token) for token in payload["generated"]],
            last_op=(
                None if last_op is None else timeline.ops[int(last_op)]
            ),
            prefill_time_s=payload["prefill_time_s"],
            extra=dict(payload["extra"]),
        )
        return state


#: Deprecated alias kept for code written against the pre-step-machine
#: engine; new code should name :class:`SequenceState` directly.
_SequenceContext = SequenceState


@dataclass(frozen=True)
class StepResult:
    """Outcome of one :meth:`BaseEngine.step` call.

    Attributes:
        phase: the phase the step executed (``SEQ_PREFILL`` ran the
            whole prompt, ``SEQ_DECODE`` ran one token).
        token: the token id appended to the sequence by this step.
        done: whether the sequence is now finished.
        n_generated: tokens generated so far, including this one.
    """

    phase: str
    token: int
    done: bool
    n_generated: int


class BaseEngine:
    """Common machinery for all MoE inference engines."""

    name = "base"

    #: Per-op host-side dispatch overhead (seconds) of the Python
    #: orchestration stack.  The paper's engine is built on Hugging Face
    #: Transformers, whose per-module dispatch dominates small decode ops
    #: at batch size one; the raw cost model stays kernel-level so Table I
    #: still reproduces, while engines charge this on every scheduled op.
    FRAMEWORK_OVERHEAD_S = 2.5e-4

    def __init__(
        self,
        bundle: ModelBundle,
        platform: Platform,
        cache_config: CacheConfig | None = None,
        calibration_probs: np.ndarray | None = None,
        initial_placement: ExpertPlacement | None = None,
        framework_overhead_s: float | None = None,
    ) -> None:
        self.bundle = bundle
        self.model = bundle.model
        self.platform = platform
        self.cost_model = CostModel(bundle.arch, platform)
        self.energy_model = EnergyModel(platform)
        self.framework_overhead_s = (
            self.FRAMEWORK_OVERHEAD_S
            if framework_overhead_s is None
            else framework_overhead_s
        )
        n_blocks = self.model.n_blocks
        n_experts = self.model.n_experts
        if calibration_probs is not None:
            calibration_probs = np.asarray(calibration_probs, dtype=float)
            if calibration_probs.shape != (n_blocks, n_experts):
                raise ValueError(
                    "calibration_probs shape "
                    f"{calibration_probs.shape} does not match the model "
                    f"topology ({n_blocks}, {n_experts})"
                )
        if initial_placement is not None:
            placement = initial_placement
        elif cache_config is not None:
            if calibration_probs is None:
                # Without calibration, fall back to a flat prior so the
                # slot budget is still honored deterministically.
                calibration_probs = np.tile(
                    np.linspace(1.0, 0.9, n_experts), (n_blocks, 1)
                )
            placement = build_calibrated_placement(
                calibration_probs, cache_config
            )
        else:
            placement = ExpertPlacement.all_on_gpu(n_blocks, n_experts)
        self.initial_placement = placement
        self.calibration_probs = calibration_probs
        #: Instance-scoped event bus; subscribers observe the sequence
        #: lifecycle (start / step / finish) without perturbing it.
        self.events = EventBus()
        #: Most recently started sequence state (deprecated access path
        #: for post-hoc inspection; see the ``placement`` property).
        self._active_state: SequenceState | None = None

    # ---- public API ------------------------------------------------------------

    @property
    def placement(self) -> ExpertPlacement:
        """Deprecated: the most recently started sequence's placement.

        Residency now lives on each :class:`SequenceState` so multiple
        sequences can interleave on one engine without corrupting each
        other; this read-only view exists for the audit harness and
        older tests that inspect placement right after a ``generate()``
        call.  Engine policy code must use ``ctx.placement``.
        """
        if self._active_state is None:
            return self.initial_placement
        return self._active_state.placement

    def start(self, request: SequenceRequest,
              timeline: Timeline | None = None) -> SequenceState:
        """Validate a request and build its resumable sequence state.

        Args:
            request: the generation request.
            timeline: optional externally built timeline -- a scheduler
                passes one whose :class:`~repro.hardware.timeline.
                ResourceClock` is shared across sequences so they
                contend for the same lanes.  ``None`` builds a private
                timeline (the solo, batch-size-one regime).

        Returns:
            A fresh :class:`SequenceState` in the ``prefill`` phase; no
            simulated work has been charged yet.
        """
        prompt_tokens = np.asarray(request.prompt_tokens, dtype=np.int64)
        if prompt_tokens.ndim != 1 or prompt_tokens.size == 0:
            raise ValueError("prompt_tokens must be a non-empty 1-D array")
        if request.max_new_tokens < 1:
            raise ValueError("max_new_tokens must be positive")
        forced_tokens = request.forced_tokens
        if forced_tokens is not None:
            forced_tokens = np.asarray(forced_tokens, dtype=np.int64)
            if forced_tokens.size < request.max_new_tokens - 1:
                raise ValueError(
                    "forced_tokens must cover max_new_tokens - 1 steps"
                )
        request = SequenceRequest(
            prompt_tokens=prompt_tokens,
            max_new_tokens=int(request.max_new_tokens),
            forced_tokens=forced_tokens,
            sampler=request.sampler,
            seq_id=request.seq_id,
        )
        state = SequenceState(
            request=request,
            sampler=request.sampler or greedy,
            placement=self.initial_placement.copy(),
            caches=self.model.new_caches(),
            timeline=timeline if timeline is not None else Timeline(),
            trace=ActivationTrace(self.model.n_blocks, self.model.n_experts),
            counters=EngineCounters(),
        )
        self._active_state = state
        self._begin_sequence(state)
        if self.events.active:
            self.events.emit(
                SEQUENCE_START, state.timeline.clock.free[GPU],
                engine=self.name, seq_id=state.seq_id,
                n_prompt_tokens=int(prompt_tokens.size),
                max_new_tokens=request.max_new_tokens,
            )
        return state

    def step(self, state: SequenceState) -> StepResult:
        """Advance one sequence by one unit of work.

        In the ``prefill`` phase this runs the whole prompt through the
        model (plus the LM head) and samples the first token; in the
        ``decode`` phase it runs one decode token.  Either way exactly
        one token is appended to ``state.generated``.

        Raises:
            RuntimeError: if the sequence is already done.
        """
        if state.phase == SEQ_DONE:
            raise RuntimeError(
                f"sequence {state.seq_id} is done; call finish()"
            )
        request = state.request
        if state.phase == SEQ_PREFILL:
            h_last, last_op = self._prefill(state, request.prompt_tokens)
            logits, last_op = self._lm_head(state, h_last, [last_op])
            state.prefill_time_s = last_op.end
            phase_run = SEQ_PREFILL
        else:
            forced = request.forced_tokens
            step_idx = len(state.generated) - 1
            step_input = (
                int(forced[step_idx]) if forced is not None
                else state.generated[-1]
            )
            h_last, last_op = self._decode_step(
                state, step_input, [state.last_op]
            )
            logits, last_op = self._lm_head(state, h_last, [last_op])
            phase_run = SEQ_DECODE
        state.last_op = last_op
        token = int(state.sampler(logits))
        state.generated.append(token)
        if len(state.generated) >= request.max_new_tokens:
            state.phase = SEQ_DONE
        else:
            state.phase = SEQ_DECODE
        if self.events.active:
            self.events.emit(
                ENGINE_STEP, last_op.end, engine=self.name,
                seq_id=state.seq_id, phase=phase_run, token=token,
                n_generated=len(state.generated), done=state.done,
            )
        return StepResult(
            phase=phase_run,
            token=token,
            done=state.done,
            n_generated=len(state.generated),
        )

    def step_batch(self, states: list, gather_stats=None) -> list:
        """Advance several decode-phase sequences one token each, batched.

        Tokens routed to the same expert *across sequences* execute as
        one gathered kernel: the decode policies run block-locked (one
        :class:`~repro.core.batching.BlockWork` yield per block per
        sequence), same-``(block, expert, device)`` calls group into a
        single simulated launch charged the cost model's batched time,
        and the final LM head runs once over all last-token rows.  Each
        participant's functional values are evaluated row-by-row through
        the cache-aware stage API, so every sequence's token stream is
        identical to its solo run token for token; only the simulated
        schedule changes.  With a single state the gathered path
        degenerates to exactly the ops :meth:`step` schedules, so
        batch=1 stays bitwise-identical to ``generate()``.

        Args:
            states: decode-phase sequence states, in admission order
                (the stable per-sequence gather order).  When more than
                one, all must share one
                :class:`~repro.hardware.timeline.ResourceClock` — the
                scheduler regime; private clocks cannot express a
                shared kernel.
            gather_stats: optional
                :class:`~repro.core.batching.GatherStats` accumulating
                physical-kernel counts.

        Returns:
            One :class:`StepResult` per state, aligned with ``states``.

        Raises:
            ValueError: for an empty batch or mixed resource clocks.
            RuntimeError: for a state not in the decode phase.
        """
        if not states:
            raise ValueError("step_batch needs at least one state")
        for state in states:
            if state.phase == SEQ_DONE:
                raise RuntimeError(
                    f"sequence {state.seq_id} is done; call finish()"
                )
            if state.phase != SEQ_DECODE:
                raise RuntimeError(
                    f"sequence {state.seq_id} is in phase "
                    f"{state.phase!r}; step_batch serves decode-phase "
                    "sequences — run prefill via step()"
                )
        if len(states) > 1:
            clocks = {id(state.timeline.clock) for state in states}
            if len(clocks) != 1:
                raise ValueError(
                    "batched stepping requires all states to share one "
                    "ResourceClock (scheduler-built timelines); private "
                    "clocks cannot express a gathered kernel"
                )
        gens = []
        for state in states:
            forced = state.request.forced_tokens
            step_idx = len(state.generated) - 1
            step_input = (
                int(forced[step_idx]) if forced is not None
                else state.generated[-1]
            )
            gens.append(self._decode_blocks(
                state, step_input, [state.last_op]
            ))
        results: list = [None] * len(states)
        for _round in range(self.model.n_blocks):
            works = []
            for i, gen in enumerate(gens):
                try:
                    works.append((states[i], gen.send(results[i])))
                except StopIteration:
                    raise RuntimeError(
                        f"decode policy of {self.name!r} yielded fewer "
                        f"than n_blocks work sets"
                    ) from None
            results = self._execute_block_work_gathered(works, gather_stats)
        finals = []
        for i, gen in enumerate(gens):
            try:
                gen.send(results[i])
            except StopIteration as stop:
                finals.append(stop.value)
            else:
                raise RuntimeError(
                    f"decode policy of {self.name!r} yielded more than "
                    f"n_blocks work sets"
                )
        logits_rows, lm_ops = self._lm_head_batch(
            states, [h for h, _ in finals], [op for _, op in finals],
            gather_stats,
        )
        step_results = []
        for state, logits, lm_op in zip(states, logits_rows, lm_ops):
            state.last_op = lm_op
            token = int(state.sampler(logits))
            state.generated.append(token)
            if len(state.generated) >= state.request.max_new_tokens:
                state.phase = SEQ_DONE
            else:
                state.phase = SEQ_DECODE
            if self.events.active:
                self.events.emit(
                    ENGINE_STEP, lm_op.end, engine=self.name,
                    seq_id=state.seq_id, phase=SEQ_DECODE, token=token,
                    n_generated=len(state.generated), done=state.done,
                    batched=len(states),
                )
            step_results.append(StepResult(
                phase=SEQ_DECODE,
                token=token,
                done=state.done,
                n_generated=len(state.generated),
            ))
        return step_results

    def step_prefill_batch(self, states: list, gather_stats=None) -> list:
        """Advance several prefill-phase sequences one full pass, batched.

        A prompt-length cohort's prefill passes run block-locked through
        the same gathered driver as :meth:`step_batch`: every sequence's
        :meth:`_prefill_blocks` generator yields one
        :class:`~repro.core.batching.BlockWork` per block, same-``(block,
        expert, device)`` calls merge into one simulated kernel, and the
        final LM head runs once over all last-token rows.  Attention and
        gate ops cannot merge across sequences functionally (each works
        on its own hidden states), but a cohort's are priced as shares
        of one batched launch via the cost model's
        ``attention_batch_efficiency`` / ``gate_batch_efficiency``
        curves: each op's solo duration is scaled by ``eff(total cohort
        rows) / eff(own rows)``, so the cohort's summed time equals one
        kernel over all rows.  Functional values are still evaluated
        per-sequence through the cache-aware stage API, so token bytes,
        cache keys, traces, and counters are bitwise identical to solo
        prefill; a cohort of one degenerates to exactly the ops
        :meth:`step` schedules (the pricing ratio is identically 1.0).

        Args:
            states: prefill-phase sequence states, in admission order.
                When more than one, all must share one
                :class:`~repro.hardware.timeline.ResourceClock`.
            gather_stats: optional
                :class:`~repro.core.batching.GatherStats` accumulating
                physical-kernel counts (prefill-phase fields included).

        Returns:
            One :class:`StepResult` per state, aligned with ``states``.

        Raises:
            ValueError: for an empty batch or mixed resource clocks.
            RuntimeError: for a state not in the prefill phase.
        """
        if not states:
            raise ValueError("step_prefill_batch needs at least one state")
        for state in states:
            if state.phase == SEQ_DONE:
                raise RuntimeError(
                    f"sequence {state.seq_id} is done; call finish()"
                )
            if state.phase != SEQ_PREFILL:
                raise RuntimeError(
                    f"sequence {state.seq_id} is in phase "
                    f"{state.phase!r}; step_prefill_batch serves "
                    "prefill-phase sequences — run decode via "
                    "step_batch()"
                )
        if len(states) > 1:
            clocks = {id(state.timeline.clock) for state in states}
            if len(clocks) != 1:
                raise ValueError(
                    "batched stepping requires all states to share one "
                    "ResourceClock (scheduler-built timelines); private "
                    "clocks cannot express a gathered kernel"
                )
        rows_total = sum(
            int(state.request.prompt_tokens.size) for state in states
        )
        gens = []
        for state in states:
            state.extra["gather_pricing"] = {"rows_total": rows_total}
            gens.append(self._prefill_blocks(
                state, state.request.prompt_tokens
            ))
        try:
            results: list = [None] * len(states)
            for _round in range(self.model.n_blocks):
                works = []
                for i, gen in enumerate(gens):
                    try:
                        works.append((states[i], gen.send(results[i])))
                    except StopIteration:
                        raise RuntimeError(
                            f"prefill pass of {self.name!r} yielded "
                            f"fewer than n_blocks work sets"
                        ) from None
                if gather_stats is not None:
                    gather_stats.attn_kernels += 1
                    gather_stats.attn_ops += len(states)
                    gather_stats.gate_kernels += 1
                    gather_stats.gate_ops += len(states)
                results = self._execute_block_work_gathered(
                    works, gather_stats, phase=SEQ_PREFILL
                )
            finals = []
            for i, gen in enumerate(gens):
                try:
                    gen.send(results[i])
                except StopIteration as stop:
                    finals.append(stop.value)
                else:
                    raise RuntimeError(
                        f"prefill pass of {self.name!r} yielded more "
                        f"than n_blocks work sets"
                    )
            logits_rows, lm_ops = self._lm_head_batch(
                states, [h for h, _ in finals], [op for _, op in finals],
                gather_stats, phase=SEQ_PREFILL,
            )
        finally:
            for state in states:
                state.extra.pop("gather_pricing", None)
        step_results = []
        for state, logits, lm_op in zip(states, logits_rows, lm_ops):
            state.last_op = lm_op
            state.prefill_time_s = lm_op.end
            token = int(state.sampler(logits))
            state.generated.append(token)
            if len(state.generated) >= state.request.max_new_tokens:
                state.phase = SEQ_DONE
            else:
                state.phase = SEQ_DECODE
            if self.events.active:
                self.events.emit(
                    ENGINE_STEP, lm_op.end, engine=self.name,
                    seq_id=state.seq_id, phase=SEQ_PREFILL, token=token,
                    n_generated=len(state.generated), done=state.done,
                    batched=len(states),
                )
            step_results.append(StepResult(
                phase=SEQ_PREFILL,
                token=token,
                done=state.done,
                n_generated=len(state.generated),
            ))
        return step_results

    def finish(self, state: SequenceState) -> GenerationResult:
        """Summarize a finished sequence into a :class:`GenerationResult`.

        The state's timeline is rebased to its own service start, so the
        result is expressed in sequence-local time exactly as a solo
        ``generate()`` would report it (stats durations, energy
        integral, audit invariants); a scheduler records absolute
        arrival/start/finish times itself before calling this.

        Raises:
            RuntimeError: if the sequence has not produced all its
                tokens yet.
        """
        if state.phase != SEQ_DONE:
            raise RuntimeError(
                f"sequence {state.seq_id} is still in phase "
                f"{state.phase!r}; step() it to completion first"
            )
        t0 = state.timeline.ops[0].start if state.timeline.ops else 0.0
        state.timeline.rebase(t0)
        state.prefill_time_s -= t0
        stats = GenerationStats(
            n_prompt_tokens=int(state.request.prompt_tokens.size),
            n_generated=len(state.generated),
            prefill_time_s=state.prefill_time_s,
            total_time_s=state.timeline.makespan,
            energy=self.energy_model.energy(state.timeline),
            counters=state.counters,
        )
        if self.events.active:
            self.events.emit(
                SEQUENCE_FINISH, stats.total_time_s, engine=self.name,
                seq_id=state.seq_id, n_generated=stats.n_generated,
                total_time_s=stats.total_time_s,
            )
        return GenerationResult(
            tokens=np.asarray(state.generated, dtype=np.int64),
            trace=state.trace,
            timeline=state.timeline,
            stats=stats,
            placement=state.placement,
        )

    def generate(
        self,
        prompt_tokens: np.ndarray,
        max_new_tokens: int,
        forced_tokens: np.ndarray | None = None,
        sampler=None,
    ) -> GenerationResult:
        """Run prefill plus ``max_new_tokens`` decode steps.

        This is a thin wrapper over the resumable step machine: it
        starts one sequence on a private timeline and steps it to
        completion (the paper's batch-size-one regime).  Schedulers use
        :meth:`start` / :meth:`step` / :meth:`finish` directly to
        interleave sequences.

        Args:
            prompt_tokens: input token ids.
            max_new_tokens: decode steps to run.
            forced_tokens: optional teacher-forced decode inputs.  When
                given, step ``t`` consumes ``forced_tokens[t]`` instead of
                the engine's own previous sample (used by the statistics
                benchmarks so decode routing follows the dataset's topic
                process); the engine's sampled outputs are still returned.
            sampler: callable ``logits -> token id``; defaults to greedy.

        Returns:
            A :class:`GenerationResult` with tokens, trace, timeline, and
            simulated performance statistics.
        """
        state = self.start(SequenceRequest(
            prompt_tokens=prompt_tokens,
            max_new_tokens=max_new_tokens,
            forced_tokens=forced_tokens,
            sampler=sampler,
        ))
        while not state.done:
            self.step(state)
        return self.finish(state)

    # ---- checkpoint / restore ----------------------------------------------------

    def checkpoint_sequence(self, state: SequenceState,
                            include_clock: bool = True) -> dict:
        """Capture one in-flight sequence as a plain-data checkpoint.

        The payload is JSON-compatible and carries a content digest plus
        the engine name and format version, so :meth:`restore_sequence`
        can reject corrupted, foreign, or version-skewed checkpoints
        with a clear error instead of resuming garbage.  Restoring the
        payload (in this process or a fresh one) and stepping to
        completion is bitwise identical to never pausing.

        Args:
            state: a sequence between step calls (any phase).
            include_clock: serialize the timeline's resource clock; a
                scheduler holding the shared clock passes ``False``.
        """
        body = {
            "version": SEQUENCE_CHECKPOINT_VERSION,
            "engine": self.name,
            "state": state.to_state_dict(include_clock=include_clock),
            "policy": self._policy_state_dict(state),
        }
        body["digest"] = canonical_digest(body)
        return body

    def restore_sequence(self, payload: dict,
                         clock=None) -> SequenceState:
        """Rebuild a sequence captured by :meth:`checkpoint_sequence`.

        Args:
            payload: the checkpoint payload.
            clock: resource clock for the restored timeline (the
                scheduler regime); ``None`` restores the serialized
                clock.

        Raises:
            ValueError: for a corrupted payload (digest mismatch), a
                checkpoint from a different engine, or an unsupported
                format version.
        """
        version = payload.get("version")
        if version != SEQUENCE_CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported sequence-checkpoint version {version!r}; "
                f"this build reads version {SEQUENCE_CHECKPOINT_VERSION}"
            )
        body = {key: payload[key] for key in
                ("version", "engine", "state", "policy")}
        digest = canonical_digest(body)
        if digest != payload.get("digest"):
            raise ValueError(
                "sequence checkpoint is corrupted: content digest "
                f"{digest} does not match the recorded "
                f"{payload.get('digest')!r}"
            )
        if payload["engine"] != self.name:
            raise ValueError(
                f"checkpoint belongs to engine {payload['engine']!r}; "
                f"it cannot resume on {self.name!r}"
            )
        state = SequenceState.from_state_dict(payload["state"], clock=clock)
        self._restore_policy(state, payload["policy"])
        self._active_state = state
        return state

    # ---- policy hooks (subclasses override) -------------------------------------

    def _begin_sequence(self, ctx: SequenceState) -> None:
        """Install per-sequence policy state on ``ctx.policy`` (optional)."""

    def _policy_state_dict(self, state: SequenceState):
        """Hook: serialize ``state.policy`` as plain data (or ``None``).

        Engines whose ``_begin_sequence`` installs policy state must
        override this together with :meth:`_restore_policy`.  Ops held
        by policy state (pending prefetches) serialize as their index in
        ``state.timeline.ops``.
        """
        if state.policy is None:
            return None
        raise NotImplementedError(
            f"engine {self.name!r} keeps per-sequence policy state but "
            "does not implement _policy_state_dict/_restore_policy"
        )

    def _restore_policy(self, state: SequenceState, payload) -> None:
        """Hook: reinstall ``state.policy`` from :meth:`_policy_state_dict`."""
        if payload is None:
            return
        raise NotImplementedError(
            f"engine {self.name!r} keeps per-sequence policy state but "
            "does not implement _policy_state_dict/_restore_policy"
        )

    # ---- shared primitives -------------------------------------------------------

    def _device_spec(self, resource: str):
        return self.platform.gpu if resource == GPU else self.platform.cpu

    def _attention(self, ctx: _SequenceContext, block_idx: int,
                   h: np.ndarray, deps: list[Op],
                   phase: str) -> tuple[np.ndarray, Op]:
        """Non-MoE part of one block on the GPU (functional + timed)."""
        block = self.model.blocks[block_idx]
        n_tokens = h.shape[0]
        positions = ctx.position + np.arange(n_tokens)
        context_len = len(ctx.caches[block_idx]) + n_tokens
        h_att = block.attention_part(h, ctx.caches[block_idx], positions)
        duration = self.framework_overhead_s + self.cost_model.non_moe_time(
            self.platform.gpu, n_tokens, context_len
        )
        pricing = ctx.extra.get("gather_pricing")
        if pricing is not None:
            # Gathered-prefill pricing: scaling each cohort member's solo
            # duration by eff(R)/eff(own rows) makes the cohort's summed
            # attention time equal one batched kernel over all R rows.
            # A cohort of one has R == n_tokens, so the ratio is exactly
            # 1.0 and the op stays bitwise identical to a solo step.
            duration *= (
                self.cost_model.attention_batch_efficiency(
                    self.platform.gpu, int(pricing["rows_total"]),
                    self.framework_overhead_s,
                )
                / self.cost_model.attention_batch_efficiency(
                    self.platform.gpu, n_tokens, self.framework_overhead_s,
                )
            )
        op = ctx.timeline.add(
            GPU, duration, deps=deps,
            label=f"attn B{block_idx} {phase}", kind="non_moe",
        )
        return h_att, op

    def _gate(self, ctx: _SequenceContext, block_idx: int,
              h_att: np.ndarray, deps: list[Op]) -> tuple[np.ndarray, Op]:
        """Router logits on the GPU (functional + timed)."""
        block = self.model.blocks[block_idx]
        logits = block.gate_logits(h_att)
        duration = self.framework_overhead_s + self.cost_model.gate_time(
            self.platform.gpu, h_att.shape[0]
        )
        pricing = ctx.extra.get("gather_pricing")
        if pricing is not None:
            # Same cohort pricing as _attention; eff(R)/eff(own rows)
            # sums to one batched router launch over all R rows.
            duration *= (
                self.cost_model.gate_batch_efficiency(
                    self.platform.gpu, int(pricing["rows_total"]),
                    self.framework_overhead_s,
                )
                / self.cost_model.gate_batch_efficiency(
                    self.platform.gpu, int(h_att.shape[0]),
                    self.framework_overhead_s,
                )
            )
        op = ctx.timeline.add(
            GPU, duration, deps=deps, label=f"gate B{block_idx}", kind="gate",
        )
        return logits, op

    def _expert_gpu(self, ctx: _SequenceContext, block_idx: int,
                    expert: int, x: np.ndarray, deps: list[Op],
                    token_idx: np.ndarray | None = None) -> tuple[np.ndarray, Op]:
        """Execute one expert on the GPU.

        ``token_idx`` optionally selects rows of ``x`` (the block-level
        hidden states); passing the full array plus indices lets all
        experts of a block share one ``ffn_norm``.
        """
        y = self.model.blocks[block_idx].expert_forward(
            expert, x, token_idx=token_idx
        )
        n_tokens = x.shape[0] if token_idx is None else len(token_idx)
        duration = self.framework_overhead_s + self.cost_model.expert_time(
            self.platform.gpu, n_tokens
        )
        op = ctx.timeline.add(
            GPU, duration, deps=deps,
            label=f"E{expert}@B{block_idx} gpu", kind="expert_gpu",
        )
        ctx.counters.gpu_expert_execs += 1
        return y, op

    def _expert_cpu(self, ctx: _SequenceContext, block_idx: int,
                    expert: int, x: np.ndarray, deps: list[Op],
                    stale_input: bool = False,
                    token_idx: np.ndarray | None = None) -> tuple[np.ndarray, Op]:
        """Execute one expert on the CPU with activation round-trip.

        The hidden states move device-to-host, the expert runs on the CPU,
        and the result returns host-to-device; per the paper these
        activation transfers are ~1/10000 the size of the expert weights.
        ``token_idx`` optionally selects rows of ``x`` as in
        :meth:`_expert_gpu`.  Returns the output and the H2D op that lands
        it back on the GPU.
        """
        n_tokens = x.shape[0] if token_idx is None else len(token_idx)
        d2h = ctx.timeline.add(
            D2H,
            self.framework_overhead_s
            + self.cost_model.activation_transfer_time(n_tokens),
            deps=deps, label=f"act>cpu B{block_idx}", kind="act_d2h",
        )
        y = self.model.blocks[block_idx].expert_forward(
            expert, x, token_idx=token_idx
        )
        exec_op = ctx.timeline.add(
            CPU,
            self.framework_overhead_s
            + self.cost_model.expert_time(self.platform.cpu, n_tokens),
            deps=[d2h], label=f"E{expert}@B{block_idx} cpu", kind="expert_cpu",
        )
        h2d = ctx.timeline.add(
            H2D,
            self.framework_overhead_s
            + self.cost_model.activation_transfer_time(n_tokens),
            deps=[exec_op], label=f"act>gpu B{block_idx}", kind="act_h2d",
        )
        ctx.counters.cpu_expert_execs += 1
        if stale_input:
            ctx.counters.stale_input_execs += 1
        return y, h2d

    def _upload_expert(self, ctx: _SequenceContext, block_idx: int,
                       expert: int, deps: list[Op],
                       quant_ratio: float = 1.0) -> Op:
        """Move one expert host -> device and mark it GPU-resident."""
        op = ctx.timeline.add(
            H2D,
            self.framework_overhead_s
            + self.cost_model.expert_transfer_time(quant_ratio),
            deps=deps, label=f"up E{expert}@B{block_idx}", kind="expert_upload",
        )
        ctx.placement.set_device(block_idx, expert, DeviceKind.GPU)
        ctx.counters.expert_uploads += 1
        return op

    def _drop_expert(self, ctx: _SequenceContext, block_idx: int,
                     expert: int) -> None:
        """Free a device copy (host copy of inference weights stays valid)."""
        ctx.placement.set_device(block_idx, expert, DeviceKind.CPU)

    def _lm_head(self, ctx: _SequenceContext, h_last: np.ndarray,
                 deps: list[Op]) -> tuple[np.ndarray, Op]:
        """Final norm + LM head on the GPU for the last token."""
        logits = self.model.lm_logits(h_last.reshape(1, -1))[0]
        duration = self.framework_overhead_s + self.cost_model.lm_head_time(
            self.platform.gpu, 1
        )
        op = ctx.timeline.add(
            GPU, duration, deps=deps, label="lm_head", kind="lm_head",
        )
        return logits, op

    def _record_activation_counters(self, ctx: _SequenceContext,
                                    block_idx: int,
                                    experts: np.ndarray) -> None:
        """Update GPU-residency hit counters for activated experts."""
        for expert in np.atleast_1d(experts):
            ctx.counters.activated_total += 1
            if ctx.placement.is_on_gpu(block_idx, int(expert)):
                ctx.counters.activated_gpu_resident += 1

    # ---- standard prefill / decode skeletons ------------------------------------
    #
    # Most engines share the same dataflow and differ only in what happens
    # *before* each block's experts execute (migrations, uploads, swaps).
    # The hooks below express exactly that difference.

    def _prepare_prefill_block(self, ctx: _SequenceContext, block_idx: int,
                               activated: np.ndarray, activity: np.ndarray,
                               deps: list[Op]) -> BlockPlan:
        """Hook: arrange residency for a prefill block's activated experts.

        Returns a :class:`BlockPlan` carrying per-expert extra
        dependencies (e.g. upload ops) and any forced-GPU executions.
        """
        return BlockPlan()

    def _prepare_decode_block(self, ctx: _SequenceContext, block_idx: int,
                              activated: np.ndarray,
                              deps: list[Op]) -> BlockPlan:
        """Hook: arrange residency for a decode block's activated experts."""
        return BlockPlan()

    def _execute_experts_at_location(
        self,
        ctx: _SequenceContext,
        block_idx: int,
        h_att: np.ndarray,
        experts_per_token: np.ndarray,
        weights: np.ndarray,
        deps: list[Op],
        extra_deps: dict[int, list[Op]] | None = None,
        force_gpu: set[int] | None = None,
    ) -> tuple[np.ndarray, list[Op]]:
        """Run each activated expert where it currently resides.

        Args:
            h_att: post-attention hidden states ``(n_tokens, d)``.
            experts_per_token: ``(n_tokens, k)`` selected expert ids.
            weights: ``(n_tokens, k)`` mixing weights.
            deps: ops every expert execution must wait for.
            extra_deps: per-expert additional dependencies (uploads).
            force_gpu: experts executed on the GPU regardless of the
                placement map (streamed-through scratch buffers).

        Returns:
            The block output (after combine) and the expert ops.
        """
        extra_deps = extra_deps or {}
        force_gpu = force_gpu or set()
        block = self.model.blocks[block_idx]
        n_tokens, top_k = experts_per_token.shape
        outs = np.zeros(
            (n_tokens, top_k, h_att.shape[1]), dtype=np.float32
        )
        ops: list[Op] = []
        for expert in np.unique(experts_per_token):
            expert = int(expert)
            mask = experts_per_token == expert
            token_idx = np.nonzero(mask.any(axis=1))[0]
            expert_deps = deps + extra_deps.get(expert, [])
            if expert in force_gpu or ctx.placement.is_on_gpu(block_idx, expert):
                y, op = self._expert_gpu(
                    ctx, block_idx, expert, h_att, expert_deps,
                    token_idx=token_idx,
                )
            else:
                y, op = self._expert_cpu(
                    ctx, block_idx, expert, h_att, expert_deps,
                    token_idx=token_idx,
                )
            ops.append(op)
            for row, t in enumerate(token_idx):
                # A router can only select an expert once per token, but a
                # hand-built (or degraded) selection may repeat an id; every
                # matching slot gets the output so its weight is honored.
                for slot in np.nonzero(mask[t])[0]:
                    outs[t, int(slot)] = y[row]
        h_out = block.combine(h_att, outs, weights)
        return h_out, ops

    def _prefill_standard(self, ctx: _SequenceContext,
                          prompt_tokens: np.ndarray) -> tuple[np.ndarray, Op]:
        """Shared prefill under the solo driver (one inline-order pass)."""
        return self._drive_blocks(
            ctx, self._prefill_blocks_standard(ctx, prompt_tokens)
        )

    # ---- block-work protocol ------------------------------------------------------
    #
    # Decode policies and the shared prefill pass are generators
    # yielding one BlockWork per block (see repro.core.batching); a
    # driver decides how the described expert executions run —
    # immediately (solo) or gathered with the same-expert calls of
    # other in-flight sequences (step_batch / step_prefill_batch).

    def _prefill_blocks_standard(self, ctx: _SequenceContext,
                                 prompt_tokens: np.ndarray):
        """Shared prefill pass as a block-work generator.

        Per block: attend -> gate -> prepare -> describe the routed
        expert executions.  Yields exactly ``n_blocks``
        :class:`BlockWork` items and returns ``(h_last, done_op)``;
        under the solo driver the op schedule is identical to the
        historical inline prefill, and under the gathered driver a
        prompt-length cohort's same-expert calls merge into shared
        kernels.
        """
        from repro.core.allocation import activity_from_routing

        h = self.model.embed(prompt_tokens)
        n_tokens = prompt_tokens.size
        last_ops: list[Op] = []
        for block_idx in range(self.model.n_blocks):
            h_att, attn_op = self._attention(
                ctx, block_idx, h, last_ops, PREFILL
            )
            logits, gate_op = self._gate(ctx, block_idx, h_att, [attn_op])
            routing = self.model.blocks[block_idx].route_from_logits(logits)
            for t in range(n_tokens):
                ctx.trace.record(
                    PREFILL, block_idx, ctx.position + t, routing.experts[t]
                )
            activity = activity_from_routing(
                routing.experts, self.model.n_experts
            )
            plan = self._prepare_prefill_block(
                ctx, block_idx, np.unique(routing.experts), activity,
                [gate_op],
            )
            for t in range(n_tokens):
                self._record_activation_counters(
                    ctx, block_idx, routing.experts[t]
                )
            h, expert_ops = yield from self._routed_block_work(
                ctx, block_idx, h_att, routing.experts, routing.weights,
                [gate_op], plan.extra_deps, plan.force_gpu,
            )
            last_ops = expert_ops
        ctx.position += n_tokens
        done = ctx.timeline.add(
            GPU, 0.0, deps=last_ops, label="prefill done", kind="sync"
        )
        return h[-1], done

    def _routed_block_work(
        self,
        ctx: _SequenceContext,
        block_idx: int,
        h_att: np.ndarray,
        experts_per_token: np.ndarray,
        weights: np.ndarray,
        deps: list[Op],
        extra_deps: dict[int, list[Op]] | None = None,
        force_gpu: set[int] | None = None,
    ):
        """Describe-and-combine analog of ``_execute_experts_at_location``.

        A generator: yields one :class:`~repro.core.batching.BlockWork`
        describing each activated expert's execution (same unique-expert
        order, dependencies, and locations as the inline path), receives
        the driver's ``(output, op)`` results back, and returns the
        combined block output plus the expert ops.  Use as
        ``h, ops = yield from self._routed_block_work(...)``.
        """
        extra_deps = extra_deps or {}
        force_gpu = force_gpu or set()
        block = self.model.blocks[block_idx]
        n_tokens, top_k = experts_per_token.shape
        calls: list[ExpertCall] = []
        metas: list[tuple[np.ndarray, np.ndarray]] = []
        for expert in np.unique(experts_per_token):
            expert = int(expert)
            mask = experts_per_token == expert
            token_idx = np.nonzero(mask.any(axis=1))[0]
            expert_deps = tuple(deps + extra_deps.get(expert, []))
            on_gpu = (expert in force_gpu
                      or ctx.placement.is_on_gpu(block_idx, expert))
            calls.append(ExpertCall(
                expert=expert,
                location=GPU_LOC if on_gpu else CPU_LOC,
                h_att=h_att,
                deps=expert_deps,
                token_idx=token_idx,
            ))
            metas.append((mask, token_idx))
        results = yield BlockWork(block_idx=block_idx, calls=tuple(calls))
        outs = np.zeros(
            (n_tokens, top_k, h_att.shape[1]), dtype=np.float32
        )
        ops: list[Op] = []
        for (mask, token_idx), (y, op) in zip(metas, results):
            ops.append(op)
            for row, t in enumerate(token_idx):
                # A router can only select an expert once per token, but a
                # hand-built (or degraded) selection may repeat an id; every
                # matching slot gets the output so its weight is honored.
                for slot in np.nonzero(mask[t])[0]:
                    outs[t, int(slot)] = y[row]
        h_out = block.combine(h_att, outs, weights)
        return h_out, ops

    def _decode_blocks_standard(self, ctx: _SequenceContext, token: int,
                                deps: list[Op]):
        """Shared decode policy: true gate, experts run where they live.

        A generator yielding exactly ``n_blocks`` :class:`BlockWork`
        items and returning ``(h_last, done_op)``; the dataflow (and,
        under the solo driver, the op schedule) is identical to the
        pre-protocol ``_decode_step_standard``.
        """
        h = self.model.embed(np.asarray([token]))
        last_ops = list(deps)
        for block_idx in range(self.model.n_blocks):
            h_att, attn_op = self._attention(
                ctx, block_idx, h, last_ops, DECODE
            )
            logits, gate_op = self._gate(ctx, block_idx, h_att, [attn_op])
            routing = self.model.blocks[block_idx].route_from_logits(logits)
            ctx.trace.record(
                DECODE, block_idx, ctx.position, routing.experts[0]
            )
            self._record_activation_counters(
                ctx, block_idx, routing.experts[0]
            )
            plan = self._prepare_decode_block(
                ctx, block_idx, routing.experts[0], [gate_op]
            )
            h, last_ops = yield from self._routed_block_work(
                ctx, block_idx, h_att, routing.experts, routing.weights,
                [gate_op], plan.extra_deps, plan.force_gpu,
            )
        ctx.position += 1
        done = ctx.timeline.add(
            GPU, 0.0, deps=last_ops, label="decode done", kind="sync"
        )
        return h[-1], done

    def _execute_block_work_solo(self, ctx: _SequenceContext,
                                 work) -> list:
        """Execute one sequence's block work immediately, in call order.

        Returns ``(output, op)`` per call — the faithful inline
        execution the pre-protocol engines performed, so a solo-driven
        sequence schedules exactly the same ops at the same times.
        """
        results = []
        for call in work.calls:
            if call.location == GPU_LOC:
                y, op = self._expert_gpu(
                    ctx, work.block_idx, call.expert, call.h_att,
                    list(call.deps), token_idx=call.token_idx,
                )
            else:
                y, op = self._expert_cpu(
                    ctx, work.block_idx, call.expert, call.h_att,
                    list(call.deps), token_idx=call.token_idx,
                )
            results.append((y, op))
        return results

    def _drive_blocks(self, ctx: _SequenceContext,
                      gen) -> tuple[np.ndarray, Op]:
        """Run one block-work generator (decode or prefill) solo."""
        results = None
        while True:
            try:
                work = gen.send(results)
            except StopIteration as stop:
                return stop.value
            results = self._execute_block_work_solo(ctx, work)

    # ---- gathered (cross-sequence) execution --------------------------------------

    @staticmethod
    def _group_barrier(works: list, participants: list) -> float:
        """Latest dependency end among a gathered group's calls (seconds)."""
        barrier = 0.0
        for i, j in participants:
            call = works[i][1].calls[j]
            if call.deps:
                barrier = max(barrier, max(d.end for d in call.deps))
        return barrier

    def _execute_block_work_gathered(self, works: list,
                                     gather_stats=None,
                                     phase: str = SEQ_DECODE) -> list:
        """Execute one round of block work gathered across sequences.

        Args:
            works: ``(state, BlockWork)`` per sequence, admission order.
            gather_stats: optional
                :class:`~repro.core.batching.GatherStats` accumulator.
            phase: which phase's stats bucket the kernels land in
                (``"prefill"`` additionally counts the ``prefill_*``
                fields).

        Returns:
            Per sequence, the ``(output, op)`` list aligned with its
            calls.  Groups execute in deterministic ``(block, expert,
            location)`` order; within a group, participants keep
            admission order, so the whole schedule is reproducible.
        """
        results = [[None] * len(work.calls) for _, work in works]
        groups = group_block_work([work for _, work in works])
        for key in sorted(groups):
            block_idx, expert, location = key
            participants = groups[key]
            if location == GPU_LOC:
                self._gathered_expert_gpu(
                    works, results, block_idx, expert, participants,
                    gather_stats, phase,
                )
            else:
                self._gathered_expert_cpu(
                    works, results, block_idx, expert, participants,
                    gather_stats, phase,
                )
        return results

    def _gathered_rows(self, block_idx: int, expert: int, works: list,
                       participants: list) -> tuple[list, int]:
        """Evaluate a gathered group's functional values, row-stable.

        Delegates to :meth:`~repro.model.moe_block.MoEBlock.
        expert_forward_rows` — functionally the single batched matmul of
        the gathered kernel, evaluated segment-by-segment so each
        sequence's values (and compute-cache keys) stay bitwise
        identical to its solo run.  Returns the per-participant outputs
        and the total row count.
        """
        block = self.model.blocks[block_idx]
        segments = []
        for i, j in participants:
            call = works[i][1].calls[j]
            segments.append((call.h_att, call.token_idx))
        ys = block.expert_forward_rows(expert, segments)
        rows = sum(y.shape[0] for y in ys)
        return ys, rows

    def _note_gathered_kernel(self, gather_stats, participants: list,
                              rows: int, phase: str = SEQ_DECODE) -> None:
        """Account one physical gathered kernel launch."""
        if gather_stats is None:
            return
        gather_stats.expert_kernels += 1
        gather_stats.expert_ops += len(participants)
        gather_stats.gathered_rows += rows
        gather_stats.max_group_size = max(
            gather_stats.max_group_size, len(participants)
        )
        if phase == SEQ_PREFILL:
            gather_stats.prefill_expert_kernels += 1
            gather_stats.prefill_expert_ops += len(participants)

    def _gathered_expert_gpu(self, works: list, results: list,
                             block_idx: int, expert: int,
                             participants: list, gather_stats=None,
                             phase: str = SEQ_DECODE) -> None:
        """One gathered GPU expert kernel over all participants' rows.

        The kernel is charged once at the cost model's batched time
        (weight bytes read once, one framework overhead) and starts at
        the group's dependency barrier; each participant records a
        proportional slice in its *own* timeline with its *own*
        dependencies, so per-sequence counter conservation, energy
        integration, and causality audits all hold unchanged.
        """
        ys, rows = self._gathered_rows(block_idx, expert, works,
                                       participants)
        duration = self.framework_overhead_s + self.cost_model.expert_time(
            self.platform.gpu, rows
        )
        clock = works[0][0].timeline.clock
        clock.hold(GPU, self._group_barrier(works, participants))
        for (i, j), y in zip(participants, ys):
            state, work = works[i]
            call = work.calls[j]
            op = state.timeline.add(
                GPU, duration * y.shape[0] / rows, deps=list(call.deps),
                label=f"E{expert}@B{block_idx} gpu", kind="expert_gpu",
            )
            state.counters.gpu_expert_execs += 1
            results[i][j] = (y, op)
        self._note_gathered_kernel(gather_stats, participants, rows, phase)

    def _gathered_expert_cpu(self, works: list, results: list,
                             block_idx: int, expert: int,
                             participants: list, gather_stats=None,
                             phase: str = SEQ_DECODE) -> None:
        """One gathered CPU expert execution with batched round-trips.

        The three stages of the solo path (activations device-to-host,
        CPU execution, result host-to-device) each run as one batched
        transfer/kernel over every participant's rows, sliced into
        per-sequence ops exactly like the GPU path; each stage's lane is
        held to the previous stage's group barrier.
        """
        ys, rows = self._gathered_rows(block_idx, expert, works,
                                       participants)
        act_total = (
            self.framework_overhead_s
            + self.cost_model.activation_transfer_time(rows)
        )
        exec_total = (
            self.framework_overhead_s
            + self.cost_model.expert_time(self.platform.cpu, rows)
        )
        clock = works[0][0].timeline.clock
        clock.hold(D2H, self._group_barrier(works, participants))
        d2h_ops = []
        for (i, j), y in zip(participants, ys):
            state, work = works[i]
            call = work.calls[j]
            d2h_ops.append(state.timeline.add(
                D2H, act_total * y.shape[0] / rows, deps=list(call.deps),
                label=f"act>cpu B{block_idx}", kind="act_d2h",
            ))
        clock.hold(CPU, max(op.end for op in d2h_ops))
        exec_ops = []
        for (i, j), y, d2h in zip(participants, ys, d2h_ops):
            state, _ = works[i]
            exec_ops.append(state.timeline.add(
                CPU, exec_total * y.shape[0] / rows, deps=[d2h],
                label=f"E{expert}@B{block_idx} cpu", kind="expert_cpu",
            ))
            state.counters.cpu_expert_execs += 1
        clock.hold(H2D, max(op.end for op in exec_ops))
        for (i, j), y, exec_op in zip(participants, ys, exec_ops):
            state, _ = works[i]
            h2d = state.timeline.add(
                H2D, act_total * y.shape[0] / rows, deps=[exec_op],
                label=f"act>gpu B{block_idx}", kind="act_h2d",
            )
            results[i][j] = (y, h2d)
        self._note_gathered_kernel(gather_stats, participants, rows, phase)

    def _lm_head_batch(self, states: list, h_lasts: list, done_ops: list,
                       gather_stats=None,
                       phase: str = SEQ_DECODE) -> tuple[list, list]:
        """Final norm + LM head gathered over every sequence's last token.

        One simulated launch over ``len(states)`` rows, sliced into
        per-sequence ops; logits are computed row-by-row (sharing cache
        keys with solo runs) so sampling stays bitwise identical.
        """
        n = len(states)
        logits_rows = self.model.lm_logits_rows(h_lasts)
        duration = self.framework_overhead_s + self.cost_model.lm_head_time(
            self.platform.gpu, n
        )
        clock = states[0].timeline.clock
        clock.hold(GPU, max(op.end for op in done_ops))
        ops = []
        for state, done in zip(states, done_ops):
            ops.append(state.timeline.add(
                GPU, duration / n, deps=[done], label="lm_head",
                kind="lm_head",
            ))
        if gather_stats is not None:
            gather_stats.lm_head_kernels += 1
            gather_stats.lm_head_ops += n
            if phase == SEQ_PREFILL:
                gather_stats.prefill_lm_head_kernels += 1
                gather_stats.prefill_lm_head_ops += n
        return logits_rows, ops

    def _decode_step_standard(self, ctx: _SequenceContext, token: int,
                              deps: list[Op]) -> tuple[np.ndarray, Op]:
        """Shared decode step: the standard policy under the solo driver."""
        return self._drive_blocks(
            ctx, self._decode_blocks_standard(ctx, token, deps)
        )

    # Default implementations: engines that follow the standard dataflow
    # simply inherit these.

    def _prefill(self, ctx: _SequenceContext,
                 prompt_tokens: np.ndarray) -> tuple[np.ndarray, Op]:
        return self._drive_blocks(
            ctx, self._prefill_blocks(ctx, prompt_tokens)
        )

    def _prefill_blocks(self, ctx: _SequenceContext,
                        prompt_tokens: np.ndarray):
        """Policy hook: the prefill block-work generator for one prompt.

        An engine with a custom prefill policy overrides *this* instead
        of ``_prefill``, so one policy serves both the solo and the
        gathered driver.  Must yield exactly ``n_blocks``
        :class:`BlockWork` items and return ``(h_last, done_op)``.
        """
        return (yield from self._prefill_blocks_standard(ctx, prompt_tokens))

    def _decode_blocks(self, ctx: _SequenceContext, token: int,
                       deps: list[Op]):
        """Policy hook: the decode block-work generator for one token.

        Engines with a custom decode policy (DAOP's predictive
        pre-calculation, Pre-gated's prefetch) override *this* instead
        of ``_decode_step``, so one policy serves both the solo and the
        gathered driver.  Must yield exactly ``n_blocks``
        :class:`BlockWork` items and return ``(h_last, done_op)``.
        """
        return (yield from self._decode_blocks_standard(ctx, token, deps))

    def _decode_step(self, ctx: _SequenceContext, token: int,
                     deps: list[Op]) -> tuple[np.ndarray, Op]:
        """One decode token under the solo driver (substrate; not a hook)."""
        return self._drive_blocks(
            ctx, self._decode_blocks(ctx, token, deps)
        )
