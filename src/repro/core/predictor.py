"""Next-layer expert prediction (paper §IV-C and observation (3)).

The predictor applies block ``i+1``'s gating function to the hidden states
produced by block ``i``'s non-MoE computation.  Because transformer layers
are residual, consecutive hidden states are strongly correlated and the
prediction is accurate once the residual stream has stabilized (after the
first few blocks) -- the same mechanism the paper measures at 84.11 %
average accuracy for Mixtral 8x7B.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.transformer import MoETransformer

PREDICTION_START_BLOCK_DEFAULT = 4


@dataclass(frozen=True)
class ExpertPrediction:
    """A predicted routing for one upcoming block."""

    block: int
    logits: np.ndarray
    experts: np.ndarray  # (top_k,) descending score


class NextLayerPredictor:
    """Predicts block ``i+1``'s expert selection from block ``i``'s state."""

    def __init__(self, model: MoETransformer,
                 start_block: int = PREDICTION_START_BLOCK_DEFAULT) -> None:
        if start_block < 0:
            raise ValueError("start_block must be non-negative")
        self.model = model
        self.start_block = start_block

    def can_predict_from(self, block_idx: int) -> bool:
        """Whether a prediction issued at ``block_idx`` is usable.

        The paper enables prediction for ``i >= start_block`` and falls
        back to the original gate for earlier blocks, where the residual
        stream still changes too quickly (Fig. 5).
        """
        return (
            block_idx >= self.start_block
            and block_idx + 1 < self.model.n_blocks
        )

    def predict(self, block_idx: int,
                h_att: np.ndarray) -> ExpertPrediction:
        """Predict block ``block_idx + 1`` from block ``block_idx``'s state.

        Args:
            block_idx: the block whose non-MoE output is available.
            h_att: that block's post-attention hidden state ``(1, d)``.
        """
        if block_idx + 1 >= self.model.n_blocks:
            raise ValueError("no next block to predict")
        next_block = self.model.blocks[block_idx + 1]
        logits = next_block.gate_logits(np.atleast_2d(h_att))[0]
        top_k = self.model.top_k
        experts = np.argsort(-logits, kind="stable")[:top_k]
        return ExpertPrediction(
            block=block_idx + 1, logits=logits, experts=experts
        )
