"""Mixtral-Offloading baseline.

Mixtral-Offloading (Eliseev & Mazur, 2023) keeps a fixed number of expert
slots per layer on the GPU with LRU replacement and accelerates the
unavoidable uploads with mixed quantization: experts cross PCIe in
compressed form (we model the HQQ-style ~4-bit path as a configurable
``quant_ratio`` of the fp16 payload) and pay a small dequantization op on
arrival.  All expert compute still happens on the GPU, so a cache miss
stalls the block on the (smaller) transfer.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import BaseEngine, BlockPlan, _SequenceContext
from repro.hardware.platform import Platform
from repro.hardware.timeline import GPU, Op
from repro.memory.cache import CacheConfig
from repro.memory.lru import LRUExpertCache
from repro.model.zoo import ModelBundle

DEFAULT_QUANT_RATIO = 0.25
# Measured Mixtral-Offloading deployments move quantized experts as many
# small layer-sharded buffers through Python-managed staging, reaching a
# far lower fraction of PCIe bandwidth than one contiguous pinned copy;
# the factor below derates its uploads accordingly (its end-to-end rate on
# the paper's platform is below one token per second, Fig. 9).
DEFAULT_STREAM_OVERHEAD = 3.0


class MixtralOffloadingEngine(BaseEngine):
    """LRU expert cache with quantized uploads."""

    name = "mixtral-offloading"

    def __init__(
        self,
        bundle: ModelBundle,
        platform: Platform,
        cache_config: CacheConfig | None = None,
        calibration_probs: np.ndarray | None = None,
        quant_ratio: float = DEFAULT_QUANT_RATIO,
        stream_overhead: float = DEFAULT_STREAM_OVERHEAD,
    ) -> None:
        super().__init__(
            bundle, platform,
            cache_config=cache_config or CacheConfig(ecr=0.5),
            calibration_probs=calibration_probs,
        )
        if not 0 < quant_ratio <= 1:
            raise ValueError("quant_ratio must be in (0, 1]")
        if stream_overhead < 1:
            raise ValueError("stream_overhead must be >= 1")
        self.quant_ratio = quant_ratio
        self.stream_overhead = stream_overhead

    def _begin_sequence(self, ctx: _SequenceContext) -> None:
        lru: list[LRUExpertCache] = []
        probs = self.calibration_probs
        for block_idx in range(self.model.n_blocks):
            resident = list(ctx.placement.gpu_experts(block_idx))
            cache = LRUExpertCache(capacity=max(len(resident), 0))
            if probs is not None:
                resident.sort(key=lambda e: probs[block_idx][e])
            cache.seed([int(e) for e in resident])
            lru.append(cache)
        ctx.policy = lru

    def _policy_state_dict(self, state):
        return {
            "lru": [cache.to_state_dict() for cache in state.policy],
        }

    def _restore_policy(self, state, payload):
        state.policy = [
            LRUExpertCache.from_state_dict(cache)
            for cache in payload["lru"]
        ]

    def _ensure_resident(self, ctx: _SequenceContext, block_idx: int,
                         activated: np.ndarray,
                         deps: list[Op]) -> BlockPlan:
        extra: dict[int, list[Op]] = {}
        cache = ctx.policy[block_idx]
        force_gpu: set[int] = set()
        for expert in np.atleast_1d(activated):
            expert = int(expert)
            if cache.capacity > 0 and expert in cache:
                cache.touch(expert)
                continue
            up = ctx.timeline.add(
                "h2d",
                self.stream_overhead
                * self.cost_model.expert_transfer_time(self.quant_ratio),
                deps=deps,
                label=f"up E{expert}@B{block_idx}",
                kind="expert_upload",
            )
            from repro.hardware.device import DeviceKind
            ctx.placement.set_device(block_idx, expert, DeviceKind.GPU)
            ctx.counters.expert_uploads += 1
            dequant = ctx.timeline.add(
                GPU,
                self.cost_model.dequant_time(
                    self.platform.gpu, self.quant_ratio
                ),
                deps=[up],
                label=f"dequant E{expert}@B{block_idx}",
                kind="dequant",
            )
            extra[expert] = [dequant]
            if cache.capacity > 0:
                evicted = cache.admit(expert)
                if evicted is not None:
                    self._drop_expert(ctx, block_idx, int(evicted))
            else:
                self._drop_expert(ctx, block_idx, expert)
        # All activated experts execute on the GPU: even one evicted by a
        # sibling's admission before executing runs out of its staging
        # buffer (Mixtral-Offloading never computes experts on the CPU).
        force_gpu.update(int(e) for e in np.atleast_1d(activated))
        return BlockPlan(extra_deps=extra, force_gpu=force_gpu)

    def _prepare_prefill_block(self, ctx, block_idx, activated, activity,
                               deps):
        return self._ensure_resident(ctx, block_idx, activated, deps)

    def _prepare_decode_block(self, ctx, block_idx, activated, deps):
        return self._ensure_resident(ctx, block_idx, activated, deps)
