"""Baseline engines evaluated against DAOP in the paper."""

from repro.core.baselines.deepspeed_mii import DeepSpeedMIIEngine
from repro.core.baselines.fiddler import FiddlerEngine
from repro.core.baselines.mixtral_offloading import MixtralOffloadingEngine
from repro.core.baselines.moe_infinity import MoEInfinityEngine
from repro.core.baselines.official import OfficialEngine
from repro.core.baselines.on_demand import MoEOnDemandEngine
from repro.core.baselines.pregated import PreGatedMoEEngine

__all__ = [
    "DeepSpeedMIIEngine",
    "FiddlerEngine",
    "MixtralOffloadingEngine",
    "MoEInfinityEngine",
    "OfficialEngine",
    "MoEOnDemandEngine",
    "PreGatedMoEEngine",
]
