"""The official (oracle) engine: every expert on the GPU, exact math.

This corresponds to the paper's "Official" rows (ECR = 100 %): no
placement constraints, no approximation.  It serves both as a performance
reference and as the accuracy oracle the harness scores other engines
against.
"""

from __future__ import annotations

from repro.core.engine import BaseEngine
from repro.hardware.platform import Platform
from repro.memory.placement import ExpertPlacement
from repro.model.zoo import ModelBundle


class OfficialEngine(BaseEngine):
    """All experts GPU-resident; the standard dataflow needs no hooks."""

    name = "official"

    def __init__(self, bundle: ModelBundle, platform: Platform) -> None:
        placement = ExpertPlacement.all_on_gpu(
            bundle.model.n_blocks, bundle.model.n_experts
        )
        super().__init__(bundle, platform, initial_placement=placement)
