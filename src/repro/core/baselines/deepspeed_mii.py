"""DeepSpeed-MII-style baseline.

DeepSpeed-MII brings fast kernels and blocked KV caching but -- as the
paper notes -- "lack[s] an efficient expert offloading mechanism": when
the model does not fit in GPU memory, expert weights stream across PCIe
for every use without persisting in a device-side cache.  We model this as
an engine whose experts always live in host memory and are uploaded
through a scratch buffer each time they are activated; compute itself runs
at a slightly higher GPU efficiency (the optimized kernels), which is
irrelevant next to the transfer wall.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.engine import BaseEngine, BlockPlan, _SequenceContext
from repro.hardware.platform import Platform
from repro.hardware.timeline import Op
from repro.memory.placement import ExpertPlacement
from repro.model.zoo import ModelBundle

KERNEL_SPEEDUP = 1.12


class DeepSpeedMIIEngine(BaseEngine):
    """Streaming baseline: every expert use is a fresh PCIe upload."""

    name = "deepspeed-mii"

    def __init__(self, bundle: ModelBundle, platform: Platform) -> None:
        # Optimized CUDA kernels: bump the GPU efficiency a little.
        gpu = dataclasses.replace(
            platform.gpu,
            mem_efficiency=min(platform.gpu.mem_efficiency * KERNEL_SPEEDUP,
                               1.0),
            compute_efficiency=min(
                platform.gpu.compute_efficiency * KERNEL_SPEEDUP, 1.0
            ),
        )
        platform = dataclasses.replace(platform, gpu=gpu)
        placement = ExpertPlacement.all_on_cpu(
            bundle.model.n_blocks, bundle.model.n_experts
        )
        super().__init__(bundle, platform, initial_placement=placement)

    def _stream_experts(self, ctx: _SequenceContext, block_idx: int,
                        activated: np.ndarray,
                        deps: list[Op]) -> BlockPlan:
        extra: dict[int, list[Op]] = {}
        force_gpu: set[int] = set()
        for expert in np.atleast_1d(activated):
            expert = int(expert)
            op = self._upload_expert(ctx, block_idx, expert, deps)
            self._drop_expert(ctx, block_idx, expert)
            extra[expert] = [op]
            force_gpu.add(expert)
        return BlockPlan(extra_deps=extra, force_gpu=force_gpu)

    def _prepare_prefill_block(self, ctx, block_idx, activated, activity,
                               deps):
        return self._stream_experts(ctx, block_idx, activated, deps)

    def _prepare_decode_block(self, ctx, block_idx, activated, deps):
        return self._stream_experts(ctx, block_idx, activated, deps)
