"""Pre-gated-MoE-style baseline (Hwang et al., ISCA 2024).

Pre-gated MoE prefetches the *next* block's experts while the current
block computes, using a predictive gate one layer ahead.  The prefetch
overlaps transfer with compute, but with large-scale experts (paper
Table I: one upload costs ~32x a full GPU block) a one-block compute
window cannot hide a 40 ms transfer, so the H2D stream remains the
bottleneck -- the paper's motivation for executing missing experts on the
CPU instead of moving them.

The original system relies on a fine-tuned predictive gate; following the
paper's §V-A we pair the same layer-ahead predictor DAOP uses with
on-demand fallback for mispredictions, and execute everything on the GPU
with exact routing (no accuracy impact).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import BaseEngine, BlockPlan, _SequenceContext
from repro.core.predictor import NextLayerPredictor
from repro.hardware.platform import Platform
from repro.hardware.timeline import GPU, Op
from repro.memory.cache import CacheConfig
from repro.memory.lru import LRUExpertCache
from repro.model.zoo import ModelBundle
from repro.trace.recorder import DECODE as DECODE_PHASE


@dataclass
class _PreGatedSequencePolicy:
    """Per-sequence prefetch state (``ctx.policy``)."""

    lru: list
    pending: dict = field(default_factory=dict)


class PreGatedMoEEngine(BaseEngine):
    """Prefetch predicted next-block experts; upload misses on demand."""

    name = "pregated-moe"

    def __init__(
        self,
        bundle: ModelBundle,
        platform: Platform,
        cache_config: CacheConfig | None = None,
        calibration_probs: np.ndarray | None = None,
        prediction_start_block: int = 0,
    ) -> None:
        super().__init__(
            bundle, platform,
            cache_config=cache_config or CacheConfig(ecr=0.5),
            calibration_probs=calibration_probs,
        )
        self.predictor = NextLayerPredictor(
            self.model, start_block=prediction_start_block
        )

    def _begin_sequence(self, ctx: _SequenceContext) -> None:
        lru: list[LRUExpertCache] = []
        probs = self.calibration_probs
        for block_idx in range(self.model.n_blocks):
            resident = list(ctx.placement.gpu_experts(block_idx))
            cache = LRUExpertCache(capacity=max(len(resident), 0))
            if probs is not None:
                resident.sort(key=lambda e: probs[block_idx][e])
            cache.seed([int(e) for e in resident])
            lru.append(cache)
        ctx.policy = _PreGatedSequencePolicy(lru=lru)

    def _policy_state_dict(self, state):
        policy = state.policy
        return {
            "lru": [cache.to_state_dict() for cache in policy.lru],
            "pending": [
                [block, expert, op.index]
                for (block, expert), op in policy.pending.items()
            ],
        }

    def _restore_policy(self, state, payload):
        state.policy = _PreGatedSequencePolicy(
            lru=[
                LRUExpertCache.from_state_dict(cache)
                for cache in payload["lru"]
            ],
            pending={
                (int(block), int(expert)): state.timeline.ops[int(idx)]
                for block, expert, idx in payload["pending"]
            },
        )

    def _upload_with_lru(self, ctx: _SequenceContext, block_idx: int,
                         expert: int, deps: list[Op]) -> Op | None:
        """Upload ``expert`` evicting via LRU; None if already resident."""
        cache = ctx.policy.lru[block_idx]
        if cache.capacity == 0:
            # No persistent slots: stream through a scratch buffer.
            op = self._upload_expert(ctx, block_idx, expert, deps)
            self._drop_expert(ctx, block_idx, expert)
            return op
        if expert in cache:
            cache.touch(expert)
            return None
        evicted = cache.admit(expert)
        if evicted is not None:
            self._drop_expert(ctx, block_idx, int(evicted))
        return self._upload_expert(ctx, block_idx, expert, deps)

    # ---- prefill: on-demand uploads ------------------------------------------

    def _prepare_prefill_block(self, ctx, block_idx, activated, activity,
                               deps):
        extra: dict[int, list[Op]] = {}
        for expert in np.atleast_1d(activated):
            expert = int(expert)
            op = self._upload_with_lru(ctx, block_idx, expert, deps)
            if op is not None:
                extra[expert] = [op]
        return BlockPlan(
            extra_deps=extra,
            force_gpu={int(e) for e in np.atleast_1d(activated)},
        )

    # ---- decode: predictive prefetch one block ahead --------------------------

    def _decode_blocks(self, ctx: _SequenceContext, token: int,
                       deps: list[Op]):
        """Decode policy generator: prefetch ahead, then yield routed work."""
        h = self.model.embed(np.asarray([token]))
        last_ops = list(deps)
        for block_idx in range(self.model.n_blocks):
            h_att, attn_op = self._attention(
                ctx, block_idx, h, last_ops, DECODE_PHASE
            )
            # Issue the next block's prefetch as soon as this block's
            # non-MoE output exists (overlaps with this block's MoE).
            if self.predictor.can_predict_from(block_idx):
                prediction = self.predictor.predict(block_idx, h_att)
                pred_gate = ctx.timeline.add(
                    GPU,
            self.framework_overhead_s
            + self.cost_model.gate_time(self.platform.gpu, 1),
                    deps=[attn_op],
                    label=f"pred-gate B{block_idx + 1}", kind="gate",
                )
                for expert in prediction.experts:
                    expert = int(expert)
                    op = self._upload_with_lru(
                        ctx, block_idx + 1, expert, [pred_gate]
                    )
                    if op is not None:
                        ctx.policy.pending[(block_idx + 1, expert)] = op

            logits, gate_op = self._gate(ctx, block_idx, h_att, [attn_op])
            routing = self.model.blocks[block_idx].route_from_logits(logits)
            ctx.trace.record(
                DECODE_PHASE, block_idx, ctx.position, routing.experts[0]
            )
            self._record_activation_counters(
                ctx, block_idx, routing.experts[0]
            )
            extra: dict[int, list[Op]] = {}
            for expert in routing.experts[0]:
                expert = int(expert)
                pending = ctx.policy.pending.pop((block_idx, expert), None)
                if pending is not None:
                    extra[expert] = [pending]
                elif not ctx.placement.is_on_gpu(block_idx, expert):
                    # Misprediction: on-demand upload on the critical path.
                    op = self._upload_with_lru(
                        ctx, block_idx, expert, [gate_op]
                    )
                    if op is not None:
                        extra[expert] = [op]
            h, expert_ops = yield from self._routed_block_work(
                ctx, block_idx, h_att, routing.experts, routing.weights,
                [gate_op], extra,
                force_gpu={int(e) for e in routing.experts[0]},
            )
            last_ops = expert_ops
        ctx.position += 1
        done = ctx.timeline.add(
            GPU, 0.0, deps=last_ops, label="decode done", kind="sync"
        )
        return h[-1], done
