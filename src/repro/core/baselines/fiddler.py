"""Fiddler baseline (Kamahori et al., 2024).

Fiddler avoids expert migration entirely: experts missing from the GPU
execute on the CPU, with only the (tiny) activations crossing PCIe.  The
placement is the calibrated initial cache and never changes; there is no
sequence-specific reallocation and no lookahead, so a CPU expert can only
start after its own block's gate has run -- the serialization DAOP's
pre-calculation removes.

This is exactly the standard dataflow of :class:`BaseEngine` with a
calibrated static placement, so no hooks are needed.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import BaseEngine
from repro.hardware.platform import Platform
from repro.memory.cache import CacheConfig
from repro.model.zoo import ModelBundle


class FiddlerEngine(BaseEngine):
    """CPU-GPU orchestration without migration or prediction."""

    name = "fiddler"

    def __init__(
        self,
        bundle: ModelBundle,
        platform: Platform,
        cache_config: CacheConfig | None = None,
        calibration_probs: np.ndarray | None = None,
    ) -> None:
        super().__init__(
            bundle, platform,
            cache_config=cache_config or CacheConfig(ecr=0.5),
            calibration_probs=calibration_probs,
        )
