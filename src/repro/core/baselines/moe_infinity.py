"""MoE-Infinity-style baseline (Xue et al., 2024; paper related work).

MoE-Infinity performs *activation-aware* prefetching: it tracks the
current sequence's expert-activation pattern and prefetches the experts
that sequence is likely to need in upcoming layers, rather than caching
by global popularity.  The paper discusses it among the caching/
prefetching family that "struggle[s] to mask expert loading overhead" at
Mixtral-scale expert sizes; we include it as an extra baseline beyond the
paper's evaluated set.

Implementation: prefill activity initializes per-(block, expert)
sequence scores; during decode, after block ``i`` finishes, the engine
prefetches the highest-scoring non-resident experts of block
``i + lookahead`` (LRU eviction), and scores are updated online with the
observed activations.  Execution is GPU-only; misses upload on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import BaseEngine, BlockPlan, _SequenceContext
from repro.hardware.platform import Platform
from repro.hardware.timeline import Op
from repro.memory.cache import CacheConfig
from repro.memory.lru import LRUExpertCache
from repro.model.serialization import decode_array, encode_array
from repro.model.zoo import ModelBundle


@dataclass
class _InfinitySequencePolicy:
    """Per-sequence prefetch state (``ctx.policy``)."""

    lru: list
    scores: np.ndarray
    pending: dict = field(default_factory=dict)


class MoEInfinityEngine(BaseEngine):
    """Sequence-activation-aware prefetching over an LRU expert cache."""

    name = "moe-infinity"

    def __init__(
        self,
        bundle: ModelBundle,
        platform: Platform,
        cache_config: CacheConfig | None = None,
        calibration_probs: np.ndarray | None = None,
        lookahead: int = 2,
        score_decay: float = 0.9,
    ) -> None:
        super().__init__(
            bundle, platform,
            cache_config=cache_config or CacheConfig(ecr=0.5),
            calibration_probs=calibration_probs,
        )
        if lookahead < 1:
            raise ValueError("lookahead must be positive")
        if not 0.0 < score_decay <= 1.0:
            raise ValueError("score_decay must be in (0, 1]")
        self.lookahead = lookahead
        self.score_decay = score_decay

    def _begin_sequence(self, ctx: _SequenceContext) -> None:
        lru: list[LRUExpertCache] = []
        probs = self.calibration_probs
        for block_idx in range(self.model.n_blocks):
            resident = list(ctx.placement.gpu_experts(block_idx))
            cache = LRUExpertCache(capacity=max(len(resident), 0))
            if probs is not None:
                resident.sort(key=lambda e: probs[block_idx][e])
            cache.seed([int(e) for e in resident])
            lru.append(cache)
        ctx.policy = _InfinitySequencePolicy(
            lru=lru,
            scores=np.zeros(
                (self.model.n_blocks, self.model.n_experts),
                dtype=np.float64,
            ),
        )

    def _policy_state_dict(self, state):
        policy = state.policy
        return {
            "lru": [cache.to_state_dict() for cache in policy.lru],
            "scores": encode_array(policy.scores),
            "pending": [
                [block, expert, op.index]
                for (block, expert), op in policy.pending.items()
            ],
        }

    def _restore_policy(self, state, payload):
        state.policy = _InfinitySequencePolicy(
            lru=[
                LRUExpertCache.from_state_dict(cache)
                for cache in payload["lru"]
            ],
            scores=decode_array(payload["scores"]),
            pending={
                (int(block), int(expert)): state.timeline.ops[int(idx)]
                for block, expert, idx in payload["pending"]
            },
        )

    def _observe(self, ctx: _SequenceContext, block_idx: int,
                 experts) -> None:
        """Exponential-moving-average update of the sequence's pattern."""
        ctx.policy.scores[block_idx] *= self.score_decay
        for expert in np.atleast_1d(experts):
            ctx.policy.scores[block_idx, int(expert)] += 1.0

    def _upload_with_lru(self, ctx: _SequenceContext, block_idx: int,
                         expert: int, deps: list[Op]) -> Op | None:
        cache = ctx.policy.lru[block_idx]
        if cache.capacity == 0:
            op = self._upload_expert(ctx, block_idx, expert, deps)
            self._drop_expert(ctx, block_idx, expert)
            return op
        if expert in cache:
            cache.touch(expert)
            return None
        evicted = cache.admit(expert)
        if evicted is not None:
            self._drop_expert(ctx, block_idx, int(evicted))
        return self._upload_expert(ctx, block_idx, expert, deps)

    # ---- prefill: observe + on-demand uploads ---------------------------------

    def _prepare_prefill_block(self, ctx, block_idx, activated, activity,
                               deps):
        ctx.policy.scores[block_idx] += activity
        extra: dict[int, list[Op]] = {}
        for expert in np.atleast_1d(activated):
            expert = int(expert)
            op = self._upload_with_lru(ctx, block_idx, expert, deps)
            if op is not None:
                extra[expert] = [op]
        return BlockPlan(
            extra_deps=extra,
            force_gpu={int(e) for e in np.atleast_1d(activated)},
        )

    # ---- decode: activation-aware prefetch ------------------------------------

    def _prepare_decode_block(self, ctx, block_idx, activated, deps):
        policy = ctx.policy
        self._observe(ctx, block_idx, activated)
        extra: dict[int, list[Op]] = {}
        # Serve this block's activations (prefetched or on demand).
        for expert in np.atleast_1d(activated):
            expert = int(expert)
            pending = policy.pending.pop((block_idx, expert), None)
            if pending is not None:
                extra[expert] = [pending]
                if expert in policy.lru[block_idx]:
                    policy.lru[block_idx].touch(expert)
                continue
            op = self._upload_with_lru(ctx, block_idx, expert, deps)
            if op is not None:
                extra[expert] = [op]
        # Prefetch the sequence's hottest experts `lookahead` blocks out.
        target = block_idx + self.lookahead
        if target < self.model.n_blocks:
            ranked = np.argsort(-policy.scores[target], kind="stable")
            for expert in ranked[: self.model.top_k]:
                expert = int(expert)
                if policy.scores[target, expert] <= 0.0:
                    break
                if ctx.placement.is_on_gpu(target, expert):
                    continue
                if (target, expert) in policy.pending:
                    continue
                op = self._upload_with_lru(ctx, target, expert, deps)
                if op is not None:
                    policy.pending[(target, expert)] = op
        return BlockPlan(
            extra_deps=extra,
            force_gpu={int(e) for e in np.atleast_1d(activated)},
        )
