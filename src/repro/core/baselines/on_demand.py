"""MoE-OnDemand baseline.

The placement starts from the calibrated cache, exactly like DAOP, but any
activated expert that is not GPU-resident is *migrated* to the GPU before
executing (evicting the least-recently-used cached expert of that block).
Every miss therefore pays the full expert-upload latency on the critical
path -- the ~32x-slower-than-compute transfer the paper's Table I
quantifies -- which is what caps this family of methods below one token
per second on Mixtral 8x7B.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import BaseEngine, BlockPlan, _SequenceContext
from repro.hardware.platform import Platform
from repro.hardware.timeline import Op
from repro.memory.cache import CacheConfig
from repro.memory.policies import LRU, EvictionPolicyCache
from repro.model.zoo import ModelBundle


class MoEOnDemandEngine(BaseEngine):
    """Caching baseline: migrate missing experts to the GPU on demand.

    The eviction policy is pluggable (LRU by default, matching the paper's
    description; LFU and calibrated-priority are available for the
    eviction-policy ablation).
    """

    name = "moe-ondemand"

    def __init__(
        self,
        bundle: ModelBundle,
        platform: Platform,
        cache_config: CacheConfig | None = None,
        calibration_probs=None,
        eviction_policy: str = LRU,
    ) -> None:
        super().__init__(
            bundle, platform,
            cache_config=cache_config or CacheConfig(ecr=0.5),
            calibration_probs=calibration_probs,
        )
        self.eviction_policy = eviction_policy

    def _begin_sequence(self, ctx: _SequenceContext) -> None:
        # Per-block policy cache over the GPU-resident experts, seeded from
        # the calibrated placement (coldest first so hot experts survive).
        caches: list[EvictionPolicyCache] = []
        probs = self.calibration_probs
        for block_idx in range(self.model.n_blocks):
            resident = list(ctx.placement.gpu_experts(block_idx))
            cache = EvictionPolicyCache(
                capacity=max(len(resident), 0),
                policy=self.eviction_policy,
                priorities=None if probs is None else probs[block_idx],
            )
            if probs is not None:
                resident.sort(key=lambda e: probs[block_idx][e])
            cache.seed([int(e) for e in resident])
            caches.append(cache)
        ctx.policy = caches

    def _policy_state_dict(self, state):
        return {
            "caches": [cache.to_state_dict() for cache in state.policy],
        }

    def _restore_policy(self, state, payload):
        state.policy = [
            EvictionPolicyCache.from_state_dict(cache)
            for cache in payload["caches"]
        ]

    def _ensure_resident(self, ctx: _SequenceContext, block_idx: int,
                         activated: np.ndarray,
                         deps: list[Op]) -> BlockPlan:
        extra: dict[int, list[Op]] = {}
        cache = ctx.policy[block_idx]
        activated = [int(e) for e in np.atleast_1d(activated)]
        if cache.capacity == 0:
            # No GPU slots at all: experts stream through a scratch buffer;
            # each use is a fresh upload and nothing stays resident.
            force_gpu: set[int] = set()
            for expert in activated:
                op = self._upload_expert(ctx, block_idx, expert, deps)
                self._drop_expert(ctx, block_idx, expert)
                extra[expert] = [op]
                force_gpu.add(expert)
            return BlockPlan(extra_deps=extra, force_gpu=force_gpu)
        # Hits refresh recency; misses upload + evict LRU.  If the cache is
        # smaller than the activated set, an activated expert can be
        # evicted by a sibling's admission before it executes -- it still
        # runs on the GPU out of the staging buffer its upload landed in.
        for expert in activated:
            if expert in cache:
                cache.touch(expert)
                continue
            evicted = cache.admit(expert)
            if evicted is not None:
                self._drop_expert(ctx, block_idx, int(evicted))
            op = self._upload_expert(ctx, block_idx, expert, deps)
            extra[expert] = [op]
        return BlockPlan(extra_deps=extra, force_gpu=set(activated))

    def _prepare_prefill_block(self, ctx, block_idx, activated, activity,
                               deps):
        return self._ensure_resident(ctx, block_idx, activated, deps)

    def _prepare_decode_block(self, ctx, block_idx, activated, deps):
        return self._ensure_resident(ctx, block_idx, activated, deps)
