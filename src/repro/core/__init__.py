"""The DAOP engine, its baselines, and the engine factory."""

from __future__ import annotations

import numpy as np

from repro.core.allocation import (
    SWAP_IN_OUT_DEFAULT,
    SwapPlan,
    activity_from_routing,
    plan_block_swaps,
)
from repro.core.baselines import (
    DeepSpeedMIIEngine,
    FiddlerEngine,
    MixtralOffloadingEngine,
    MoEInfinityEngine,
    MoEOnDemandEngine,
    OfficialEngine,
    PreGatedMoEEngine,
)
from repro.core.calibration import calibrate_activation_probs
from repro.core.daop import DAOPEngine, build_daop
from repro.core.engine import (
    SEQ_DECODE,
    SEQ_DONE,
    SEQ_PREFILL,
    BaseEngine,
    BlockPlan,
    EngineCounters,
    GenerationResult,
    GenerationStats,
    SequenceRequest,
    SequenceState,
    StepResult,
)
from repro.core.precalc import DegradationResult, apply_graceful_degradation
from repro.core.predictor import (
    PREDICTION_START_BLOCK_DEFAULT,
    ExpertPrediction,
    NextLayerPredictor,
)
from repro.hardware.platform import Platform
from repro.memory.cache import CacheConfig
from repro.model.zoo import ModelBundle

ENGINE_NAMES = (
    "official",
    "moe-ondemand",
    "deepspeed-mii",
    "mixtral-offloading",
    "moe-infinity",
    "fiddler",
    "pregated-moe",
    "daop",
)


def build_engine(
    name: str,
    bundle: ModelBundle,
    platform: Platform,
    expert_cache_ratio: float = 0.5,
    calibration_probs: np.ndarray | None = None,
    **kwargs,
) -> BaseEngine:
    """Construct any evaluated engine by name.

    ``calibration_probs`` should come from
    :func:`repro.core.calibration.calibrate_activation_probs` (the paper
    calibrates on ShareGPT); pass ``None`` to fall back to a flat prior.
    The ``official`` and ``deepspeed-mii`` engines ignore the cache ratio
    (they are all-GPU and no-cache respectively).
    """
    config = CacheConfig(ecr=expert_cache_ratio)
    if name == "official":
        return OfficialEngine(bundle, platform)
    if name == "moe-ondemand":
        return MoEOnDemandEngine(
            bundle, platform, cache_config=config,
            calibration_probs=calibration_probs, **kwargs,
        )
    if name == "deepspeed-mii":
        return DeepSpeedMIIEngine(bundle, platform)
    if name == "moe-infinity":
        return MoEInfinityEngine(
            bundle, platform, cache_config=config,
            calibration_probs=calibration_probs, **kwargs,
        )
    if name == "mixtral-offloading":
        return MixtralOffloadingEngine(
            bundle, platform, cache_config=config,
            calibration_probs=calibration_probs, **kwargs,
        )
    if name == "fiddler":
        return FiddlerEngine(
            bundle, platform, cache_config=config,
            calibration_probs=calibration_probs, **kwargs,
        )
    if name == "pregated-moe":
        return PreGatedMoEEngine(
            bundle, platform, cache_config=config,
            calibration_probs=calibration_probs, **kwargs,
        )
    if name == "daop":
        return DAOPEngine(
            bundle, platform, cache_config=config,
            calibration_probs=calibration_probs, **kwargs,
        )
    raise KeyError(f"unknown engine {name!r}; known: {ENGINE_NAMES}")


__all__ = [
    "SWAP_IN_OUT_DEFAULT",
    "SwapPlan",
    "activity_from_routing",
    "plan_block_swaps",
    "DeepSpeedMIIEngine",
    "FiddlerEngine",
    "MixtralOffloadingEngine",
    "MoEInfinityEngine",
    "MoEOnDemandEngine",
    "OfficialEngine",
    "PreGatedMoEEngine",
    "calibrate_activation_probs",
    "DAOPEngine",
    "build_daop",
    "BaseEngine",
    "BlockPlan",
    "EngineCounters",
    "GenerationResult",
    "GenerationStats",
    "SequenceRequest",
    "SequenceState",
    "StepResult",
    "SEQ_PREFILL",
    "SEQ_DECODE",
    "SEQ_DONE",
    "DegradationResult",
    "apply_graceful_degradation",
    "PREDICTION_START_BLOCK_DEFAULT",
    "ExpertPrediction",
    "NextLayerPredictor",
    "ENGINE_NAMES",
    "build_engine",
]
