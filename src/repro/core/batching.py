"""Cross-sequence expert gathering: the block-work protocol.

The engines' decode policies (true-gated, predictive pre-calculation,
prefetch-ahead) and the shared prefill pass are all expressed as
generators that *describe* each block's routed expert executions as
:class:`BlockWork` instead of executing them inline
(:meth:`~repro.core.engine.BaseEngine._decode_blocks`,
:meth:`~repro.core.engine.BaseEngine._prefill_blocks`).  A driver then
decides how the described work runs:

- solo (:meth:`~repro.core.engine.BaseEngine.step`): each call executes
  immediately, in call order, exactly as the pre-protocol engines did —
  batch size one stays bitwise identical by construction;
- gathered (:meth:`~repro.core.engine.BaseEngine.step_batch`): calls
  from *different sequences* that target the same ``(block, expert,
  device)`` are grouped into one simulated kernel whose cost follows the
  hardware batch-efficiency curves
  (:meth:`~repro.hardware.cost_model.CostModel.batch_efficiency`), while
  each participant's functional values are still evaluated row-by-row
  through the cache-aware stage API
  (:meth:`~repro.model.moe_block.MoEBlock.expert_forward_rows`), so the
  token stream is identical to a solo run token for token.

This module holds the protocol's data types; the drivers live on
:class:`~repro.core.engine.BaseEngine` so they share the engines'
substrate (cost model, timeline, counters) under the same lint contract.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.timeline import Op

#: Execution locations an :class:`ExpertCall` may name.
GPU_LOC = "gpu"
CPU_LOC = "cpu"


@dataclass(frozen=True)
class ExpertCall:
    """One routed expert execution requested by a block-work generator.

    Attributes:
        expert: expert id within the block.
        location: where the expert's weights reside for this execution
            (``"gpu"`` or ``"cpu"``); CPU calls pay the activation
            round-trip.
        h_att: the sequence's post-attention hidden states ``(n, d)``
            (borrowed, never mutated).
        deps: ops this execution must wait for — all from the *own*
            sequence's timeline (gate, uploads, pre-calc round-trips).
        token_idx: optional row selection of ``h_att`` exactly as in
            :meth:`~repro.model.moe_block.MoEBlock.expert_forward`.
    """

    expert: int
    location: str
    h_att: np.ndarray
    deps: tuple[Op, ...]
    token_idx: np.ndarray | None = None

    @property
    def n_rows(self) -> int:
        """Token rows this call feeds through the expert."""
        if self.token_idx is None:
            return int(np.atleast_2d(self.h_att).shape[0])
        return int(len(self.token_idx))


@dataclass(frozen=True)
class BlockWork:
    """All routed expert executions one sequence requests for one block.

    Yielded by an engine's ``_decode_blocks`` or ``_prefill_blocks``
    generator; the driver sends back a list of ``(output, op)`` pairs
    aligned with ``calls``.  ``calls`` may be empty (every selected
    expert was pre-calculated) — the yield still happens so all
    sequences advance block-locked.
    """

    block_idx: int
    calls: tuple[ExpertCall, ...]


@dataclass
class GatherStats:
    """Physical-kernel accounting of gathered execution.

    One *logical* op is one sequence's share of a stage (what the
    per-sequence timelines and counters record); one *physical* kernel
    is one gathered launch serving every participant at once.  The gap
    between the two is the amortization the gathered scheduler mode
    buys.

    ``expert_*`` and ``lm_head_*`` are whole-run totals across both
    phases; the ``prefill_*`` fields split out the gathered-prefill
    share (decode's share is the difference, exposed as the
    ``decode_*`` properties).  ``attn_*`` and ``gate_*`` count the
    non-MoE stages, which only gather during prefill cohorts.
    """

    expert_ops: int = 0
    expert_kernels: int = 0
    gathered_rows: int = 0
    lm_head_ops: int = 0
    lm_head_kernels: int = 0
    max_group_size: int = 0
    attn_ops: int = 0
    attn_kernels: int = 0
    gate_ops: int = 0
    gate_kernels: int = 0
    prefill_expert_ops: int = 0
    prefill_expert_kernels: int = 0
    prefill_lm_head_ops: int = 0
    prefill_lm_head_kernels: int = 0

    @property
    def expert_amortization(self) -> float:
        """Logical expert ops per physical kernel launch (>= 1.0)."""
        if self.expert_kernels == 0:
            return 1.0
        return self.expert_ops / self.expert_kernels

    @property
    def prefill_expert_amortization(self) -> float:
        """Prefill-phase logical expert ops per physical kernel."""
        if self.prefill_expert_kernels == 0:
            return 1.0
        return self.prefill_expert_ops / self.prefill_expert_kernels

    @property
    def decode_expert_ops(self) -> int:
        """Decode-phase share of the logical expert ops."""
        return self.expert_ops - self.prefill_expert_ops

    @property
    def decode_expert_kernels(self) -> int:
        """Decode-phase share of the physical expert kernels."""
        return self.expert_kernels - self.prefill_expert_kernels

    @property
    def decode_expert_amortization(self) -> float:
        """Decode-phase logical expert ops per physical kernel."""
        if self.decode_expert_kernels == 0:
            return 1.0
        return self.decode_expert_ops / self.decode_expert_kernels

    def merge(self, other: "GatherStats") -> None:
        """Fold another accumulator into this one (cross-batch totals)."""
        self.expert_ops += other.expert_ops
        self.expert_kernels += other.expert_kernels
        self.gathered_rows += other.gathered_rows
        self.lm_head_ops += other.lm_head_ops
        self.lm_head_kernels += other.lm_head_kernels
        self.max_group_size = max(self.max_group_size,
                                  other.max_group_size)
        self.attn_ops += other.attn_ops
        self.attn_kernels += other.attn_kernels
        self.gate_ops += other.gate_ops
        self.gate_kernels += other.gate_kernels
        self.prefill_expert_ops += other.prefill_expert_ops
        self.prefill_expert_kernels += other.prefill_expert_kernels
        self.prefill_lm_head_ops += other.prefill_lm_head_ops
        self.prefill_lm_head_kernels += other.prefill_lm_head_kernels

    def to_state_dict(self) -> dict:
        """Serialize the accumulator for a checkpoint."""
        return {
            "expert_ops": self.expert_ops,
            "expert_kernels": self.expert_kernels,
            "gathered_rows": self.gathered_rows,
            "lm_head_ops": self.lm_head_ops,
            "lm_head_kernels": self.lm_head_kernels,
            "max_group_size": self.max_group_size,
            "attn_ops": self.attn_ops,
            "attn_kernels": self.attn_kernels,
            "gate_ops": self.gate_ops,
            "gate_kernels": self.gate_kernels,
            "prefill_expert_ops": self.prefill_expert_ops,
            "prefill_expert_kernels": self.prefill_expert_kernels,
            "prefill_lm_head_ops": self.prefill_lm_head_ops,
            "prefill_lm_head_kernels": self.prefill_lm_head_kernels,
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "GatherStats":
        """Rebuild an accumulator captured by :meth:`to_state_dict`.

        Pre-gathered-prefill checkpoints lack the per-stage fields;
        they default to zero, which reads as "nothing gathered".
        """
        return cls(**{key: int(value) for key, value in payload.items()})


def group_block_work(works: list) -> dict:
    """Group calls across sequences by ``(block, expert, location)``.

    Args:
        works: list of ``BlockWork`` items, one per sequence, in
            admission order.

    Returns:
        Mapping from ``(block_idx, expert, location)`` to the list of
        ``(work_index, call_index)`` participants, insertion-ordered by
        sequence then call — the stable per-sequence ordering that keeps
        gathered execution deterministic and batch=1 bitwise-identical.
    """
    groups: dict = {}
    for i, work in enumerate(works):
        for j, call in enumerate(work.calls):
            key = (work.block_idx, call.expert, call.location)
            groups.setdefault(key, []).append((i, j))
    return groups
