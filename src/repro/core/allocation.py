"""Sequence-specific expert allocation (paper Algorithm 1).

During prefill, each block's router tells us how many prompt tokens each
expert attracts for *this particular sequence*.  The most active
CPU-resident experts are paired with the least active GPU-resident experts
and swapped when the CPU expert's activity exceeds the GPU expert's by the
``SwapInOut`` threshold (1.05 in the paper), so near-ties do not trigger
pointless migrations.  Migration is restricted to the prefill phase; the
resulting placement is held fixed throughout decode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memory.placement import ExpertPlacement

SWAP_IN_OUT_DEFAULT = 1.05


@dataclass(frozen=True)
class SwapPlan:
    """One planned swap: ``hot_expert`` in (to GPU), ``cold_expert`` out."""

    block: int
    hot_expert: int
    cold_expert: int
    hot_activity: float
    cold_activity: float


def plan_block_swaps(
    block_idx: int,
    activity: np.ndarray,
    placement: ExpertPlacement,
    swap_threshold: float = SWAP_IN_OUT_DEFAULT,
) -> list[SwapPlan]:
    """Algorithm 1 lines 5-13 for one block.

    Args:
        block_idx: the block being (re)allocated.
        activity: per-expert token counts from this block's gate over the
            prompt (the expert's "activity level", Alg. 1 lines 7-8).
        placement: current placement; not mutated here.
        swap_threshold: the paper's ``SwapInOut`` comparison threshold.

    Returns:
        Swap plans in pairing order (hottest CPU expert against coldest
        GPU expert first).
    """
    activity = np.asarray(activity, dtype=np.float64)
    if activity.ndim != 1 or activity.size != placement.n_experts:
        raise ValueError("activity must be a per-expert 1-D vector")
    if swap_threshold <= 0:
        raise ValueError("swap_threshold must be positive")

    swap_num = placement.n_experts // 2  # SwapNum = 0.5 * numExperts
    gpu_experts = placement.gpu_experts(block_idx)
    cpu_experts = placement.cpu_experts(block_idx)
    if gpu_experts.size == 0 or cpu_experts.size == 0:
        return []

    # Hottest CPU experts, descending activity (Alg. 1 line 7).
    hot_order = cpu_experts[np.argsort(-activity[cpu_experts], kind="stable")]
    hot = hot_order[:swap_num]
    # Coldest GPU experts, ascending activity (Alg. 1 line 8).
    cold_order = gpu_experts[np.argsort(activity[gpu_experts], kind="stable")]
    cold = cold_order[:swap_num]

    plans: list[SwapPlan] = []
    for hot_expert, cold_expert in zip(hot, cold):
        hot_act = float(activity[hot_expert])
        cold_act = float(activity[cold_expert])
        if hot_act >= swap_threshold * cold_act and hot_act > 0:
            plans.append(
                SwapPlan(
                    block=block_idx,
                    hot_expert=int(hot_expert),
                    cold_expert=int(cold_expert),
                    hot_activity=hot_act,
                    cold_activity=cold_act,
                )
            )
    return plans


def activity_from_routing(experts: np.ndarray, n_experts: int) -> np.ndarray:
    """Token counts per expert from a routing matrix ``(n_tokens, top_k)``."""
    counts = np.zeros(n_experts, dtype=np.float64)
    for expert in np.asarray(experts).ravel():
        counts[int(expert)] += 1.0
    return counts
