"""Graceful degradation for prediction-based pre-calculation (paper §IV-C-b).

When both predicted experts of an upcoming block are CPU-resident, DAOP
replaces the lower-scored one with the highest-scored expert already on
the GPU: the replacement sees the block's *true* hidden states (it runs on
the GPU in-line), which the paper argues contributes strongly to the
output even at a lower gate score.  If no GPU-resident alternative exists,
the original selection stands.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memory.placement import ExpertPlacement


@dataclass(frozen=True)
class DegradationResult:
    """Outcome of applying graceful degradation to a predicted set."""

    experts: np.ndarray        # final executed expert set, descending score
    replaced: tuple[int, ...]  # experts dropped from the prediction
    substitutes: tuple[int, ...]  # GPU experts brought in


def apply_graceful_degradation(
    block_idx: int,
    predicted_experts: np.ndarray,
    logits: np.ndarray,
    placement: ExpertPlacement,
    max_cpu_experts: int = 1,
    enabled: bool = True,
) -> DegradationResult:
    """Cap the number of CPU-resident experts in the executed set.

    Args:
        block_idx: the block the prediction targets.
        predicted_experts: predicted expert ids, descending gate score.
        logits: the full predicted gate logits for the block.
        placement: current expert placement.
        max_cpu_experts: maximum CPU-resident experts tolerated (the paper
            uses 1 for top-2 routing: only when *both* predicted experts
            are on the CPU is the weaker one replaced).
        enabled: ablation switch; when ``False`` the prediction is kept.

    Returns:
        The final executed expert set plus the replacement bookkeeping.
    """
    predicted = np.asarray(predicted_experts, dtype=np.int64)
    if not enabled or max_cpu_experts >= predicted.size:
        return DegradationResult(predicted, (), ())

    on_cpu = [
        e for e in predicted if not placement.is_on_gpu(block_idx, int(e))
    ]
    if len(on_cpu) <= max_cpu_experts:
        return DegradationResult(predicted, (), ())

    # Replace the lowest-scored CPU-resident experts with the best unused
    # GPU-resident experts.
    final = list(int(e) for e in predicted)
    replaced: list[int] = []
    substitutes: list[int] = []
    gpu_pool = [
        int(e)
        for e in np.argsort(-np.asarray(logits), kind="stable")
        if placement.is_on_gpu(block_idx, int(e)) and int(e) not in final
    ]
    # CPU-resident predictions, weakest first.
    cpu_sorted = sorted(on_cpu, key=lambda e: logits[int(e)])
    excess = len(on_cpu) - max_cpu_experts
    for expert in cpu_sorted[:excess]:
        if not gpu_pool:
            break  # no suitable alternative: keep the original selection
        substitute = gpu_pool.pop(0)
        final[final.index(int(expert))] = substitute
        replaced.append(int(expert))
        substitutes.append(substitute)

    final_arr = np.asarray(final, dtype=np.int64)
    # Keep descending-score order for downstream weight renormalization.
    order = np.argsort(-np.asarray(logits)[final_arr], kind="stable")
    return DegradationResult(
        experts=final_arr[order],
        replaced=tuple(replaced),
        substitutes=tuple(substitutes),
    )
