"""Expert-activation calibration (paper §IV-A).

DAOP initializes its GPU expert cache from decode-phase activation
probabilities measured on a calibration dataset (the paper uses ShareGPT,
which is disjoint from the downstream evaluation tasks).  The calibrator
runs the exact functional model -- no placement effects exist yet at
calibration time -- and returns the ``(n_blocks, n_experts)`` probability
matrix consumed by
:func:`repro.memory.cache.build_calibrated_placement`.
"""

from __future__ import annotations

import numpy as np

from repro.model.zoo import ModelBundle
from repro.workloads.datasets import SHAREGPT, DatasetSpec
from repro.workloads.generator import SequenceGenerator


def calibrate_activation_probs(
    bundle: ModelBundle,
    dataset: DatasetSpec = SHAREGPT,
    n_sequences: int = 8,
    prompt_len: int = 32,
    decode_len: int = 48,
    seed: int = 0,
) -> np.ndarray:
    """Measure decode-phase expert activation probabilities.

    Each calibration sequence is prefetched through the exact model, then
    its continuation is teacher-forced token by token while every block's
    routing decision is counted.

    Returns:
        ``(n_blocks, n_experts)`` matrix whose rows sum to ``top_k``.
    """
    model = bundle.model
    generator = SequenceGenerator(dataset, bundle.vocab, seed=seed)
    counts = np.zeros((model.n_blocks, model.n_experts), dtype=np.float64)
    total_tokens = 0
    for idx in range(n_sequences):
        sequence = generator.sample_sequence(
            prompt_len, decode_len, sample_idx=idx
        )
        caches = model.new_caches()
        model.forward_exact(sequence.prompt_tokens, caches)
        position = sequence.prompt_tokens.size
        for token in sequence.continuation_tokens:
            _, decisions = model.forward_exact(
                np.asarray([token]), caches, start_pos=position
            )
            for block_idx, decision in enumerate(decisions):
                for expert in decision.experts[0]:
                    counts[block_idx, int(expert)] += 1.0
            position += 1
            total_tokens += 1
    if total_tokens == 0:
        raise ValueError("calibration produced no decode tokens")
    return counts / total_tokens
