"""The DAOP inference engine (paper §IV).

DAOP combines three mechanisms on top of the shared substrate:

1. **Calibrated memory initialization** -- the GPU expert cache starts
   from decode-phase activation probabilities measured on a calibration
   dataset (§IV-A, :mod:`repro.core.calibration`).
2. **Sequence-specific expert allocation** -- during prefill, each block's
   per-sequence expert activity drives hot-CPU/cold-GPU swaps (§IV-B,
   Algorithm 1, :mod:`repro.core.allocation`); migrations overlap with
   prefill compute and the placement then stays fixed for decode.
3. **Prediction-based expert pre-calculation** -- during decode, block
   ``i+1``'s gate evaluated on block ``i``'s non-MoE output predicts the
   next block's experts (§IV-C); predicted CPU-resident experts start
   computing immediately on the CPU using those (one-block-stale) hidden
   states, and graceful degradation swaps the weaker of two CPU-resident
   predictions for the best GPU-resident expert.

The prediction path is an *approximation*: for predicted blocks the
executed expert set comes from the predictive gate (plus degradation), and
CPU experts consume stale inputs.  This is exactly the accuracy/latency
trade Tables V and VI of the paper measure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.allocation import SWAP_IN_OUT_DEFAULT, plan_block_swaps
from repro.core.batching import CPU_LOC, GPU_LOC, BlockWork, ExpertCall
from repro.core.engine import BaseEngine, BlockPlan, _SequenceContext
from repro.core.precalc import apply_graceful_degradation
from repro.core.predictor import (
    PREDICTION_START_BLOCK_DEFAULT,
    NextLayerPredictor,
)
from repro.hardware.platform import Platform
from repro.hardware.timeline import GPU, Op
from repro.memory.cache import CacheConfig
from repro.model.gating import Router
from repro.model.serialization import decode_array, encode_array
from repro.model.zoo import ModelBundle
from repro.trace.recorder import DECODE


@dataclass
class _DAOPSequencePolicy:
    """Per-sequence DAOP policy state (``ctx.policy``).

    Attributes:
        window: rolling per-token ``(n_blocks, n_experts)`` routing
            counts for the decode re-allocation extension.
        steps: decode tokens completed so far.
        pending_uploads: in-flight decode-migration uploads keyed by
            ``(block, expert)``.
    """

    window: deque
    steps: int = 0
    pending_uploads: dict = field(default_factory=dict)


class DAOPEngine(BaseEngine):
    """Data-aware offloading with predictive pre-calculation."""

    name = "daop"

    def __init__(
        self,
        bundle: ModelBundle,
        platform: Platform,
        cache_config: CacheConfig | None = None,
        calibration_probs: np.ndarray | None = None,
        swap_threshold: float = SWAP_IN_OUT_DEFAULT,
        prediction_start_block: int = PREDICTION_START_BLOCK_DEFAULT,
        graceful_degradation: bool = True,
        max_cpu_experts: int = 1,
        enable_seq_allocation: bool = True,
        enable_precalc: bool = True,
        decode_realloc_interval: int | None = None,
        decode_realloc_window: int = 15,
        decode_realloc_threshold: float = 2.0,
        decode_realloc_min_activity: float = 4.0,
        decode_realloc_max_swaps_per_block: int = 1,
    ) -> None:
        """See class docstring; the last two arguments enable the
        decode-phase re-allocation extension.

        The paper restricts migration to prefill and observes (§VI-B)
        that GSM8K-style within-sequence drift then defeats a small
        cache.  Setting ``decode_realloc_interval = k`` re-runs
        Algorithm 1 every ``k`` decode tokens using routing counts from
        the trailing ``decode_realloc_window`` tokens (the paper's own
        drift analysis uses a 15-token window), with the swap uploads
        overlapped against subsequent decode compute.  ``None`` (the
        default) reproduces the paper's engine exactly.

        Decode swaps use a much stricter policy than prefill (higher
        threshold, a minimum window activity, and a per-block swap cap):
        window counts are small and noisy, and each upload occupies the
        H2D channel the pre-calculation round-trips also need, so churn
        is far more expensive than during prefill.
        """
        super().__init__(
            bundle, platform,
            cache_config=cache_config or CacheConfig(ecr=0.5),
            calibration_probs=calibration_probs,
        )
        if decode_realloc_interval is not None and decode_realloc_interval < 1:
            raise ValueError("decode_realloc_interval must be positive")
        if decode_realloc_window < 1:
            raise ValueError("decode_realloc_window must be positive")
        self.swap_threshold = swap_threshold
        self.predictor = NextLayerPredictor(
            self.model, start_block=prediction_start_block
        )
        self.graceful_degradation = graceful_degradation
        self.max_cpu_experts = max_cpu_experts
        self.enable_seq_allocation = enable_seq_allocation
        self.enable_precalc = enable_precalc
        self.decode_realloc_interval = decode_realloc_interval
        self.decode_realloc_window = decode_realloc_window
        self.decode_realloc_threshold = decode_realloc_threshold
        self.decode_realloc_min_activity = decode_realloc_min_activity
        self.decode_realloc_max_swaps_per_block = (
            decode_realloc_max_swaps_per_block
        )

    def _begin_sequence(self, ctx: _SequenceContext) -> None:
        # Window and pending-upload map are used only when the decode
        # re-allocation extension is enabled; they live on the sequence
        # state so interleaved sequences never share migration state.
        ctx.policy = _DAOPSequencePolicy(
            window=deque(maxlen=self.decode_realloc_window)
        )

    def _policy_state_dict(self, state):
        policy = state.policy
        return {
            "window": [encode_array(counts) for counts in policy.window],
            "steps": policy.steps,
            "pending_uploads": [
                [block, expert, op.index]
                for (block, expert), op in policy.pending_uploads.items()
            ],
        }

    def _restore_policy(self, state, payload):
        state.policy = _DAOPSequencePolicy(
            window=deque(
                (decode_array(counts) for counts in payload["window"]),
                maxlen=self.decode_realloc_window,
            ),
            steps=int(payload["steps"]),
            pending_uploads={
                (int(block), int(expert)): state.timeline.ops[int(idx)]
                for block, expert, idx in payload["pending_uploads"]
            },
        )

    @property
    def pending_upload_keys(self) -> tuple[tuple[int, int], ...]:
        """In-flight decode-migration uploads as ``(block, expert)`` keys.

        Deprecated view of the most recently started sequence (like
        :attr:`BaseEngine.placement`); every key must name a
        GPU-resident expert, since a swap-out purges its pending upload
        (audited by :mod:`repro.audit.invariants`).
        """
        if self._active_state is None or self._active_state.policy is None:
            return ()
        return tuple(sorted(self._active_state.policy.pending_uploads))

    # ---- prefill: Algorithm 1 ---------------------------------------------------

    def _prepare_prefill_block(self, ctx: _SequenceContext, block_idx: int,
                               activated: np.ndarray, activity: np.ndarray,
                               deps: list[Op]) -> BlockPlan:
        if not self.enable_seq_allocation:
            return BlockPlan()
        plans = plan_block_swaps(
            block_idx, activity, ctx.placement, self.swap_threshold
        )
        extra: dict[int, list[Op]] = {}
        for plan in plans:
            # Read-only inference weights: the outgoing expert's host copy
            # is valid, so the swap costs one H2D upload that overlaps with
            # the ongoing prefill compute.
            self._drop_expert(ctx, block_idx, plan.cold_expert)
            up = self._upload_expert(ctx, block_idx, plan.hot_expert, deps)
            extra[plan.hot_expert] = [up]
            ctx.counters.prefill_swaps += 1
        return BlockPlan(extra_deps=extra)

    # ---- decode: predictive pre-calculation ---------------------------------------

    def _decode_blocks(self, ctx: _SequenceContext, token: int,
                       deps: list[Op]):
        """DAOP decode policy as a block-work generator.

        Yields one :class:`~repro.core.batching.BlockWork` per block so
        the same policy runs under the solo driver (bitwise identical to
        the pre-protocol inline path) and under
        :meth:`~repro.core.engine.BaseEngine.step_batch` (routed expert
        executions gathered across sequences).  The predictive
        pre-calculation round-trips stay per-sequence — they are policy-
        internal work issued a block early, not routed executions.
        """
        if not self.enable_precalc:
            return (yield from self._decode_blocks_standard(ctx, token, deps))

        h = self.model.embed(np.asarray([token]))
        last_ops = list(deps)
        carry = None  # prediction made at the previous block for this one
        for block_idx in range(self.model.n_blocks):
            h_att, attn_op = self._attention(ctx, block_idx, h, last_ops,
                                             DECODE)
            next_carry = self._issue_precalc(ctx, block_idx, h_att, attn_op)
            if carry is None:
                h, last_ops = yield from self._true_gated_work(
                    ctx, block_idx, h_att, attn_op
                )
            else:
                h, last_ops = yield from self._predicted_work(
                    ctx, block_idx, h_att, attn_op, carry
                )
            carry = next_carry
        ctx.position += 1
        done = ctx.timeline.add(
            GPU, 0.0, deps=last_ops, label="decode done", kind="sync"
        )
        self._after_decode_token(ctx, done)
        return h[-1], done

    def _after_decode_token(self, ctx: _SequenceContext, done: Op) -> None:
        """Decode re-allocation extension hook (no-op when disabled)."""
        if self.decode_realloc_interval is None:
            return
        counts = np.zeros(
            (self.model.n_blocks, self.model.n_experts), dtype=np.float64
        )
        # The current token's events sit at the tail of the trace (one per
        # block, appended by this decode step), so an O(n_blocks) reverse
        # scan collects them without re-reading the whole history.
        for event in reversed(ctx.trace.events):
            if event.phase != DECODE or event.token_pos != ctx.position - 1:
                break
            for expert in event.experts:
                counts[event.block, expert] += 1.0
        policy = ctx.policy
        policy.window.append(counts)
        policy.steps += 1
        if policy.steps % self.decode_realloc_interval != 0:
            return
        window_activity = np.sum(policy.window, axis=0)
        for block_idx in range(self.model.n_blocks):
            plans = plan_block_swaps(
                block_idx, window_activity[block_idx], ctx.placement,
                self.decode_realloc_threshold,
            )
            plans = [
                plan for plan in plans
                if plan.hot_activity >= self.decode_realloc_min_activity
            ][: self.decode_realloc_max_swaps_per_block]
            for plan in plans:
                self._drop_expert(ctx, block_idx, plan.cold_expert)
                # The swapped-out expert's weights are no longer resident:
                # any still-pending upload of it must not survive as a
                # dependency for a future activation.
                policy.pending_uploads.pop((block_idx, plan.cold_expert),
                                           None)
                up = self._upload_expert(
                    ctx, block_idx, plan.hot_expert, [done]
                )
                policy.pending_uploads[(block_idx, plan.hot_expert)] = up
                ctx.counters.decode_swaps += 1

    def _issue_precalc(self, ctx: _SequenceContext, block_idx: int,
                       h_att: np.ndarray, attn_op: Op):
        """Predict block ``block_idx + 1`` and start its CPU experts early.

        Returns the carry consumed when the loop reaches the next block:
        ``(executed_experts, predicted_logits, cpu_results)``.
        """
        if not self.predictor.can_predict_from(block_idx):
            return None
        prediction = self.predictor.predict(block_idx, h_att)
        pred_gate = ctx.timeline.add(
            GPU,
            self.framework_overhead_s
            + self.cost_model.gate_time(self.platform.gpu, 1),
            deps=[attn_op], label=f"pred-gate B{block_idx + 1}", kind="gate",
        )
        degradation = apply_graceful_degradation(
            block_idx + 1,
            prediction.experts,
            prediction.logits,
            ctx.placement,
            max_cpu_experts=self.max_cpu_experts,
            enabled=self.graceful_degradation,
        )
        ctx.counters.degraded_swaps += len(degradation.replaced)
        cpu_results: dict[int, tuple[np.ndarray, Op]] = {}
        for expert in degradation.experts:
            expert = int(expert)
            if ctx.placement.is_on_gpu(block_idx + 1, expert):
                continue
            # Pre-calculate on the CPU from the *current* block's non-MoE
            # hidden states (one block stale -- the paper's approximation).
            y, h2d = self._expert_cpu(
                ctx, block_idx + 1, expert, h_att, [pred_gate],
                stale_input=True,
            )
            cpu_results[expert] = (y[0], h2d)
        return degradation.experts, prediction.logits, cpu_results

    def _true_gated_work(self, ctx: _SequenceContext, block_idx: int,
                         h_att: np.ndarray, attn_op: Op):
        """Blocks without a usable prediction run the original gate.

        Generator: yields the block's routed work and returns
        ``(h, expert_ops)``; use via ``yield from``.
        """
        logits, gate_op = self._gate(ctx, block_idx, h_att, [attn_op])
        routing = self.model.blocks[block_idx].route_from_logits(logits)
        ctx.trace.record(
            DECODE, block_idx, ctx.position, routing.experts[0],
            executed_experts=routing.experts[0],
        )
        self._record_activation_counters(ctx, block_idx, routing.experts[0])
        extra = self._consume_pending_uploads(ctx, block_idx,
                                              routing.experts[0])
        h, expert_ops = yield from self._routed_block_work(
            ctx, block_idx, h_att, routing.experts, routing.weights,
            [gate_op], extra,
        )
        return h, expert_ops

    def _consume_pending_uploads(self, ctx: _SequenceContext, block_idx: int,
                                 experts) -> dict[int, list[Op]]:
        """Dependencies on in-flight decode-migration uploads."""
        extra: dict[int, list[Op]] = {}
        for expert in np.atleast_1d(experts):
            pending = ctx.policy.pending_uploads.pop(
                (block_idx, int(expert)), None
            )
            if pending is not None:
                extra[int(expert)] = [pending]
        return extra

    def _predicted_work(self, ctx: _SequenceContext, block_idx: int,
                        h_att: np.ndarray, attn_op: Op, carry):
        """Execute a block whose expert set was predicted one block ago.

        Generator: pre-calculated CPU results are consumed directly;
        the remaining GPU/fallback executions are yielded as routed
        work (in slot order, matching the pre-protocol inline path) and
        scattered back into their slots.  Use via ``yield from``.
        """
        executed, pred_logits, cpu_results = carry
        block = self.model.blocks[block_idx]

        # Oracle instrumentation: what the true gate *would* have selected
        # (functional only; DAOP does not spend time on this gate).
        true_logits = block.gate_logits(h_att)[0]
        true_selection = np.argsort(-true_logits, kind="stable")[
            : self.model.top_k
        ]
        ctx.trace.record(
            DECODE, block_idx, ctx.position, true_selection,
            executed_experts=executed, predicted=True,
        )
        self._record_activation_counters(ctx, block_idx, executed)

        weights = Router.renormalize(pred_logits, np.asarray(executed))
        precomputed: dict[int, tuple[np.ndarray, Op]] = {}
        calls: list[ExpertCall] = []
        call_slots: list[int] = []
        for slot, expert in enumerate(executed):
            expert = int(expert)
            if expert in cpu_results:
                precomputed[slot] = cpu_results[expert]
            elif ctx.placement.is_on_gpu(block_idx, expert):
                pending = ctx.policy.pending_uploads.pop((block_idx, expert),
                                                         None)
                gpu_deps = (attn_op,) + ((pending,) if pending else ())
                calls.append(ExpertCall(
                    expert=expert, location=GPU_LOC, h_att=h_att,
                    deps=gpu_deps,
                ))
                call_slots.append(slot)
            else:
                # Predicted CPU expert whose pre-calculation was not issued
                # (e.g. degradation disabled and more CPU experts than
                # pre-calc slots): fall back to a Fiddler-style round-trip
                # with fresh inputs.
                calls.append(ExpertCall(
                    expert=expert, location=CPU_LOC, h_att=h_att,
                    deps=(attn_op,),
                ))
                call_slots.append(slot)
        results = yield BlockWork(block_idx=block_idx, calls=tuple(calls))
        outs = np.zeros(
            (1, len(executed), h_att.shape[1]), dtype=np.float32
        )
        expert_ops: list[Op | None] = [None] * len(executed)
        for slot, (y, op) in precomputed.items():
            outs[0, slot] = y
            expert_ops[slot] = op
        for slot, (y, op) in zip(call_slots, results):
            outs[0, slot] = y[0]
            expert_ops[slot] = op
        h = block.combine(h_att, outs, weights.reshape(1, -1))
        return h, expert_ops


def build_daop(
    bundle: ModelBundle,
    platform: Platform,
    expert_cache_ratio: float = 0.5,
    calibration_probs: np.ndarray | None = None,
    **kwargs,
) -> DAOPEngine:
    """Convenience constructor used by examples and benchmarks."""
    return DAOPEngine(
        bundle, platform,
        cache_config=CacheConfig(ecr=expert_cache_ratio),
        calibration_probs=calibration_probs,
        **kwargs,
    )
