"""Typed simulation event bus (live observability for every layer).

Long-horizon sweeps need to be *watchable*: engines, the continuous-batch
scheduler, and both simulators emit structured events through an
:class:`EventBus` that callers subscribe to — a live console view
(``repro watch``), a JSONL log (:class:`JsonlEventWriter`), or any ad-hoc
callback.  Emission is instance-scoped (each engine/scheduler/simulator
owns its bus — no module globals, per lint rule STL001) and free when
nothing subscribes, so the hot step path pays one attribute check.

Events are plain data: a :class:`SimEvent` carries a registered ``kind``,
the simulated time, a per-bus monotonic emission index, and a payload
dict of JSON-compatible values.  The stream is deterministic given the
workload — two identical runs emit identical event streams.
"""

from repro.events.bus import (
    EVENT_KINDS,
    CHECKPOINT_RESTORE,
    CHECKPOINT_SAVE,
    CLUSTER_ARRIVAL,
    CLUSTER_COMPLETION,
    CLUSTER_DISPATCH,
    CLUSTER_HOLD,
    CLUSTER_REJECT,
    ENGINE_STEP,
    EventBus,
    JsonlEventWriter,
    SCHED_ADMIT,
    SCHED_RETIRE,
    SEQUENCE_FINISH,
    SEQUENCE_START,
    SimEvent,
    format_event,
)

__all__ = [
    "EVENT_KINDS",
    "CHECKPOINT_RESTORE",
    "CHECKPOINT_SAVE",
    "CLUSTER_ARRIVAL",
    "CLUSTER_COMPLETION",
    "CLUSTER_DISPATCH",
    "CLUSTER_HOLD",
    "CLUSTER_REJECT",
    "ENGINE_STEP",
    "EventBus",
    "JsonlEventWriter",
    "SCHED_ADMIT",
    "SCHED_RETIRE",
    "SEQUENCE_FINISH",
    "SEQUENCE_START",
    "SimEvent",
    "format_event",
]
