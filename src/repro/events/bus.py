"""The event bus, its registered event kinds, and stock subscribers."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Engine lifecycle: a sequence entered service / advanced one unit of
#: work (a prefill pass or one decode token) / produced its result.
SEQUENCE_START = "sequence_start"
ENGINE_STEP = "engine_step"
SEQUENCE_FINISH = "sequence_finish"

#: Scheduler lifecycle: a request was admitted into the resident batch /
#: a finished sequence retired with its service record.
SCHED_ADMIT = "sched_admit"
SCHED_RETIRE = "sched_retire"

#: Cluster discrete-event loop: arrival routed, arrival rejected,
#: a lone sub-crossover prefill held back to form a cohort,
#: a gang dispatched on a replica, a gang member completed.
CLUSTER_ARRIVAL = "cluster_arrival"
CLUSTER_REJECT = "cluster_reject"
CLUSTER_HOLD = "cluster_hold"
CLUSTER_DISPATCH = "cluster_dispatch"
CLUSTER_COMPLETION = "cluster_completion"

#: Checkpoint lifecycle (emitted by the simulators' save/restore paths).
CHECKPOINT_SAVE = "checkpoint_save"
CHECKPOINT_RESTORE = "checkpoint_restore"

EVENT_KINDS = (
    SEQUENCE_START,
    ENGINE_STEP,
    SEQUENCE_FINISH,
    SCHED_ADMIT,
    SCHED_RETIRE,
    CLUSTER_ARRIVAL,
    CLUSTER_REJECT,
    CLUSTER_HOLD,
    CLUSTER_DISPATCH,
    CLUSTER_COMPLETION,
    CHECKPOINT_SAVE,
    CHECKPOINT_RESTORE,
)


@dataclass(frozen=True)
class SimEvent:
    """One emitted simulation event (plain data, JSON-compatible).

    Attributes:
        kind: one of :data:`EVENT_KINDS`.
        time_s: simulated time the event describes.
        seq: per-bus monotonic emission index (ties in ``time_s`` keep
            emission order).
        payload: kind-specific fields (seq_id, phase, replica, ...).
    """

    kind: str
    time_s: float
    seq: int
    payload: dict

    def to_dict(self) -> dict:
        """Flat JSON-compatible rendering (JSONL logs)."""
        out = {"kind": self.kind, "time_s": self.time_s, "seq": self.seq}
        out.update(self.payload)
        return out


@dataclass
class EventBus:
    """Instance-scoped publish/subscribe fan-out for :class:`SimEvent`.

    Subscribers are called synchronously in subscription order, so a
    deterministic simulation stays deterministic under observation.
    """

    _subscribers: list = field(default_factory=list)
    _next_seq: int = 0

    def subscribe(self, callback, kinds=None):
        """Register ``callback(event)``; returns it for unsubscribing.

        Args:
            callback: called with each matching :class:`SimEvent`.
            kinds: iterable of event kinds to receive; ``None`` means
                every kind.

        Raises:
            ValueError: for an unregistered event kind.
        """
        if kinds is not None:
            kinds = frozenset(kinds)
            unknown = kinds - frozenset(EVENT_KINDS)
            if unknown:
                raise ValueError(
                    f"unknown event kind(s) {sorted(unknown)}; "
                    f"registered kinds: {list(EVENT_KINDS)}"
                )
        self._subscribers.append((callback, kinds))
        return callback

    def unsubscribe(self, callback) -> None:
        """Remove every subscription of ``callback`` (no-op if absent)."""
        self._subscribers = [
            entry for entry in self._subscribers if entry[0] is not callback
        ]

    @property
    def active(self) -> bool:
        """Whether any subscriber is attached (hot-path fast check)."""
        return bool(self._subscribers)

    def emit(self, kind: str, time_s: float, **payload) -> None:
        """Publish one event to every matching subscriber.

        A bus with no subscribers returns immediately without building
        the event, so unobserved simulations pay (almost) nothing.

        Raises:
            ValueError: for an unregistered event kind.
        """
        if not self._subscribers:
            return
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r}; registered kinds: "
                f"{list(EVENT_KINDS)}"
            )
        event = SimEvent(
            kind=kind, time_s=float(time_s), seq=self._next_seq,
            payload=payload,
        )
        self._next_seq += 1
        for callback, kinds in self._subscribers:
            if kinds is None or kind in kinds:
                callback(event)


class JsonlEventWriter:
    """Subscriber that appends one JSON line per event to a file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "w")
        self.n_written = 0

    def __call__(self, event: SimEvent) -> None:
        self._handle.write(json.dumps(event.to_dict(), sort_keys=True))
        self._handle.write("\n")
        self.n_written += 1

    def close(self) -> None:
        """Flush and close the log file."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlEventWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def format_event(event: SimEvent) -> str:
    """One-line human rendering of an event (``repro watch``)."""
    detail = " ".join(
        f"{key}={event.payload[key]}" for key in sorted(event.payload)
    )
    return f"[{event.time_s:10.4f}s] {event.kind:<18} {detail}"
