"""Request arrival processes for the serving simulator."""

from __future__ import annotations

import numpy as np


def poisson_arrivals(rate_per_s: float, n_requests: int,
                     rng: np.random.Generator) -> np.ndarray:
    """Arrival times of a Poisson process with the given mean rate."""
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be positive")
    if n_requests < 1:
        raise ValueError("n_requests must be positive")
    gaps = rng.exponential(1.0 / rate_per_s, size=n_requests)
    return np.cumsum(gaps)


def uniform_arrivals(rate_per_s: float, n_requests: int) -> np.ndarray:
    """Deterministic evenly-spaced arrivals."""
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be positive")
    gap = 1.0 / rate_per_s
    return gap * np.arange(1, n_requests + 1)


def bursty_arrivals(rate_per_s: float, n_requests: int,
                    rng: np.random.Generator,
                    burst_size: int = 4,
                    burst_spread_s: float = 0.05) -> np.ndarray:
    """Arrivals clustered into bursts (chat traffic is bursty).

    Bursts arrive as a Poisson process at ``rate / burst_size``; requests
    within a burst land within ``burst_spread_s`` of the burst start.
    """
    if burst_size < 1:
        raise ValueError("burst_size must be positive")
    n_bursts = (n_requests + burst_size - 1) // burst_size
    burst_times = poisson_arrivals(rate_per_s / burst_size, n_bursts, rng)
    times = []
    for burst_start in burst_times:
        for _ in range(burst_size):
            if len(times) == n_requests:
                break
            times.append(burst_start + rng.uniform(0, burst_spread_s))
    return np.sort(np.asarray(times[:n_requests]))
