"""Request arrival processes (compatibility re-export).

The arrival-pattern generators grew into the scenario library and now
live in :mod:`repro.scenarios.arrivals` (a lower layer, so the serving
and cluster tiers keep importing them freely); this module re-exports
the classic trio under their historical import path.  New code should
import from ``repro.scenarios.arrivals``, which also provides the
time-varying patterns (diurnal, flash-crowd, Markov on/off).
"""

from __future__ import annotations

from repro.scenarios.arrivals import (
    bursty_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)

__all__ = [
    "bursty_arrivals",
    "poisson_arrivals",
    "uniform_arrivals",
]
