"""Request-level serving simulation on top of the inference engines.

The paper evaluates single-request latency ("our experiments simulate
real-time inference scenarios by setting the batch size to one"); this
module extends the reproduction to the obvious deployment question: what
do queueing and sustained load do to each engine's user-visible latency?
Requests arrive by an arrival process and are served FIFO through the
engine's resumable step machine via
:class:`~repro.sched.scheduler.ContinuousBatchScheduler`: at the default
``concurrency=1`` this is exactly the paper's batch-size-one regime,
while higher concurrencies let the decode of one request overlap the
prefill of the next on the shared resource clock.  Every service time is
the engine's *simulated* generation time, so the whole serving trace
stays in simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import BaseEngine, SequenceRequest
from repro.events import CHECKPOINT_RESTORE, CHECKPOINT_SAVE, EventBus
from repro.hardware.timeline import GPU
from repro.sched.scheduler import (
    GATHERED,
    INTERLEAVED,
    BatchSession,
    ContinuousBatchScheduler,
)
from repro.serving.checkpoint import (
    SERVING_KIND,
    CheckpointError,
    SimCheckpoint,
)
from repro.workloads.generator import SequenceGenerator
from repro.workloads.requests import RequestSpec


def percentile_or_zero(values, q: float) -> float:
    """``np.percentile`` that returns 0.0 for an empty value list.

    ``np.percentile`` raises on empty input; serving reports regularly
    aggregate zero requests (overloaded replicas that shed everything,
    filtered views), and a 0.0 keeps those reports renderable.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class ServedRequest:
    """Per-request timing record (all times in simulated seconds)."""

    request_id: int
    arrival_s: float
    start_s: float
    first_token_s: float
    finish_s: float
    n_prompt_tokens: int
    n_generated: int
    energy_j: float

    @property
    def queue_delay_s(self) -> float:
        """Time spent waiting for the engine."""
        return self.start_s - self.arrival_s

    @property
    def ttft_s(self) -> float:
        """Time to first token, from arrival."""
        return self.first_token_s - self.arrival_s

    @property
    def latency_s(self) -> float:
        """End-to-end latency, from arrival to last token."""
        return self.finish_s - self.arrival_s

    @property
    def tpot_s(self) -> float:
        """Time per output token during decode."""
        decode = self.finish_s - self.first_token_s
        if self.n_generated <= 1:
            return 0.0
        return decode / (self.n_generated - 1)


@dataclass
class ServingReport:
    """Aggregate serving metrics over a request trace."""

    engine: str
    requests: list[ServedRequest] = field(default_factory=list)

    def _percentile(self, values, q: float) -> float:
        return percentile_or_zero(values, q)

    @property
    def n_requests(self) -> int:
        """Number of served requests."""
        return len(self.requests)

    @property
    def makespan_s(self) -> float:
        """Simulated time from first arrival to last completion."""
        if not self.requests:
            return 0.0
        start = min(r.arrival_s for r in self.requests)
        end = max(r.finish_s for r in self.requests)
        return end - start

    @property
    def throughput_tokens_per_s(self) -> float:
        """Sustained generated-token throughput."""
        span = self.makespan_s
        if span <= 0:
            return 0.0
        return sum(r.n_generated for r in self.requests) / span

    def ttft_percentile(self, q: float) -> float:
        """TTFT percentile in seconds."""
        return self._percentile([r.ttft_s for r in self.requests], q)

    def latency_percentile(self, q: float) -> float:
        """End-to-end latency percentile in seconds."""
        return self._percentile([r.latency_s for r in self.requests], q)

    def tpot_percentile(self, q: float) -> float:
        """Time-per-output-token percentile in seconds."""
        return self._percentile([r.tpot_s for r in self.requests], q)

    @property
    def mean_queue_delay_s(self) -> float:
        """Mean time requests spent queued."""
        if not self.requests:
            return 0.0
        return float(np.mean([r.queue_delay_s for r in self.requests]))

    @property
    def total_energy_kj(self) -> float:
        """Total serving energy in kilojoules."""
        return sum(r.energy_j for r in self.requests) / 1e3

    @property
    def tokens_per_kilojoule(self) -> float:
        """Serving-level energy efficiency."""
        kj = self.total_energy_kj
        if kj <= 0:
            return 0.0
        return sum(r.n_generated for r in self.requests) / kj


@dataclass
class ServingSession:
    """Resumable state of one serving run (scheduler plus its session)."""

    scheduler: ContinuousBatchScheduler
    batch: BatchSession


class ServingSimulator:
    """FIFO serving of one engine through the continuous-batch scheduler.

    Args:
        engine: the engine under load.
        generator: deterministic workload source.
        concurrency: maximum concurrently resident sequences.  The
            default of 1 reproduces the paper's batch-size-one FIFO
            regime; larger values interleave requests on the engine's
            step machine.
        mode: scheduler execution mode —
            :data:`~repro.sched.scheduler.GATHERED` (default) merges
            same-expert decode work across resident sequences into
            shared kernels; :data:`~repro.sched.scheduler.INTERLEAVED`
            round-robins independent steps.
    """

    def __init__(self, engine: BaseEngine,
                 generator: SequenceGenerator | None = None,
                 concurrency: int = 1, mode: str = GATHERED) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be positive")
        if mode not in (GATHERED, INTERLEAVED):
            raise ValueError(
                f"mode must be {GATHERED!r} or {INTERLEAVED!r}, "
                f"got {mode!r}"
            )
        self.engine = engine
        self.generator = generator
        self.concurrency = concurrency
        self.mode = mode
        #: Instance-scoped event bus; when anything subscribes, engine
        #: and scheduler events are forwarded here for live observation.
        self.events = EventBus()

    def _forward_event(self, event) -> None:
        """Re-emit an engine/scheduler event on the simulator's bus."""
        self.events.emit(event.kind, event.time_s, **event.payload)

    def _build_scheduler(self) -> ContinuousBatchScheduler:
        """Per-session scheduler, bridged onto the simulator's bus."""
        scheduler = ContinuousBatchScheduler(
            self.engine, max_batch=self.concurrency, mode=self.mode,
        )
        if self.events.active:
            scheduler.events.subscribe(self._forward_event)
            # Re-subscribing after an unsubscribe keeps the forwarder
            # single even when one simulator runs several sessions.
            self.engine.events.unsubscribe(self._forward_event)
            self.engine.events.subscribe(self._forward_event)
        return scheduler

    def run(self, arrival_times: np.ndarray, prompt_len: int,
            output_len: int) -> ServingReport:
        """Serve one uniform-length request per arrival time.

        Requests are generated deterministically from the simulator's
        workload generator (request ``i`` uses ``sample_idx=i``), so two
        engines given the same arrival trace serve identical work.  This
        is a thin wrapper over :meth:`run_requests` and is byte-identical
        to the historical uniform-length behavior.
        """
        if self.generator is None:
            raise ValueError(
                "run() needs a workload generator; construct the "
                "simulator with one or call run_requests() directly"
            )
        arrival_times = np.sort(np.asarray(arrival_times, dtype=np.float64))
        specs = []
        for i, arrival in enumerate(arrival_times):
            sequence = self.generator.sample_sequence(
                prompt_len, output_len, sample_idx=i
            )
            specs.append(
                RequestSpec(
                    request_id=i,
                    arrival_s=float(arrival),
                    prompt_tokens=sequence.prompt_tokens,
                    output_len=output_len,
                    forced_tokens=sequence.continuation_tokens,
                    dataset=self.generator.spec.name,
                    sample_idx=i,
                )
            )
        return self.run_requests(specs)

    def run_requests(self, specs: list[RequestSpec]) -> ServingReport:
        """Serve fully-materialized requests; returns the report.

        Each :class:`~repro.workloads.requests.RequestSpec` carries its
        own arrival time, tokens, and decode length, so heterogeneous
        scenario traffic (mixed tenants, varying lengths) flows through
        the same FIFO/continuous-batching machinery as the uniform
        regime.  Requests are served in ``(arrival_s, request_id)``
        order; the spec's ``request_id`` is carried through as the
        report's ``request_id``.
        """
        session = self.begin_session(specs)
        while self.tick(session):
            pass
        return self.finish_session(session)

    # ---- resumable lifecycle ---------------------------------------------------

    def begin_session(self, specs: list[RequestSpec]) -> ServingSession:
        """Queue fully-materialized requests into a resumable session."""
        ordered = sorted(specs,
                         key=lambda spec: (spec.arrival_s,
                                           spec.request_id))
        requests = [
            SequenceRequest(
                prompt_tokens=spec.prompt_tokens,
                max_new_tokens=spec.output_len,
                forced_tokens=spec.forced_tokens,
                seq_id=spec.request_id,
            )
            for spec in ordered
        ]
        arrivals = np.asarray([spec.arrival_s for spec in ordered],
                              dtype=np.float64)
        scheduler = self._build_scheduler()
        return ServingSession(
            scheduler=scheduler,
            batch=scheduler.begin(requests, arrivals),
        )

    def tick(self, session: ServingSession) -> bool:
        """Advance the session one scheduler round; ``False`` when done."""
        return session.scheduler.tick(session.batch)

    def finish_session(self, session: ServingSession) -> ServingReport:
        """Summarize a drained session into a :class:`ServingReport`."""
        batch = session.scheduler.finish(session.batch)
        report = ServingReport(engine=self.engine.name)
        for rec in batch.records:
            report.requests.append(
                ServedRequest(
                    request_id=rec.seq_id,
                    arrival_s=rec.arrival_s,
                    start_s=rec.service_start_s,
                    first_token_s=rec.first_token_s,
                    finish_s=rec.finish_s,
                    n_prompt_tokens=rec.n_prompt_tokens,
                    n_generated=rec.n_generated,
                    energy_j=rec.result.stats.energy.total_j,
                )
            )
        return report

    # ---- checkpoint / restore --------------------------------------------------

    def checkpoint(self, session: ServingSession) -> SimCheckpoint:
        """Capture a between-ticks session as a :class:`SimCheckpoint`."""
        checkpoint = SimCheckpoint(
            kind=SERVING_KIND,
            engine=self.engine.name,
            payload={
                "concurrency": self.concurrency,
                "mode": self.mode,
                "scheduler": session.scheduler.checkpoint_session(
                    session.batch
                ),
            },
        )
        if self.events.active:
            self.events.emit(
                CHECKPOINT_SAVE, session.batch.clock.free[GPU],
                sim_kind=SERVING_KIND, engine=self.engine.name,
                n_active=len(session.batch.active),
                n_queued=len(session.batch.queue),
                n_completed=len(session.batch.report.records),
            )
        return checkpoint

    def restore(self, checkpoint: SimCheckpoint) -> ServingSession:
        """Rebuild a session captured by :meth:`checkpoint`.

        Raises:
            CheckpointError: if the checkpoint belongs to a different
                simulator kind or configuration.
        """
        if checkpoint.kind != SERVING_KIND:
            raise CheckpointError(
                f"checkpoint kind {checkpoint.kind!r} cannot resume on a "
                "serving simulator"
            )
        payload = checkpoint.payload
        if (payload["concurrency"] != self.concurrency
                or payload["mode"] != self.mode):
            raise CheckpointError(
                "serving configuration mismatch: checkpoint was taken "
                f"with concurrency={payload['concurrency']} "
                f"mode={payload['mode']!r}, this simulator runs "
                f"concurrency={self.concurrency} mode={self.mode!r}"
            )
        scheduler = self._build_scheduler()
        try:
            batch = scheduler.restore_session(payload["scheduler"])
        except ValueError as exc:
            raise CheckpointError(str(exc)) from exc
        if self.events.active:
            self.events.emit(
                CHECKPOINT_RESTORE, batch.clock.free[GPU],
                sim_kind=SERVING_KIND, engine=self.engine.name,
                n_active=len(batch.active),
                n_queued=len(batch.queue),
                n_completed=len(batch.report.records),
            )
        return ServingSession(scheduler=scheduler, batch=batch)
