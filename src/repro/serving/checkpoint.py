"""Durable simulation checkpoints (save / load / validate).

A :class:`SimCheckpoint` wraps one simulator session's plain-data state
— a :class:`~repro.serving.simulator.ServingSimulator` batch session or
a :class:`~repro.cluster.simulator.ClusterSimulator` event-loop snapshot
— together with the metadata needed to refuse bad resumes: a format
version (schema skew), the owning simulator kind, an engine description,
and a content digest over the canonical JSON rendering (corruption).
The invariant the whole lifecycle stack maintains: restoring a
checkpoint taken at step *k* (in this process or a fresh one) and
running to completion is bitwise identical to never pausing.

File layout is one JSON document, so checkpoints diff cleanly and stay
inspectable with standard tooling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.model.serialization import canonical_digest

#: Version of the on-disk checkpoint envelope; bumped whenever the
#: envelope schema changes shape.
SIM_CHECKPOINT_VERSION = 1

#: Registered simulator kinds.
SERVING_KIND = "serving"
CLUSTER_KIND = "cluster"
CHECKPOINT_KINDS = (SERVING_KIND, CLUSTER_KIND)


class CheckpointError(ValueError):
    """A checkpoint could not be read: corrupted, skewed, or mismatched."""


@dataclass(frozen=True)
class SimCheckpoint:
    """One simulator session frozen as plain data.

    Attributes:
        kind: which simulator wrote it (:data:`SERVING_KIND` or
            :data:`CLUSTER_KIND`).
        engine: human-readable engine description (engine name, or a
            comma-joined replica list for a cluster).
        payload: the simulator-specific session state.
        version: envelope format version.
    """

    kind: str
    engine: str
    payload: dict
    version: int = SIM_CHECKPOINT_VERSION

    def __post_init__(self) -> None:
        if self.kind not in CHECKPOINT_KINDS:
            raise CheckpointError(
                f"unknown checkpoint kind {self.kind!r}; registered "
                f"kinds: {list(CHECKPOINT_KINDS)}"
            )

    def to_dict(self) -> dict:
        """JSON-compatible envelope with a trailing content digest."""
        body = {
            "version": self.version,
            "kind": self.kind,
            "engine": self.engine,
            "payload": self.payload,
        }
        body["digest"] = canonical_digest(
            {key: body[key] for key in
             ("version", "kind", "engine", "payload")}
        )
        return body

    @classmethod
    def from_dict(cls, data: dict) -> "SimCheckpoint":
        """Validate and unwrap an envelope written by :meth:`to_dict`.

        Raises:
            CheckpointError: for a non-envelope document, an unsupported
                format version, or a digest mismatch (corruption).
        """
        if not isinstance(data, dict) or "payload" not in data:
            raise CheckpointError(
                "not a simulation checkpoint: missing 'payload' envelope"
            )
        version = data.get("version")
        if version != SIM_CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {version!r}; this build "
                f"reads version {SIM_CHECKPOINT_VERSION}"
            )
        digest = canonical_digest(
            {key: data.get(key) for key in
             ("version", "kind", "engine", "payload")}
        )
        if digest != data.get("digest"):
            raise CheckpointError(
                f"checkpoint is corrupted: content digest {digest} does "
                f"not match the recorded {data.get('digest')!r}"
            )
        return cls(
            kind=data["kind"],
            engine=data["engine"],
            payload=data["payload"],
            version=int(version),
        )


def save_checkpoint(path: str, checkpoint: SimCheckpoint) -> None:
    """Write one checkpoint as a JSON document."""
    with open(path, "w") as handle:
        json.dump(checkpoint.to_dict(), handle, sort_keys=True)
        handle.write("\n")


def load_checkpoint(path: str) -> SimCheckpoint:
    """Read and validate a checkpoint written by :func:`save_checkpoint`.

    Raises:
        CheckpointError: for unparsable JSON or a failed envelope check.
    """
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint file {path!r} is not valid JSON: {exc}"
            ) from exc
    return SimCheckpoint.from_dict(data)
