"""Request-level serving simulation (queueing on top of the engines)."""

from repro.serving.arrivals import (
    bursty_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.serving.checkpoint import (
    CHECKPOINT_KINDS,
    CLUSTER_KIND,
    SERVING_KIND,
    SIM_CHECKPOINT_VERSION,
    CheckpointError,
    SimCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.serving.simulator import (
    ServedRequest,
    ServingReport,
    ServingSession,
    ServingSimulator,
    percentile_or_zero,
)

__all__ = [
    "bursty_arrivals",
    "poisson_arrivals",
    "uniform_arrivals",
    "percentile_or_zero",
    "CHECKPOINT_KINDS",
    "CLUSTER_KIND",
    "SERVING_KIND",
    "SIM_CHECKPOINT_VERSION",
    "CheckpointError",
    "SimCheckpoint",
    "load_checkpoint",
    "save_checkpoint",
    "ServedRequest",
    "ServingReport",
    "ServingSession",
    "ServingSimulator",
]
