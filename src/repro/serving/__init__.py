"""Request-level serving simulation (queueing on top of the engines)."""

from repro.serving.arrivals import (
    bursty_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.serving.simulator import (
    ServedRequest,
    ServingReport,
    ServingSimulator,
    percentile_or_zero,
)

__all__ = [
    "bursty_arrivals",
    "poisson_arrivals",
    "uniform_arrivals",
    "percentile_or_zero",
    "ServedRequest",
    "ServingReport",
    "ServingSimulator",
]
