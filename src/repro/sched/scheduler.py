"""Continuous batching of resumable sequences on one engine.

The paper evaluates batch size one; this module exploits the engine
core's step machine (:meth:`~repro.core.engine.BaseEngine.start` /
``step`` / ``finish``) to interleave several sequences on one engine the
way production servers do (vLLM-style continuous batching): each
sequence keeps its own op chain, KV caches, placement copy, and policy
state, while all sequences contend for the same four hardware lanes
through a shared :class:`~repro.hardware.timeline.ResourceClock`.  The
decode of one request then overlaps with the prefill of the next --
exactly the cross-request overlap a batch-size-one loop cannot express.

Scheduling discipline (deterministic by construction):

- Admission is FIFO in arrival order, up to ``max_batch`` concurrent
  sequences.  A request joins a busy batch once its arrival time is no
  later than the GPU lane's availability (all sequence work enters
  through a GPU attention op, so the GPU lane is the admission clock);
  when the batch is empty the clock fast-forwards to the next arrival.
- Stepping is round-robin in admission order: each resident sequence
  advances one unit (a whole prefill pass or one decode token) per
  round, then finished sequences retire and new ones are admitted.
- When the batch drains completely, every lane synchronizes to the last
  finish before new work starts -- so at ``max_batch=1`` the schedule
  degenerates to the sequential FIFO service of
  :class:`repro.serving.simulator.ServingSimulator` exactly.

Per-sequence results are rebased to sequence-local time by
:meth:`~repro.core.engine.BaseEngine.finish`, so every
:class:`~repro.core.engine.GenerationResult` a batch produces satisfies
the same audit invariants as a solo run; the absolute service times live
on the :class:`SequenceRecord`.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.batching import GatherStats
from repro.core.bucketing import bucket_prompt_lengths
from repro.core.engine import (
    SEQ_PREFILL,
    BaseEngine,
    GenerationResult,
    SequenceRequest,
)
from repro.events import SCHED_ADMIT, SCHED_RETIRE, EventBus
from repro.hardware.timeline import (
    GPU,
    RESOURCES,
    ResourceClock,
    Timeline,
)
from repro.model.serialization import canonical_digest

#: Version of the scheduler-session checkpoint layout; restore rejects
#: other versions instead of misreading them.  Version 2 added the
#: ``gathered_prefill`` capability flag to the body.
SCHED_CHECKPOINT_VERSION = 2

#: Execution modes for a batch round.  ``GATHERED`` (the default) steps
#: every decode-phase sequence through one
#: :meth:`~repro.core.engine.BaseEngine.step_batch` call, merging
#: same-expert tokens across sequences into shared kernels;
#: ``INTERLEAVED`` is the legacy round-robin of independent
#: :meth:`~repro.core.engine.BaseEngine.step` calls.  Both produce the
#: same token streams; only the simulated schedule differs.
GATHERED = "gathered"
INTERLEAVED = "interleaved"


@dataclass(frozen=True)
class SequenceRecord:
    """Absolute-time service record of one sequence in a batch.

    All times are in simulated seconds on the batch's shared clock.

    Attributes:
        seq_id: identifier carried over from the request.
        arrival_s: request arrival time.
        service_start_s: start of the sequence's first scheduled op.
        first_token_s: completion of the prefill pass (TTFT reference).
        finish_s: completion of the sequence's last op.
        n_prompt_tokens: prompt length.
        n_generated: generated-token count.
        result: the sequence-local :class:`GenerationResult` (timeline
            rebased to ``service_start_s``).
    """

    seq_id: int
    arrival_s: float
    service_start_s: float
    first_token_s: float
    finish_s: float
    n_prompt_tokens: int
    n_generated: int
    result: GenerationResult = field(repr=False, default=None)

    @property
    def queue_delay_s(self) -> float:
        """Time from arrival until the first op started."""
        return self.service_start_s - self.arrival_s

    @property
    def ttft_s(self) -> float:
        """Time to first token, from arrival."""
        return self.first_token_s - self.arrival_s

    @property
    def latency_s(self) -> float:
        """End-to-end latency, from arrival to last token."""
        return self.finish_s - self.arrival_s

    @property
    def tpot_s(self) -> float:
        """Time per output token during decode."""
        decode = self.finish_s - self.first_token_s
        if self.n_generated <= 1:
            return 0.0
        return decode / (self.n_generated - 1)

    def to_state_dict(self) -> dict:
        """Serialize the record for a checkpoint."""
        return {
            "seq_id": self.seq_id,
            "arrival_s": self.arrival_s,
            "service_start_s": self.service_start_s,
            "first_token_s": self.first_token_s,
            "finish_s": self.finish_s,
            "n_prompt_tokens": self.n_prompt_tokens,
            "n_generated": self.n_generated,
            "result": self.result.to_state_dict(),
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "SequenceRecord":
        """Rebuild a record captured by :meth:`to_state_dict`."""
        return cls(
            seq_id=int(payload["seq_id"]),
            arrival_s=payload["arrival_s"],
            service_start_s=payload["service_start_s"],
            first_token_s=payload["first_token_s"],
            finish_s=payload["finish_s"],
            n_prompt_tokens=int(payload["n_prompt_tokens"]),
            n_generated=int(payload["n_generated"]),
            result=GenerationResult.from_state_dict(payload["result"]),
        )


@dataclass
class BatchReport:
    """Batch-level statistics of one scheduler run."""

    engine: str
    max_batch: int
    records: list = field(default_factory=list)
    mode: str = GATHERED
    gather: GatherStats | None = None

    @property
    def n_sequences(self) -> int:
        """Number of completed sequences."""
        return len(self.records)

    @property
    def makespan_s(self) -> float:
        """Simulated time from first arrival to last completion."""
        if not self.records:
            return 0.0
        start = min(r.arrival_s for r in self.records)
        end = max(r.finish_s for r in self.records)
        return end - start

    @property
    def total_generated(self) -> int:
        """Generated tokens across the batch."""
        return sum(r.n_generated for r in self.records)

    @property
    def throughput_tokens_per_s(self) -> float:
        """Sustained generated-token throughput over the makespan."""
        span = self.makespan_s
        if span <= 0:
            return 0.0
        return self.total_generated / span

    @property
    def sum_solo_makespans_s(self) -> float:
        """Sum of each sequence's own service span (first to last op).

        Under strictly sequential service (``max_batch=1``) the spans
        are disjoint and this sum equals the batch makespan exactly.  A
        batch makespan below it means sequences were concurrently
        resident on the engine — the decode ops of one request
        interleaved with the prefill/decode ops of another on the
        shared lanes.
        """
        return sum(r.result.stats.total_time_s for r in self.records)

    @property
    def overlap_ratio(self) -> float:
        """``max(0, 1 - makespan / sum_solo_makespans)``.

        0.0 under sequential service; positive when sequence service
        spans overlap in wall-clock time.  Note the lane clocks are
        forward-only (FIFO list scheduling, no backfill), so batching
        reduces queueing delay and TTFT rather than total lane-busy
        time.  Degenerate batches are guarded: an empty report or one
        whose sequences all have zero-duration service spans reports
        0.0 (never a division by zero), and sparse arrivals whose idle
        gaps inflate the makespan beyond the summed spans clamp to 0.0
        instead of going negative — the ratio stays in ``[0, 1)``.
        """
        solo = self.sum_solo_makespans_s
        if solo <= 0:
            return 0.0
        return max(0.0, 1.0 - self.makespan_s / solo)

    @property
    def n_expert_ops(self) -> int:
        """Logical expert executions across all sequences (both devices)."""
        return sum(
            1
            for r in self.records
            for op in r.result.timeline.ops
            if op.kind in ("expert_gpu", "expert_cpu")
        )

    @property
    def n_expert_kernels(self) -> int:
        """Physical expert kernel launches the schedule actually paid for.

        Equals :attr:`n_expert_ops` under interleaved execution; under
        gathered execution, every logical op that joined a shared
        cross-sequence launch is replaced by its group's single kernel
        (prefill and any solo-stepped ops keep one kernel per op).
        """
        if self.gather is None:
            return self.n_expert_ops
        return (self.n_expert_ops - self.gather.expert_ops
                + self.gather.expert_kernels)

    def occupancy(self, resource: str) -> float:
        """Busy fraction of one lane over the batch makespan."""
        span = self.makespan_s
        if span <= 0:
            return 0.0
        busy = sum(r.result.timeline.busy_time(resource)
                   for r in self.records)
        return busy / span

    def mean_ttft_s(self) -> float:
        """Mean time to first token across sequences."""
        if not self.records:
            return 0.0
        return float(np.mean([r.ttft_s for r in self.records]))

    def mean_tpot_s(self) -> float:
        """Mean time per output token across sequences."""
        if not self.records:
            return 0.0
        return float(np.mean([r.tpot_s for r in self.records]))

    def phase_gather_stats(self) -> dict:
        """Per-phase (prefill/decode) gathered kernel and op counts.

        Splits the gather accumulator so the two regimes' amortization
        is separable in reports; all-zero counts with unit amortization
        when the run gathered nothing (interleaved mode).
        """
        gather = self.gather if self.gather is not None else GatherStats()
        return {
            "prefill": {
                "expert_ops": gather.prefill_expert_ops,
                "expert_kernels": gather.prefill_expert_kernels,
                "expert_amortization": gather.prefill_expert_amortization,
                "lm_head_ops": gather.prefill_lm_head_ops,
                "lm_head_kernels": gather.prefill_lm_head_kernels,
                "attn_ops": gather.attn_ops,
                "attn_kernels": gather.attn_kernels,
                "gate_ops": gather.gate_ops,
                "gate_kernels": gather.gate_kernels,
            },
            "decode": {
                "expert_ops": gather.decode_expert_ops,
                "expert_kernels": gather.decode_expert_kernels,
                "expert_amortization": gather.decode_expert_amortization,
                "lm_head_ops": (
                    gather.lm_head_ops - gather.prefill_lm_head_ops
                ),
                "lm_head_kernels": (
                    gather.lm_head_kernels - gather.prefill_lm_head_kernels
                ),
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """Deterministic JSON rendering (CI artifacts, diffing)."""
        payload = {
            "engine": self.engine,
            "max_batch": self.max_batch,
            "mode": self.mode,
            "n_expert_ops": self.n_expert_ops,
            "n_expert_kernels": self.n_expert_kernels,
            "expert_amortization": (
                self.gather.expert_amortization
                if self.gather is not None else 1.0
            ),
            "phases": self.phase_gather_stats(),
            "n_sequences": self.n_sequences,
            "makespan_s": self.makespan_s,
            "sum_solo_makespans_s": self.sum_solo_makespans_s,
            "overlap_ratio": self.overlap_ratio,
            "throughput_tokens_per_s": self.throughput_tokens_per_s,
            "mean_ttft_s": self.mean_ttft_s(),
            "mean_tpot_s": self.mean_tpot_s(),
            "occupancy": {
                resource: self.occupancy(resource)
                for resource in RESOURCES
            },
            "sequences": [
                {
                    "seq_id": r.seq_id,
                    "arrival_s": r.arrival_s,
                    "service_start_s": r.service_start_s,
                    "ttft_s": r.ttft_s,
                    "tpot_s": r.tpot_s,
                    "latency_s": r.latency_s,
                    "finish_s": r.finish_s,
                    "n_generated": r.n_generated,
                }
                for r in self.records
            ],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)


@dataclass
class _ActiveSequence:
    """One admitted sequence plus its arrival time."""

    state: object
    arrival_s: float


@dataclass
class BatchSession:
    """Resumable state of one scheduler run.

    Built by :meth:`ContinuousBatchScheduler.begin`, advanced one round
    at a time by :meth:`~ContinuousBatchScheduler.tick`, summarized by
    :meth:`~ContinuousBatchScheduler.finish` — and checkpointable
    between ticks via
    :meth:`~ContinuousBatchScheduler.checkpoint_session`.

    Attributes:
        queue: pending ``(request, arrival_s)`` pairs in arrival order.
        clock: the shared resource clock every admitted sequence's
            timeline schedules against.
        active: currently resident sequences, admission order.
        report: the report under construction (completed records plus
            gather statistics).
    """

    queue: deque
    clock: ResourceClock
    active: list
    report: BatchReport

    @property
    def drained(self) -> bool:
        """Whether every request has been served."""
        return not (self.queue or self.active)


class ContinuousBatchScheduler:
    """Interleave up to ``max_batch`` sequences on one engine.

    Args:
        engine: any registered engine; its policy hooks run per sequence
            on per-sequence state, so baselines and DAOP batch alike.
        max_batch: maximum concurrently resident sequences (>= 1).
        mode: :data:`GATHERED` (default) merges same-expert decode work
            across sequences into shared kernels via
            :meth:`~repro.core.engine.BaseEngine.step_batch`;
            :data:`INTERLEAVED` round-robins independent ``step`` calls.
        gathered_prefill: whether prefill-phase sequences in the same
            prompt-length bucket (:mod:`repro.core.bucketing`) advance
            together through
            :meth:`~repro.core.engine.BaseEngine.step_prefill_batch`.
            Defaults to on in :data:`GATHERED` mode; forbidden in
            :data:`INTERLEAVED` mode (which by definition runs
            independent steps).
    """

    def __init__(self, engine: BaseEngine, max_batch: int = 4,
                 mode: str = GATHERED,
                 gathered_prefill: bool | None = None) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if mode not in (GATHERED, INTERLEAVED):
            raise ValueError(
                f"mode must be {GATHERED!r} or {INTERLEAVED!r}, "
                f"got {mode!r}"
            )
        if gathered_prefill is None:
            gathered_prefill = mode == GATHERED
        if gathered_prefill and mode == INTERLEAVED:
            raise ValueError(
                "gathered_prefill requires gathered mode; interleaved "
                "rounds run independent step() calls by definition"
            )
        self.engine = engine
        self.max_batch = max_batch
        self.mode = mode
        self.gathered_prefill = bool(gathered_prefill)
        #: Instance-scoped event bus (admission / retirement events).
        self.events = EventBus()

    # ---- lifecycle -------------------------------------------------------------

    def begin(self, requests: list[SequenceRequest],
              arrival_times: np.ndarray | None = None) -> BatchSession:
        """Queue every request and build a resumable batch session.

        Args:
            requests: the generation requests.  ``seq_id`` values are
                preserved in the records; requests are queued in
                arrival order (stable for ties).
            arrival_times: per-request arrival times in simulated
                seconds; defaults to all-zero (every request available
                at time zero).
        """
        n = len(requests)
        if arrival_times is None:
            arrivals = np.zeros(n, dtype=np.float64)
        else:
            arrivals = np.asarray(arrival_times, dtype=np.float64)
            if arrivals.shape != (n,):
                raise ValueError(
                    "arrival_times must have one entry per request"
                )
        order = np.argsort(arrivals, kind="stable")
        queue = deque(
            (requests[int(i)], float(arrivals[int(i)])) for i in order
        )
        report = BatchReport(
            engine=self.engine.name,
            max_batch=self.max_batch,
            mode=self.mode,
            gather=GatherStats() if self.mode == GATHERED else None,
        )
        return BatchSession(
            queue=queue, clock=ResourceClock(), active=[], report=report,
        )

    def tick(self, session: BatchSession) -> bool:
        """Advance the session one scheduler round.

        One round admits what fits, steps every resident sequence one
        unit of work, and retires finished sequences.  Returns ``False``
        (doing nothing) once the session is drained, so
        ``while scheduler.tick(session): ...`` serves every request.
        The session is checkpointable between any two ticks.
        """
        if session.drained:
            return False
        self._admit(session.queue, session.active, session.clock)
        self._step_round(session.active, session.report)
        finished = [e for e in session.active if e.state.done]
        session.active = [e for e in session.active if not e.state.done]
        last_finish = 0.0
        for entry in finished:
            record = self._retire(entry)
            session.report.records.append(record)
            last_finish = max(last_finish, record.finish_s)
        if finished and not session.active:
            # Fully drained: lanes synchronize before new work, which
            # reproduces sequential FIFO service at max_batch=1.
            session.clock.advance_all(last_finish)
        return True

    def finish(self, session: BatchSession) -> BatchReport:
        """Summarize a drained session into its batch report.

        Raises:
            RuntimeError: if the session still has queued or resident
                sequences.
        """
        if not session.drained:
            raise RuntimeError(
                "batch session still has in-flight work; tick() it to "
                "completion first"
            )
        session.report.records.sort(key=lambda r: (r.arrival_s, r.seq_id))
        return session.report

    def run(self, requests: list[SequenceRequest],
            arrival_times: np.ndarray | None = None) -> BatchReport:
        """Serve every request; returns the batch report.

        A thin wrapper over the resumable session lifecycle
        (:meth:`begin` / :meth:`tick` / :meth:`finish`), so an
        uninterrupted run and a checkpointed-and-resumed one produce
        bitwise-identical reports.
        """
        session = self.begin(requests, arrival_times)
        while self.tick(session):
            pass
        return self.finish(session)

    # ---- checkpoint / restore --------------------------------------------------

    def checkpoint_session(self, session: BatchSession) -> dict:
        """Capture a between-ticks session as a plain-data checkpoint.

        Active sequences serialize through the engine's
        :meth:`~repro.core.engine.BaseEngine.checkpoint_sequence`
        without their (shared) clock; the session checkpoints the one
        clock itself.
        """
        body = {
            "version": SCHED_CHECKPOINT_VERSION,
            "engine": self.engine.name,
            "max_batch": self.max_batch,
            "mode": self.mode,
            "gathered_prefill": self.gathered_prefill,
            "clock": session.clock.to_state_dict(),
            "queue": [
                {"request": request.to_state_dict(), "arrival_s": arrival}
                for request, arrival in session.queue
            ],
            "active": [
                {
                    "sequence": self.engine.checkpoint_sequence(
                        entry.state, include_clock=False
                    ),
                    "arrival_s": entry.arrival_s,
                }
                for entry in session.active
            ],
            "records": [
                record.to_state_dict()
                for record in session.report.records
            ],
            "gather": (
                None if session.report.gather is None
                else session.report.gather.to_state_dict()
            ),
        }
        body["digest"] = canonical_digest(body)
        return body

    def restore_session(self, payload: dict) -> BatchSession:
        """Rebuild a session captured by :meth:`checkpoint_session`.

        Raises:
            ValueError: for a corrupted payload (digest mismatch), a
                version-skewed checkpoint, or a scheduler/engine
                configuration that does not match the checkpoint.
        """
        version = payload.get("version")
        if version != SCHED_CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported scheduler-checkpoint version {version!r}; "
                f"this build reads version {SCHED_CHECKPOINT_VERSION}"
            )
        body = {
            key: payload[key]
            for key in ("version", "engine", "max_batch", "mode",
                        "gathered_prefill", "clock", "queue", "active",
                        "records", "gather")
        }
        digest = canonical_digest(body)
        if digest != payload.get("digest"):
            raise ValueError(
                "scheduler checkpoint is corrupted: content digest "
                f"{digest} does not match the recorded "
                f"{payload.get('digest')!r}"
            )
        if payload["engine"] != self.engine.name:
            raise ValueError(
                f"checkpoint belongs to engine {payload['engine']!r}; "
                f"this scheduler drives {self.engine.name!r}"
            )
        if (payload["max_batch"] != self.max_batch
                or payload["mode"] != self.mode
                or payload["gathered_prefill"] != self.gathered_prefill):
            raise ValueError(
                "scheduler configuration mismatch: checkpoint was taken "
                f"with max_batch={payload['max_batch']} "
                f"mode={payload['mode']!r} "
                f"gathered_prefill={payload['gathered_prefill']}, this "
                f"scheduler runs max_batch={self.max_batch} "
                f"mode={self.mode!r} "
                f"gathered_prefill={self.gathered_prefill}"
            )
        clock = ResourceClock.from_state_dict(payload["clock"])
        queue = deque(
            (SequenceRequest.from_state_dict(entry["request"]),
             float(entry["arrival_s"]))
            for entry in payload["queue"]
        )
        active = [
            _ActiveSequence(
                state=self.engine.restore_sequence(
                    entry["sequence"], clock=clock
                ),
                arrival_s=float(entry["arrival_s"]),
            )
            for entry in payload["active"]
        ]
        report = BatchReport(
            engine=self.engine.name,
            max_batch=self.max_batch,
            mode=self.mode,
            records=[
                SequenceRecord.from_state_dict(record)
                for record in payload["records"]
            ],
            gather=(
                None if payload["gather"] is None
                else GatherStats.from_state_dict(payload["gather"])
            ),
        )
        return BatchSession(
            queue=queue, clock=clock, active=active, report=report,
        )

    # ---- internals -------------------------------------------------------------

    def _step_round(self, active: list, report: BatchReport) -> None:
        """Advance every resident sequence one unit of work.

        Interleaved mode round-robins independent ``step`` calls in
        admission order.  Gathered mode groups prefill-phase sequences
        into prompt-length buckets — cohorts of two or more advance
        together through one
        :meth:`~repro.core.engine.BaseEngine.step_prefill_batch` call
        (solo, admission-ordered ``step`` calls when
        ``gathered_prefill`` is off or a bucket holds one sequence) —
        and advances all decode-phase sequences together through one
        :meth:`~repro.core.engine.BaseEngine.step_batch` call.  Either
        way each active sequence steps exactly once per round.
        """
        if self.mode == INTERLEAVED:
            for entry in active:
                self.engine.step(entry.state)
            return
        prefill_states = []
        decode_states = []
        for entry in active:
            if entry.state.phase == SEQ_PREFILL:
                prefill_states.append(entry.state)
            else:
                decode_states.append(entry.state)
        if prefill_states:
            self._step_prefills(prefill_states, report)
        if decode_states:
            self.engine.step_batch(decode_states, gather_stats=report.gather)

    def _step_prefills(self, states: list, report: BatchReport) -> None:
        """Run one round's prefill passes, bucketed when enabled.

        Buckets follow first-appearance (admission) order and members
        keep admission order within a bucket, so the schedule stays
        deterministic; singleton buckets take the solo path, which is
        bitwise identical to ``step()`` by construction.
        """
        if not self.gathered_prefill:
            for state in states:
                self.engine.step(state)
            return
        lengths = [int(s.request.prompt_tokens.size) for s in states]
        for bucket in bucket_prompt_lengths(lengths):
            cohort = [states[i] for i in bucket.indices]
            if bucket.is_cohort:
                self.engine.step_prefill_batch(
                    cohort, gather_stats=report.gather
                )
            else:
                self.engine.step(cohort[0])

    def _admit(self, queue: deque, active: list, clock: ResourceClock) -> None:
        """Admit queued requests into the batch, FIFO in arrival order."""
        while queue and len(active) < self.max_batch:
            request, arrival = queue[0]
            if not active:
                clock.advance_all(arrival)
            elif arrival > clock.free[GPU]:
                break
            queue.popleft()
            timeline = Timeline(clock=clock)
            state = self.engine.start(request, timeline=timeline)
            active.append(_ActiveSequence(state=state, arrival_s=arrival))
            if self.events.active:
                self.events.emit(
                    SCHED_ADMIT, clock.free[GPU], seq_id=state.seq_id,
                    arrival_s=arrival, n_active=len(active),
                    n_queued=len(queue),
                )

    def _retire(self, entry: _ActiveSequence) -> SequenceRecord:
        """Capture absolute times, then finalize the sequence."""
        state = entry.state
        timeline = state.timeline
        service_start = min(op.start for op in timeline.ops)
        first_token = state.prefill_time_s
        finish = max(op.end for op in timeline.ops)
        result = self.engine.finish(state)
        if self.events.active:
            self.events.emit(
                SCHED_RETIRE, finish, seq_id=state.seq_id,
                finish_s=finish,
                n_generated=result.stats.n_generated,
            )
        return SequenceRecord(
            seq_id=state.seq_id,
            arrival_s=entry.arrival_s,
            service_start_s=service_start,
            first_token_s=first_token,
            finish_s=finish,
            n_prompt_tokens=result.stats.n_prompt_tokens,
            n_generated=result.stats.n_generated,
            result=result,
        )
