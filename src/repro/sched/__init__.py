"""Continuous batching of resumable sequences on one engine."""

from repro.sched.scheduler import (
    GATHERED,
    INTERLEAVED,
    BatchReport,
    ContinuousBatchScheduler,
    SequenceRecord,
)

__all__ = [
    "BatchReport",
    "ContinuousBatchScheduler",
    "GATHERED",
    "INTERLEAVED",
    "SequenceRecord",
]
