"""Continuous batching of resumable sequences on one engine."""

from repro.sched.scheduler import (
    BatchReport,
    ContinuousBatchScheduler,
    SequenceRecord,
)

__all__ = [
    "BatchReport",
    "ContinuousBatchScheduler",
    "SequenceRecord",
]
