"""Per-layer LRU expert cache policy (Mixtral-Offloading baseline).

Mixtral-Offloading keeps a fixed number of expert slots per layer on the
GPU and evicts the least-recently-used expert when an uncached one is
activated.
"""

from __future__ import annotations

from collections import OrderedDict


class LRUExpertCache:
    """LRU set of expert indices for one layer."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._entries: OrderedDict[int, None] = OrderedDict()

    def __contains__(self, expert: int) -> bool:
        return expert in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def experts(self) -> list[int]:
        """Cached experts from least- to most-recently used."""
        return list(self._entries)

    def touch(self, expert: int) -> None:
        """Mark a cached expert as most recently used."""
        if expert not in self._entries:
            raise KeyError("expert not cached")
        self._entries.move_to_end(expert)

    def admit(self, expert: int) -> int | None:
        """Insert an expert, returning the evicted expert (or ``None``).

        Admitting an already-cached expert just refreshes its recency.
        """
        if self.capacity == 0:
            return None
        if expert in self._entries:
            self._entries.move_to_end(expert)
            return None
        evicted = None
        if len(self._entries) >= self.capacity:
            evicted, _ = self._entries.popitem(last=False)
        self._entries[expert] = None
        return evicted

    def seed(self, experts: list[int]) -> None:
        """Pre-populate the cache (calibration order: coldest first)."""
        for expert in experts:
            self.admit(expert)

    def to_state_dict(self) -> dict:
        """Serialize the cache for a checkpoint (recency order kept)."""
        return {
            "capacity": self.capacity,
            "experts": list(self._entries),
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "LRUExpertCache":
        """Rebuild a cache captured by :meth:`to_state_dict`."""
        cache = cls(int(payload["capacity"]))
        for expert in payload["experts"]:
            cache._entries[int(expert)] = None
        return cache
