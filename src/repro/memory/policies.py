"""Pluggable eviction policies for per-layer expert caches.

The paper's caching baselines evict least-recently-used experts; this
module generalizes the cache so alternatives can be compared: LRU, LFU
(least frequently used this sequence), and calibrated priority (evict the
expert with the lowest offline activation probability, i.e. never adapt).
The eviction-policy ablation benchmark quantifies how much the choice
matters relative to DAOP's avoid-migration design.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

LRU = "lru"
LFU = "lfu"
PRIORITY = "priority"
POLICIES = (LRU, LFU, PRIORITY)


class EvictionPolicyCache:
    """Fixed-capacity expert set with a selectable eviction policy."""

    def __init__(self, capacity: int, policy: str = LRU,
                 priorities: np.ndarray | None = None) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}")
        if policy == PRIORITY and priorities is None:
            raise ValueError("priority policy needs a priorities vector")
        self.capacity = capacity
        self.policy = policy
        self.priorities = (
            None if priorities is None
            else np.asarray(priorities, dtype=np.float64)
        )
        self._entries: OrderedDict[int, int] = OrderedDict()  # id -> freq

    def __contains__(self, expert: int) -> bool:
        return expert in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def experts(self) -> list[int]:
        """Cached experts (recency order for LRU semantics)."""
        return list(self._entries)

    def touch(self, expert: int) -> None:
        """Record a hit."""
        if expert not in self._entries:
            raise KeyError("expert not cached")
        self._entries[expert] += 1
        self._entries.move_to_end(expert)

    def _victim(self) -> int:
        if self.policy == LRU:
            return next(iter(self._entries))
        if self.policy == LFU:
            # Least frequency; ties broken by least recency.
            return min(self._entries, key=lambda e: (self._entries[e],))
        # PRIORITY: lowest offline priority leaves first.
        return min(self._entries, key=lambda e: self.priorities[e])

    def admit(self, expert: int) -> int | None:
        """Insert an expert, returning the evicted one (or ``None``)."""
        if self.capacity == 0:
            return None
        if expert in self._entries:
            self.touch(expert)
            return None
        evicted = None
        if len(self._entries) >= self.capacity:
            evicted = self._victim()
            del self._entries[evicted]
        self._entries[expert] = 1
        return evicted

    def seed(self, experts: list[int]) -> None:
        """Pre-populate (first = coldest under LRU)."""
        for expert in experts:
            self.admit(expert)

    def to_state_dict(self) -> dict:
        """Serialize the cache for a checkpoint.

        Entries are ``[expert, frequency]`` pairs in recency order
        (least recent first): recency drives the LRU victim and breaks
        LFU frequency ties, so both must survive a round trip.
        """
        return {
            "capacity": self.capacity,
            "policy": self.policy,
            "priorities": (
                None if self.priorities is None else self.priorities.tolist()
            ),
            "entries": [
                [expert, freq] for expert, freq in self._entries.items()
            ],
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "EvictionPolicyCache":
        """Rebuild a cache captured by :meth:`to_state_dict`."""
        cache = cls(
            int(payload["capacity"]),
            policy=payload["policy"],
            priorities=payload["priorities"],
        )
        for expert, freq in payload["entries"]:
            cache._entries[int(expert)] = int(freq)
        return cache
