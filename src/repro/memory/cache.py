"""GPU expert-cache sizing and calibrated initialization (paper §IV-A).

The cache holds a fixed number of expert slots on the GPU.  Initialization
follows the paper: the slot budget is standardized across layers (every
layer gets the same base number of slots, filled with its
highest-activation-probability experts); any remainder -- necessarily
smaller than the layer count -- goes to the globally most active experts
not yet cached.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memory.placement import ExpertPlacement


@dataclass(frozen=True)
class CacheConfig:
    """Expert cache sizing.

    Exactly one way of sizing is used: ``total_slots`` wins if set,
    otherwise ``ecr`` (expert cache ratio: slots / total experts).
    """

    ecr: float | None = None
    total_slots: int | None = None

    def resolve_slots(self, n_blocks: int, n_experts: int) -> int:
        """Total GPU expert slots for a model topology."""
        total_experts = n_blocks * n_experts
        if self.total_slots is not None:
            slots = self.total_slots
        elif self.ecr is not None:
            if not 0.0 <= self.ecr <= 1.0:
                raise ValueError("ecr must be in [0, 1]")
            slots = int(round(self.ecr * total_experts))
        else:
            raise ValueError("CacheConfig needs ecr or total_slots")
        if not 0 <= slots <= total_experts:
            raise ValueError("slot budget out of range")
        return slots


def build_calibrated_placement(
    activation_probs: np.ndarray,
    config: CacheConfig,
) -> ExpertPlacement:
    """Initial GPU placement from calibrated activation probabilities.

    Args:
        activation_probs: ``(n_blocks, n_experts)`` matrix of per-layer
            expert activation probabilities measured on the calibration
            dataset's decode phase.
        config: cache sizing.

    Returns:
        The initial :class:`ExpertPlacement`.
    """
    probs = np.asarray(activation_probs, dtype=np.float64)
    if probs.ndim != 2:
        raise ValueError("activation_probs must be 2-D (blocks, experts)")
    n_blocks, n_experts = probs.shape
    slots = config.resolve_slots(n_blocks, n_experts)
    placement = ExpertPlacement(n_blocks, n_experts)

    base = slots // n_blocks
    remainder = slots - base * n_blocks

    # Standardized per-layer allocation: each layer caches its `base`
    # hottest experts.
    cached = np.zeros((n_blocks, n_experts), dtype=bool)
    if base > 0:
        for block in range(n_blocks):
            hottest = np.argsort(-probs[block], kind="stable")[:base]
            cached[block, hottest] = True

    # Remainder (necessarily smaller than the layer count): the globally
    # hottest uncached experts by activation frequency, at most one extra
    # slot per layer so the cache stays standardized across layers.
    if remainder > 0:
        flat = np.argsort(-probs, axis=None, kind="stable")
        placed = 0
        got_extra = np.zeros(n_blocks, dtype=bool)
        for flat_idx in flat:
            block, expert = np.unravel_index(flat_idx, probs.shape)
            if cached[block, expert] or got_extra[block]:
                continue
            cached[block, expert] = True
            got_extra[block] = True
            placed += 1
            if placed == remainder:
                break

    from repro.hardware.device import DeviceKind

    for block in range(n_blocks):
        for expert in np.nonzero(cached[block])[0]:
            placement.set_device(int(block), int(expert), DeviceKind.GPU)
    return placement


def uniform_placement(n_blocks: int, n_experts: int,
                      config: CacheConfig) -> ExpertPlacement:
    """Calibration-free placement: the first ``k`` experts of each layer.

    Used by the ablation comparing calibrated initialization against a
    naive one.
    """
    uniform_probs = np.tile(
        np.linspace(1.0, 0.5, n_experts), (n_blocks, 1)
    )
    return build_calibrated_placement(uniform_probs, config)
