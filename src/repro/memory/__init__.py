"""Expert placement, cache sizing/initialization, and migration."""

from repro.memory.cache import (
    CacheConfig,
    build_calibrated_placement,
    uniform_placement,
)
from repro.memory.lru import LRUExpertCache
from repro.memory.policies import LFU, LRU, POLICIES, PRIORITY, EvictionPolicyCache
from repro.memory.migration import MigrationEngine, MigrationRecord
from repro.memory.placement import ExpertPlacement

__all__ = [
    "CacheConfig",
    "build_calibrated_placement",
    "uniform_placement",
    "LRUExpertCache",
    "LFU",
    "LRU",
    "POLICIES",
    "PRIORITY",
    "EvictionPolicyCache",
    "MigrationEngine",
    "MigrationRecord",
    "ExpertPlacement",
]
