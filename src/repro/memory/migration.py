"""Expert migration between host and device memory.

A migration is a placement update plus the simulated transfer it costs.
Swaps (paper Algorithm 1 lines 12-13) move the evicted expert device-to-host
and the promoted expert host-to-device; the two directions use separate
PCIe channels and therefore overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.cost_model import CostModel
from repro.hardware.device import DeviceKind
from repro.hardware.timeline import D2H, H2D, Op, Timeline
from repro.memory.placement import ExpertPlacement


@dataclass
class MigrationRecord:
    """One completed migration for bookkeeping/reporting."""

    block: int
    expert: int
    to_gpu: bool
    op: Op


@dataclass
class MigrationEngine:
    """Executes placement changes against a timeline."""

    placement: ExpertPlacement
    cost_model: CostModel
    timeline: Timeline
    quant_ratio: float = 1.0
    records: list[MigrationRecord] = field(default_factory=list)

    def upload(self, block: int, expert: int,
               deps: list[Op] | None = None, label: str = "") -> Op:
        """Move one expert host -> device; returns the transfer op."""
        duration = self.cost_model.expert_transfer_time(self.quant_ratio)
        op = self.timeline.add(
            H2D, duration, deps=deps,
            label=label or f"up L{block}E{expert}", kind="expert_upload",
        )
        self.placement.set_device(block, expert, DeviceKind.GPU)
        self.records.append(MigrationRecord(block, expert, True, op))
        return op

    def evict(self, block: int, expert: int,
              deps: list[Op] | None = None, label: str = "") -> Op:
        """Move one expert device -> host; returns the transfer op.

        Eviction of clean (never-updated) inference weights could be a pure
        free, but we follow the paper's Table I which measures a real
        CPU<->GPU transition cost, and engines that must preserve host
        copies do not pay it (they drop the device copy); callers choose.
        """
        duration = self.cost_model.expert_transfer_time(self.quant_ratio)
        op = self.timeline.add(
            D2H, duration, deps=deps,
            label=label or f"down L{block}E{expert}", kind="expert_evict",
        )
        self.placement.set_device(block, expert, DeviceKind.CPU)
        self.records.append(MigrationRecord(block, expert, False, op))
        return op

    def drop(self, block: int, expert: int) -> None:
        """Free a device copy without a transfer (host copy still valid)."""
        self.placement.set_device(block, expert, DeviceKind.CPU)

    def swap(self, block: int, expert_in: int, expert_out: int,
             deps: list[Op] | None = None) -> tuple[Op, Op]:
        """Swap ``expert_in`` onto the GPU while ``expert_out`` leaves it.

        Inference weights are read-only, so the outgoing expert's host copy
        is already valid: the eviction frees the slot immediately and only
        the upload occupies the link (H2D).  Returns (upload_op, upload_op)
        -- the slot becomes usable when the upload lands.
        """
        if not self.placement.is_on_gpu(block, expert_out):
            raise ValueError("expert_out is not on the GPU")
        if self.placement.is_on_gpu(block, expert_in):
            raise ValueError("expert_in is already on the GPU")
        self.drop(block, expert_out)
        up = self.upload(block, expert_in, deps=deps)
        return up, up

    @property
    def upload_count(self) -> int:
        """Number of host->device expert transfers so far."""
        return sum(1 for r in self.records if r.to_gpu)

    @property
    def evict_count(self) -> int:
        """Number of device->host expert transfers so far."""
        return sum(1 for r in self.records if not r.to_gpu)
