"""Expert placement map: which device holds each (block, expert)."""

from __future__ import annotations

import numpy as np

from repro.hardware.device import DeviceKind
from repro.model.serialization import decode_array, encode_array


class ExpertPlacement:
    """Mutable map of every expert's current residence.

    GPU residence means the expert's weights are in device memory and can
    execute there; CPU residence means they live in host memory and either
    execute on the CPU (Fiddler/DAOP) or must be uploaded first
    (caching/prefetching baselines).
    """

    def __init__(self, n_blocks: int, n_experts: int) -> None:
        if n_blocks < 1 or n_experts < 1:
            raise ValueError("n_blocks and n_experts must be positive")
        self.n_blocks = n_blocks
        self.n_experts = n_experts
        # True = resident on GPU.
        self._on_gpu = np.zeros((n_blocks, n_experts), dtype=bool)

    @classmethod
    def all_on_gpu(cls, n_blocks: int, n_experts: int) -> "ExpertPlacement":
        """Placement with every expert GPU-resident (ECR = 100 %)."""
        placement = cls(n_blocks, n_experts)
        placement._on_gpu[:] = True
        return placement

    @classmethod
    def all_on_cpu(cls, n_blocks: int, n_experts: int) -> "ExpertPlacement":
        """Placement with every expert offloaded to host memory."""
        return cls(n_blocks, n_experts)

    def _check(self, block: int, expert: int) -> None:
        if not 0 <= block < self.n_blocks:
            raise IndexError("block out of range")
        if not 0 <= expert < self.n_experts:
            raise IndexError("expert out of range")

    def is_on_gpu(self, block: int, expert: int) -> bool:
        """Whether the expert currently resides on the GPU."""
        self._check(block, expert)
        return bool(self._on_gpu[block, expert])

    def device_of(self, block: int, expert: int) -> DeviceKind:
        """Current residence as a :class:`DeviceKind`."""
        return DeviceKind.GPU if self.is_on_gpu(block, expert) else DeviceKind.CPU

    def set_device(self, block: int, expert: int, device: DeviceKind) -> None:
        """Move one expert (bookkeeping only; costs live in migration)."""
        self._check(block, expert)
        self._on_gpu[block, expert] = device is DeviceKind.GPU

    def gpu_experts(self, block: int) -> np.ndarray:
        """GPU-resident expert indices of one block."""
        return np.nonzero(self._on_gpu[block])[0]

    def cpu_experts(self, block: int) -> np.ndarray:
        """CPU-resident expert indices of one block."""
        return np.nonzero(~self._on_gpu[block])[0]

    def gpu_count(self, block: int | None = None) -> int:
        """Number of GPU-resident experts (in one block, or overall)."""
        if block is None:
            return int(self._on_gpu.sum())
        self._check(block, 0)
        return int(self._on_gpu[block].sum())

    @property
    def expert_cache_ratio(self) -> float:
        """Fraction of all experts resident on the GPU (the paper's ECR)."""
        return self.gpu_count() / (self.n_blocks * self.n_experts)

    def copy(self) -> "ExpertPlacement":
        """Deep copy of the placement."""
        clone = ExpertPlacement(self.n_blocks, self.n_experts)
        clone._on_gpu = self._on_gpu.copy()
        return clone

    def as_matrix(self) -> np.ndarray:
        """Boolean (n_blocks, n_experts) residence matrix (GPU = True)."""
        return self._on_gpu.copy()

    def to_state_dict(self) -> dict:
        """Serialize the placement for a checkpoint."""
        return {
            "n_blocks": self.n_blocks,
            "n_experts": self.n_experts,
            "on_gpu": encode_array(self._on_gpu),
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "ExpertPlacement":
        """Rebuild a placement captured by :meth:`to_state_dict`."""
        placement = cls(int(payload["n_blocks"]), int(payload["n_experts"]))
        placement._on_gpu = decode_array(payload["on_gpu"]).astype(bool)
        return placement
