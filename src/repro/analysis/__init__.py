"""Schedule analysis: utilization, attribution, critical paths."""

from repro.analysis.bottleneck import (
    CPU_BOUND,
    GPU_BOUND,
    TRANSFER_BOUND,
    BottleneckReport,
    diagnose,
)
from repro.analysis.timeline_analysis import (
    AttributionReport,
    CriticalPath,
    UtilizationReport,
    attribution_report,
    critical_path,
    summarize_schedule,
    utilization_report,
)

__all__ = [
    "CPU_BOUND",
    "GPU_BOUND",
    "TRANSFER_BOUND",
    "BottleneckReport",
    "diagnose",
    "AttributionReport",
    "CriticalPath",
    "UtilizationReport",
    "attribution_report",
    "critical_path",
    "summarize_schedule",
    "utilization_report",
]
