"""Schedule analysis: utilization, attribution, and critical paths.

The timeline records every op an engine scheduled; this module answers
the questions a systems paper asks of such a schedule: where did the time
go (per resource and per op kind), what fraction of the makespan was each
resource busy, and which chain of ops actually bounded end-to-end latency
(the critical path).  The Fig. 8 discussion in the paper is exactly a
critical-path argument: migrating engines put 40 ms uploads on it,
Fiddler puts same-block CPU execution on it, DAOP moves the CPU work off
it via lookahead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.timeline import RESOURCES, Op, Timeline


@dataclass(frozen=True)
class UtilizationReport:
    """Per-resource busy time and utilization over a timeline."""

    makespan: float
    busy: dict[str, float]
    utilization: dict[str, float]

    def dominant_resource(self) -> str:
        """The resource with the highest busy time."""
        return max(self.busy, key=self.busy.get)


@dataclass(frozen=True)
class AttributionReport:
    """Busy time grouped by op kind (attn, expert, upload, ...)."""

    by_kind: dict[str, float]
    total: float

    def fraction(self, kind: str) -> float:
        """Share of total busy time spent in one op kind."""
        if self.total <= 0:
            return 0.0
        return self.by_kind.get(kind, 0.0) / self.total

    def top(self, n: int = 5) -> list[tuple[str, float]]:
        """The ``n`` most expensive op kinds."""
        ranked = sorted(self.by_kind.items(), key=lambda kv: -kv[1])
        return ranked[:n]


@dataclass
class CriticalPath:
    """The latency-determining chain of ops in a schedule."""

    ops: list[Op] = field(default_factory=list)

    @property
    def length(self) -> float:
        """End time of the path's last op (equals the makespan)."""
        return self.ops[-1].end if self.ops else 0.0

    def kind_breakdown(self) -> dict[str, float]:
        """Time on the critical path attributed to each op kind."""
        out: dict[str, float] = {}
        for op in self.ops:
            key = op.kind or "unknown"
            out[key] = out.get(key, 0.0) + op.duration
        return out

    def resource_breakdown(self) -> dict[str, float]:
        """Time on the critical path attributed to each resource."""
        out: dict[str, float] = {}
        for op in self.ops:
            out[op.resource] = out.get(op.resource, 0.0) + op.duration
        return out


def utilization_report(timeline: Timeline) -> UtilizationReport:
    """Compute busy time and utilization for every resource."""
    busy = {r: timeline.busy_time(r) for r in RESOURCES}
    span = timeline.makespan
    util = {r: (b / span if span > 0 else 0.0) for r, b in busy.items()}
    return UtilizationReport(makespan=span, busy=busy, utilization=util)


def attribution_report(timeline: Timeline,
                       resource: str | None = None) -> AttributionReport:
    """Group busy time by op kind, optionally for one resource."""
    by_kind: dict[str, float] = {}
    total = 0.0
    for op in timeline.ops:
        if resource is not None and op.resource != resource:
            continue
        key = op.kind or "unknown"
        by_kind[key] = by_kind.get(key, 0.0) + op.duration
        total += op.duration
    return AttributionReport(by_kind=by_kind, total=total)


def critical_path(timeline: Timeline) -> CriticalPath:
    """Trace the chain of ops that determines the makespan.

    Walks backward from the last-finishing op: at each step the
    predecessor is whichever op (a declared dependency or the previous op
    on the same resource) ends exactly when this op starts -- i.e. the op
    this one actually waited for.  Submission-order (FIFO) waits count as
    dependencies because the timeline executes each resource in order.
    """
    if not timeline.ops:
        return CriticalPath()

    # Precompute each op's FIFO predecessor on its resource.
    fifo_pred: dict[int, Op] = {}
    last_on: dict[str, Op] = {}
    deps_of: dict[int, list[Op]] = {}
    for op in timeline.ops:
        if op.resource in last_on:
            fifo_pred[op.index] = last_on[op.resource]
        last_on[op.resource] = op

    # The timeline does not retain dependency lists, so recover "waited
    # for" relations by timing: any earlier op whose end equals this op's
    # start is a candidate predecessor.  Build an index from end time.
    ends: dict[float, list[Op]] = {}
    for op in timeline.ops:
        ends.setdefault(round(op.end, 15), []).append(op)

    path: list[Op] = []
    current = max(timeline.ops, key=lambda o: o.end)
    visited = set()
    while current is not None and current.index not in visited:
        visited.add(current.index)
        path.append(current)
        if current.start <= 0.0:
            break
        predecessor = None
        # Prefer a timing-exact predecessor (the op we waited on).
        for candidate in ends.get(round(current.start, 15), []):
            if candidate.index < current.index:
                predecessor = candidate
                break
        if predecessor is None:
            predecessor = fifo_pred.get(current.index)
        current = predecessor
    path.reverse()
    return CriticalPath(ops=path)


def summarize_schedule(timeline: Timeline) -> str:
    """Human-readable multi-line schedule summary."""
    util = utilization_report(timeline)
    attribution = attribution_report(timeline)
    path = critical_path(timeline)
    lines = [f"makespan: {util.makespan * 1e3:.2f} ms"]
    for resource in RESOURCES:
        lines.append(
            f"  {resource:>4}: busy {util.busy[resource] * 1e3:9.2f} ms "
            f"({100 * util.utilization[resource]:5.1f} %)"
        )
    lines.append("busy time by op kind:")
    for kind, t in attribution.top(8):
        lines.append(
            f"  {kind:<16} {t * 1e3:9.2f} ms "
            f"({100 * attribution.fraction(kind):5.1f} %)"
        )
    lines.append("critical path by op kind:")
    for kind, t in sorted(path.kind_breakdown().items(),
                          key=lambda kv: -kv[1]):
        lines.append(f"  {kind:<16} {t * 1e3:9.2f} ms")
    return "\n".join(lines)
