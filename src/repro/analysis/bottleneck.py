"""Bottleneck diagnosis for engine runs.

Classifies a generation's decode phase as transfer-bound, CPU-bound, or
GPU-bound, and estimates the headroom each class implies.  This is the
quantitative version of the paper's Fig. 8 narrative: MoE-OnDemand and
Pre-gated MoE are H2D-bound, Fiddler is CPU-bound on the critical path,
DAOP pushes utilization toward the GPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.timeline_analysis import critical_path
from repro.core.engine import GenerationResult
from repro.hardware.timeline import CPU, D2H, GPU, H2D

TRANSFER_BOUND = "transfer-bound"
CPU_BOUND = "cpu-bound"
GPU_BOUND = "gpu-bound"


@dataclass(frozen=True)
class BottleneckReport:
    """Diagnosis of what limits a generation's decode latency."""

    classification: str
    critical_fractions: dict[str, float]
    decode_time_s: float

    @property
    def dominant_fraction(self) -> float:
        """The critical-path share of the dominant resource class."""
        return max(self.critical_fractions.values())


def diagnose(result: GenerationResult) -> BottleneckReport:
    """Classify a generation by its critical path's resource mix."""
    path = critical_path(result.timeline)
    by_resource = path.resource_breakdown()
    total = sum(by_resource.values()) or 1.0
    fractions = {
        GPU_BOUND: by_resource.get(GPU, 0.0) / total,
        CPU_BOUND: by_resource.get(CPU, 0.0) / total,
        TRANSFER_BOUND: (
            by_resource.get(H2D, 0.0) + by_resource.get(D2H, 0.0)
        ) / total,
    }
    classification = max(fractions, key=fractions.get)
    return BottleneckReport(
        classification=classification,
        critical_fractions=fractions,
        decode_time_s=result.stats.decode_time_s,
    )
