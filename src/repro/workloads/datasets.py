"""Synthetic dataset specifications.

Each paper dataset is replaced by a synthetic analogue characterized by a
handful of routing-relevant statistics (see DESIGN.md substitution table):

- how many topics a sequence mixes (``n_active_topics``),
- how peaked the per-sequence topic mixture is (``concentration``),
- how fast the mixture drifts within a sequence (``drift_rate``) -- the
  paper's §VI-B attributes GSM8K's accuracy sensitivity to exactly this
  within-sequence drift,
- background token noise (``noise_rate``), and
- the paraphrase strength used by the accuracy harness
  (``perturbation_strength``) which sets task difficulty.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DatasetSpec:
    """Routing-statistics profile of one synthetic dataset."""

    name: str
    n_active_topics: int = 3
    concentration: float = 0.5
    drift_rate: float = 0.01
    noise_rate: float = 0.10
    perturbation_strength: float = 0.15

    def __post_init__(self) -> None:
        if self.n_active_topics < 1:
            raise ValueError("n_active_topics must be positive")
        if self.concentration <= 0:
            raise ValueError("concentration must be positive")
        for rate in (self.drift_rate, self.noise_rate,
                     self.perturbation_strength):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("rates must be in [0, 1]")

    def with_overrides(self, **kwargs) -> "DatasetSpec":
        """Copy with some fields replaced."""
        return replace(self, **kwargs)


# -- Presets mirroring the paper's evaluation datasets -------------------------

C4 = DatasetSpec("c4", n_active_topics=3, concentration=0.55,
                 drift_rate=0.010, noise_rate=0.12,
                 perturbation_strength=0.12)
MATH = DatasetSpec("math", n_active_topics=2, concentration=0.45,
                   drift_rate=0.015, noise_rate=0.08,
                   perturbation_strength=0.16)
GSM8K = DatasetSpec("gsm8k", n_active_topics=4, concentration=0.70,
                    drift_rate=0.060, noise_rate=0.12,
                    perturbation_strength=0.18)
TRIVIA_QA = DatasetSpec("triviaqa", n_active_topics=2, concentration=0.40,
                        drift_rate=0.006, noise_rate=0.08,
                        perturbation_strength=0.10)
ALPACA = DatasetSpec("alpaca", n_active_topics=3, concentration=0.50,
                     drift_rate=0.012, noise_rate=0.10,
                     perturbation_strength=0.13)
SHAREGPT = DatasetSpec("sharegpt", n_active_topics=4, concentration=0.60,
                       drift_rate=0.020, noise_rate=0.12,
                       perturbation_strength=0.14)
HELLASWAG = DatasetSpec("hellaswag", n_active_topics=2, concentration=0.45,
                        drift_rate=0.010, noise_rate=0.10,
                        perturbation_strength=0.115)
ARC_E = DatasetSpec("arc_easy", n_active_topics=2, concentration=0.45,
                    drift_rate=0.010, noise_rate=0.09,
                    perturbation_strength=0.06)
ARC_C = DatasetSpec("arc_challenge", n_active_topics=3, concentration=0.50,
                    drift_rate=0.012, noise_rate=0.10,
                    perturbation_strength=0.125)
PIQA = DatasetSpec("piqa", n_active_topics=2, concentration=0.45,
                   drift_rate=0.010, noise_rate=0.09,
                   perturbation_strength=0.065)
WINOGRANDE = DatasetSpec("winogrande", n_active_topics=2, concentration=0.45,
                         drift_rate=0.010, noise_rate=0.10,
                         perturbation_strength=0.07)
TRUTHFULQA = DatasetSpec("truthfulqa", n_active_topics=3, concentration=0.50,
                         drift_rate=0.012, noise_rate=0.10,
                         perturbation_strength=0.14)
MMLU = DatasetSpec("mmlu", n_active_topics=3, concentration=0.50,
                   drift_rate=0.012, noise_rate=0.10,
                   perturbation_strength=0.105)
BBH = DatasetSpec("bbh", n_active_topics=3, concentration=0.55,
                  drift_rate=0.020, noise_rate=0.11,
                  perturbation_strength=0.17)

ALL_DATASETS = {
    spec.name: spec
    for spec in (
        C4, MATH, GSM8K, TRIVIA_QA, ALPACA, SHAREGPT, HELLASWAG,
        ARC_E, ARC_C, PIQA, WINOGRANDE, TRUTHFULQA, MMLU, BBH,
    )
}


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset preset by name."""
    try:
        return ALL_DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; known: {sorted(ALL_DATASETS)}"
        ) from None
