"""Fully-materialized per-request workload descriptions.

A :class:`RequestSpec` pins down *one* serving request completely: when
it arrives, which tokens it carries, how many tokens it decodes, and the
tenant / SLO-class metadata the serving layers report against.  It is
the unit the scenario library (:mod:`repro.scenarios`) produces, the
serving simulators (``ServingSimulator.run_requests`` /
``ClusterSimulator.run_requests``) consume, and the v2 recorded-workload
format (:mod:`repro.workloads.replay`) round-trips to disk — which is
what makes any scenario replayable bit-exactly against a different
engine or platform.

SLO classes partition requests by latency expectation: ``interactive``
traffic (chat) is TTFT-sensitive, ``batch`` traffic (offline
summarization) tolerates queueing but wants throughput, and
``long_context`` traffic carries long prompts with relaxed deadlines.
Per-class targets live in :data:`SLO_CLASS_TARGETS`; reports break
attainment out per class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: TTFT-sensitive chat-style traffic.
INTERACTIVE = "interactive"
#: Throughput-oriented offline traffic (tolerates queueing).
BATCH = "batch"
#: Long-prompt traffic with relaxed deadlines.
LONG_CONTEXT = "long_context"

#: Every recognized SLO class, in canonical order.
SLO_CLASSES = (INTERACTIVE, BATCH, LONG_CONTEXT)

#: Default per-class latency targets: ``(ttft_s, tpot_s)`` in simulated
#: seconds.  Interactive traffic wants the first token fast; batch and
#: long-context traffic trade TTFT headroom for sustained decode.
SLO_CLASS_TARGETS = {
    INTERACTIVE: (30.0, 1.0),
    BATCH: (240.0, 2.0),
    LONG_CONTEXT: (120.0, 1.5),
}

#: Tenant name used when a workload has no tenant structure.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class RequestSpec:
    """One fully-materialized serving request.

    Attributes:
        request_id: unique identifier; carried through simulator reports
            (``seq_id`` on the engine side) so scenario metadata can be
            joined back onto per-request serving records.
        arrival_s: arrival time in simulated seconds.
        prompt_tokens: input token ids (non-empty 1-D int64 array).
        output_len: decode steps to run (>= 1).
        forced_tokens: optional teacher-forced decode inputs (same
            semantics as :class:`repro.core.engine.SequenceRequest`).
        dataset: name of the dataset the tokens were drawn from (pure
            metadata; the tokens themselves are already materialized).
        tenant: tenant name for per-tenant report breakdowns.
        slo_class: one of :data:`SLO_CLASSES`.
        session: session identifier for prefix-reuse workloads, or None
            for sessionless requests.
        sample_idx: workload-generator sample index the tokens came
            from; requests sharing a ``sample_idx`` carry identical
            tokens, which the cluster simulator exploits to compute
            routing fingerprints once per distinct sample.
    """

    request_id: int
    arrival_s: float
    prompt_tokens: np.ndarray = field(repr=False)
    output_len: int = 1
    forced_tokens: np.ndarray | None = field(repr=False, default=None)
    dataset: str = "unknown"
    tenant: str = DEFAULT_TENANT
    slo_class: str = INTERACTIVE
    session: int | None = None
    sample_idx: int = 0

    def __post_init__(self) -> None:
        prompt = np.asarray(self.prompt_tokens, dtype=np.int64)
        if prompt.ndim != 1 or prompt.size == 0:
            raise ValueError("prompt_tokens must be a non-empty 1-D array")
        object.__setattr__(self, "prompt_tokens", prompt)
        if self.forced_tokens is not None:
            forced = np.asarray(self.forced_tokens, dtype=np.int64)
            object.__setattr__(self, "forced_tokens", forced)
        if self.output_len < 1:
            raise ValueError("output_len must be positive")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")
        if self.slo_class not in SLO_CLASSES:
            raise ValueError(
                f"unknown slo_class {self.slo_class!r}; "
                f"known: {SLO_CLASSES}"
            )

    @property
    def prompt_len(self) -> int:
        """Prompt length in tokens."""
        return int(self.prompt_tokens.size)

    def content_key(self) -> bytes:
        """Digest key of the request's token content (not its metadata).

        Two requests with equal keys carry byte-identical prompt and
        forced tokens; the cluster simulator uses this to compute the
        expensive routing fingerprint once per distinct content.
        """
        forced = (b"" if self.forced_tokens is None
                  else self.forced_tokens.tobytes())
        return b"|".join([self.prompt_tokens.tobytes(), forced])


def slo_targets(slo_class: str) -> tuple:
    """``(ttft_s, tpot_s)`` latency targets of one SLO class (seconds)."""
    try:
        return SLO_CLASS_TARGETS[slo_class]
    except KeyError:
        raise KeyError(
            f"unknown slo_class {slo_class!r}; known: {SLO_CLASSES}"
        ) from None
