"""Workload recording and replay.

A recorded workload pins down the exact requests (prompt tokens, forced
continuations, arrival order) of an experiment as a JSON file, so a
result can be re-examined later, shared, or replayed against a different
engine/platform without depending on generator code staying bit-stable
across versions.

Format history:

- **v1** stored uniform-length batches: top-level ``prompt_len`` /
  ``continuation_len`` plus per-entry token lists.
- **v2** (current) additionally records per-entry ``arrival_s``,
  ``tenant``, ``slo_class``, ``output_len``, ``dataset``, ``session``,
  and ``request_id`` — everything a
  :class:`~repro.workloads.requests.RequestSpec` carries — so an entire
  serving *scenario* (not just its token content) can be pinned to disk
  and replayed bit-exactly.  v1 files still load; their entries get
  default metadata (arrival 0.0, the default tenant, interactive SLO).
"""

from __future__ import annotations

import json

import numpy as np

from repro.workloads.generator import SequenceGenerator, SyntheticSequence
from repro.workloads.requests import DEFAULT_TENANT, INTERACTIVE, RequestSpec

FORMAT_VERSION = 2

#: Format versions :func:`load_workload` / :func:`load_request_specs`
#: accept.
SUPPORTED_VERSIONS = (1, 2)


def record_workload(generator: SequenceGenerator, n_sequences: int,
                    prompt_len: int, continuation_len: int) -> dict:
    """Materialize a generator's first ``n_sequences`` samples."""
    sequences = generator.sample_batch(n_sequences, prompt_len,
                                       continuation_len)
    return {
        "version": FORMAT_VERSION,
        "dataset": generator.spec.name,
        "seed": generator.seed,
        "prompt_len": prompt_len,
        "continuation_len": continuation_len,
        "sequences": [
            {
                "sample_idx": seq.seed,
                "prompt": seq.prompt_tokens.tolist(),
                "continuation": seq.continuation_tokens.tolist(),
                "arrival_s": 0.0,
                "tenant": DEFAULT_TENANT,
                "slo_class": INTERACTIVE,
            }
            for seq in sequences
        ],
    }


def record_request_specs(specs: list, label: str = "scenario") -> dict:
    """Serialize fully-materialized requests as a v2 workload payload.

    Args:
        specs: the :class:`~repro.workloads.requests.RequestSpec` list
            (typically a scenario's built requests).
        label: free-form provenance string stored as the payload's
            ``dataset`` field (per-entry datasets are recorded
            individually).
    """
    return {
        "version": FORMAT_VERSION,
        "dataset": label,
        "seed": None,
        "sequences": [
            {
                "request_id": spec.request_id,
                "sample_idx": spec.sample_idx,
                "prompt": spec.prompt_tokens.tolist(),
                "continuation": (
                    [] if spec.forced_tokens is None
                    else spec.forced_tokens.tolist()
                ),
                "arrival_s": spec.arrival_s,
                "output_len": spec.output_len,
                "dataset": spec.dataset,
                "tenant": spec.tenant,
                "slo_class": spec.slo_class,
                "session": spec.session,
            }
            for spec in specs
        ],
    }


def save_workload(path: str, payload: dict) -> None:
    """Write a recorded workload to disk (deterministic rendering)."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def _load_payload(path: str) -> dict:
    """Read and version-check a recorded workload file."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("version") not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported workload format: {payload.get('version')!r}"
        )
    return payload


def load_workload(path: str) -> list[SyntheticSequence]:
    """Load a recorded workload back into sequence objects.

    Both v1 and v2 files load; serving metadata a v2 file may carry is
    dropped here — use :func:`load_request_specs` to keep it.
    """
    payload = _load_payload(path)
    sequences = []
    for entry in payload["sequences"]:
        sequences.append(
            SyntheticSequence(
                dataset=entry.get("dataset", payload["dataset"]),
                prompt_tokens=np.asarray(entry["prompt"], dtype=np.int64),
                continuation_tokens=np.asarray(entry["continuation"],
                                               dtype=np.int64),
                topic_history=None,
                seed=int(entry["sample_idx"]),
            )
        )
    return sequences


def load_request_specs(path: str) -> list[RequestSpec]:
    """Load a recorded workload as fully-materialized request specs.

    v2 entries restore their recorded serving metadata exactly; v1
    entries (which predate metadata) default to arrival 0.0, the
    default tenant, the interactive SLO class, and an ``output_len``
    equal to their recorded continuation length.
    """
    payload = _load_payload(path)
    specs = []
    for i, entry in enumerate(payload["sequences"]):
        continuation = np.asarray(entry["continuation"], dtype=np.int64)
        output_len = int(
            entry.get("output_len", max(int(continuation.size), 1))
        )
        specs.append(
            RequestSpec(
                request_id=int(entry.get("request_id", i)),
                arrival_s=float(entry.get("arrival_s", 0.0)),
                prompt_tokens=np.asarray(entry["prompt"], dtype=np.int64),
                output_len=output_len,
                forced_tokens=continuation if continuation.size else None,
                dataset=str(entry.get("dataset", payload["dataset"])),
                tenant=str(entry.get("tenant", DEFAULT_TENANT)),
                slo_class=str(entry.get("slo_class", INTERACTIVE)),
                session=entry.get("session"),
                sample_idx=int(entry.get("sample_idx", i)),
            )
        )
    return specs


def replay_workload(engine, sequences: list[SyntheticSequence],
                    max_new_tokens: int | None = None) -> list:
    """Run an engine over a recorded workload; returns the results."""
    results = []
    for sequence in sequences:
        n_new = max_new_tokens
        if n_new is None:
            n_new = max(int(sequence.continuation_tokens.size), 1)
        forced = (
            sequence.continuation_tokens
            if sequence.continuation_tokens.size >= n_new - 1 else None
        )
        results.append(
            engine.generate(sequence.prompt_tokens, n_new,
                            forced_tokens=forced)
        )
    return results
