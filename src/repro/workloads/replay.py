"""Workload recording and replay.

A recorded workload pins down the exact requests (prompt tokens, forced
continuations, arrival order) of an experiment as a JSON file, so a
result can be re-examined later, shared, or replayed against a different
engine/platform without depending on generator code staying bit-stable
across versions.
"""

from __future__ import annotations

import json

import numpy as np

from repro.workloads.generator import SequenceGenerator, SyntheticSequence

FORMAT_VERSION = 1


def record_workload(generator: SequenceGenerator, n_sequences: int,
                    prompt_len: int, continuation_len: int) -> dict:
    """Materialize a generator's first ``n_sequences`` samples."""
    sequences = generator.sample_batch(n_sequences, prompt_len,
                                       continuation_len)
    return {
        "version": FORMAT_VERSION,
        "dataset": generator.spec.name,
        "seed": generator.seed,
        "prompt_len": prompt_len,
        "continuation_len": continuation_len,
        "sequences": [
            {
                "sample_idx": seq.seed,
                "prompt": seq.prompt_tokens.tolist(),
                "continuation": seq.continuation_tokens.tolist(),
            }
            for seq in sequences
        ],
    }


def save_workload(path: str, payload: dict) -> None:
    """Write a recorded workload to disk."""
    with open(path, "w") as handle:
        json.dump(payload, handle)


def load_workload(path: str) -> list[SyntheticSequence]:
    """Load a recorded workload back into sequence objects."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported workload format: {payload.get('version')!r}"
        )
    sequences = []
    for entry in payload["sequences"]:
        sequences.append(
            SyntheticSequence(
                dataset=payload["dataset"],
                prompt_tokens=np.asarray(entry["prompt"], dtype=np.int64),
                continuation_tokens=np.asarray(entry["continuation"],
                                               dtype=np.int64),
                topic_history=None,
                seed=int(entry["sample_idx"]),
            )
        )
    return sequences


def replay_workload(engine, sequences: list[SyntheticSequence],
                    max_new_tokens: int | None = None) -> list:
    """Run an engine over a recorded workload; returns the results."""
    results = []
    for sequence in sequences:
        n_new = max_new_tokens
        if n_new is None:
            n_new = max(int(sequence.continuation_tokens.size), 1)
        forced = (
            sequence.continuation_tokens
            if sequence.continuation_tokens.size >= n_new - 1 else None
        )
        results.append(
            engine.generate(sequence.prompt_tokens, n_new,
                            forced_tokens=forced)
        )
    return results
