"""Synthetic sequence generation over the topical vocabulary.

A sequence carries a latent topic mixture over a few active topics.  Each
token is drawn from that mixture (or, with ``noise_rate``, uniformly from
the whole vocabulary).  With probability ``drift_rate`` per token the
mixture random-walks: the weakest active topic is replaced by a fresh one
and the weights are resampled.  Prompt and continuation are drawn from the
same evolving process, which is what gives the high prefill/decode routing
similarity of the paper's observation (2); high drift (GSM8K) erodes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import zlib

import numpy as np

from repro.model.vocab import TopicVocabulary
from repro.workloads.datasets import DatasetSpec


@dataclass
class SyntheticSequence:
    """One generated sample: prompt plus reference continuation."""

    dataset: str
    prompt_tokens: np.ndarray
    continuation_tokens: np.ndarray
    topic_history: np.ndarray = field(repr=False, default=None)
    seed: int = 0

    @property
    def full_tokens(self) -> np.ndarray:
        """Prompt and continuation concatenated."""
        return np.concatenate(
            [self.prompt_tokens, self.continuation_tokens]
        )


class _TopicMixtureState:
    """The evolving per-sequence topic mixture."""

    def __init__(self, spec: DatasetSpec, n_topics: int,
                 rng: np.random.Generator) -> None:
        self.spec = spec
        self.n_topics = n_topics
        self.rng = rng
        n_active = min(spec.n_active_topics, n_topics)
        self.active = rng.choice(n_topics, size=n_active, replace=False)
        self.weights = self._sample_weights(n_active)

    def _sample_weights(self, n_active: int) -> np.ndarray:
        return self.rng.dirichlet(np.full(n_active, self.spec.concentration))

    def maybe_drift(self) -> None:
        """With probability ``drift_rate``, mutate the active-topic set."""
        if self.rng.random() >= self.spec.drift_rate:
            return
        weakest = int(np.argmin(self.weights))
        candidates = np.setdiff1d(np.arange(self.n_topics), self.active)
        if candidates.size:
            self.active = self.active.copy()
            self.active[weakest] = self.rng.choice(candidates)
        self.weights = self._sample_weights(self.active.size)

    def sample_topic(self) -> int:
        """Draw one topic from the current mixture."""
        return int(self.rng.choice(self.active, p=self.weights))


class SequenceGenerator:
    """Draws :class:`SyntheticSequence` samples for one dataset."""

    def __init__(self, spec: DatasetSpec, vocab: TopicVocabulary,
                 seed: int = 0) -> None:
        self.spec = spec
        self.vocab = vocab
        self.seed = seed
        self._topic_tokens = [
            vocab.tokens_of_topic(t) for t in range(vocab.n_topics)
        ]
        self._regular_tokens = np.nonzero(vocab.token_topic >= 0)[0]

    def _emit_tokens(self, n: int, state: _TopicMixtureState,
                     rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        tokens = np.empty(n, dtype=np.int64)
        topics = np.empty(n, dtype=np.int64)
        for i in range(n):
            state.maybe_drift()
            if rng.random() < self.spec.noise_rate:
                tokens[i] = rng.choice(self._regular_tokens)
                topics[i] = self.vocab.topic_of(int(tokens[i]))
            else:
                topic = state.sample_topic()
                tokens[i] = rng.choice(self._topic_tokens[topic])
                topics[i] = topic
        return tokens, topics

    def sample_sequence(self, prompt_len: int, continuation_len: int = 0,
                        sample_idx: int = 0) -> SyntheticSequence:
        """Generate one deterministic sample (keyed by ``sample_idx``)."""
        if prompt_len < 1:
            raise ValueError("prompt_len must be positive")
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, zlib.crc32(self.spec.name.encode()) & 0xFFFF,
                                    sample_idx])
        )
        state = _TopicMixtureState(self.spec, self.vocab.n_topics, rng)
        prompt, topics_p = self._emit_tokens(prompt_len, state, rng)
        prompt[0] = self.vocab.bos_id
        continuation, topics_c = self._emit_tokens(
            continuation_len, state, rng
        )
        return SyntheticSequence(
            dataset=self.spec.name,
            prompt_tokens=prompt,
            continuation_tokens=continuation,
            topic_history=np.concatenate([topics_p, topics_c]),
            seed=sample_idx,
        )

    def sample_batch(self, n_samples: int, prompt_len: int,
                     continuation_len: int = 0) -> list[SyntheticSequence]:
        """Generate ``n_samples`` independent sequences."""
        return [
            self.sample_sequence(prompt_len, continuation_len, sample_idx=i)
            for i in range(n_samples)
        ]

    def perturb_prompt(self, sequence: SyntheticSequence,
                       strength: float | None = None,
                       salt: int = 1) -> np.ndarray:
        """Paraphrase a prompt: swap tokens within their own topic.

        The accuracy harness feeds the perturbed prompt to the engine under
        test and scores its output against the official model's output on
        the *canonical* prompt; ``strength`` (defaulting to the dataset's
        ``perturbation_strength``) therefore sets task difficulty.
        """
        if strength is None:
            strength = self.spec.perturbation_strength
        if not 0.0 <= strength <= 1.0:
            raise ValueError("strength must be in [0, 1]")
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [self.seed, zlib.crc32(self.spec.name.encode()) & 0xFFFF,
                 sequence.seed, salt]
            )
        )
        perturbed = sequence.prompt_tokens.copy()
        for i in range(1, perturbed.size):  # keep BOS intact
            if rng.random() >= strength:
                continue
            topic = self.vocab.topic_of(int(perturbed[i]))
            if topic < 0:
                continue
            perturbed[i] = rng.choice(self._topic_tokens[topic])
        return perturbed
