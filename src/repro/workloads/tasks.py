"""Downstream-task definitions for the accuracy harness.

A task binds a dataset profile to an evaluation protocol: prompt length,
answer length, and metric.  Three metrics cover the paper's tables:

- ``first_token``: accuracy of the first generated token (paper Table V
  evaluates "the first output token generated rather than the entire
  output sequence").
- ``exact_match``: full equality of the generated answer span
  (TriviaQA / BBH / GSM8K in Table VI).
- ``rouge``: Rouge-1/2 F1 of a longer generation (TruthfulQA in Table VI).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads import datasets as ds
from repro.workloads.datasets import DatasetSpec

METRICS = ("first_token", "exact_match", "rouge")


@dataclass(frozen=True)
class TaskSpec:
    """One downstream evaluation task."""

    name: str
    dataset: DatasetSpec
    prompt_len: int
    answer_len: int
    metric: str
    n_samples: int = 32

    def __post_init__(self) -> None:
        if self.metric not in METRICS:
            raise ValueError(f"metric must be one of {METRICS}")
        if self.prompt_len < 1 or self.answer_len < 1:
            raise ValueError("prompt_len and answer_len must be positive")
        if self.n_samples < 1:
            raise ValueError("n_samples must be positive")


# -- Paper Table V: tasks scored on the first output token --------------------

TABLE5_TASKS = (
    TaskSpec("arc_challenge", ds.ARC_C, prompt_len=96, answer_len=1,
             metric="first_token"),
    TaskSpec("hellaswag", ds.HELLASWAG, prompt_len=64, answer_len=1,
             metric="first_token"),
    TaskSpec("truthfulqa", ds.TRUTHFULQA, prompt_len=64, answer_len=1,
             metric="first_token"),
    TaskSpec("piqa", ds.PIQA, prompt_len=48, answer_len=1,
             metric="first_token"),
    TaskSpec("winogrande", ds.WINOGRANDE, prompt_len=48, answer_len=1,
             metric="first_token"),
    TaskSpec("mmlu", ds.MMLU, prompt_len=96, answer_len=1,
             metric="first_token"),
)

# -- Paper Table VI: tasks scored over the entire generation ------------------

TABLE6_TASKS = (
    TaskSpec("triviaqa", ds.TRIVIA_QA, prompt_len=48, answer_len=6,
             metric="exact_match"),
    TaskSpec("bbh", ds.BBH, prompt_len=80, answer_len=8,
             metric="exact_match"),
    TaskSpec("truthfulqa_gen", ds.TRUTHFULQA, prompt_len=64, answer_len=24,
             metric="rouge"),
    TaskSpec("gsm8k", ds.GSM8K, prompt_len=80, answer_len=8,
             metric="exact_match"),
)


def get_task(name: str) -> TaskSpec:
    """Look up a task preset by name."""
    for task in TABLE5_TASKS + TABLE6_TASKS:
        if task.name == name:
            return task
    raise KeyError(f"unknown task {name!r}")
