"""DAOP reproduction: Data-Aware Offloading and Predictive Pre-Calculation
for Efficient MoE Inference (DATE 2025).

This package implements, from scratch and in pure Python/numpy:

- a functional decoder-only Mixture-of-Experts transformer
  (:mod:`repro.model`),
- an event-driven GPU-CPU platform simulator with an op-level cost model
  calibrated to the paper's measurements (:mod:`repro.hardware`),
- expert placement, caching, and migration machinery (:mod:`repro.memory`),
- synthetic workload generators reproducing the routing statistics the
  paper's observations rely on (:mod:`repro.workloads`),
- routing-trace instrumentation and the paper's similarity / prediction
  metrics (:mod:`repro.trace`),
- the DAOP inference engine and all evaluated baselines
  (:mod:`repro.core`),
- the downstream-task accuracy harness (:mod:`repro.eval`), and
- throughput / energy metrics and report helpers (:mod:`repro.metrics`).

Quickstart::

    from repro import build_mixtral_8x7b_sim, default_platform
    from repro.core import build_daop, calibrate_activation_probs
    from repro.workloads import C4, SequenceGenerator

    bundle = build_mixtral_8x7b_sim(seed=0, n_blocks=8)
    platform = default_platform()
    calibration = calibrate_activation_probs(bundle)
    engine = build_daop(bundle, platform, expert_cache_ratio=0.5,
                        calibration_probs=calibration)
    generator = SequenceGenerator(C4, bundle.vocab, seed=0)
    sequence = generator.sample_sequence(prompt_len=64)
    result = engine.generate(sequence.prompt_tokens, max_new_tokens=32)
    print(result.stats.tokens_per_second)
"""

from repro.model.zoo import (
    build_mixtral_8x7b_sim,
    build_phi_3_5_moe_sim,
    build_tiny_moe,
    MIXTRAL_8X7B_ARCH,
    PHI_3_5_MOE_ARCH,
)
from repro.hardware.presets import default_platform, paper_table1_platform

__all__ = [
    "build_mixtral_8x7b_sim",
    "build_phi_3_5_moe_sim",
    "build_tiny_moe",
    "MIXTRAL_8X7B_ARCH",
    "PHI_3_5_MOE_ARCH",
    "default_platform",
    "paper_table1_platform",
]

__version__ = "1.0.0"
