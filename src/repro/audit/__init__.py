"""Runtime invariant auditor and cross-engine differential harness.

``repro.audit`` is the safety net under every engine in the repo: the
invariant auditor (:mod:`repro.audit.invariants`) checks any finished
generation against the substrate contracts (timeline causality, counter
conservation, energy/makespan consistency, prefill-only migration,
divergence provenance), and the differential harness
(:mod:`repro.audit.differential`) asserts that expert placement never
changes *values* -- every non-predictive engine is token-identical to
the all-on-GPU oracle, and DAOP diverges only through trace events
marked ``predicted=True``.  The resume-parity audit
(:mod:`repro.audit.resume`) asserts the lifecycle invariant on top:
checkpointing any run mid-decode and restoring it — through JSON bytes,
into a fresh engine — is bitwise invisible.  See ``docs/auditing.md``
and ``docs/lifecycle.md``.
"""

from repro.audit.differential import (
    DEFAULT_SEEDS,
    ORACLE_ENGINE,
    BlockDivergence,
    DifferentialReport,
    EngineComparison,
    StepParityComparison,
    StepParityReport,
    block_divergence_accounting,
    cache_parity_problems,
    compare_token_streams,
    run_differential_audit,
    run_step_parity_audit,
)
from repro.audit.invariants import (
    EXPERT_OP_KINDS,
    TIME_TOLERANCE_S,
    AuditReport,
    Violation,
    audit_generation,
    audit_result,
    check_counter_conservation,
    check_divergence_provenance,
    check_energy_consistency,
    check_pending_uploads_resident,
    check_prefill_only_migration,
    check_timeline_causality,
    check_upload_placement,
    expects_prefill_only_uploads,
)
from repro.audit.resume import (
    DEFAULT_CUTS,
    ResumeParityComparison,
    ResumeParityReport,
    run_resume_parity_audit,
    timeline_signature,
)

__all__ = [
    "DEFAULT_SEEDS",
    "ORACLE_ENGINE",
    "BlockDivergence",
    "DifferentialReport",
    "EngineComparison",
    "StepParityComparison",
    "StepParityReport",
    "block_divergence_accounting",
    "cache_parity_problems",
    "compare_token_streams",
    "run_differential_audit",
    "run_step_parity_audit",
    "DEFAULT_CUTS",
    "ResumeParityComparison",
    "ResumeParityReport",
    "run_resume_parity_audit",
    "timeline_signature",
    "EXPERT_OP_KINDS",
    "TIME_TOLERANCE_S",
    "AuditReport",
    "Violation",
    "audit_generation",
    "audit_result",
    "check_counter_conservation",
    "check_divergence_provenance",
    "check_energy_consistency",
    "check_pending_uploads_resident",
    "check_prefill_only_migration",
    "check_timeline_causality",
    "check_upload_placement",
    "expects_prefill_only_uploads",
]
