"""Post-hoc runtime invariant audit for engine generations.

Every engine in this reproduction is compared on the same substrate, and
the paper's headline numbers are only meaningful if that substrate obeys
the contracts it states in prose.  This module audits a finished
:class:`repro.core.engine.GenerationResult` (the *artifact*, not the live
engine) against those contracts:

- **Timeline causality** -- every op starts at or after the end of every
  dependency it declared, and each resource lane executes its ops in
  submission order without overlap (deterministic list scheduling).
- **Counter conservation** -- the engine counters, the scheduled timeline
  ops, and the recorded routing trace are three views of the same
  execution: ``gpu_expert_execs + cpu_expert_execs`` must equal both the
  number of expert ops on the timeline and the exec count implied by the
  trace, ``expert_uploads`` must equal the upload ops, and
  ``activated_total`` must equal the trace's activation count.
- **Upload/placement consistency** -- any expert that ended GPU-resident
  without starting there must have an upload op on the timeline.
- **Energy/makespan consistency** -- the stats' total time is the
  timeline makespan, the energy breakdown sums to its total, and (when a
  platform is supplied) re-integrating the timeline reproduces it.
- **Prefill-only migration** (paper SS IV-B) -- engines that restrict
  migration to prefill (``decode_realloc_interval is None`` for DAOP)
  schedule no expert upload after prefill completes.
- **Divergence provenance** -- an executed expert set may deviate from
  the gate's selection only on trace events marked ``predicted=True``
  (DAOP's approximation); predictions only ever happen during decode.

The checks are pure functions over the result object so they can audit
any engine -- including future baselines -- without cooperation from the
engine class.  :func:`audit_generation` is the convenience entry point
used by the test fixture and the differential harness.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from repro.core.engine import GenerationResult
from repro.hardware.energy import EnergyModel
from repro.hardware.platform import Platform
from repro.hardware.timeline import RESOURCES
from repro.memory.placement import ExpertPlacement
from repro.trace.recorder import DECODE, PREFILL

#: Op kinds that execute one expert FFN.
EXPERT_OP_KINDS = ("expert_gpu", "expert_cpu")

#: Label pattern shared by every engine's expert-upload ops.
_UPLOAD_LABEL = re.compile(r"E(\d+)@B(\d+)")

#: Absolute slack for simulated-time comparisons (seconds).
TIME_TOLERANCE_S = 1e-9


@dataclass(frozen=True)
class Violation:
    """One broken invariant found by the auditor."""

    check: str
    message: str

    def format(self) -> str:
        """Render as ``check: message``."""
        return f"{self.check}: {self.message}"


@dataclass
class AuditReport:
    """Outcome of auditing one generation."""

    engine: str
    violations: list = field(default_factory=list)
    checks_run: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every audited invariant held."""
        return not self.violations

    def add(self, check: str, message: str) -> None:
        """Record one violation."""
        self.violations.append(Violation(check=check, message=message))

    def format(self) -> str:
        """Multi-line human-readable summary."""
        head = (f"audit[{self.engine}]: "
                f"{len(self.checks_run)} checks, "
                f"{len(self.violations)} violation(s)")
        lines = [head] + [f"  {v.format()}" for v in self.violations]
        return "\n".join(lines)


def _isclose(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=TIME_TOLERANCE_S)


# ---- individual checks -----------------------------------------------------


def check_timeline_causality(result: GenerationResult,
                             report: AuditReport) -> None:
    """Dependencies end before dependents start; lanes never overlap."""
    report.checks_run.append("timeline-causality")
    ops = result.timeline.ops
    for i, op in enumerate(ops):
        if op.index != i:
            report.add("timeline-causality",
                       f"op at position {i} carries index {op.index}")
        if op.duration < 0:
            report.add("timeline-causality",
                       f"op {op.index} ({op.label!r}) has negative "
                       f"duration {op.duration}")
        if not _isclose(op.end, op.start + op.duration):
            report.add("timeline-causality",
                       f"op {op.index} ({op.label!r}) spans "
                       f"[{op.start}, {op.end}] which disagrees with "
                       f"duration {op.duration}")
        for dep_index in op.dep_indices:
            if not 0 <= dep_index < op.index:
                report.add("timeline-causality",
                           f"op {op.index} ({op.label!r}) depends on "
                           f"op {dep_index}, which is not an earlier op")
                continue
            dep = ops[dep_index]
            if dep.end > op.start + TIME_TOLERANCE_S:
                report.add("timeline-causality",
                           f"op {op.index} ({op.label!r}) starts at "
                           f"{op.start} before its dependency "
                           f"{dep.index} ({dep.label!r}) ends at "
                           f"{dep.end}")
    for resource in RESOURCES:
        previous = None
        for op in result.timeline.ops_on(resource):
            if previous is not None and \
                    op.start + TIME_TOLERANCE_S < previous.end:
                report.add("timeline-causality",
                           f"ops {previous.index} and {op.index} overlap "
                           f"on {resource}: [{previous.start}, "
                           f"{previous.end}] vs [{op.start}, {op.end}]")
            previous = op


def _expected_exec_count(result: GenerationResult) -> int:
    """Expert executions implied by the routing trace.

    Prefill processes all tokens of a block in one batched call, so it
    executes each *distinct* activated expert of the block once; each
    decode event executes its (executed) expert set for one token.
    """
    prefill_experts: dict = {}
    decode_execs = 0
    for event in result.trace.events:
        if event.phase == PREFILL:
            prefill_experts.setdefault(event.block, set()).update(
                event.experts
            )
        else:
            executed = (event.executed_experts
                        if event.executed_experts is not None
                        else event.experts)
            decode_execs += len(set(executed))
    prefill_execs = sum(len(s) for s in prefill_experts.values())
    return prefill_execs + decode_execs


def check_counter_conservation(result: GenerationResult,
                               report: AuditReport) -> None:
    """Counters, timeline ops, and trace events must agree."""
    report.checks_run.append("counter-conservation")
    counters = result.stats.counters
    ops_by_kind: dict = {}
    for op in result.timeline.ops:
        ops_by_kind[op.kind] = ops_by_kind.get(op.kind, 0) + 1

    pairs = (
        ("gpu_expert_execs", counters.gpu_expert_execs,
         ops_by_kind.get("expert_gpu", 0)),
        ("cpu_expert_execs", counters.cpu_expert_execs,
         ops_by_kind.get("expert_cpu", 0)),
        ("expert_uploads", counters.expert_uploads,
         ops_by_kind.get("expert_upload", 0)),
    )
    for name, counted, scheduled in pairs:
        if counted != scheduled:
            report.add("counter-conservation",
                       f"counters.{name} = {counted} but the timeline "
                       f"holds {scheduled} matching op(s)")

    total_execs = counters.gpu_expert_execs + counters.cpu_expert_execs
    expected = _expected_exec_count(result)
    if total_execs != expected:
        report.add("counter-conservation",
                   f"{total_execs} expert execs counted but the trace "
                   f"implies {expected}")

    activated = sum(
        len(event.executed_experts
            if event.executed_experts is not None else event.experts)
        for event in result.trace.events
    )
    if counters.activated_total != activated:
        report.add("counter-conservation",
                   f"counters.activated_total = "
                   f"{counters.activated_total} but the trace records "
                   f"{activated} activations")
    if counters.activated_gpu_resident > counters.activated_total:
        report.add("counter-conservation",
                   "activated_gpu_resident exceeds activated_total")
    if counters.stale_input_execs > counters.cpu_expert_execs:
        report.add("counter-conservation",
                   "stale_input_execs exceeds cpu_expert_execs")


def check_upload_placement(result: GenerationResult,
                           report: AuditReport,
                           initial_placement: ExpertPlacement) -> None:
    """Experts that became GPU-resident must have been uploaded."""
    report.checks_run.append("upload-placement")
    uploaded = set()
    for op in result.timeline.ops:
        if op.kind != "expert_upload":
            continue
        match = _UPLOAD_LABEL.search(op.label)
        if match is None:
            report.add("upload-placement",
                       f"upload op {op.index} has unparseable label "
                       f"{op.label!r}")
            continue
        uploaded.add((int(match.group(2)), int(match.group(1))))
    final = result.placement.as_matrix()
    initial = initial_placement.as_matrix()
    if final.shape != initial.shape:
        report.add("upload-placement",
                   f"placement shape {final.shape} differs from initial "
                   f"{initial.shape}")
        return
    n_blocks, n_experts = final.shape
    for block in range(n_blocks):
        for expert in range(n_experts):
            if final[block, expert] and not initial[block, expert] \
                    and (block, expert) not in uploaded:
                report.add("upload-placement",
                           f"E{expert}@B{block} is GPU-resident at the "
                           "end but was never uploaded")


def check_energy_consistency(result: GenerationResult,
                             report: AuditReport,
                             platform: Platform | None = None) -> None:
    """Stats times/energy agree with the timeline they summarize."""
    report.checks_run.append("energy-consistency")
    stats = result.stats
    makespan = result.timeline.makespan
    if not _isclose(stats.total_time_s, makespan):
        report.add("energy-consistency",
                   f"total_time_s = {stats.total_time_s} but the "
                   f"timeline makespan is {makespan}")
    if stats.prefill_time_s > stats.total_time_s + TIME_TOLERANCE_S:
        report.add("energy-consistency",
                   f"prefill_time_s = {stats.prefill_time_s} exceeds "
                   f"total_time_s = {stats.total_time_s}")
    energy = stats.energy
    parts = energy.gpu_j + energy.cpu_j + energy.link_j + energy.base_j
    if not _isclose(energy.total_j, parts):
        report.add("energy-consistency",
                   f"energy total {energy.total_j} J != sum of parts "
                   f"{parts} J")
    if min(energy.gpu_j, energy.cpu_j, energy.link_j, energy.base_j) < 0:
        report.add("energy-consistency",
                   "negative component in the energy breakdown")
    if platform is not None:
        recomputed = EnergyModel(platform).energy(result.timeline)
        if not _isclose(recomputed.total_j, energy.total_j):
            report.add("energy-consistency",
                       f"re-integrating the timeline gives "
                       f"{recomputed.total_j} J but the stats carry "
                       f"{energy.total_j} J")


def check_prefill_only_migration(result: GenerationResult,
                                 report: AuditReport) -> None:
    """No expert upload may start after prefill completes (SS IV-B)."""
    report.checks_run.append("prefill-only-migration")
    cutoff = result.stats.prefill_time_s + TIME_TOLERANCE_S
    for op in result.timeline.ops:
        if op.kind == "expert_upload" and op.start > cutoff:
            report.add("prefill-only-migration",
                       f"upload op {op.index} ({op.label!r}) starts at "
                       f"{op.start}, after prefill ended at "
                       f"{result.stats.prefill_time_s}")


def check_divergence_provenance(result: GenerationResult,
                                report: AuditReport) -> None:
    """Executed experts may deviate from the gate only when predicted."""
    report.checks_run.append("divergence-provenance")
    for event in result.trace.events:
        if event.predicted and event.phase != DECODE:
            report.add("divergence-provenance",
                       f"predicted event at block {event.block}, token "
                       f"{event.token_pos} is in phase {event.phase!r}; "
                       "prediction only happens during decode")
        if event.executed_experts is None:
            continue
        if set(event.executed_experts) != set(event.experts) \
                and not event.predicted:
            report.add("divergence-provenance",
                       f"block {event.block}, token {event.token_pos}: "
                       f"executed {event.executed_experts} != selected "
                       f"{event.experts} on an event not marked "
                       "predicted")


def check_pending_uploads_resident(engine, report: AuditReport) -> None:
    """Pending decode-migration uploads must name GPU-resident experts.

    A re-allocation that swaps an expert back out purges its pending
    upload; a surviving stale key would let a future activation depend on
    an upload for weights that are no longer resident.
    """
    report.checks_run.append("pending-uploads-resident")
    keys = getattr(engine, "pending_upload_keys", None)
    if keys is None:
        return
    for block, expert in keys:
        if not engine.placement.is_on_gpu(block, expert):
            report.add("pending-uploads-resident",
                       f"pending upload for E{expert}@B{block} but that "
                       "expert is not GPU-resident")


# ---- entry points ----------------------------------------------------------


def audit_result(
    result: GenerationResult,
    engine_name: str = "",
    initial_placement: ExpertPlacement | None = None,
    platform: Platform | None = None,
    prefill_only_uploads: bool = False,
) -> AuditReport:
    """Audit one :class:`GenerationResult` against the substrate contracts.

    Args:
        result: the finished generation to audit.
        engine_name: label used in the report.
        initial_placement: when given, enables the upload/placement
            transition check (needs the pre-generation placement).
        platform: when given, the energy breakdown is re-integrated from
            the timeline and compared.
        prefill_only_uploads: assert no upload op starts after prefill
            (the paper's DAOP configuration and all never-migrating
            engines; caching baselines legitimately upload in decode).

    Returns:
        An :class:`AuditReport`; ``report.ok`` is True iff every audited
        invariant held.
    """
    report = AuditReport(engine=engine_name or "engine")
    check_timeline_causality(result, report)
    check_counter_conservation(result, report)
    check_energy_consistency(result, report, platform)
    check_divergence_provenance(result, report)
    if initial_placement is not None:
        check_upload_placement(result, report, initial_placement)
    if prefill_only_uploads:
        check_prefill_only_migration(result, report)
    return report


def expects_prefill_only_uploads(engine) -> bool:
    """Whether an engine promises to migrate experts only during prefill.

    DAOP promises it exactly when the decode re-allocation extension is
    off (``decode_realloc_interval is None``); the official and Fiddler
    engines never move experts at all.  Caching/prefetching baselines
    upload during decode as their published behavior.
    """
    if hasattr(engine, "decode_realloc_interval"):
        return engine.decode_realloc_interval is None
    return getattr(engine, "name", "") in ("official", "fiddler")


def audit_generation(engine, result: GenerationResult,
                     platform: Platform | None = None) -> AuditReport:
    """Audit a generation with everything the live engine can tell us.

    Adds the engine-derived context :func:`audit_result` cannot infer
    from the artifact alone: the initial placement, the prefill-only
    promise, and (for DAOP) the pending-upload residency check.
    """
    report = audit_result(
        result,
        engine_name=getattr(engine, "name", type(engine).__name__),
        initial_placement=getattr(engine, "initial_placement", None),
        platform=platform or getattr(engine, "platform", None),
        prefill_only_uploads=expects_prefill_only_uploads(engine),
    )
    check_pending_uploads_resident(engine, report)
    return report
