"""Resume-parity audit: checkpoint/restore must be invisible.

The lifecycle stack's core invariant (see ``docs/lifecycle.md``) is that
pausing is free: a run checkpointed at step *k*, serialized through JSON
bytes, restored into a *freshly built* engine, and driven to completion
must be bitwise identical to a run that never paused — same tokens,
same counters, same per-op timeline.  This module audits that invariant
for every engine, at both lifecycle layers:

- **sequence layer** — ``start``/``step`` to a cut point, freeze via
  :meth:`~repro.core.engine.BaseEngine.checkpoint_sequence`, restore
  into a fresh engine with
  :meth:`~repro.core.engine.BaseEngine.restore_sequence`, finish, and
  compare against an uninterrupted ``generate()``;
- **scheduler layer** — a multi-request continuous-batch session is cut
  mid-flight via
  :meth:`~repro.sched.scheduler.ContinuousBatchScheduler.
  checkpoint_session` and resumed on a fresh engine + scheduler; the
  finished :class:`~repro.sched.scheduler.BatchReport` must serialize
  byte-identically to the uninterrupted session's.

Every checkpoint crosses a real ``json.dumps``/``json.loads`` boundary,
so the audit exercises the exact bytes a fresh process would read.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.core import ENGINE_NAMES, build_engine
from repro.core.engine import GenerationResult, SequenceRequest
from repro.hardware.platform import Platform
from repro.model.zoo import ModelBundle
from repro.sched.scheduler import ContinuousBatchScheduler
from repro.workloads.datasets import C4
from repro.workloads.generator import SequenceGenerator

#: Decode-step counts at which the audit cuts and resumes each run.
DEFAULT_CUTS = (1, 4)


def _json_round_trip(payload: dict) -> dict:
    """Force a checkpoint through the bytes a fresh process would read."""
    return json.loads(json.dumps(payload, sort_keys=True))


def timeline_signature(timeline) -> list:
    """Per-op tuple view of a timeline for bitwise comparison."""
    return [
        (op.resource, op.duration, op.start, op.end, op.kind, op.label)
        for op in timeline.ops
    ]


@dataclass
class ResumeParityComparison:
    """One engine/seed/cut: resumed run vs the uninterrupted run."""

    engine: str
    seed: int
    cut: int
    problems: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the resumed run matched bitwise."""
        return not self.problems


@dataclass
class ResumeParityReport:
    """Aggregated outcome of a resume-parity audit run."""

    comparisons: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every engine passed at every seed and cut."""
        return all(c.ok for c in self.comparisons)

    @property
    def problems(self) -> list:
        """Every problem string, prefixed with engine/seed/cut."""
        out = []
        for c in self.comparisons:
            prefix = f"{c.engine}/seed{c.seed}/cut{c.cut}"
            out.extend(f"{prefix}: {p}" for p in c.problems)
        return out

    def format(self) -> str:
        """Multi-line human-readable summary of the whole run."""
        lines = [
            f"resume-parity audit: {len(self.comparisons)} "
            f"comparison(s), {'all ok' if self.ok else 'FAILURES'}"
        ]
        lines.extend(f"  {p}" for p in self.problems)
        return "\n".join(lines)


def _check_result(comparison: ResumeParityComparison, path: str,
                  reference: GenerationResult,
                  resumed: GenerationResult) -> None:
    """Assert a resumed result matches the uninterrupted one bitwise."""
    if not np.array_equal(reference.tokens, resumed.tokens):
        comparison.problems.append(
            f"{path}: token stream differs after resume"
        )
    if reference.stats.counters != resumed.stats.counters:
        comparison.problems.append(
            f"{path}: EngineCounters differ after resume"
        )
    for attr in ("prefill_time_s", "total_time_s"):
        ref = getattr(reference.stats, attr)
        got = getattr(resumed.stats, attr)
        if ref != got:
            comparison.problems.append(
                f"{path}: {attr} {got!r} != uninterrupted {ref!r}"
            )
    ref_sig = timeline_signature(reference.timeline)
    got_sig = timeline_signature(resumed.timeline)
    if ref_sig != got_sig:
        comparison.problems.append(
            f"{path}: per-op timeline differs after resume "
            f"({len(got_sig)} vs {len(ref_sig)} ops)"
        )


def run_resume_parity_audit(
    bundle: ModelBundle,
    platform: Platform,
    engine_names=None,
    seeds=(0,),
    prompt_len: int = 16,
    max_new_tokens: int = 8,
    expert_cache_ratio: float = 0.5,
    calibration_probs: np.ndarray | None = None,
    dataset=C4,
    cuts=DEFAULT_CUTS,
    max_batch: int = 3,
) -> ResumeParityReport:
    """Audit checkpoint-at-*k* + resume parity for every engine.

    For each engine, seed, and cut point *k*, two paths are compared
    against uninterrupted references:

    1. *sequence*: ``start``/``step`` ``k`` times, checkpoint, restore
       into a freshly built engine, finish — compared against an
       uninterrupted ``generate()``.
    2. *scheduler*: a ``max_batch``-wide session over three staggered
       requests is ticked ``k`` times, checkpointed, restored onto a
       fresh engine + scheduler, and drained — its report must
       serialize byte-identically to an uninterrupted session's.

    Every checkpoint passes through canonical JSON bytes, so restoring
    in a fresh *process* reads exactly what this audit validates.
    """
    if engine_names is None:
        engine_names = ENGINE_NAMES
    report = ResumeParityReport()

    def fresh(name):
        return build_engine(name, bundle, platform, expert_cache_ratio,
                            calibration_probs)

    for seed in seeds:
        generator = SequenceGenerator(dataset, bundle.vocab, seed=int(seed))
        prompts = [
            generator.sample_sequence(
                prompt_len, 0, sample_idx=i
            ).prompt_tokens
            for i in range(3)
        ]
        arrivals = [0.0, 0.0, float(max_new_tokens)]
        requests = [
            SequenceRequest(prompt_tokens=p, max_new_tokens=max_new_tokens,
                            seq_id=i)
            for i, p in enumerate(prompts)
        ]
        for name in engine_names:
            reference = fresh(name).generate(prompts[0], max_new_tokens)
            ref_sched = ContinuousBatchScheduler(
                fresh(name), max_batch=max_batch
            ).run(requests, arrival_times=arrivals).to_json()

            for cut in cuts:
                comparison = ResumeParityComparison(
                    engine=name, seed=int(seed), cut=int(cut)
                )

                engine = fresh(name)
                state = engine.start(SequenceRequest(
                    prompt_tokens=prompts[0],
                    max_new_tokens=max_new_tokens,
                ))
                steps = 0
                while not state.done and steps < cut:
                    engine.step(state)
                    steps += 1
                payload = _json_round_trip(engine.checkpoint_sequence(state))
                resumed_engine = fresh(name)
                resumed = resumed_engine.restore_sequence(payload)
                while not resumed.done:
                    resumed_engine.step(resumed)
                _check_result(comparison, "sequence", reference,
                              resumed_engine.finish(resumed))

                scheduler = ContinuousBatchScheduler(
                    fresh(name), max_batch=max_batch
                )
                session = scheduler.begin(requests, arrival_times=arrivals)
                for _ in range(cut):
                    if not scheduler.tick(session):
                        break
                payload = _json_round_trip(
                    scheduler.checkpoint_session(session)
                )
                resumed_sched = ContinuousBatchScheduler(
                    fresh(name), max_batch=max_batch
                )
                resumed_session = resumed_sched.restore_session(payload)
                while resumed_sched.tick(resumed_session):
                    pass
                got = resumed_sched.finish(resumed_session).to_json()
                if got != ref_sched:
                    comparison.problems.append(
                        "scheduler: resumed session report differs from "
                        "uninterrupted run"
                    )
                report.comparisons.append(comparison)
    return report
