"""Cross-engine differential audit against the all-on-GPU oracle.

The central correctness invariant of this reproduction (and of the
compute-placement-invariance assumption Fiddler and Pre-gated MoE share
with DAOP) is that expert *placement* may change simulated time and
energy but never values: every non-predictive engine must emit a
byte-identical token stream to the all-on-GPU ``official`` oracle, and
DAOP's prediction path may diverge only through the approximations its
trace marks ``predicted=True`` (predicted expert sets, stale CPU inputs,
graceful degradation).

:func:`run_differential_audit` runs every registered engine against the
oracle over a seeded prompt matrix and asserts exactly that, with
per-block divergence accounting (how many decode events each block
predicted and mispredicted) and a full invariant audit
(:mod:`repro.audit.invariants`) of every generation produced.

:func:`run_step_parity_audit` guards the step-machine refactor itself:
for every engine, one sequence driven through the explicit
``start``/``step``/``finish`` API and one driven through the
batch-1 :class:`~repro.sched.scheduler.ContinuousBatchScheduler` must
reproduce the monolithic ``generate()`` run exactly — same tokens, same
counters, same makespan — and the scheduler-produced result must pass
the full invariant audit.

Both audits accept a shared content-addressed ``compute_cache``
(``repro.perf.TensorCache``): identical forwards are then computed once
across the whole engine matrix.  ``cache_parity=True`` additionally runs
every generation a second time with the cache detached and asserts the
two runs are *bitwise* interchangeable — same tokens, same trace events,
same counters, and a per-op-identical timeline — which is the memoization
layer's own correctness contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.audit.invariants import AuditReport, audit_generation
from repro.core import ENGINE_NAMES, build_engine
from repro.core.engine import GenerationResult, SequenceRequest
from repro.hardware.platform import Platform
from repro.model.zoo import ModelBundle
from repro.sched.scheduler import GATHERED, ContinuousBatchScheduler
from repro.trace.recorder import DECODE
from repro.workloads import C4, SequenceGenerator

#: The engine whose output defines correctness (ECR 100 %, exact math).
ORACLE_ENGINE = "official"

#: Default seeds for the prompt matrix (acceptance: >= 3).
DEFAULT_SEEDS = (0, 1, 2)


@dataclass(frozen=True)
class BlockDivergence:
    """Per-block accounting of decode-phase prediction divergence."""

    block: int
    decode_events: int
    predicted_events: int
    mispredicted_events: int

    @property
    def prediction_accuracy(self) -> float:
        """Fraction of predicted events whose executed set matched."""
        if self.predicted_events == 0:
            return 1.0
        return 1.0 - self.mispredicted_events / self.predicted_events


@dataclass
class EngineComparison:
    """One engine vs the oracle on one seeded prompt."""

    engine: str
    seed: int
    n_tokens: int
    n_divergent: int
    first_divergence: int | None
    predictive: bool
    problems: list = field(default_factory=list)
    block_divergence: list = field(default_factory=list)
    audit: AuditReport | None = None

    @property
    def ok(self) -> bool:
        """Whether this comparison satisfied its identity contract."""
        return not self.problems and (self.audit is None or self.audit.ok)

    @property
    def identical(self) -> bool:
        """Whether the token stream matched the oracle exactly."""
        return self.n_divergent == 0


@dataclass
class DifferentialReport:
    """Aggregated outcome of a differential audit run."""

    oracle: str
    comparisons: list = field(default_factory=list)
    oracle_audits: list = field(default_factory=list)
    cache_parity_problems: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every comparison and every invariant audit passed."""
        return (all(c.ok for c in self.comparisons)
                and all(a.ok for a in self.oracle_audits)
                and not self.cache_parity_problems)

    @property
    def problems(self) -> list:
        """Every problem string across all comparisons and audits."""
        out = list(self.cache_parity_problems)
        for comparison in self.comparisons:
            prefix = f"{comparison.engine}/seed{comparison.seed}"
            out.extend(f"{prefix}: {p}" for p in comparison.problems)
            if comparison.audit is not None:
                out.extend(f"{prefix}: {v.format()}"
                           for v in comparison.audit.violations)
        for audit in self.oracle_audits:
            out.extend(f"{self.oracle}: {v.format()}"
                       for v in audit.violations)
        return out

    def rows(self) -> list:
        """Tabular summary: one row per (engine, seed) comparison."""
        rows = []
        for c in self.comparisons:
            mispredicted = sum(b.mispredicted_events
                               for b in c.block_divergence)
            rows.append([
                c.engine, c.seed,
                "yes" if c.identical else f"@{c.first_divergence}",
                c.n_divergent, mispredicted,
                "ok" if c.ok else "FAIL",
            ])
        return rows

    def format(self) -> str:
        """Multi-line human-readable summary of the whole run."""
        lines = [
            f"differential audit vs {self.oracle}: "
            f"{len(self.comparisons)} comparison(s), "
            f"{'all ok' if self.ok else 'FAILURES'}"
        ]
        lines.extend(f"  {p}" for p in self.problems)
        return "\n".join(lines)


def compare_token_streams(oracle_tokens: np.ndarray,
                          engine_tokens: np.ndarray):
    """Token-stream difference summary.

    Returns:
        ``(n_divergent, first_divergence)`` where ``first_divergence`` is
        the index of the first differing position (``None`` when the
        streams are identical); a length mismatch counts every position
        past the common prefix as divergent.
    """
    oracle_tokens = np.asarray(oracle_tokens)
    engine_tokens = np.asarray(engine_tokens)
    n = min(oracle_tokens.size, engine_tokens.size)
    diff = oracle_tokens[:n] != engine_tokens[:n]
    tail = max(oracle_tokens.size, engine_tokens.size) - n
    n_divergent = int(np.count_nonzero(diff)) + tail
    if n_divergent == 0:
        return 0, None
    if diff.any():
        return n_divergent, int(np.argmax(diff))
    return n_divergent, n


def block_divergence_accounting(result: GenerationResult) -> list:
    """Per-block decode divergence summary of one generation's trace."""
    per_block: dict = {}
    for event in result.trace.events:
        if event.phase != DECODE:
            continue
        stats = per_block.setdefault(event.block, [0, 0, 0])
        stats[0] += 1
        if event.predicted:
            stats[1] += 1
            executed = (event.executed_experts
                        if event.executed_experts is not None
                        else event.experts)
            if set(executed) != set(event.experts):
                stats[2] += 1
    return [
        BlockDivergence(block=block, decode_events=stats[0],
                        predicted_events=stats[1],
                        mispredicted_events=stats[2])
        for block, stats in sorted(per_block.items())
    ]


def _timeline_signature(result: GenerationResult) -> list:
    """Per-op timeline fingerprint (resource, timing, kind, label)."""
    return [
        (op.resource, op.duration, op.start, op.end, op.kind, op.label)
        for op in result.timeline.ops
    ]


def cache_parity_problems(baseline: GenerationResult,
                          cached: GenerationResult) -> list:
    """Bitwise differences between a cache-off and a cache-on generation.

    The compute cache's contract is invisibility: attaching it may change
    wall-clock time only.  Tokens, trace events, engine counters, stats,
    and the *per-op* simulated timeline must all match exactly.
    """
    problems = []
    if not np.array_equal(baseline.tokens, cached.tokens):
        problems.append("cache parity: token stream differs from cache-off run")
    if baseline.trace.events != cached.trace.events:
        problems.append("cache parity: trace events differ from cache-off run")
    if baseline.stats.counters != cached.stats.counters:
        problems.append("cache parity: EngineCounters differ from cache-off run")
    for attr in ("prefill_time_s", "total_time_s"):
        if getattr(baseline.stats, attr) != getattr(cached.stats, attr):
            problems.append(
                f"cache parity: {attr} differs from cache-off run"
            )
    if baseline.timeline.makespan != cached.timeline.makespan:
        problems.append("cache parity: makespan differs from cache-off run")
    if _timeline_signature(baseline) != _timeline_signature(cached):
        problems.append(
            "cache parity: per-op timeline differs from cache-off run"
        )
    return problems


def _generate_cache_off(model, compute_cache, engine, prompt,
                        max_new_tokens) -> GenerationResult:
    """Run one generation with the compute cache temporarily detached."""
    model.detach_compute_cache()
    try:
        return engine.generate(prompt, max_new_tokens)
    finally:
        model.attach_compute_cache(compute_cache)


def _is_predictive(engine) -> bool:
    """Whether the engine's *math* may deviate from the true gate."""
    return bool(getattr(engine, "enable_precalc", False))


def _compare(engine, name: str, seed: int, oracle: GenerationResult,
             result: GenerationResult,
             audit_invariants: bool) -> EngineComparison:
    n_divergent, first = compare_token_streams(oracle.tokens, result.tokens)
    comparison = EngineComparison(
        engine=name, seed=seed, n_tokens=int(result.tokens.size),
        n_divergent=n_divergent, first_divergence=first,
        predictive=_is_predictive(engine),
        block_divergence=block_divergence_accounting(result),
    )
    if result.tokens.size != oracle.tokens.size:
        comparison.problems.append(
            f"generated {result.tokens.size} tokens but the oracle "
            f"generated {oracle.tokens.size}"
        )
    has_predicted = any(e.predicted for e in result.trace.events)
    if not comparison.predictive:
        if n_divergent:
            comparison.problems.append(
                f"non-predictive engine diverged from the oracle at "
                f"token {first} ({n_divergent} position(s)); placement "
                "must never change values"
            )
        if has_predicted:
            comparison.problems.append(
                "non-predictive engine marked trace events predicted=True"
            )
    else:
        if result.tokens.size and oracle.tokens.size \
                and result.tokens[0] != oracle.tokens[0]:
            comparison.problems.append(
                "first token diverged from the oracle; DAOP prefill is "
                "exact so divergence may only start in decode"
            )
        if n_divergent and not has_predicted:
            comparison.problems.append(
                f"diverged from the oracle at token {first} without a "
                "single predicted=True trace event to attribute it to"
            )
    if audit_invariants:
        comparison.audit = audit_generation(engine, result)
    return comparison


def run_differential_audit(
    bundle: ModelBundle,
    platform: Platform,
    engine_names=None,
    seeds=DEFAULT_SEEDS,
    prompt_len: int = 16,
    max_new_tokens: int = 12,
    expert_cache_ratio: float = 0.5,
    calibration_probs: np.ndarray | None = None,
    dataset=C4,
    audit_invariants: bool = True,
    compute_cache=None,
    cache_parity: bool = False,
) -> DifferentialReport:
    """Run every engine against the oracle over a seeded prompt matrix.

    Args:
        bundle: the model to drive every engine with.
        platform: simulated hardware platform.
        engine_names: engines to audit (default: every registered
            engine except the oracle itself).
        seeds: one prompt is drawn per seed (>= 3 for the acceptance
            criterion).
        prompt_len: prompt length in tokens.
        max_new_tokens: decode steps per generation.
        expert_cache_ratio: ECR for the cached engines.
        calibration_probs: calibrated activation probabilities (optional).
        dataset: workload dataset the prompt matrix is drawn from.
        audit_invariants: also run the full invariant audit on every
            generation (including the oracle's).
        compute_cache: optional shared ``repro.perf.TensorCache``
            attached to the model for the whole run, so identical
            forwards are computed once across engines and seeds.
        cache_parity: with a ``compute_cache``, additionally re-run
            every generation cache-off and assert the cache-on run is
            bitwise interchangeable (tokens, trace events, counters,
            per-op timeline).  Failures land in ``report.problems``.

    Returns:
        A :class:`DifferentialReport`; ``report.ok`` is the audited
        invariant of the whole reproduction.
    """
    if cache_parity and compute_cache is None:
        raise ValueError("cache_parity=True requires a compute_cache")
    if engine_names is None:
        engine_names = tuple(n for n in ENGINE_NAMES if n != ORACLE_ENGINE)
    oracle_engine = build_engine(ORACLE_ENGINE, bundle, platform,
                                 expert_cache_ratio, calibration_probs)
    engines = {
        name: build_engine(name, bundle, platform, expert_cache_ratio,
                           calibration_probs)
        for name in engine_names
    }
    report = DifferentialReport(oracle=ORACLE_ENGINE)
    model = bundle.model
    if compute_cache is not None:
        model.attach_compute_cache(compute_cache)
    try:
        for seed in seeds:
            generator = SequenceGenerator(dataset, bundle.vocab,
                                          seed=int(seed))
            prompt = generator.sample_sequence(
                prompt_len, 0, sample_idx=0
            ).prompt_tokens
            oracle_result = oracle_engine.generate(prompt, max_new_tokens)
            if cache_parity:
                baseline = _generate_cache_off(
                    model, compute_cache, oracle_engine, prompt,
                    max_new_tokens,
                )
                report.cache_parity_problems.extend(
                    f"{ORACLE_ENGINE}/seed{seed}: {p}"
                    for p in cache_parity_problems(baseline, oracle_result)
                )
            if audit_invariants:
                report.oracle_audits.append(
                    audit_generation(oracle_engine, oracle_result)
                )
            for name, engine in engines.items():
                result = engine.generate(prompt, max_new_tokens)
                comparison = _compare(engine, name, int(seed),
                                      oracle_result, result,
                                      audit_invariants)
                if cache_parity:
                    baseline = _generate_cache_off(
                        model, compute_cache, engine, prompt, max_new_tokens
                    )
                    comparison.problems.extend(
                        cache_parity_problems(baseline, result)
                    )
                report.comparisons.append(comparison)
    finally:
        if compute_cache is not None:
            model.detach_compute_cache()
    return report


@dataclass
class StepParityComparison:
    """One engine's step-path runs vs its monolithic ``generate()``."""

    engine: str
    seed: int
    problems: list = field(default_factory=list)
    audit: AuditReport | None = None
    batch_audits: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every step path reproduced ``generate()`` exactly."""
        return (not self.problems
                and (self.audit is None or self.audit.ok)
                and all(a.ok for a in self.batch_audits))


@dataclass
class StepParityReport:
    """Aggregated outcome of a step-parity audit run."""

    comparisons: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every engine passed on every seed."""
        return all(c.ok for c in self.comparisons)

    @property
    def problems(self) -> list:
        """Every problem string, prefixed with engine/seed."""
        out = []
        for c in self.comparisons:
            prefix = f"{c.engine}/seed{c.seed}"
            out.extend(f"{prefix}: {p}" for p in c.problems)
            if c.audit is not None:
                out.extend(f"{prefix}: {v.format()}"
                           for v in c.audit.violations)
            for i, audit in enumerate(c.batch_audits):
                out.extend(f"{prefix}/gathered seq{i}: {v.format()}"
                           for v in audit.violations)
        return out

    def format(self) -> str:
        """Multi-line human-readable summary of the whole run."""
        lines = [
            f"step-parity audit: {len(self.comparisons)} comparison(s), "
            f"{'all ok' if self.ok else 'FAILURES'}"
        ]
        lines.extend(f"  {p}" for p in self.problems)
        return "\n".join(lines)


def _check_parity(comparison: StepParityComparison, path: str,
                  reference: GenerationResult,
                  candidate: GenerationResult) -> None:
    """Assert one step-path result reproduces ``generate()`` exactly."""
    if not np.array_equal(reference.tokens, candidate.tokens):
        comparison.problems.append(
            f"{path}: token stream differs from generate()"
        )
    if reference.stats.counters != candidate.stats.counters:
        comparison.problems.append(
            f"{path}: EngineCounters differ from generate()"
        )
    for attr in ("prefill_time_s", "total_time_s"):
        ref = getattr(reference.stats, attr)
        got = getattr(candidate.stats, attr)
        if ref != got:
            comparison.problems.append(
                f"{path}: {attr} {got!r} != generate()'s {ref!r}"
            )
    if reference.timeline.makespan != candidate.timeline.makespan:
        comparison.problems.append(
            f"{path}: makespan {candidate.timeline.makespan!r} != "
            f"generate()'s {reference.timeline.makespan!r}"
        )
    if len(reference.timeline.ops) != len(candidate.timeline.ops):
        comparison.problems.append(
            f"{path}: op count {len(candidate.timeline.ops)} != "
            f"generate()'s {len(reference.timeline.ops)}"
        )


def run_step_parity_audit(
    bundle: ModelBundle,
    platform: Platform,
    engine_names=None,
    seeds=(0,),
    prompt_len: int = 16,
    max_new_tokens: int = 8,
    expert_cache_ratio: float = 0.5,
    calibration_probs: np.ndarray | None = None,
    dataset=C4,
    audit_invariants: bool = True,
    compute_cache=None,
) -> StepParityReport:
    """Audit start/step/finish parity with ``generate()`` per engine.

    For every engine and seed, the same request is run three ways: the
    monolithic ``generate()``, an explicit ``start``/``step``/``finish``
    loop, and a batch-1 :class:`ContinuousBatchScheduler`.  All three
    must agree bitwise on tokens, counters, and timing; the
    scheduler-produced result additionally passes the full invariant
    audit (so scheduler output is interchangeable with ``generate()``
    output everywhere downstream).

    A fourth path audits gathered cross-sequence execution: four
    distinct prompts run through a batch-4 gathered scheduler, and every
    sequence's tokens and counters must match its own solo
    ``generate()`` token for token (the ``step_batch`` contract — only
    the simulated schedule may change), with each batched result passing
    the invariant audit on its rebased timeline.  The four prompts share
    one length, so the scheduler's prompt-length bucketing forms a
    prefill cohort and the same parity check covers gathered *prefill*
    too; the audit additionally asserts that prefill kernels really were
    gathered, so this coverage cannot silently degrade to solo prefill.

    An optional shared ``compute_cache`` is attached for the whole run —
    the paths then also exercise the memoization layer under the step
    machine and the scheduler.
    """
    if engine_names is None:
        engine_names = ENGINE_NAMES
    report = StepParityReport()
    model = bundle.model
    if compute_cache is not None:
        model.attach_compute_cache(compute_cache)
    try:
        for seed in seeds:
            generator = SequenceGenerator(dataset, bundle.vocab,
                                          seed=int(seed))
            prompts = [
                generator.sample_sequence(
                    prompt_len, 0, sample_idx=i
                ).prompt_tokens
                for i in range(4)
            ]
            prompt = prompts[0]
            for name in engine_names:
                engine = build_engine(name, bundle, platform,
                                      expert_cache_ratio, calibration_probs)
                comparison = StepParityComparison(engine=name, seed=int(seed))
                reference = engine.generate(prompt, max_new_tokens)

                state = engine.start(SequenceRequest(
                    prompt_tokens=prompt, max_new_tokens=max_new_tokens,
                ))
                while not state.done:
                    engine.step(state)
                _check_parity(comparison, "start/step/finish",
                              reference, engine.finish(state))

                scheduler = ContinuousBatchScheduler(engine, max_batch=1)
                batch = scheduler.run([SequenceRequest(
                    prompt_tokens=prompt, max_new_tokens=max_new_tokens,
                )])
                scheduled = batch.records[0].result
                _check_parity(comparison, "scheduler@1", reference, scheduled)
                if audit_invariants:
                    comparison.audit = audit_generation(engine, scheduled)

                solo_refs = [reference] + [
                    engine.generate(p, max_new_tokens) for p in prompts[1:]
                ]
                gathered = ContinuousBatchScheduler(
                    engine, max_batch=len(prompts), mode=GATHERED
                )
                batch4 = gathered.run([
                    SequenceRequest(prompt_tokens=p,
                                    max_new_tokens=max_new_tokens, seq_id=i)
                    for i, p in enumerate(prompts)
                ])
                gather = batch4.gather
                if gather is None or gather.prefill_expert_kernels == 0:
                    comparison.problems.append(
                        "gathered@4: prefill kernels were not gathered "
                        "(bucketing did not form a cohort)"
                    )
                elif not (gather.prefill_expert_kernels
                          < gather.prefill_expert_ops):
                    comparison.problems.append(
                        "gathered@4: prefill expert calls were not "
                        "amortized across the cohort"
                    )
                records = sorted(batch4.records, key=lambda r: r.seq_id)
                for i, (record, solo) in enumerate(zip(records, solo_refs)):
                    batched = record.result
                    if not np.array_equal(solo.tokens, batched.tokens):
                        comparison.problems.append(
                            f"gathered@4 seq{i}: token stream differs "
                            "from solo generate()"
                        )
                    if solo.stats.counters != batched.stats.counters:
                        comparison.problems.append(
                            f"gathered@4 seq{i}: EngineCounters differ "
                            "from solo generate()"
                        )
                    if audit_invariants:
                        comparison.batch_audits.append(
                            audit_generation(engine, batched)
                        )
                report.comparisons.append(comparison)
    finally:
        if compute_cache is not None:
            model.detach_compute_cache()
    return report
