"""Event core of the multi-replica serving simulator.

The cluster simulator is a deterministic discrete-event simulation over
simulated seconds: every state change is an :class:`Event` popped from a
binary heap ordered by ``(time, submission sequence)``, so ties resolve
in submission order and two runs with identical inputs replay the exact
same event sequence.  This module holds the engine-agnostic pieces — the
event records, the heap/clock, per-replica FIFO queues, and the
pre-computed per-request metadata the routing policies consume — while
:mod:`repro.cluster.simulator` binds them to real inference engines.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.model.serialization import decode_array, encode_array

ARRIVAL = "arrival"
DISPATCH = "dispatch"
COMPLETION = "completion"

EVENT_KINDS = (ARRIVAL, DISPATCH, COMPLETION)


@dataclass(frozen=True)
class Event:
    """One scheduled simulator event.

    Attributes:
        time: firing time in simulated seconds.
        seq: submission-order tiebreaker (events at equal times fire in
            submission order).
        kind: one of ``arrival`` / ``dispatch`` / ``completion``.
        request_id: the request the event concerns (-1 for pure
            replica-side events).
        replica: the replica the event concerns (-1 for arrivals, which
            are routed when the event fires).
    """

    time: float
    seq: int
    kind: str
    request_id: int = -1
    replica: int = -1

    def to_state_dict(self) -> dict:
        """Serialize the event for a checkpoint."""
        return {
            "time": self.time,
            "seq": self.seq,
            "kind": self.kind,
            "request_id": self.request_id,
            "replica": self.replica,
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "Event":
        """Rebuild an event captured by :meth:`to_state_dict`."""
        return cls(
            time=float(payload["time"]),
            seq=int(payload["seq"]),
            kind=payload["kind"],
            request_id=int(payload["request_id"]),
            replica=int(payload["replica"]),
        )


class EventQueue:
    """Min-heap of events keyed on ``(time, seq)`` with a monotone clock."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        """Simulated time of the most recently popped event."""
        return self._now

    def push(self, time: float, kind: str, request_id: int = -1,
             replica: int = -1) -> Event:
        """Schedule an event; returns the created record."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"kind must be one of {EVENT_KINDS}")
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time} before now={self._now}"
            )
        event = Event(time=float(time), seq=self._seq, kind=kind,
                      request_id=request_id, replica=replica)
        self._seq += 1
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        _, _, event = heapq.heappop(self._heap)
        self._now = event.time
        return event

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def to_state_dict(self) -> dict:
        """Serialize the pending events and the clock for a checkpoint.

        Pending events are written sorted by ``(time, seq)`` so the
        serialized form is canonical regardless of internal heap layout.
        """
        ordered = sorted(self._heap, key=lambda entry: (entry[0], entry[1]))
        return {
            "now": self._now,
            "seq": self._seq,
            "events": [event.to_state_dict() for _, _, event in ordered],
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "EventQueue":
        """Rebuild the queue captured by :meth:`to_state_dict`."""
        queue = cls()
        queue._now = float(payload["now"])
        queue._seq = int(payload["seq"])
        for entry in payload["events"]:
            event = Event.from_state_dict(entry)
            heapq.heappush(queue._heap, (event.time, event.seq, event))
        return queue


@dataclass(frozen=True)
class RequestInfo:
    """Immutable per-request metadata known at arrival time.

    Attributes:
        request_id: arrival-order identifier.
        arrival_s: arrival time in simulated seconds.
        sample_idx: payload key of the request's tokens — the
            workload-generator sample index in the uniform regime, or a
            content-dedup key (first request id with that content) when
            built from :class:`~repro.workloads.requests.RequestSpec`
            lists.  Requests sharing a key serve identical tokens.
        fingerprint: per-(block, expert) prefill activation counts of the
            request's prompt (see
            :func:`repro.cluster.simulator.prefill_fingerprint`), used by
            cache-affinity routing and the warm-cache hit metric.
    """

    request_id: int
    arrival_s: float
    sample_idx: int
    fingerprint: np.ndarray = field(repr=False, default=None)

    def to_state_dict(self) -> dict:
        """Serialize the request metadata (fingerprint bitwise)."""
        return {
            "request_id": self.request_id,
            "arrival_s": self.arrival_s,
            "sample_idx": self.sample_idx,
            "fingerprint": encode_array(
                np.asarray(self.fingerprint, dtype=np.float64)
            ),
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "RequestInfo":
        """Rebuild the metadata captured by :meth:`to_state_dict`."""
        return cls(
            request_id=int(payload["request_id"]),
            arrival_s=float(payload["arrival_s"]),
            sample_idx=int(payload["sample_idx"]),
            fingerprint=decode_array(payload["fingerprint"]),
        )


@dataclass
class ReplicaState:
    """Queueing state of one engine replica.

    Attributes:
        queue: FIFO of waiting request ids (bounded by admission control).
        in_service: id of the request (for a gang dispatch: the first
            request of the gang) currently being served, or None if idle.
        in_flight: number of gang members still running; 0 outside gang
            dispatch, where ``in_service`` alone tracks occupancy.
        busy_until: completion time (simulated seconds) of the in-flight
            work; meaningful only while ``in_service`` is set.
        busy_time_s: cumulative service time in simulated seconds.
        n_served: completed request count.
    """

    queue: deque = field(default_factory=deque)
    in_service: int | None = None
    in_flight: int = 0
    busy_until: float = 0.0
    busy_time_s: float = 0.0
    n_served: int = 0

    @property
    def idle(self) -> bool:
        """Whether no request is currently in service."""
        return self.in_service is None and self.in_flight == 0

    @property
    def backlog(self) -> int:
        """Waiting plus in-service request count (the JSQ load signal)."""
        active = max(self.in_flight, 0 if self.in_service is None else 1)
        return len(self.queue) + active

    def to_state_dict(self) -> dict:
        """Serialize the replica's queueing state for a checkpoint."""
        return {
            "queue": [int(request_id) for request_id in self.queue],
            "in_service": self.in_service,
            "in_flight": self.in_flight,
            "busy_until": self.busy_until,
            "busy_time_s": self.busy_time_s,
            "n_served": self.n_served,
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "ReplicaState":
        """Rebuild the state captured by :meth:`to_state_dict`."""
        in_service = payload["in_service"]
        return cls(
            queue=deque(int(r) for r in payload["queue"]),
            in_service=None if in_service is None else int(in_service),
            in_flight=int(payload["in_flight"]),
            busy_until=float(payload["busy_until"]),
            busy_time_s=float(payload["busy_time_s"]),
            n_served=int(payload["n_served"]),
        )
