"""Event core of the multi-replica serving simulator.

The cluster simulator is a deterministic discrete-event simulation over
simulated seconds: every state change is an :class:`Event` popped from a
binary heap ordered by ``(time, submission sequence)``, so ties resolve
in submission order and two runs with identical inputs replay the exact
same event sequence.  This module holds the engine-agnostic pieces — the
event records, the heap/clock, per-replica FIFO queues, and the
pre-computed per-request metadata the routing policies consume — while
:mod:`repro.cluster.simulator` binds them to real inference engines.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

import numpy as np

ARRIVAL = "arrival"
DISPATCH = "dispatch"
COMPLETION = "completion"

EVENT_KINDS = (ARRIVAL, DISPATCH, COMPLETION)


@dataclass(frozen=True)
class Event:
    """One scheduled simulator event.

    Attributes:
        time: firing time in simulated seconds.
        seq: submission-order tiebreaker (events at equal times fire in
            submission order).
        kind: one of ``arrival`` / ``dispatch`` / ``completion``.
        request_id: the request the event concerns (-1 for pure
            replica-side events).
        replica: the replica the event concerns (-1 for arrivals, which
            are routed when the event fires).
    """

    time: float
    seq: int
    kind: str
    request_id: int = -1
    replica: int = -1


class EventQueue:
    """Min-heap of events keyed on ``(time, seq)`` with a monotone clock."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        """Simulated time of the most recently popped event."""
        return self._now

    def push(self, time: float, kind: str, request_id: int = -1,
             replica: int = -1) -> Event:
        """Schedule an event; returns the created record."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"kind must be one of {EVENT_KINDS}")
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time} before now={self._now}"
            )
        event = Event(time=float(time), seq=self._seq, kind=kind,
                      request_id=request_id, replica=replica)
        self._seq += 1
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        _, _, event = heapq.heappop(self._heap)
        self._now = event.time
        return event

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass(frozen=True)
class RequestInfo:
    """Immutable per-request metadata known at arrival time.

    Attributes:
        request_id: arrival-order identifier.
        arrival_s: arrival time in simulated seconds.
        sample_idx: payload key of the request's tokens — the
            workload-generator sample index in the uniform regime, or a
            content-dedup key (first request id with that content) when
            built from :class:`~repro.workloads.requests.RequestSpec`
            lists.  Requests sharing a key serve identical tokens.
        fingerprint: per-(block, expert) prefill activation counts of the
            request's prompt (see
            :func:`repro.cluster.simulator.prefill_fingerprint`), used by
            cache-affinity routing and the warm-cache hit metric.
    """

    request_id: int
    arrival_s: float
    sample_idx: int
    fingerprint: np.ndarray = field(repr=False, default=None)


@dataclass
class ReplicaState:
    """Queueing state of one engine replica.

    Attributes:
        queue: FIFO of waiting request ids (bounded by admission control).
        in_service: id of the request (for a gang dispatch: the first
            request of the gang) currently being served, or None if idle.
        in_flight: number of gang members still running; 0 outside gang
            dispatch, where ``in_service`` alone tracks occupancy.
        busy_until: completion time (simulated seconds) of the in-flight
            work; meaningful only while ``in_service`` is set.
        busy_time_s: cumulative service time in simulated seconds.
        n_served: completed request count.
    """

    queue: deque = field(default_factory=deque)
    in_service: int | None = None
    in_flight: int = 0
    busy_until: float = 0.0
    busy_time_s: float = 0.0
    n_served: int = 0

    @property
    def idle(self) -> bool:
        """Whether no request is currently in service."""
        return self.in_service is None and self.in_flight == 0

    @property
    def backlog(self) -> int:
        """Waiting plus in-service request count (the JSQ load signal)."""
        active = max(self.in_flight, 0 if self.in_service is None else 1)
        return len(self.queue) + active
