"""Pluggable request-routing policies for the cluster simulator.

Three policies span the design space the DAOP paper makes interesting:

- **round-robin** — the load-oblivious baseline.
- **join-shortest-queue** — the classic load-aware baseline.
- **cache-affinity** — routes each request to the replica whose recent
  traffic it most resembles.  DAOP's sequence-specific expert allocation
  (Algorithm 1) re-tunes a replica's GPU expert cache toward the
  sequences it serves, so a replica that has been serving similar
  requests already holds their dominant experts: routing for similarity
  preserves cache warmth, the same workload-awareness argument the paper
  grounds its calibration and allocation mechanisms in.  Similarity is
  the cosine between the request's prefill expert-activation fingerprint
  and a running per-replica centroid of admitted fingerprints
  (:func:`repro.trace.similarity.cosine_similarity`, the paper's Eq. 1
  row metric), with a join-shortest-queue fallback when the preferred
  replica's backlog runs too far ahead of the fleet.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.events import ReplicaState, RequestInfo
from repro.model.serialization import decode_array, encode_array
from repro.trace.similarity import cosine_similarity


class RoutingPolicy:
    """Base class: stateful per-run replica selection."""

    name = "base"

    def reset(self, n_replicas: int) -> None:
        """Clear all per-run state for a fleet of ``n_replicas``."""
        if n_replicas < 1:
            raise ValueError("n_replicas must be positive")
        self.n_replicas = n_replicas

    def select(self, request: RequestInfo,
               replicas: list[ReplicaState]) -> int:
        """Pick the replica index that should receive ``request``."""
        raise NotImplementedError

    def observe(self, replica_idx: int, request: RequestInfo) -> None:
        """Record that ``request`` was admitted to ``replica_idx``."""

    def state_dict(self) -> dict:
        """Serializable per-run state beyond what ``reset`` rebuilds."""
        return {}

    def load_state_dict(self, payload: dict) -> None:
        """Restore state captured by :meth:`state_dict`, after ``reset``."""


class RoundRobinPolicy(RoutingPolicy):
    """Cycle through replicas regardless of load or content."""

    name = "round-robin"

    def reset(self, n_replicas: int) -> None:
        """Clear the rotation counter."""
        super().reset(n_replicas)
        self._next = 0

    def select(self, request: RequestInfo,
               replicas: list[ReplicaState]) -> int:
        """Return the next replica in rotation."""
        chosen = self._next
        self._next = (self._next + 1) % self.n_replicas
        return chosen

    def state_dict(self) -> dict:
        """Serialize the rotation counter."""
        return {"next": self._next}

    def load_state_dict(self, payload: dict) -> None:
        """Restore the rotation counter."""
        self._next = int(payload["next"])


def least_loaded(replicas: list[ReplicaState]) -> int:
    """Index of the replica with the smallest backlog (ties: lowest)."""
    return min(range(len(replicas)), key=lambda i: (replicas[i].backlog, i))


class JoinShortestQueuePolicy(RoutingPolicy):
    """Route to the replica with the fewest queued + in-service requests."""

    name = "join-shortest-queue"

    def select(self, request: RequestInfo,
               replicas: list[ReplicaState]) -> int:
        """Return the least-loaded replica (ties break to lowest index)."""
        return least_loaded(replicas)


class CacheAffinityPolicy(RoutingPolicy):
    """Route to the replica with the most similar recent traffic.

    Each admitted request's prefill expert-activation fingerprint updates
    a running per-replica centroid; new requests go to the replica with
    the highest cosine similarity to its centroid.  Two guard rails keep
    the policy from degenerating:

    - **cold start** — replicas with no traffic history yet are filled
      first (least-loaded, then lowest index), so every centroid gets
      seeded deterministically before affinity takes over;
    - **load-balance fallback** — if the preferred replica's backlog
      exceeds the fleet minimum by more than ``load_slack`` requests, the
      request falls back to join-shortest-queue; cache warmth is never
      worth an unbounded queue.
    """

    name = "cache-affinity"

    def __init__(self, load_slack: int = 2) -> None:
        """``load_slack``: backlog lead (requests) that triggers fallback."""
        if load_slack < 0:
            raise ValueError("load_slack must be non-negative")
        self.load_slack = load_slack

    def reset(self, n_replicas: int) -> None:
        """Clear centroids and admission counts."""
        super().reset(n_replicas)
        self._centroids: list = [None] * n_replicas
        self._counts = [0] * n_replicas

    def centroid(self, replica_idx: int):
        """The replica's running fingerprint centroid, or None if cold."""
        return self._centroids[replica_idx]

    def similarity(self, replica_idx: int, request: RequestInfo) -> float:
        """Cosine similarity of a request to one replica's centroid."""
        centroid = self._centroids[replica_idx]
        if centroid is None:
            return 0.0
        return cosine_similarity(request.fingerprint.ravel(), centroid)

    def select(self, request: RequestInfo,
               replicas: list[ReplicaState]) -> int:
        """Most-similar warm replica, with cold-start and load fallbacks."""
        cold = [i for i in range(self.n_replicas)
                if self._centroids[i] is None]
        if cold:
            return min(cold, key=lambda i: (replicas[i].backlog, i))
        sims = [self.similarity(i, request) for i in range(self.n_replicas)]
        best = int(np.argmax(sims))  # argmax ties break to lowest index
        floor = min(r.backlog for r in replicas)
        if replicas[best].backlog - floor > self.load_slack:
            return least_loaded(replicas)
        return best

    def observe(self, replica_idx: int, request: RequestInfo) -> None:
        """Fold an admitted request's fingerprint into the centroid."""
        fingerprint = np.asarray(request.fingerprint,
                                 dtype=np.float64).ravel()
        count = self._counts[replica_idx]
        if self._centroids[replica_idx] is None:
            self._centroids[replica_idx] = fingerprint.copy()
        else:
            self._centroids[replica_idx] = (
                self._centroids[replica_idx] * count + fingerprint
            ) / (count + 1)
        self._counts[replica_idx] = count + 1

    def state_dict(self) -> dict:
        """Serialize centroids (bitwise) and admission counts."""
        return {
            "centroids": [
                None if centroid is None else encode_array(centroid)
                for centroid in self._centroids
            ],
            "counts": list(self._counts),
        }

    def load_state_dict(self, payload: dict) -> None:
        """Restore centroids and admission counts, after ``reset``."""
        self._centroids = [
            None if centroid is None else decode_array(centroid)
            for centroid in payload["centroids"]
        ]
        self._counts = [int(count) for count in payload["counts"]]


POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    JoinShortestQueuePolicy.name: JoinShortestQueuePolicy,
    CacheAffinityPolicy.name: CacheAffinityPolicy,
}

POLICY_NAMES = tuple(sorted(POLICIES))


def build_policy(name: str, **kwargs) -> RoutingPolicy:
    """Construct a routing policy by registry name."""
    if name not in POLICIES:
        raise ValueError(
            f"unknown policy {name!r}; choose from {POLICY_NAMES}"
        )
    return POLICIES[name](**kwargs)
