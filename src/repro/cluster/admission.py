"""Admission control, SLO targets, and deadline-based load shedding.

A single-engine FIFO queue (``repro.serving``) grows without bound when
arrivals outpace service; a fleet cannot afford that.  The cluster
simulator degrades gracefully instead: each replica's queue is bounded
(arrivals beyond the bound are *shed* with an immediate rejection), and
requests whose time-to-first-token deadline has already passed by the
time a replica could start them are *expired* rather than served — work
that can no longer meet its SLO only delays work that still can.

:class:`SLOTarget` doubles as the reporting vocabulary: goodput and
SLO-attainment in :mod:`repro.cluster.report` are defined against its
TTFT and TPOT targets.
"""

from __future__ import annotations

from dataclasses import dataclass

SHED = "shed"
EXPIRED = "expired"


@dataclass(frozen=True)
class SLOTarget:
    """Per-request service-level objectives.

    Attributes:
        ttft_s: time-to-first-token target in simulated seconds.
        tpot_s: time-per-output-token target in simulated seconds.
    """

    ttft_s: float = 30.0
    tpot_s: float = 1.0

    def __post_init__(self) -> None:
        if self.ttft_s <= 0 or self.tpot_s <= 0:
            raise ValueError("SLO targets must be positive")


@dataclass(frozen=True)
class AdmissionController:
    """Bounded queues plus deadline-based load shedding.

    Attributes:
        max_queue_len: waiting-request bound per replica; an arrival
            routed to a replica whose queue is full is shed.
        ttft_deadline_s: if set, a queued request whose wait already
            exceeds this deadline (simulated seconds) when a replica
            becomes free is expired instead of served.
    """

    max_queue_len: int = 8
    ttft_deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_queue_len < 1:
            raise ValueError("max_queue_len must be positive")
        if self.ttft_deadline_s is not None and self.ttft_deadline_s <= 0:
            raise ValueError("ttft_deadline_s must be positive")

    def admit(self, queue_len: int) -> bool:
        """Whether a replica with ``queue_len`` waiting requests may
        accept one more."""
        return queue_len < self.max_queue_len

    def expired(self, arrival_s: float, now: float) -> bool:
        """Whether a request that arrived at ``arrival_s`` has already
        blown its TTFT deadline at dispatch time ``now``."""
        if self.ttft_deadline_s is None:
            return False
        return (now - arrival_s) > self.ttft_deadline_s
