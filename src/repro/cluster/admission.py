"""Admission control, SLO targets, and deadline-based load shedding.

A single-engine FIFO queue (``repro.serving``) grows without bound when
arrivals outpace service; a fleet cannot afford that.  The cluster
simulator degrades gracefully instead: each replica's queue is bounded
(arrivals beyond the bound are *shed* with an immediate rejection), and
requests whose time-to-first-token deadline has already passed by the
time a replica could start them are *expired* rather than served — work
that can no longer meet its SLO only delays work that still can.

:class:`SLOTarget` doubles as the reporting vocabulary: goodput and
SLO-attainment in :mod:`repro.cluster.report` are defined against its
TTFT and TPOT targets.

Admission is also *batch-aware*: gathered prefill amortizes expert and
weight traffic across a cohort, but only below the hardware's batch
crossover (:meth:`~repro.hardware.cost_model.CostModel.
batch_crossover_tokens`) — past it the op is compute-bound and gathers
for free no longer.  :meth:`AdmissionController.should_hold` therefore
lets a free replica briefly hold a *lone sub-crossover* prefill in
queue, trading a bounded slice of its TTFT budget for the chance to
dispatch a cohort instead of a solo pass.
"""

from __future__ import annotations

from dataclasses import dataclass

SHED = "shed"
EXPIRED = "expired"


@dataclass(frozen=True)
class SLOTarget:
    """Per-request service-level objectives.

    Attributes:
        ttft_s: time-to-first-token target in simulated seconds.
        tpot_s: time-per-output-token target in simulated seconds.
    """

    ttft_s: float = 30.0
    tpot_s: float = 1.0

    def __post_init__(self) -> None:
        if self.ttft_s <= 0 or self.tpot_s <= 0:
            raise ValueError("SLO targets must be positive")


@dataclass(frozen=True)
class AdmissionController:
    """Bounded queues, deadline shedding, and crossover-aware holds.

    Attributes:
        max_queue_len: waiting-request bound per replica; an arrival
            routed to a replica whose queue is full is shed.
        ttft_deadline_s: if set, a queued request whose wait already
            exceeds this deadline (simulated seconds) when a replica
            becomes free is expired instead of served.
        batch_hold_s: if positive, a replica with exactly one queued
            *sub-crossover* prefill may hold dispatch up to this long
            (simulated seconds, from the request's arrival) waiting for
            a second request to form a gathered-prefill cohort.  The
            hold is bounded — see :meth:`hold_window_s` — so TTFT SLOs
            still hold; ``0.0`` (the default) disables holding.
        crossover_tokens: the batch-crossover row count of the target
            hardware (:meth:`~repro.hardware.cost_model.CostModel.
            batch_crossover_tokens`).  A prompt at or past it is already
            compute-bound, gains little from gathering, and is never
            held.  ``0`` means "never compute-bound": every lone
            prefill is worth holding for when ``batch_hold_s`` is set.
    """

    max_queue_len: int = 8
    ttft_deadline_s: float | None = None
    batch_hold_s: float = 0.0
    crossover_tokens: int = 0

    def __post_init__(self) -> None:
        if self.max_queue_len < 1:
            raise ValueError("max_queue_len must be positive")
        if self.ttft_deadline_s is not None and self.ttft_deadline_s <= 0:
            raise ValueError("ttft_deadline_s must be positive")
        if self.batch_hold_s < 0:
            raise ValueError("batch_hold_s must be non-negative")
        if self.crossover_tokens < 0:
            raise ValueError("crossover_tokens must be non-negative")

    def admit(self, queue_len: int) -> bool:
        """Whether a replica with ``queue_len`` waiting requests may
        accept one more."""
        return queue_len < self.max_queue_len

    def expired(self, arrival_s: float, now: float) -> bool:
        """Whether a request that arrived at ``arrival_s`` has already
        blown its TTFT deadline at dispatch time ``now``."""
        if self.ttft_deadline_s is None:
            return False
        return (now - arrival_s) > self.ttft_deadline_s

    @property
    def hold_window_s(self) -> float:
        """Effective hold budget per request (simulated seconds).

        ``batch_hold_s`` capped at half the TTFT deadline when one is
        set, so a held request still has at least half its deadline
        budget left for the prefill itself.
        """
        if self.ttft_deadline_s is None:
            return self.batch_hold_s
        return min(self.batch_hold_s, self.ttft_deadline_s / 2.0)

    def should_hold(self, n_queued: int, prompt_tokens: int,
                    queued_s: float) -> bool:
        """Whether a free replica should wait instead of dispatching.

        Holds exactly when all of: holding is enabled, the queue holds
        one lone request (two or more already form a cohort), the
        prompt is below the batch crossover (``crossover_tokens == 0``
        treats every prompt as sub-crossover), and the request has been
        queued less than the hold window.

        Args:
            n_queued: requests waiting at the replica.
            prompt_tokens: the head request's prompt length.
            queued_s: how long the head request has waited so far.
        """
        if self.batch_hold_s <= 0.0 or n_queued != 1:
            return False
        if 0 < self.crossover_tokens <= prompt_tokens:
            return False
        return queued_s < self.hold_window_s
