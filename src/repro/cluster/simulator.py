"""Discrete-event multi-replica serving simulation over real engines.

One arrival trace is served by N engine replicas.  The simulation is an
event loop over :mod:`repro.cluster.events`: arrivals are routed to a
replica by the active :class:`~repro.cluster.routing.RoutingPolicy`
(subject to :class:`~repro.cluster.admission.AdmissionController`
bounds), dispatches start service on idle replicas, and completions free
them.  A dispatch serves a *gang* of up to ``concurrency`` queued
requests through the engine's resumable step machine (so one replica can
overlap the decode of one request with the prefill of the next); at the
default ``concurrency=1`` service is sequential, one request at a time.
Service times are each engine's *simulated* generation times, so the
whole cluster trace stays in simulated seconds; everything is
deterministic given the arrival trace, the workload seed, and the
policy.

Cache warmth is modeled with the engines' own machinery: each replica
carries its expert placement forward from request to request, so a DAOP
replica's GPU cache stays tuned to the traffic it recently served
(Algorithm 1 re-tunes it during each prefill).  Routing therefore
*matters*: sending a request to a replica warmed on similar traffic
finds its dominant experts already resident — fewer prefill swaps and a
higher expert-cache hit rate, the dominant latency term in the
caching/pre-fetching analyses this subsystem reproduces at fleet scale.

Request fingerprints (for affinity routing and the warm-cache metric)
come from an exact forward pass over the prompt — the same routing the
engine's own prefill will compute (all engines' prefill routing is
exact), treated as control-plane work that charges no simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.admission import AdmissionController, EXPIRED, SHED, SLOTarget
from repro.cluster.events import (
    ARRIVAL,
    COMPLETION,
    DISPATCH,
    EventQueue,
    ReplicaState,
    RequestInfo,
)
from repro.cluster.report import (
    ClusterReport,
    ClusterRequest,
    RejectedRequest,
)
from repro.cluster.routing import RoutingPolicy
from repro.core.batching import GatherStats
from repro.core.engine import BaseEngine, SequenceRequest
from repro.events import (
    CHECKPOINT_RESTORE,
    CHECKPOINT_SAVE,
    CLUSTER_ARRIVAL,
    CLUSTER_COMPLETION,
    CLUSTER_DISPATCH,
    CLUSTER_HOLD,
    CLUSTER_REJECT,
    EventBus,
)
from repro.memory.placement import ExpertPlacement
from repro.model.serialization import (
    decode_array,
    decode_optional_array,
    encode_array,
    encode_optional_array,
)
from repro.sched.scheduler import GATHERED, INTERLEAVED, ContinuousBatchScheduler
from repro.serving.checkpoint import (
    CLUSTER_KIND,
    CheckpointError,
    SimCheckpoint,
)
from repro.workloads.generator import SequenceGenerator
from repro.workloads.requests import RequestSpec


def prefill_fingerprint(model, prompt_tokens: np.ndarray) -> np.ndarray:
    """Per-(block, expert) activation counts of a prompt's exact routing.

    This is the request's row in the paper's prefill activation matrix
    (Eq. 1's :math:`P_{i,j}` numerator): how many prompt tokens each
    expert attracts at each block.  Engines' prefill routing is exact,
    so the fingerprint predicts where the request's prefill (and, per
    the paper's observation ②, most of its decode) will execute.
    """
    _, decisions = model.forward_exact(np.asarray(prompt_tokens,
                                                  dtype=np.int64))
    counts = np.zeros((model.n_blocks, model.n_experts), dtype=np.float64)
    for block_idx, decision in enumerate(decisions):
        for t in range(decision.n_tokens):
            for expert in decision.experts[t]:
                counts[block_idx, int(expert)] += 1.0
    return counts


def warm_hit_rate(placement: ExpertPlacement,
                  fingerprint: np.ndarray) -> float:
    """Count-weighted fraction of fingerprint activations GPU-resident.

    Evaluated against a replica's placement *before* it serves the
    request, this is the expert-cache hit rate the request would see on
    arrival — the quantity cache-affinity routing tries to maximize.
    """
    fingerprint = np.asarray(fingerprint, dtype=np.float64)
    total = fingerprint.sum()
    if total <= 0:
        return 0.0
    resident = fingerprint * placement.as_matrix()
    return float(resident.sum() / total)


@dataclass
class ClusterSession:
    """Resumable state of one cluster simulation, between events.

    Every field is either plain data or rebuildable from plain data, so
    a session checkpoints cleanly at any event boundary: the cluster's
    dispatches are atomic (a gang's whole service is computed when it
    starts), so no partial engine state ever needs to be captured.

    Attributes:
        requests: ``request_id -> RequestInfo`` for every offered
            request (insertion in arrival order, ties by request id).
        payloads: payload key -> ``(prompt_tokens, forced_tokens,
            output_len)`` served when a request dispatches.
        heap: the pending-event queue (the simulation clock).
        replicas: per-replica queueing state.
        warm: per-replica expert placements carried across gangs.
        report: the report under construction.
        gather: per-replica cumulative kernel-amortization stats.
    """

    requests: dict
    payloads: dict
    heap: EventQueue
    replicas: list
    warm: list
    report: ClusterReport
    gather: list

    @property
    def drained(self) -> bool:
        """Whether the event loop has run to completion."""
        return not self.heap


class ClusterSimulator:
    """Serve one arrival trace across N engine replicas.

    Args:
        engines: one constructed engine per replica (they are mutated:
            each replica's placement is carried across requests when
            ``carry_placement`` is on).
        generator: workload generator; request ``i`` with sample index
            ``s`` serves ``generator.sample_sequence(..., sample_idx=s)``
            so all policies serve byte-identical work.
        policy: routing policy instance (reset at each ``run``).
        admission: queue bounds and deadlines; defaults to
            ``AdmissionController()``.
        slo: targets for goodput / SLO-attainment accounting.
        carry_placement: keep each replica's expert placement warm
            across requests (on, the point of the subsystem) or reset to
            the engine's initial placement per request (an ablation).
        concurrency: requests a replica serves concurrently per dispatch
            (a *gang*): the replica pulls up to this many queued requests
            at once and interleaves them through the engine's step
            machine via :class:`ContinuousBatchScheduler`, dispatching
            the next gang only once the whole gang has completed.  The
            default of 1 is the sequential one-request-at-a-time service
            of the paper's regime.
        mode: scheduler execution mode within each gang —
            :data:`~repro.sched.scheduler.GATHERED` (default) merges
            same-expert decode work across gang members into shared
            kernels; :data:`~repro.sched.scheduler.INTERLEAVED`
            round-robins independent steps.
    """

    def __init__(
        self,
        engines: list[BaseEngine],
        generator: SequenceGenerator | None,
        policy: RoutingPolicy,
        admission: AdmissionController | None = None,
        slo: SLOTarget | None = None,
        carry_placement: bool = True,
        concurrency: int = 1,
        mode: str = GATHERED,
    ) -> None:
        if not engines:
            raise ValueError("at least one engine replica is required")
        if concurrency < 1:
            raise ValueError("concurrency must be positive")
        if mode not in (GATHERED, INTERLEAVED):
            raise ValueError(
                f"mode must be {GATHERED!r} or {INTERLEAVED!r}, "
                f"got {mode!r}"
            )
        self.engines = list(engines)
        self.generator = generator
        self.policy = policy
        self.admission = admission or AdmissionController()
        self.slo = slo or SLOTarget()
        self.carry_placement = carry_placement
        self.concurrency = concurrency
        self.mode = mode
        self.events = EventBus()
        # Snapshot so repeated run() calls replay from identical state.
        self._base_placements = [
            engine.initial_placement.copy() for engine in self.engines
        ]

    def run(self, arrival_times: np.ndarray, prompt_len: int,
            output_len: int,
            sample_indices: list[int] | None = None) -> ClusterReport:
        """Simulate the fleet over one arrival trace; returns the report.

        Args:
            arrival_times: request arrival times in simulated seconds.
            prompt_len: prompt length of every request.
            output_len: decode length of every request.
            sample_indices: workload sample index per request; defaults
                to ``0..n-1``.  Repeating indices builds
                similarity-clustered traffic (sticky sessions, shared
                templates) — the regime where cache-affinity routing
                pays off.
        """
        if self.generator is None:
            raise ValueError(
                "run() needs a workload generator; construct the "
                "simulator with one or call run_requests() directly"
            )
        arrival_times = np.sort(
            np.asarray(arrival_times, dtype=np.float64)
        )
        n_requests = arrival_times.size
        if sample_indices is None:
            sample_indices = list(range(n_requests))
        if len(sample_indices) != n_requests:
            raise ValueError(
                "sample_indices must match arrival_times in length"
            )

        model = self.engines[0].model
        sequences = {}
        fingerprints = {}
        for idx in sample_indices:
            if idx not in sequences:
                sequences[idx] = self.generator.sample_sequence(
                    prompt_len, output_len, sample_idx=idx
                )
                fingerprints[idx] = prefill_fingerprint(
                    model, sequences[idx].prompt_tokens
                )
        requests = {
            i: RequestInfo(
                request_id=i,
                arrival_s=float(arrival_times[i]),
                sample_idx=int(sample_indices[i]),
                fingerprint=fingerprints[int(sample_indices[i])],
            )
            for i in range(n_requests)
        }
        payloads = {
            idx: (sequence.prompt_tokens, sequence.continuation_tokens,
                  output_len)
            for idx, sequence in sequences.items()
        }
        return self._drain(self._begin(requests, payloads))

    def run_requests(self, specs: list[RequestSpec]) -> ClusterReport:
        """Simulate the fleet over fully-materialized requests.

        Equivalent to :meth:`begin_session` followed by :meth:`tick`
        until drained and :meth:`finish_session`.
        """
        return self._drain(self.begin_session(specs))

    def begin_session(self, specs: list[RequestSpec]) -> ClusterSession:
        """Open a resumable session over fully-materialized requests.

        Each :class:`~repro.workloads.requests.RequestSpec` carries its
        own arrival time, tokens, and decode length, so heterogeneous
        scenario traffic flows through the same routing/admission/gang
        machinery as the uniform regime.  Prefill fingerprints are
        deduplicated by *content* (prompt + forced tokens + decode
        length), not by ``sample_idx`` — per-tenant generators can reuse
        sample indices for different token content, so requests with
        identical content share one fingerprint (and read as
        similarity-clustered traffic to affinity routing) while distinct
        content never aliases.
        """
        ordered = sorted(specs,
                         key=lambda spec: (spec.arrival_s,
                                           spec.request_id))
        if len({spec.request_id for spec in ordered}) != len(ordered):
            raise ValueError("request_id values must be unique")

        model = self.engines[0].model
        key_by_content = {}
        payloads = {}
        fingerprints = {}
        requests = {}
        for spec in ordered:
            content = (spec.content_key(), spec.output_len)
            if content not in key_by_content:
                key_by_content[content] = spec.request_id
                payloads[spec.request_id] = (
                    spec.prompt_tokens, spec.forced_tokens,
                    spec.output_len,
                )
                fingerprints[spec.request_id] = prefill_fingerprint(
                    model, spec.prompt_tokens
                )
            key = key_by_content[content]
            requests[spec.request_id] = RequestInfo(
                request_id=spec.request_id,
                arrival_s=spec.arrival_s,
                sample_idx=key,
                fingerprint=fingerprints[key],
            )
        return self._begin(requests, payloads)

    def _begin(self, requests: dict, payloads: dict) -> ClusterSession:
        """Build a fresh session over prepared requests.

        Args:
            requests: ``request_id -> RequestInfo``, inserted in arrival
                order (ties broken by request id); each info's
                ``sample_idx`` is the key of its payload.
            payloads: payload key -> ``(prompt_tokens, forced_tokens,
                output_len)`` served when a request dispatches.
        """
        replicas = [ReplicaState() for _ in self.engines]
        warm = [placement.copy() for placement in self._base_placements]
        for engine, placement in zip(self.engines, warm):
            engine.initial_placement = placement
        self.policy.reset(len(self.engines))

        report = ClusterReport(
            engine=",".join(sorted({e.name for e in self.engines})),
            policy=self.policy.name,
            n_replicas=len(self.engines),
            slo=self.slo,
        )
        heap = EventQueue()
        for request in requests.values():
            heap.push(request.arrival_s, ARRIVAL,
                      request_id=request.request_id)
        return ClusterSession(
            requests=requests,
            payloads=payloads,
            heap=heap,
            replicas=replicas,
            warm=warm,
            report=report,
            gather=[GatherStats() for _ in self.engines],
        )

    def tick(self, session: ClusterSession) -> bool:
        """Fire the next pending event; False once the loop is drained.

        Each tick handles exactly one event, so the session sits at an
        event boundary — the granularity :meth:`checkpoint` captures —
        after every call.
        """
        if not session.heap:
            return False
        event = session.heap.pop()
        if event.kind == ARRIVAL:
            self._on_arrival(session, session.requests[event.request_id])
        elif event.kind == DISPATCH:
            self._on_dispatch(session, event.replica)
        elif event.kind == COMPLETION:
            self._on_completion(session, event.request_id, event.replica)
        return True

    def finish_session(self, session: ClusterSession) -> ClusterReport:
        """Seal a drained session and return its report."""
        if not session.drained:
            raise RuntimeError(
                "cluster session still has pending events; tick() it "
                "to completion first"
            )
        session.report.replica_busy_s = [
            replica.busy_time_s for replica in session.replicas
        ]
        session.report.replica_gather = list(session.gather)
        return session.report

    def _drain(self, session: ClusterSession) -> ClusterReport:
        """Tick a session to completion and seal it."""
        while self.tick(session):
            pass
        return self.finish_session(session)

    # ---- checkpoint / restore --------------------------------------------------

    def checkpoint(self, session: ClusterSession) -> SimCheckpoint:
        """Freeze a session at its current event boundary.

        Dispatches are atomic, so a between-events snapshot needs no
        partial engine state: the heap, replica queues, warm placements,
        routing-policy state, and the report-so-far fully determine the
        remainder of the simulation.
        """
        payload = {
            "n_replicas": len(self.engines),
            "concurrency": self.concurrency,
            "mode": self.mode,
            "carry_placement": self.carry_placement,
            "policy": {
                "name": self.policy.name,
                "state": self.policy.state_dict(),
            },
            "admission": {
                "max_queue_len": self.admission.max_queue_len,
                "ttft_deadline_s": self.admission.ttft_deadline_s,
                "batch_hold_s": self.admission.batch_hold_s,
                "crossover_tokens": self.admission.crossover_tokens,
            },
            "heap": session.heap.to_state_dict(),
            "replicas": [replica.to_state_dict()
                         for replica in session.replicas],
            "warm": [placement.to_state_dict()
                     for placement in session.warm],
            "report": session.report.to_state_dict(),
            "gather": [stats.to_state_dict() for stats in session.gather],
            "requests": [info.to_state_dict()
                         for info in session.requests.values()],
            "payloads": [
                {
                    "key": key,
                    "prompt": encode_array(
                        np.asarray(prompt, dtype=np.int64)
                    ),
                    "forced": encode_optional_array(forced),
                    "output_len": int(output_len),
                }
                for key, (prompt, forced, output_len)
                in session.payloads.items()
            ],
        }
        checkpoint = SimCheckpoint(
            kind=CLUSTER_KIND,
            engine=session.report.engine,
            payload=payload,
        )
        if self.events.active:
            self.events.emit(
                CHECKPOINT_SAVE, session.heap.now, sim_kind=CLUSTER_KIND,
                engine=session.report.engine,
                n_pending=len(session.heap),
                n_completed=len(session.report.requests),
            )
        return checkpoint

    def restore(self, checkpoint: SimCheckpoint) -> ClusterSession:
        """Rebuild a session frozen by :meth:`checkpoint`.

        Raises:
            CheckpointError: if the checkpoint belongs to another
                simulator kind or was written under a different fleet
                configuration than this simulator's.
        """
        if checkpoint.kind != CLUSTER_KIND:
            raise CheckpointError(
                f"cannot restore a {checkpoint.kind!r} checkpoint into "
                f"a cluster simulator"
            )
        payload = checkpoint.payload
        expected = {
            "n_replicas": len(self.engines),
            "concurrency": self.concurrency,
            "mode": self.mode,
            "carry_placement": self.carry_placement,
            "policy": self.policy.name,
            "engine": ",".join(sorted({e.name for e in self.engines})),
            "max_queue_len": self.admission.max_queue_len,
            "ttft_deadline_s": self.admission.ttft_deadline_s,
            "batch_hold_s": self.admission.batch_hold_s,
            "crossover_tokens": self.admission.crossover_tokens,
        }
        recorded = {
            "n_replicas": payload["n_replicas"],
            "concurrency": payload["concurrency"],
            "mode": payload["mode"],
            "carry_placement": payload["carry_placement"],
            "policy": payload["policy"]["name"],
            "engine": checkpoint.engine,
            "max_queue_len": payload["admission"]["max_queue_len"],
            "ttft_deadline_s": payload["admission"]["ttft_deadline_s"],
            # Pre-hold checkpoints default to hold-off, which matches a
            # simulator configured without the feature.
            "batch_hold_s": payload["admission"].get("batch_hold_s", 0.0),
            "crossover_tokens": payload["admission"].get(
                "crossover_tokens", 0
            ),
        }
        for key, want in expected.items():
            if recorded[key] != want:
                raise CheckpointError(
                    f"checkpoint {key} mismatch: it records "
                    f"{recorded[key]!r} but this simulator is "
                    f"configured with {want!r}"
                )

        warm = [ExpertPlacement.from_state_dict(entry)
                for entry in payload["warm"]]
        for engine, placement in zip(self.engines, warm):
            engine.initial_placement = placement
        self.policy.reset(len(self.engines))
        self.policy.load_state_dict(payload["policy"]["state"])
        session = ClusterSession(
            requests={
                int(entry["request_id"]): RequestInfo.from_state_dict(entry)
                for entry in payload["requests"]
            },
            payloads={
                int(entry["key"]): (
                    decode_array(entry["prompt"]),
                    decode_optional_array(entry["forced"]),
                    int(entry["output_len"]),
                )
                for entry in payload["payloads"]
            },
            heap=EventQueue.from_state_dict(payload["heap"]),
            replicas=[ReplicaState.from_state_dict(entry)
                      for entry in payload["replicas"]],
            warm=warm,
            report=ClusterReport.from_state_dict(payload["report"]),
            gather=[GatherStats.from_state_dict(entry)
                    for entry in payload["gather"]],
        )
        if self.events.active:
            self.events.emit(
                CHECKPOINT_RESTORE, session.heap.now, sim_kind=CLUSTER_KIND,
                engine=checkpoint.engine, n_pending=len(session.heap),
                n_completed=len(session.report.requests),
            )
        return session

    # ---- event handlers --------------------------------------------------------

    def _forward_event(self, event) -> None:
        """Re-emit an engine/scheduler event on the simulator's bus."""
        self.events.emit(event.kind, event.time_s, **event.payload)

    def _reject(self, session: ClusterSession, request: RequestInfo,
                replica_idx: int, reason: str) -> None:
        """Record one admission rejection (shed or expired)."""
        session.report.rejected.append(
            RejectedRequest(
                request_id=request.request_id,
                arrival_s=request.arrival_s,
                replica=replica_idx,
                reason=reason,
            )
        )
        if self.events.active:
            self.events.emit(
                CLUSTER_REJECT, session.heap.now,
                request_id=request.request_id, replica=replica_idx,
                reason=reason,
            )

    def _on_arrival(self, session: ClusterSession,
                    request: RequestInfo) -> None:
        """Route one arrival; admit it to a queue or shed it."""
        heap = session.heap
        replica_idx = self.policy.select(request, session.replicas)
        replica = session.replicas[replica_idx]
        if not self.admission.admit(len(replica.queue)):
            self._reject(session, request, replica_idx, SHED)
            return
        replica.queue.append(request.request_id)
        self.policy.observe(replica_idx, request)
        if self.events.active:
            self.events.emit(
                CLUSTER_ARRIVAL, heap.now,
                request_id=request.request_id, replica=replica_idx,
                n_queued=len(replica.queue),
            )
        if replica.idle:
            heap.push(heap.now, DISPATCH, replica=replica_idx)

    def _on_dispatch(self, session: ClusterSession,
                     replica_idx: int) -> None:
        """Start service on an idle replica, expiring dead requests.

        The replica pulls a *gang* of up to ``self.concurrency`` queued
        requests and serves them concurrently through the engine step
        machine on a fresh resource clock (so a gang of one is exactly
        the engine's solo ``generate()`` schedule).  Every gang member's
        warm-cache hit rate is evaluated against the placement as warmed
        by the *previous* gang; the placement carried forward is the one
        left by the gang's last-finishing member.
        """
        heap = session.heap
        replica = session.replicas[replica_idx]
        if not replica.idle or not replica.queue:
            return  # stale dispatch event
        now = heap.now
        head = session.requests[replica.queue[0]]
        # The window-expiry guard must use the *same* float expression
        # as the fallback push below: (arrival + window) - arrival can
        # round below window, so comparing `now - arrival < window`
        # would re-hold forever when the fallback dispatch fires.
        hold_until_s = head.arrival_s + self.admission.hold_window_s
        if (self.concurrency > 1 and now < hold_until_s
                and self.admission.should_hold(
                    len(replica.queue),
                    int(session.payloads[head.sample_idx][0].size),
                    now - head.arrival_s)):
            # A lone sub-crossover prefill: wait (bounded) for a second
            # request so the prefills dispatch as a gathered cohort.
            # The fallback dispatch below fires at the hold window's
            # end; an arrival in the meantime pushes an immediate
            # dispatch, and whichever fires second hits the stale guard.
            heap.push(hold_until_s, DISPATCH, replica=replica_idx)
            if self.events.active:
                self.events.emit(
                    CLUSTER_HOLD, now, request_id=head.request_id,
                    replica=replica_idx, until_s=hold_until_s,
                )
            return
        request = session.requests[replica.queue.popleft()]
        if self.admission.expired(request.arrival_s, now):
            self._reject(session, request, replica_idx, EXPIRED)
            if replica.queue:
                heap.push(now, DISPATCH, replica=replica_idx)
            return
        gang = [request]
        while len(gang) < self.concurrency and replica.queue:
            extra = session.requests[replica.queue.popleft()]
            if self.admission.expired(extra.arrival_s, now):
                self._reject(session, extra, replica_idx, EXPIRED)
                continue
            gang.append(extra)

        engine = self.engines[replica_idx]
        warm = session.warm
        hit_rates = {
            member.request_id: warm_hit_rate(warm[replica_idx],
                                             member.fingerprint)
            for member in gang
        }
        if self.carry_placement:
            engine.initial_placement = warm[replica_idx]
        seq_requests = []
        for member in gang:
            prompt_tokens, forced_tokens, member_output_len = \
                session.payloads[member.sample_idx]
            seq_requests.append(
                SequenceRequest(
                    prompt_tokens=prompt_tokens,
                    max_new_tokens=member_output_len,
                    forced_tokens=forced_tokens,
                    seq_id=member.request_id,
                )
            )
        scheduler = ContinuousBatchScheduler(
            engine, max_batch=self.concurrency, mode=self.mode
        )
        if self.events.active:
            self.events.emit(
                CLUSTER_DISPATCH, now, replica=replica_idx,
                gang=[member.request_id for member in gang],
            )
            scheduler.events.subscribe(self._forward_event)
            # Re-subscribing after an unsubscribe keeps the forwarder
            # single even when one engine serves many gangs.
            engine.events.unsubscribe(self._forward_event)
            engine.events.subscribe(self._forward_event)
        batch = scheduler.run(seq_requests)
        if batch.gather is not None:
            session.gather[replica_idx].merge(batch.gather)
        if self.carry_placement:
            last = max(batch.records,
                       key=lambda rec: (rec.finish_s, rec.seq_id))
            warm[replica_idx] = last.result.placement

        batch_span = max(rec.finish_s for rec in batch.records)
        replica.in_service = gang[0].request_id
        replica.in_flight = len(gang)
        replica.busy_until = now + batch_span
        replica.busy_time_s += batch_span
        replica.n_served += len(gang)
        by_id = {rec.seq_id: rec for rec in batch.records}
        for member in gang:
            rec = by_id[member.request_id]
            stats = rec.result.stats
            session.report.requests.append(
                ClusterRequest(
                    request_id=member.request_id,
                    arrival_s=member.arrival_s,
                    start_s=now + rec.service_start_s,
                    first_token_s=now + rec.first_token_s,
                    finish_s=now + rec.finish_s,
                    n_prompt_tokens=stats.n_prompt_tokens,
                    n_generated=stats.n_generated,
                    energy_j=stats.energy.total_j,
                    replica=replica_idx,
                    warm_hit_rate=hit_rates[member.request_id],
                    engine_hit_rate=stats.counters.gpu_hit_rate,
                    prefill_swaps=stats.counters.prefill_swaps,
                )
            )
            heap.push(now + rec.finish_s, COMPLETION,
                      request_id=member.request_id, replica=replica_idx)

    def _on_completion(self, session: ClusterSession, request_id: int,
                       replica_idx: int) -> None:
        """Retire one gang member; free the replica once all are done."""
        heap = session.heap
        replica = session.replicas[replica_idx]
        if replica.in_flight > 0:
            replica.in_flight -= 1
        if self.events.active:
            self.events.emit(
                CLUSTER_COMPLETION, heap.now, request_id=request_id,
                replica=replica_idx, in_flight=replica.in_flight,
            )
        if replica.in_flight:
            return
        replica.in_service = None
        if replica.queue:
            heap.push(heap.now, DISPATCH, replica=replica_idx)
