"""Fleet-level serving metrics: the ``ServingReport`` vocabulary scaled up.

A :class:`ClusterReport` keeps the single-engine vocabulary (TTFT / TPOT
/ latency percentiles, throughput, queue delay) and adds what only
exists at fleet scope:

- **goodput** — generated-token throughput counting only requests that
  met their :class:`~repro.cluster.admission.SLOTarget`;
- **SLO attainment** — fraction of *offered* requests served within
  target (shed and expired requests count against it);
- **per-replica utilization** and **Jain's load-balance index** over
  replica busy time;
- **expert-cache warmth** — the mean fraction of each request's prompt
  expert activations that were already GPU-resident on its replica when
  service started, the cache-hit-rate term the routing policies compete
  on; and
- **shed / expired counts** from admission control.

``to_json()`` is deterministic: identical simulations serialize to
byte-identical JSON, which is what lets CI archive cluster reports and
diff serving trajectories across PRs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.cluster.admission import EXPIRED, SHED, SLOTarget
from repro.core.batching import GatherStats
from repro.serving.simulator import ServedRequest, percentile_or_zero


@dataclass(frozen=True)
class ClusterRequest(ServedRequest):
    """One served request, annotated with its replica and cache warmth.

    Attributes (beyond :class:`~repro.serving.simulator.ServedRequest`):
        replica: index of the replica that served the request.
        warm_hit_rate: fraction of the request's prompt expert
            activations (count-weighted) GPU-resident on the replica at
            service start — cache warmth *before* any per-sequence
            re-allocation the engine performs.
        engine_hit_rate: the engine's own GPU-residency hit rate over
            the whole generation (post-adaptation).
        prefill_swaps: expert swaps the engine performed during prefill
            (Algorithm 1 churn; warm replicas need fewer).
    """

    replica: int = -1
    warm_hit_rate: float = 0.0
    engine_hit_rate: float = 0.0
    prefill_swaps: int = 0

    def to_state_dict(self) -> dict:
        """Serialize the record for a checkpoint."""
        return {
            "request_id": self.request_id,
            "arrival_s": self.arrival_s,
            "start_s": self.start_s,
            "first_token_s": self.first_token_s,
            "finish_s": self.finish_s,
            "n_prompt_tokens": self.n_prompt_tokens,
            "n_generated": self.n_generated,
            "energy_j": self.energy_j,
            "replica": self.replica,
            "warm_hit_rate": self.warm_hit_rate,
            "engine_hit_rate": self.engine_hit_rate,
            "prefill_swaps": self.prefill_swaps,
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "ClusterRequest":
        """Rebuild the record captured by :meth:`to_state_dict`."""
        return cls(
            request_id=int(payload["request_id"]),
            arrival_s=float(payload["arrival_s"]),
            start_s=float(payload["start_s"]),
            first_token_s=float(payload["first_token_s"]),
            finish_s=float(payload["finish_s"]),
            n_prompt_tokens=int(payload["n_prompt_tokens"]),
            n_generated=int(payload["n_generated"]),
            energy_j=float(payload["energy_j"]),
            replica=int(payload["replica"]),
            warm_hit_rate=float(payload["warm_hit_rate"]),
            engine_hit_rate=float(payload["engine_hit_rate"]),
            prefill_swaps=int(payload["prefill_swaps"]),
        )


@dataclass(frozen=True)
class RejectedRequest:
    """A request dropped by admission control.

    Attributes:
        request_id: arrival-order identifier.
        arrival_s: arrival time in simulated seconds.
        replica: replica the router targeted.
        reason: ``shed`` (queue full at arrival) or ``expired`` (TTFT
            deadline blown before service could start).
    """

    request_id: int
    arrival_s: float
    replica: int
    reason: str

    def to_state_dict(self) -> dict:
        """Serialize the rejection for a checkpoint."""
        return {
            "request_id": self.request_id,
            "arrival_s": self.arrival_s,
            "replica": self.replica,
            "reason": self.reason,
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "RejectedRequest":
        """Rebuild the rejection captured by :meth:`to_state_dict`."""
        return cls(
            request_id=int(payload["request_id"]),
            arrival_s=float(payload["arrival_s"]),
            replica=int(payload["replica"]),
            reason=payload["reason"],
        )


@dataclass
class ClusterReport:
    """Aggregate metrics of one multi-replica serving simulation."""

    engine: str
    policy: str
    n_replicas: int
    slo: SLOTarget = field(default_factory=SLOTarget)
    requests: list[ClusterRequest] = field(default_factory=list)
    rejected: list[RejectedRequest] = field(default_factory=list)
    replica_busy_s: list[float] = field(default_factory=list)
    replica_gather: list[GatherStats] = field(default_factory=list)

    # ---- counts ---------------------------------------------------------------

    @property
    def n_served(self) -> int:
        """Requests that completed service."""
        return len(self.requests)

    @property
    def n_shed(self) -> int:
        """Requests rejected at arrival (queue full)."""
        return sum(1 for r in self.rejected if r.reason == SHED)

    @property
    def n_expired(self) -> int:
        """Requests dropped at dispatch (TTFT deadline blown)."""
        return sum(1 for r in self.rejected if r.reason == EXPIRED)

    @property
    def n_offered(self) -> int:
        """Every request that arrived, served or not."""
        return self.n_served + len(self.rejected)

    # ---- time base ------------------------------------------------------------

    @property
    def makespan_s(self) -> float:
        """Simulated seconds from first arrival to last completion."""
        arrivals = [r.arrival_s for r in self.requests]
        arrivals += [r.arrival_s for r in self.rejected]
        finishes = [r.finish_s for r in self.requests]
        if not arrivals or not finishes:
            return 0.0
        return max(finishes) - min(arrivals)

    # ---- SLO accounting -------------------------------------------------------

    def meets_slo(self, request: ClusterRequest) -> bool:
        """Whether one served request met both TTFT and TPOT targets."""
        return (request.ttft_s <= self.slo.ttft_s
                and request.tpot_s <= self.slo.tpot_s)

    @property
    def throughput_tokens_per_s(self) -> float:
        """Generated-token throughput over all served requests."""
        span = self.makespan_s
        if span <= 0:
            return 0.0
        return sum(r.n_generated for r in self.requests) / span

    @property
    def goodput_tokens_per_s(self) -> float:
        """Generated-token throughput counting only SLO-met requests."""
        span = self.makespan_s
        if span <= 0:
            return 0.0
        good = sum(r.n_generated for r in self.requests
                   if self.meets_slo(r))
        return good / span

    @property
    def slo_attainment(self) -> float:
        """Fraction of offered requests served within SLO targets."""
        if self.n_offered == 0:
            return 0.0
        met = sum(1 for r in self.requests if self.meets_slo(r))
        return met / self.n_offered

    def ttft_percentile(self, q: float) -> float:
        """TTFT percentile (seconds) over served requests."""
        return percentile_or_zero([r.ttft_s for r in self.requests], q)

    def tpot_percentile(self, q: float) -> float:
        """TPOT percentile (seconds) over served requests."""
        return percentile_or_zero([r.tpot_s for r in self.requests], q)

    def latency_percentile(self, q: float) -> float:
        """End-to-end latency percentile (seconds) over served requests."""
        return percentile_or_zero([r.latency_s for r in self.requests], q)

    @property
    def mean_queue_delay_s(self) -> float:
        """Mean time served requests waited for a replica."""
        if not self.requests:
            return 0.0
        return sum(r.queue_delay_s for r in self.requests) / self.n_served

    # ---- fleet health ---------------------------------------------------------

    def replica_utilization(self) -> list[float]:
        """Busy fraction of each replica over the makespan."""
        span = self.makespan_s
        if span <= 0:
            return [0.0] * len(self.replica_busy_s)
        return [busy / span for busy in self.replica_busy_s]

    @property
    def load_balance_index(self) -> float:
        """Jain's fairness index over replica busy time (1.0 = even)."""
        busy = self.replica_busy_s
        if not busy:
            return 1.0
        total = sum(busy)
        if total <= 0:
            return 1.0
        squares = sum(b * b for b in busy)
        return (total * total) / (len(busy) * squares)

    @property
    def mean_warm_hit_rate(self) -> float:
        """Mean start-of-service expert-cache hit rate over requests."""
        if not self.requests:
            return 0.0
        return sum(r.warm_hit_rate for r in self.requests) / self.n_served

    def replica_warm_hit_rate(self, replica: int) -> float:
        """Mean start-of-service cache hit rate of one replica."""
        rates = [r.warm_hit_rate for r in self.requests
                 if r.replica == replica]
        if not rates:
            return 0.0
        return sum(rates) / len(rates)

    def replica_gather_stats(self, replica: int) -> GatherStats:
        """Cumulative kernel-amortization stats of one replica.

        Populated by the cluster simulator when its scheduler runs in
        gathered mode; replicas of an interleaved (or pre-gather) run
        report the all-zero accumulator, whose amortization is 1.0.
        """
        if replica < len(self.replica_gather):
            return self.replica_gather[replica]
        return GatherStats()

    def replica_phase_stats(self, replica: int) -> dict:
        """Per-phase (prefill/decode) gathered kernel counts of one
        replica, so the two regimes' amortization is separable."""
        gather = self.replica_gather_stats(replica)
        return {
            "prefill": {
                "expert_ops": gather.prefill_expert_ops,
                "expert_kernels": gather.prefill_expert_kernels,
                "expert_amortization": gather.prefill_expert_amortization,
                "lm_head_ops": gather.prefill_lm_head_ops,
                "lm_head_kernels": gather.prefill_lm_head_kernels,
                "attn_ops": gather.attn_ops,
                "attn_kernels": gather.attn_kernels,
                "gate_ops": gather.gate_ops,
                "gate_kernels": gather.gate_kernels,
            },
            "decode": {
                "expert_ops": gather.decode_expert_ops,
                "expert_kernels": gather.decode_expert_kernels,
                "expert_amortization": gather.decode_expert_amortization,
                "lm_head_ops": (
                    gather.lm_head_ops - gather.prefill_lm_head_ops
                ),
                "lm_head_kernels": (
                    gather.lm_head_kernels - gather.prefill_lm_head_kernels
                ),
            },
        }

    # ---- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data view of the report (stable field ordering)."""
        return {
            "engine": self.engine,
            "policy": self.policy,
            "n_replicas": self.n_replicas,
            "slo": {"ttft_s": self.slo.ttft_s, "tpot_s": self.slo.tpot_s},
            "summary": {
                "offered": self.n_offered,
                "served": self.n_served,
                "shed": self.n_shed,
                "expired": self.n_expired,
                "makespan_s": self.makespan_s,
                "throughput_tokens_per_s": self.throughput_tokens_per_s,
                "goodput_tokens_per_s": self.goodput_tokens_per_s,
                "slo_attainment": self.slo_attainment,
                "ttft_p50_s": self.ttft_percentile(50),
                "ttft_p99_s": self.ttft_percentile(99),
                "tpot_p50_s": self.tpot_percentile(50),
                "tpot_p99_s": self.tpot_percentile(99),
                "mean_queue_delay_s": self.mean_queue_delay_s,
                "load_balance_index": self.load_balance_index,
                "mean_warm_hit_rate": self.mean_warm_hit_rate,
            },
            "replicas": [
                {
                    "replica": i,
                    "busy_s": busy,
                    "utilization": util,
                    "warm_hit_rate": self.replica_warm_hit_rate(i),
                    "served": sum(1 for r in self.requests
                                  if r.replica == i),
                    "expert_ops": self.replica_gather_stats(i).expert_ops,
                    "expert_kernels":
                        self.replica_gather_stats(i).expert_kernels,
                    "expert_amortization":
                        self.replica_gather_stats(i).expert_amortization,
                    "gathered_rows":
                        self.replica_gather_stats(i).gathered_rows,
                    "max_group_size":
                        self.replica_gather_stats(i).max_group_size,
                    "phases": self.replica_phase_stats(i),
                }
                for i, (busy, util) in enumerate(
                    zip(self.replica_busy_s, self.replica_utilization())
                )
            ],
            "requests": [
                {
                    "request_id": r.request_id,
                    "replica": r.replica,
                    "arrival_s": r.arrival_s,
                    "start_s": r.start_s,
                    "first_token_s": r.first_token_s,
                    "finish_s": r.finish_s,
                    "n_generated": r.n_generated,
                    "warm_hit_rate": r.warm_hit_rate,
                    "engine_hit_rate": r.engine_hit_rate,
                    "prefill_swaps": r.prefill_swaps,
                    "meets_slo": self.meets_slo(r),
                }
                for r in self.requests
            ],
            "rejected": [
                {
                    "request_id": r.request_id,
                    "replica": r.replica,
                    "arrival_s": r.arrival_s,
                    "reason": r.reason,
                }
                for r in self.rejected
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        """Deterministic JSON rendering (byte-identical across replays)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_state_dict(self) -> dict:
        """Serialize the (possibly partial) report for a checkpoint."""
        return {
            "engine": self.engine,
            "policy": self.policy,
            "n_replicas": self.n_replicas,
            "slo": {"ttft_s": self.slo.ttft_s, "tpot_s": self.slo.tpot_s},
            "requests": [r.to_state_dict() for r in self.requests],
            "rejected": [r.to_state_dict() for r in self.rejected],
            "replica_busy_s": list(self.replica_busy_s),
            "replica_gather": [g.to_state_dict()
                               for g in self.replica_gather],
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "ClusterReport":
        """Rebuild the report captured by :meth:`to_state_dict`."""
        return cls(
            engine=payload["engine"],
            policy=payload["policy"],
            n_replicas=int(payload["n_replicas"]),
            slo=SLOTarget(ttft_s=float(payload["slo"]["ttft_s"]),
                          tpot_s=float(payload["slo"]["tpot_s"])),
            requests=[ClusterRequest.from_state_dict(r)
                      for r in payload["requests"]],
            rejected=[RejectedRequest.from_state_dict(r)
                      for r in payload["rejected"]],
            replica_busy_s=[float(b) for b in payload["replica_busy_s"]],
            replica_gather=[GatherStats.from_state_dict(g)
                            for g in payload["replica_gather"]],
        )
