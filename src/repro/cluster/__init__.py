"""Multi-replica serving: event simulation, routing, admission, SLOs.

``repro.serving`` answers "what does load do to one engine?"; this
package answers the fleet question the ROADMAP's north star poses: given
N engine replicas, how should requests be routed, what must be shed
under overload, and what goodput/SLO attainment does each policy
deliver?  Cache-affinity routing is the paper-grounded centerpiece —
DAOP's sequence-specific expert allocation makes a replica's GPU expert
cache traffic-shaped, so similarity-preserving routing keeps caches
warm (see docs/serving.md).
"""

from repro.cluster.admission import (
    EXPIRED,
    SHED,
    AdmissionController,
    SLOTarget,
)
from repro.cluster.events import (
    ARRIVAL,
    COMPLETION,
    DISPATCH,
    Event,
    EventQueue,
    ReplicaState,
    RequestInfo,
)
from repro.cluster.report import (
    ClusterReport,
    ClusterRequest,
    RejectedRequest,
)
from repro.cluster.routing import (
    POLICIES,
    POLICY_NAMES,
    CacheAffinityPolicy,
    JoinShortestQueuePolicy,
    RoundRobinPolicy,
    RoutingPolicy,
    build_policy,
    least_loaded,
)
from repro.cluster.simulator import (
    ClusterSession,
    ClusterSimulator,
    prefill_fingerprint,
    warm_hit_rate,
)

__all__ = [
    "EXPIRED",
    "SHED",
    "AdmissionController",
    "SLOTarget",
    "ARRIVAL",
    "COMPLETION",
    "DISPATCH",
    "Event",
    "EventQueue",
    "ReplicaState",
    "RequestInfo",
    "ClusterReport",
    "ClusterRequest",
    "RejectedRequest",
    "POLICIES",
    "POLICY_NAMES",
    "CacheAffinityPolicy",
    "JoinShortestQueuePolicy",
    "RoundRobinPolicy",
    "RoutingPolicy",
    "build_policy",
    "least_loaded",
    "ClusterSession",
    "ClusterSimulator",
    "prefill_fingerprint",
    "warm_hit_rate",
]
