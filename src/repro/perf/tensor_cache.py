"""Content-addressed memoization of deterministic tensor computations.

Every functional forward in this repository is a pure function of its
input bytes and of the model weights: placement and scheduling decide
*when and where* a tensor is computed, never *what* it contains.  The
:class:`TensorCache` exploits that — it is a bounded-byte LRU keyed by a
BLAKE2 digest of ``(model fingerprint, block_idx, stage, input bytes)``,
so a hit returns the exact array the deterministic compute would have
produced.  Bitwise parity holds by construction: any byte-level input
difference (including DAOP's stale-input predictive pre-calculation,
which feeds the *previous* block's hidden states to an expert) produces
a different key and therefore a fresh computation.

The cache is injected into the model via
``MoETransformer.attach_compute_cache`` (duck-typed, so ``repro.model``
never imports this package) and shared across engines by
``repro.audit.differential`` and across sweep points by
``repro.hardware.sweeps`` and the fig10/ablation benchmarks.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.perf.memo import IdentityLRUMemo

#: Default byte budget: generous for audit-scale runs, small enough to
#: stay friendly on a laptop (all cached values are float32 activations).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Default entry bound of :meth:`TensorCache.identity_memo` — enough for
#: every sequence of a gathered batch round (scheduler batches are
#: single digits) times the handful of per-block consumers.
DEFAULT_MEMO_CAPACITY = 16


@dataclass
class StageCounters:
    """Hit/miss tally for one named compute stage.

    ``hits``/``misses`` count content-addressed lookups that reached
    the cache; ``memo_hits`` counts calls served even earlier by an
    identity memo fronting the stage (:meth:`TensorCache.
    identity_memo`), which never touch the cache at all.  The hit rate
    covers both, so it reflects the fraction of *stage calls* that
    avoided recomputation, however they avoided it.
    """

    hits: int = 0
    misses: int = 0
    memo_hits: int = 0

    @property
    def lookups(self) -> int:
        """Total stage calls recorded (cache lookups plus memo hits)."""
        return self.hits + self.misses + self.memo_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of stage calls served without recomputation."""
        if not self.lookups:
            return 0.0
        return (self.hits + self.memo_hits) / self.lookups


def _update_part(digest: "hashlib._Hash", part: object) -> None:
    """Fold one key part into ``digest`` with an unambiguous encoding.

    Each part contributes a one-byte type tag, a length prefix, and its
    payload, so distinct part sequences can never collide by
    concatenation (``("ab", "c")`` vs ``("a", "bc")``) or by type
    confusion (``1`` vs ``"1"`` vs a 0-d array).
    """
    if part is None:
        tag, payload = b"N", b""
    elif isinstance(part, np.ndarray):
        a = np.ascontiguousarray(part)
        tag = b"A" + f"{a.dtype.str}|{a.shape}|".encode("ascii")
        # Hash straight from the array buffer — no tobytes() copy.
        digest.update(len(tag).to_bytes(4, "big") + tag
                      + a.nbytes.to_bytes(8, "big"))
        digest.update(a)
        return
    elif isinstance(part, (bytes, bytearray)):
        tag, payload = b"B", bytes(part)
    elif isinstance(part, str):
        tag, payload = b"S", part.encode("utf-8")
    elif isinstance(part, bool):
        tag, payload = b"O", (b"1" if part else b"0")
    elif isinstance(part, (int, np.integer)):
        tag, payload = b"I", str(int(part)).encode("ascii")
    elif isinstance(part, float):
        tag, payload = b"F", np.float64(part).tobytes()
    else:
        raise TypeError(f"unhashable cache key part of type {type(part)!r}")
    digest.update(len(tag).to_bytes(4, "big") + tag
                  + len(payload).to_bytes(8, "big") + payload)


def content_key(*parts: object) -> bytes:
    """16-byte BLAKE2 digest of an ordered sequence of key parts.

    Accepted parts: ``None``, ``str``, ``bytes``, ``bool``, ``int``,
    ``float``, and ``np.ndarray`` (hashed with dtype and shape, so equal
    bytes under different shapes do not collide).
    """
    digest = hashlib.blake2b(digest_size=16)
    for part in parts:
        _update_part(digest, part)
    return digest.digest()


def _freeze(array: np.ndarray) -> np.ndarray:
    """Defensive read-only copy of an array about to be stored/returned."""
    frozen = np.array(array, copy=True)
    frozen.setflags(write=False)
    return frozen


class TensorCache:
    """Bounded-byte LRU cache of content-addressed tensor values.

    Values are single ``np.ndarray``s or tuples of them; they are stored
    as read-only copies (and returned as such), so neither later caller
    mutation nor aliasing can corrupt an entry.  When an insertion pushes
    the total stored bytes past ``max_bytes``, least-recently-used
    entries are evicted until the budget holds again; a single value
    larger than the whole budget is skipped (and counted) rather than
    flushing the cache.
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = int(max_bytes)
        self.current_bytes = 0
        self.evictions = 0
        self.oversize_skips = 0
        self.stage_counters: dict[str, StageCounters] = {}
        # key -> (value, nbytes); insertion order == recency order.
        self._entries: "OrderedDict[bytes, tuple[object, int]]" = OrderedDict()

    # ---- keys ----------------------------------------------------------------

    @staticmethod
    def key(*parts: object) -> bytes:
        """Build a content-addressed key; see :func:`content_key`."""
        return content_key(*parts)

    # ---- lookup / insert -----------------------------------------------------

    def _counters(self, stage: str) -> StageCounters:
        counters = self.stage_counters.get(stage)
        if counters is None:
            counters = self.stage_counters[stage] = StageCounters()
        return counters

    def identity_memo(self, stage: str | None = None,
                      capacity: int = DEFAULT_MEMO_CAPACITY) -> IdentityLRUMemo:
        """Build an :class:`~repro.perf.memo.IdentityLRUMemo` whose hits
        are credited to ``stage``'s counters (uncounted when ``None``).

        The memo fronts this cache for a stage whose callers re-present
        the *same input object* repeatedly: a memo hit skips digesting
        and lookup entirely yet still shows up in the stage's hit rate,
        so :meth:`stats` reflects all stage calls, however served.
        """
        counters = self._counters(stage) if stage is not None else None
        return IdentityLRUMemo(capacity=capacity, counters=counters)

    def get(self, key: bytes, stage: str):
        """Return the cached value for ``key`` (marking it most recent),
        or ``None`` on a miss.  Either way the ``stage`` counters are
        updated."""
        entry = self._entries.get(key)
        counters = self._counters(stage)
        if entry is None:
            counters.misses += 1
            return None
        counters.hits += 1
        self._entries.move_to_end(key)
        return entry[0]

    def put(self, key: bytes, stage: str, value):
        """Store ``value`` (an array or tuple of arrays) under ``key``.

        Returns the stored read-only copy so callers can return the very
        object a later hit would produce — hit and miss paths then hand
        out byte-identical, equally-immutable values.  Oversized values
        are returned frozen but not stored.
        """
        arrays = value if isinstance(value, tuple) else (value,)
        if not all(isinstance(a, np.ndarray) for a in arrays):
            raise TypeError("cache values must be ndarrays or tuples of them")
        frozen = tuple(_freeze(a) for a in arrays)
        nbytes = sum(a.nbytes for a in frozen)
        stored = frozen if isinstance(value, tuple) else frozen[0]
        if nbytes > self.max_bytes:
            self.oversize_skips += 1
            return stored
        old = self._entries.pop(key, None)
        if old is not None:
            self.current_bytes -= old[1]
        self._entries[key] = (stored, nbytes)
        self.current_bytes += nbytes
        while self.current_bytes > self.max_bytes:
            _, (_, evicted_bytes) = self._entries.popitem(last=False)
            self.current_bytes -= evicted_bytes
            self.evictions += 1
        return stored

    # ---- maintenance / reporting ---------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()
        self.current_bytes = 0

    def reset_counters(self) -> None:
        """Zero all hit/miss/eviction/skip counters (entries are kept)."""
        self.stage_counters.clear()
        self.evictions = 0
        self.oversize_skips = 0

    @property
    def hits(self) -> int:
        """Total hits across all stages."""
        return sum(c.hits for c in self.stage_counters.values())

    @property
    def misses(self) -> int:
        """Total misses across all stages."""
        return sum(c.misses for c in self.stage_counters.values())

    def stats(self) -> dict:
        """JSON-serializable snapshot of occupancy and per-stage counters."""
        return {
            "entries": len(self._entries),
            "current_bytes": self.current_bytes,
            "max_bytes": self.max_bytes,
            "evictions": self.evictions,
            "oversize_skips": self.oversize_skips,
            "hits": self.hits,
            "misses": self.misses,
            "stages": {
                stage: {
                    "hits": c.hits,
                    "misses": c.misses,
                    "memo_hits": c.memo_hits,
                    "hit_rate": c.hit_rate,
                }
                for stage, c in sorted(self.stage_counters.items())
            },
        }
