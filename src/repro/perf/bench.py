"""Cold-vs-warm wall-clock benchmark of the forward-compute cache.

This is the repo's self-measurement harness (``repro bench-compute``):
it runs the two workloads the cache was built for — the cross-engine
differential audit and a fig10-style ECR sweep — twice each against one
shared :class:`~repro.perf.tensor_cache.TensorCache`, and reports the
cold (first, cache-filling) versus warm (second, cache-served) wall
clock together with per-stage hit rates and the cache's occupancy
counters.  The resulting payload is what CI uploads as
``BENCH_compute.json``.

Unlike everything else under ``src/repro``, this module intentionally
reads the host wall clock: it measures the *simulator's own* execution
cost, not simulated time, so ``Timeline`` durations are the wrong
instrument.  The reads are confined to :func:`_now` and suppressed
per-line for daoplint's DET003.
"""

from __future__ import annotations

import time

from repro.audit.differential import run_differential_audit
from repro.core import build_engine
from repro.perf.tensor_cache import DEFAULT_MAX_BYTES, TensorCache
from repro.workloads import SHAREGPT, SequenceGenerator

#: Fig. 10's expert-cache-ratio sweep points.
SWEEP_ECRS = (0.25, 0.375, 0.50, 0.625)

#: Fig. 10's engine pair (the paper's headline comparison).
SWEEP_ENGINES = ("fiddler", "daop")


def _now() -> float:
    """Host wall-clock timestamp (self-measurement, not simulated time)."""
    return time.perf_counter()  # daoplint: disable=wall-clock


def _stage_snapshot(cache: TensorCache) -> dict:
    """Copy of the per-stage hit/miss/memo counters."""
    return {
        stage: (c.hits, c.misses, c.memo_hits)
        for stage, c in cache.stage_counters.items()
    }


def _stage_delta(before: dict, after: dict) -> dict:
    """Per-stage hit rates accumulated between two snapshots.

    Identity-memo hits (:meth:`TensorCache.identity_memo`) count toward
    the stage's hit rate — a memoized call avoided recomputation just
    like a content hit, only cheaper.
    """
    out = {}
    for stage, (hits, misses, memo_hits) in sorted(after.items()):
        h0, m0, n0 = before.get(stage, (0, 0, 0))
        d_hits, d_misses, d_memo = hits - h0, misses - m0, memo_hits - n0
        lookups = d_hits + d_misses + d_memo
        out[stage] = {
            "hits": d_hits,
            "misses": d_misses,
            "memo_hits": d_memo,
            "hit_rate": (d_hits + d_memo) / lookups if lookups else 0.0,
        }
    return out


def _timed_phases(run, cache: TensorCache) -> dict:
    """Run ``run()`` twice (cold, then warm) against a fresh-state cache.

    Returns the section payload: cold/warm seconds, speedup, per-phase
    stage hit rates, and the cache's final stats.
    """
    cold_start = _now()
    run()
    cold_s = _now() - cold_start
    cold_stages = _stage_snapshot(cache)
    warm_start = _now()
    run()
    warm_s = _now() - warm_start
    warm_stages = _stage_delta(cold_stages, _stage_snapshot(cache))
    return {
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "stages_cold": _stage_delta({}, cold_stages),
        "stages_warm": warm_stages,
        "cache": cache.stats(),
    }


def bench_compute(
    bundle,
    platform,
    seeds=(0, 1, 2),
    prompt_len: int = 16,
    max_new_tokens: int = 12,
    expert_cache_ratio: float = 0.5,
    calibration_probs=None,
    sweep_len: int = 32,
    sweep_ecrs=SWEEP_ECRS,
    sweep_engines=SWEEP_ENGINES,
    max_bytes: int = DEFAULT_MAX_BYTES,
) -> dict:
    """Measure cold-vs-warm wall clock for the audit and sweep workloads.

    Each section gets its own shared :class:`TensorCache` and is executed
    twice: the cold pass fills the cache (paying digest+store overhead on
    top of the compute), the warm pass re-runs the identical workload and
    is served from it.  The differential audit runs with
    ``audit_invariants=False`` — the post-hoc invariant audit is
    bookkeeping, not forward compute, and is not what the cache
    accelerates.

    Returns a JSON-serializable payload (the ``BENCH_compute.json``
    schema) with per-section timings, speedups, per-stage hit rates,
    cache occupancy/eviction counters, and the >=2x acceptance booleans.
    """
    audit_cache = TensorCache(max_bytes=max_bytes)

    def run_audit() -> None:
        report = run_differential_audit(
            bundle, platform, seeds=seeds, prompt_len=prompt_len,
            max_new_tokens=max_new_tokens,
            expert_cache_ratio=expert_cache_ratio,
            calibration_probs=calibration_probs,
            audit_invariants=False, compute_cache=audit_cache,
        )
        if not report.ok:
            raise AssertionError(
                "differential audit failed during bench-compute:\n"
                + report.format()
            )

    audit_section = _timed_phases(run_audit, audit_cache)

    sweep_cache = TensorCache(max_bytes=max_bytes)
    generator = SequenceGenerator(SHAREGPT, bundle.vocab, seed=5)
    sequence = generator.sample_sequence(sweep_len, sweep_len, sample_idx=0)

    def run_sweep_grid() -> None:
        bundle.model.attach_compute_cache(sweep_cache)
        try:
            for ecr in sweep_ecrs:
                for name in sweep_engines:
                    engine = build_engine(
                        name, bundle, platform, expert_cache_ratio=ecr,
                        calibration_probs=calibration_probs,
                    )
                    engine.generate(
                        sequence.prompt_tokens, sweep_len,
                        forced_tokens=sequence.continuation_tokens,
                    )
        finally:
            bundle.model.detach_compute_cache()

    sweep_section = _timed_phases(run_sweep_grid, sweep_cache)

    return {
        "config": {
            "model": bundle.arch.name,
            "n_blocks": bundle.model.n_blocks,
            "sim_d_model": bundle.model.profile.sim.d_model,
            "sim_d_ff": bundle.model.profile.sim.d_ff,
            "seeds": [int(s) for s in seeds],
            "prompt_len": prompt_len,
            "max_new_tokens": max_new_tokens,
            "expert_cache_ratio": expert_cache_ratio,
            "sweep_len": sweep_len,
            "sweep_ecrs": [float(e) for e in sweep_ecrs],
            "sweep_engines": list(sweep_engines),
            "max_bytes": max_bytes,
        },
        "differential_audit": audit_section,
        "ecr_sweep": sweep_section,
        "criteria": {
            "audit_warm_speedup_ge_2x": audit_section["speedup"] >= 2.0,
            "sweep_warm_speedup_ge_2x": sweep_section["speedup"] >= 2.0,
        },
    }
