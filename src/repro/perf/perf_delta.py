"""Benchmark regression gate: diff two BENCH_*.json artifacts.

The repository commits its benchmark artifacts (``BENCH_batch.json``,
``BENCH_compute.json``) so every change's performance effect is
reviewable.  This module turns those artifacts into a *gate*: given a
baseline and a candidate rendering of the same benchmark, it computes
per-configuration relative deltas on the throughput-class metrics and
fails when any regresses by more than a threshold (15% by default —
wide enough to absorb the simulator's scheduling jitter across refactors
while catching real cost-model or batching regressions).

Two artifact kinds are understood, auto-detected by shape:

- **batch** (``repro bench-batch --json``): runs are keyed by
  ``(engine, max_batch, mode)`` and compared on
  ``throughput_tokens_per_s`` — the decode-throughput surface the
  continuous-batch scheduler owns;
- **compute** (``repro bench-compute --json``): the warm-cache speedups
  (``differential_audit.speedup``, ``ecr_sweep.speedup``) — the
  simulator's own wall-clock win from the tensor cache.

A configuration present in the baseline but missing from the candidate
is a structural failure, not a skip: a dropped run could hide exactly
the regression the gate exists to catch.  The gate is wired into
``repro perf-delta`` and the CI lifecycle job (see docs/lifecycle.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Default maximum tolerated relative regression (15%).
DEFAULT_THRESHOLD = 0.15

#: Artifact kinds :func:`detect_kind` can name.
BATCH_BENCH = "batch"
COMPUTE_BENCH = "compute"


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric: baseline vs candidate value.

    Attributes:
        metric: human-readable metric path, e.g.
            ``"daop/max_batch=4/gathered throughput_tokens_per_s"``.
        baseline: the baseline artifact's value.
        candidate: the candidate artifact's value.
    """

    metric: str
    baseline: float
    candidate: float

    @property
    def delta(self) -> float:
        """Relative change; negative means the candidate is slower."""
        if self.baseline == 0:
            return 0.0
        return (self.candidate - self.baseline) / self.baseline


@dataclass
class PerfDeltaReport:
    """Outcome of one baseline-vs-candidate benchmark diff."""

    kind: str
    threshold: float = DEFAULT_THRESHOLD
    deltas: list = field(default_factory=list)
    problems: list = field(default_factory=list)

    @property
    def regressions(self) -> list:
        """Deltas whose relative drop exceeds the threshold."""
        return [d for d in self.deltas if d.delta < -self.threshold]

    @property
    def ok(self) -> bool:
        """Whether the candidate passes the gate."""
        return not self.regressions and not self.problems

    def format(self) -> str:
        """Multi-line human-readable report, worst deltas first."""
        verdict = "ok" if self.ok else "FAIL"
        lines = [
            f"perf-delta [{self.kind}]: {len(self.deltas)} metric(s) "
            f"compared, threshold {self.threshold:.0%} -> {verdict}"
        ]
        for problem in self.problems:
            lines.append(f"  PROBLEM: {problem}")
        for d in sorted(self.deltas, key=lambda d: d.delta):
            mark = "  REGRESSION" if d.delta < -self.threshold else ""
            lines.append(
                f"  {d.metric}: {d.baseline:.4g} -> {d.candidate:.4g} "
                f"({d.delta:+.1%}){mark}"
            )
        return "\n".join(lines)


def detect_kind(payload: dict) -> str:
    """Name the benchmark artifact kind by its shape.

    Raises:
        ValueError: if the payload matches neither known artifact.
    """
    if "runs" in payload and "comparison" in payload:
        return BATCH_BENCH
    if "ecr_sweep" in payload or "differential_audit" in payload:
        return COMPUTE_BENCH
    raise ValueError(
        "unrecognized benchmark artifact: expected a bench-batch payload "
        "(with 'runs'/'comparison') or a bench-compute payload (with "
        "'ecr_sweep'/'differential_audit')"
    )


def _run_lengths(run: dict, payload: dict) -> tuple:
    """``(input_len, output_len)`` of one run, oldest artifacts included.

    Sweep-era artifacts stamp the pair on every run; earlier single-pair
    artifacts only carried it at the payload top level, so fall back
    there (``0`` when even that is absent) to keep old baselines
    diffable against new candidates.
    """
    def pick(field: str) -> int:
        value = run.get(field, payload.get(field, 0))
        # A top-level sweep list cannot identify a single run.
        return int(value) if not isinstance(value, list) else 0

    return pick("input_len"), pick("output_len")


def _batch_throughputs(payload: dict) -> dict:
    """Throughput keyed by ``(engine, input_len, output_len, max_batch,
    mode)``."""
    return {
        (run["engine"],) + _run_lengths(run, payload)
        + (int(run["max_batch"]), run["mode"]):
        float(run["throughput_tokens_per_s"])
        for run in payload.get("runs", [])
    }


def _batch_key_label(key: tuple) -> str:
    engine, input_len, output_len, max_batch, mode = key
    return (f"{engine}/in={input_len}/out={output_len}"
            f"/max_batch={max_batch}/{mode}")


def diff_batch_bench(baseline: dict, candidate: dict,
                     threshold: float = DEFAULT_THRESHOLD) -> PerfDeltaReport:
    """Gate a bench-batch candidate against its baseline artifact."""
    report = PerfDeltaReport(kind=BATCH_BENCH, threshold=threshold)
    base = _batch_throughputs(baseline)
    cand = _batch_throughputs(candidate)
    for key in sorted(set(base) - set(cand)):
        report.problems.append(
            f"baseline run {_batch_key_label(key)} is missing from the "
            "candidate"
        )
    for key in sorted(set(base) & set(cand)):
        report.deltas.append(MetricDelta(
            metric=f"{_batch_key_label(key)} throughput_tokens_per_s",
            baseline=base[key],
            candidate=cand[key],
        ))
    return report


def diff_compute_bench(baseline: dict, candidate: dict,
                       threshold: float = DEFAULT_THRESHOLD,
                       ) -> PerfDeltaReport:
    """Gate a bench-compute candidate against its baseline artifact."""
    report = PerfDeltaReport(kind=COMPUTE_BENCH, threshold=threshold)
    for section in ("differential_audit", "ecr_sweep"):
        in_base = section in baseline
        in_cand = section in candidate
        if in_base and not in_cand:
            report.problems.append(
                f"baseline section {section!r} is missing from the "
                "candidate"
            )
            continue
        if not in_base:
            continue
        report.deltas.append(MetricDelta(
            metric=f"{section} warm-cache speedup",
            baseline=float(baseline[section]["speedup"]),
            candidate=float(candidate[section]["speedup"]),
        ))
    return report


def diff_benchmarks(baseline: dict, candidate: dict,
                    threshold: float = DEFAULT_THRESHOLD) -> PerfDeltaReport:
    """Diff two benchmark payloads, auto-detecting the artifact kind.

    Raises:
        ValueError: if the two payloads are different artifact kinds or
            neither kind is recognized.
    """
    kind = detect_kind(baseline)
    candidate_kind = detect_kind(candidate)
    if kind != candidate_kind:
        raise ValueError(
            f"cannot diff a {kind!r} baseline against a "
            f"{candidate_kind!r} candidate"
        )
    if kind == BATCH_BENCH:
        return diff_batch_bench(baseline, candidate, threshold)
    return diff_compute_bench(baseline, candidate, threshold)


def load_benchmark(path: str) -> dict:
    """Read one benchmark JSON artifact from disk.

    Raises:
        ValueError: if the file is not valid JSON or not an object.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"benchmark artifact {path} is not valid JSON: {exc}"
            ) from exc
    if not isinstance(payload, dict):
        raise ValueError(f"benchmark artifact {path} is not a JSON object")
    return payload
