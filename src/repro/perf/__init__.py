"""Content-addressed forward-compute memoization and its benchmark.

DAOP's core premise is that placement and scheduling change *time*, never
*values*: every functional numpy forward in this repository is a pure
function of its input bytes and the model weights.  ``repro.perf``
exploits that for the simulator's own wall clock — a bounded-byte,
BLAKE2-keyed LRU (:class:`TensorCache`) that the model stages consult via
``MoETransformer.attach_compute_cache``, shared across engines by the
differential audit and across sweep points by the benchmarks, plus the
cold-vs-warm self-measurement harness behind ``repro bench-compute``
(:func:`bench_compute`).  The committed benchmark artifacts double as a
regression gate: :mod:`repro.perf.perf_delta` diffs two ``BENCH_*.json``
renderings and fails on throughput/speedup regressions beyond a
threshold (``repro perf-delta``).  See ``docs/performance.md``.
"""

from repro.perf.bench import (
    SWEEP_ECRS,
    SWEEP_ENGINES,
    bench_compute,
)
from repro.perf.perf_delta import (
    BATCH_BENCH,
    COMPUTE_BENCH,
    DEFAULT_THRESHOLD,
    MetricDelta,
    PerfDeltaReport,
    detect_kind,
    diff_batch_bench,
    diff_benchmarks,
    diff_compute_bench,
    load_benchmark,
)
from repro.perf.memo import IdentityLRUMemo
from repro.perf.tensor_cache import (
    DEFAULT_MAX_BYTES,
    DEFAULT_MEMO_CAPACITY,
    StageCounters,
    TensorCache,
    content_key,
)

__all__ = [
    "SWEEP_ECRS",
    "SWEEP_ENGINES",
    "bench_compute",
    "BATCH_BENCH",
    "COMPUTE_BENCH",
    "DEFAULT_THRESHOLD",
    "MetricDelta",
    "PerfDeltaReport",
    "detect_kind",
    "diff_batch_bench",
    "diff_benchmarks",
    "diff_compute_bench",
    "load_benchmark",
    "DEFAULT_MAX_BYTES",
    "DEFAULT_MEMO_CAPACITY",
    "IdentityLRUMemo",
    "StageCounters",
    "TensorCache",
    "content_key",
]
